"""The observability spine: telemetry sinks, trace spans, topology, trends.

Covers the three layers end to end — ``RoundTelemetry`` fed by both
schedulers, the sweep's JSONL trace writer plus its summarizer and CLI
surface, the host-topology block, and the standalone bench-pipeline
scripts (``report_trends.py``, topology-aware ``check_perf_regression.py``)
loaded straight from ``benchmarks/``.
"""

import importlib.util
import json
import os

import pytest

from repro import SynchronousNetwork
from repro.cli import main
from repro.core import greedy_reduction, mis_arboricity
from repro.experiments import ResultCache, SweepSpec, grid_scenarios, run_sweep
from repro.graphs import forest_union
from repro.obs import (
    TRACE_SCHEMA,
    RoundTelemetry,
    Telemetry,
    TraceWriter,
    read_trace,
    render_trace_report,
    summarize_trace,
    topology,
)

BENCHMARKS_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmarks")


def load_bench_script(name):
    """Import a standalone ``benchmarks/`` script by path (not a package)."""
    path = os.path.join(BENCHMARKS_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"_bench_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def run_with_telemetry(scheduler, graph, runner, telemetry):
    """Attach a telemetry sink to every ``run`` of a library algorithm."""
    net = SynchronousNetwork(graph, scheduler=scheduler)
    original_run = net.run

    def run(*args, **kwargs):
        kwargs.setdefault("telemetry", telemetry)
        return original_run(*args, **kwargs)

    net.run = run
    return runner(net)


class TestRoundTelemetry:
    def test_base_sink_is_noop(self):
        """The base class accepts every hook without effect (the contract
        custom sinks override selectively)."""
        sink = Telemetry()
        assert sink.wants_messages is False and sink.wants_bytes is False
        sink.on_run_start(5, "event")
        sink.on_round(0, 5, 2, 10, 0, 0)
        sink.on_fast_forward(3, 7)
        sink.on_message(1, 0, 1, "x")
        sink.on_run_end(None)

    def test_counters_and_summary(self):
        gen = forest_union(100, 3, seed=11)
        tel = RoundTelemetry()
        result = run_with_telemetry(
            "event", gen.graph, lambda net: mis_arboricity(net, 3), tel
        )
        assert result.members  # the run actually happened
        assert tel.runs > 1  # composite algorithm: several net.run calls
        assert tel.n == gen.graph.n and tel.scheduler == "event"
        assert tel.total_messages > 0
        assert tel.peak_active <= gen.graph.n
        summary = tel.summary()
        json.dumps(summary)  # must be JSON-serialisable as emitted
        for key in (
            "runs",
            "rounds_executed",
            "fast_forwarded_rounds",
            "active_node_rounds",
            "messages",
            "message_bytes",
            "max_round_messages",
            "wake_transitions",
            "idle_transitions",
        ):
            assert key in summary, key
        assert summary["messages"] == tel.total_messages

    def test_wants_bytes_forces_byte_accounting(self):
        gen = forest_union(80, 2, seed=12)
        plain = RoundTelemetry()
        run_with_telemetry(
            "event", gen.graph, lambda net: mis_arboricity(net, 2), plain
        )
        assert plain.total_bytes == 0  # bytes not counted unless asked
        counting = RoundTelemetry(count_bytes=True)
        run_with_telemetry(
            "event", gen.graph, lambda net: mis_arboricity(net, 2), counting
        )
        assert counting.wants_bytes and counting.total_bytes > 0
        assert counting.total_messages == plain.total_messages

    def test_fast_forward_accounting(self):
        """Executed samples plus fast-forwarded rounds tile the run: no
        round is double-counted or lost when the event engine skips."""
        gen = forest_union(120, 3, seed=13)
        graph = gen.graph
        target = graph.max_degree + 1
        colors = {v: 7 * v for v in graph.vertices}

        def workload(net):
            return greedy_reduction(net, dict(colors), 7 * graph.n, target)

        dense = RoundTelemetry()
        event = RoundTelemetry()
        run_with_telemetry("dense", graph, workload, dense)
        run_with_telemetry("event", graph, workload, event)
        assert dense.fast_forwarded == 0
        assert len(dense.samples) == dense.last_round + 1
        assert event.fast_forwarded > 0
        assert len(event.samples) + event.fast_forwarded == event.last_round + 1
        assert dense.last_round == event.last_round

    def test_message_rounds_engine_independent(self):
        """Rounds with traffic — the engine-independent view — agree even
        though the engines disagree about which rounds they executed."""
        gen = forest_union(100, 3, seed=14)
        dense = RoundTelemetry()
        event = RoundTelemetry()
        run_with_telemetry(
            "dense", gen.graph, lambda net: mis_arboricity(net, 3), dense
        )
        run_with_telemetry(
            "event", gen.graph, lambda net: mis_arboricity(net, 3), event
        )
        assert dense.message_rounds() == event.message_rounds()
        assert dense.total_messages == event.total_messages
        # scheduling diagnostics are engine-specific by design
        assert dense.wake_transitions == 0
        assert event.active_node_rounds() <= dense.active_node_rounds()


class TestTraceWriter:
    def test_emit_read_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as tw:
            tw.emit("sweep", "start", sweep="x", trials=2)
            tw.emit("stage", "span", name="verify", dur_s=0.5, trial="a", pid=1)
            assert tw.emitted == 2
        events = read_trace(path)
        assert [e["kind"] for e in events] == ["sweep", "stage"]
        assert all(e["schema"] == TRACE_SCHEMA for e in events)
        assert all(isinstance(e["t"], float) for e in events)
        assert events[1]["name"] == "verify"

    def test_append_mode_and_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as tw:
            tw.emit("sweep", "start")
        with open(path, "a") as fh:
            fh.write("not json\n\n")
        with TraceWriter(path) as tw:  # append, never truncate
            tw.emit("sweep", "end")
        events = read_trace(path)
        assert [(e["kind"], e["event"]) for e in events] == [
            ("sweep", "start"),
            ("sweep", "end"),
        ]

    def test_summarize_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as tw:
            tw.emit("sweep", "start", sweep="x", trials=2, workers=2)
            tw.emit("cache", "miss", key="abc", trial="t0")
            tw.emit("cache", "hit", key="def", trial="t1")
            tw.emit("graphstore", "build", graph="abc", build_s=0.1)
            tw.emit("stage", "span", name="verify", dur_s=0.25, trial="t0", pid=7)
            tw.emit("stage", "span", name="verify", dur_s=0.75, trial="t1", pid=7)
            tw.emit("sweep", "end", trials=2, wall_s=1.0)
        summary = summarize_trace(path)
        assert summary["events"] == 7
        assert summary["cache"] == {"hit": 1, "miss": 1}
        assert summary["graphstore"] == {"build": 1}
        assert summary["stages"]["verify"]["count"] == 2
        assert summary["stages"]["verify"]["total_s"] == pytest.approx(1.0)
        assert summary["workers"][7]["trials"] == 0  # no trial events
        assert summary["workers"][7]["busy_s"] == pytest.approx(1.0)


class TestSweepTracing:
    @staticmethod
    def shared_spec(n=40):
        """Two algorithms on the same family/seed: the trials share one
        graph, so the GraphStore lifecycle actually fires."""
        return SweepSpec(
            "obs",
            grid_scenarios(
                families=[{"name": "forest_union", "n": n, "a": 2}],
                algorithms=[{"name": "cor46"}, {"name": "forests"}],
                seeds=[0, 1],
            ),
        )

    def test_pool_sweep_emits_full_trace(self, tmp_path):
        trace_path = tmp_path / "sweep.jsonl"
        result = run_sweep(self.shared_spec(), workers=2, trace=str(trace_path))
        assert result.num_trials == 4
        events = read_trace(trace_path)
        kinds = {e["kind"] for e in events}
        assert {"sweep", "pool", "stage", "trial", "graphstore"} <= kinds
        sweep_events = [e for e in events if e["kind"] == "sweep"]
        assert [e["event"] for e in sweep_events] == ["start", "end"]
        assert sweep_events[0]["trials"] == 4
        assert "topology" in sweep_events[0]
        assert sweep_events[1]["wall_s"] > 0
        # one span per stage per executed trial, re-emitted by the parent
        stage_names = {e["name"] for e in events if e["kind"] == "stage"}
        assert stage_names == {"build_graph", "run_algorithm", "verify", "metrics"}
        assert len([e for e in events if e["kind"] == "trial"]) == 4
        # overlapped shm pool: workers build the shared graphs, the parent
        # expects then adopts their segments and reclaims them at close
        store_events = {e["event"] for e in events if e["kind"] == "graphstore"}
        assert {"expect", "adopt", "close"} <= store_events

    def test_prebuilt_sweep_traces_parent_builds(self, tmp_path):
        """With overlapping off the parent builds and publishes every
        shared graph itself — those lifecycle events come from this side."""
        trace_path = tmp_path / "sweep.jsonl"
        run_sweep(
            self.shared_spec(),
            workers=2,
            overlap_builds=False,
            trace=str(trace_path),
        )
        events = read_trace(trace_path)
        store_events = {e["event"] for e in events if e["kind"] == "graphstore"}
        assert {"build", "close"} <= store_events
        builds = [
            e
            for e in events
            if e["kind"] == "graphstore" and e["event"] == "build"
        ]
        assert all(e["where"] == "parent" and e["build_s"] >= 0 for e in builds)

    def test_cache_hits_traced_and_file_appended(self, tmp_path):
        trace_path = tmp_path / "sweep.jsonl"
        cache = ResultCache(tmp_path / "cache")
        spec = self.shared_spec()
        run_sweep(spec, cache=cache, workers=1, trace=str(trace_path))
        first = len(read_trace(trace_path))
        result = run_sweep(spec, cache=cache, workers=1, trace=str(trace_path))
        assert result.cache_hits == 4
        events = read_trace(trace_path)[first:]
        cache_events = [e for e in events if e["kind"] == "cache"]
        assert [e["event"] for e in cache_events] == ["hit"] * 4
        assert all(e["key"] for e in cache_events)
        # cache hits execute nothing: no stage spans in the second run
        assert not [e for e in events if e["kind"] == "stage"]

    def test_cli_sweep_trace_and_report(self, tmp_path, capsys):
        trace_path = tmp_path / "cli.jsonl"
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(self.shared_spec().to_json())
        assert (
            main(
                [
                    "sweep",
                    "--spec",
                    str(spec_path),
                    "--no-cache",
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "trace appended" in out
        assert read_trace(trace_path)
        assert main(["report", "trace", str(trace_path)]) == 0
        report = capsys.readouterr().out
        assert "stage spans" in report
        assert "worker utilization" in report
        assert "run_algorithm" in report

    def test_report_trace_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", "trace", str(tmp_path / "nope.jsonl")])


class TestTopology:
    def test_block_shape(self):
        topo = topology()
        required = {"cpu_count", "effective_workers", "shm_available"}
        # mem_gb appears when the host exposes physical-memory sysconf
        assert required <= set(topo) <= required | {"mem_gb"}
        assert isinstance(topo["cpu_count"], int) and topo["cpu_count"] >= 1
        assert 1 <= topo["effective_workers"] <= max(topo["cpu_count"], 8)
        assert isinstance(topo["shm_available"], bool)
        if "mem_gb" in topo:
            assert isinstance(topo["mem_gb"], float) and topo["mem_gb"] > 0
        json.dumps(topo)


class TestReportTrends:
    @staticmethod
    def fake_record(tmp_path, name, *, bench="b", ts, sha, **metrics):
        rec = {"schema": 1, "bench": bench, "metrics": metrics}
        if ts:
            rec["timestamp"] = ts
            rec["git_sha"] = sha
        path = tmp_path / name
        path.write_text(json.dumps(rec))
        return str(path)

    def test_sparkline(self):
        trends = load_bench_script("report_trends")
        assert trends.sparkline([]) == ""
        assert trends.sparkline([2.0]) == "▄"
        assert trends.sparkline([1.0, 1.0]) == "▄▄"
        line = trends.sparkline([1.0, 2.0, 3.0])
        assert line[0] == "▁" and line[-1] == "█" and len(line) == 3

    def test_trajectory_from_history(self, tmp_path):
        trends = load_bench_script("report_trends")
        paths = [
            self.fake_record(
                tmp_path, "base.json", ts=None, sha=None, x_speedup=2.0
            ),
            self.fake_record(
                tmp_path,
                "r1.json",
                ts="2026-08-01T00:00:00Z",
                sha="aaaa111122223333",
                x_speedup=2.5,
                wall_s=3.0,
            ),
            self.fake_record(
                tmp_path,
                "r2.json",
                ts="2026-08-02T00:00:00Z",
                sha="bbbb111122223333",
                x_speedup=5.0,
                wall_s=2.0,
            ),
        ]
        rows = trends.trend_rows(trends.load_records(paths))
        by_metric = {r[1]: r for r in rows}
        assert set(by_metric) == {"x_speedup", "wall_s"}
        x = by_metric["x_speedup"]
        assert x[3] == "2" and x[4] == "5"  # first (baseline) and latest
        assert x[5] == "+100.0%"  # 2.5 -> 5.0 against the previous run
        assert x[6] == "3" and x[7] == "bbbb111122"
        assert by_metric["wall_s"][3] == "3"  # baseline lacks it: starts at r1

    def test_main_writes_markdown(self, tmp_path, capsys):
        trends = load_bench_script("report_trends")
        paths = [
            self.fake_record(tmp_path, "a.json", ts=None, sha=None, y_speedup=1.0),
            self.fake_record(
                tmp_path,
                "b.json",
                ts="2026-08-01T00:00:00Z",
                sha="cafe000011112222",
                y_speedup=1.5,
            ),
        ]
        out_path = tmp_path / "TRENDS.md"
        assert trends.main([*paths, "--output", str(out_path)]) == 0
        text = out_path.read_text()
        assert "| bench | metric |" in text and "y_speedup" in text
        assert trends.main([str(tmp_path / "missing.json")]) == 1


class TestTopologyAwareGate:
    @staticmethod
    def write(tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_parallelism_floors_skipped_on_small_box(self, tmp_path, capsys):
        gate = load_bench_script("check_perf_regression")
        cur = self.write(
            tmp_path,
            "cur.json",
            {
                "topology": {"cpu_count": 1},
                "metrics": {
                    "shared_speedup": 2.5,
                    "overlap_speedup": 0.9,  # would fail if gated
                },
            },
        )
        base = self.write(
            tmp_path,
            "base.json",
            {
                "topology": {"min_cores": 4},
                "parallelism_dependent": ["overlap_speedup"],
                "metrics": {"shared_speedup": 2.2, "overlap_speedup": 1.5},
            },
        )
        assert gate.main([cur, base]) == 0
        out = capsys.readouterr().out
        assert "SKIP overlap_speedup" in out
        assert "OK  shared_speedup" in out

    def test_parallelism_floor_gated_on_big_box(self, tmp_path, capsys):
        gate = load_bench_script("check_perf_regression")
        cur = self.write(
            tmp_path,
            "cur.json",
            {"topology": {"cpu_count": 8}, "metrics": {"overlap_speedup": 0.9}},
        )
        base = self.write(
            tmp_path,
            "base.json",
            {
                "topology": {"min_cores": 4},
                "parallelism_dependent": ["overlap_speedup"],
                "metrics": {"overlap_speedup": 1.5},
            },
        )
        assert gate.main([cur, base]) == 1
        assert "FAIL overlap_speedup" in capsys.readouterr().out

    def test_absolute_floor_no_tolerance(self, tmp_path, capsys):
        gate = load_bench_script("check_perf_regression")
        base = self.write(
            tmp_path, "base.json", {"floors": {"overhead_speedup": 0.97}}
        )
        ok = self.write(
            tmp_path, "ok.json", {"metrics": {"overhead_speedup": 0.98}}
        )
        assert gate.main([ok, base]) == 0
        # 0.96 would pass a 15%-tolerance gate; absolute floors must not
        bad = self.write(
            tmp_path, "bad.json", {"metrics": {"overhead_speedup": 0.96}}
        )
        assert gate.main([bad, base]) == 1
        missing = self.write(tmp_path, "missing.json", {"metrics": {}})
        assert gate.main([missing, base]) == 1

    def test_only_restricts_gating(self, tmp_path, capsys):
        gate = load_bench_script("check_perf_regression")
        cur = self.write(
            tmp_path,
            "cur.json",
            {
                "topology": {"cpu_count": 8},
                "metrics": {"a_speedup": 0.1, "b_speedup": 3.0},
            },
        )
        base = self.write(
            tmp_path,
            "base.json",
            {"metrics": {"a_speedup": 2.0, "b_speedup": 2.0}},
        )
        assert gate.main([cur, base, "--only", "b_speedup"]) == 0
        assert gate.main([cur, base]) == 1
        # --only naming nothing gated is an error, not a silent pass
        assert gate.main([cur, base, "--only", "nope_speedup"]) == 2
