"""The AGLP (2, O(log n))-ruling set."""


from repro import Graph, SynchronousNetwork
from repro.core import ruling_set, ruling_set_domination_radius
from repro.graphs import forest_union, path, random_regular, ring, star


class TestRulingSet:
    def test_independent_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        rs = ruling_set(net)
        g = family_graph.graph
        for (u, v) in g.edges:
            assert not (u in rs.members and v in rs.members)

    def test_domination_logarithmic(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        rs = ruling_set(net)
        beta = ruling_set_domination_radius(family_graph.graph, rs.members)
        assert beta <= rs.params["beta_bound"]

    def test_nonempty_per_component(self):
        """Every connected component contains a ruler (the all-zero-prefix
        survivor), so the domination radius is finite."""
        g = forest_union(200, 3, seed=95)
        net = SynchronousNetwork(g.graph)
        rs = ruling_set(net)
        assert ruling_set_domination_radius(g.graph, rs.members) <= g.graph.n

    def test_rounds_logarithmic(self):
        g = random_regular(1024, 6, seed=96)
        net = SynchronousNetwork(g.graph)
        rs = ruling_set(net)
        assert rs.rounds <= 11  # ⌈log2 1024⌉ + 1

    def test_vertex_zero_always_rules(self):
        """Id 0 is on the 0-side of every merge, so it never abdicates."""
        for maker in (lambda: ring(32).graph, lambda: star(16).graph):
            g = maker()
            rs = ruling_set(SynchronousNetwork(g))
            assert 0 in rs.members

    def test_path_density(self):
        """On a path the ruling set cannot skip Θ(log n)-sized gaps."""
        g = path(128).graph
        rs = ruling_set(SynchronousNetwork(g))
        beta = ruling_set_domination_radius(g, rs.members)
        assert beta <= 2 * 7  # beta bound for 7-bit ids

    def test_single_vertex(self):
        g = Graph.empty(1)
        rs = ruling_set(SynchronousNetwork(g))
        assert rs.members == {0}

    def test_deterministic(self, forest_graph, forest_net):
        assert ruling_set(forest_net).members == ruling_set(forest_net).members

    def test_empty_domination(self):
        g = path(4).graph
        assert ruling_set_domination_radius(g, set()) == g.n + 1
