"""Primality, prime search, integer roots."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.families import integer_nth_root, is_prime, next_prime


SMALL_PRIMES = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}


class TestIsPrime:
    def test_small_values(self):
        for n in range(50):
            assert is_prime(n) == (n in SMALL_PRIMES)

    def test_negative_and_zero(self):
        assert not is_prime(-7)
        assert not is_prime(0)
        assert not is_prime(1)

    def test_carmichael_numbers(self):
        # classic Fermat pseudoprimes must be rejected
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(n)

    def test_large_known_primes(self):
        assert is_prime(104729)  # the 10000th prime
        assert is_prime(2**31 - 1)  # Mersenne
        assert not is_prime(2**31)

    def test_squares_of_primes(self):
        for p in (101, 997, 10007):
            assert is_prime(p)
            assert not is_prime(p * p)


class TestNextPrime:
    def test_at_or_above(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 2
        assert next_prime(3) == 3
        assert next_prime(4) == 5
        assert next_prime(14) == 17
        assert next_prime(90) == 97

    @given(st.integers(min_value=2, max_value=200_000))
    @settings(max_examples=60, deadline=None)
    def test_property(self, n):
        p = next_prime(n)
        assert p >= n
        assert is_prime(p)
        # no prime strictly between n and p
        assert all(not is_prime(q) for q in range(n, p))


class TestIntegerNthRoot:
    def test_exact_powers(self):
        assert integer_nth_root(27, 3) == 3
        assert integer_nth_root(1024, 10) == 2
        assert integer_nth_root(49, 2) == 7

    def test_floor_behavior(self):
        assert integer_nth_root(26, 3) == 2
        assert integer_nth_root(50, 2) == 7
        assert integer_nth_root(7, 3) == 1

    def test_edges(self):
        assert integer_nth_root(0, 5) == 0
        assert integer_nth_root(1, 7) == 1
        assert integer_nth_root(12345, 1) == 12345

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            integer_nth_root(-1, 2)
        with pytest.raises(InvalidParameterError):
            integer_nth_root(5, 0)

    @given(
        x=st.integers(min_value=0, max_value=10**15),
        k=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=120, deadline=None)
    def test_property(self, x, k):
        r = integer_nth_root(x, k)
        assert r**k <= x
        assert (r + 1) ** k > x
