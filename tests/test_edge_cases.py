"""Tiny-input robustness: every entry point on minimal graphs.

Degenerate inputs (single vertex, single edge, edgeless, disconnected
dust) are where recursions and palette arithmetic usually break; every
public algorithm must handle them.
"""

import pytest

from repro import Graph, SynchronousNetwork
from repro.core import (
    arb_kuhn_decomposition,
    arbdefective_coloring,
    be08_coloring,
    complete_orientation,
    compute_hpartition,
    forests_decomposition,
    kuhn_defective_coloring,
    legal_coloring,
    legal_coloring_corollary46,
    linial_coloring,
    luby_coloring,
    luby_mis,
    mis_arboricity,
    oneshot_legal_coloring,
    partial_orientation,
    ruling_set,
)
from repro.verify import check_legal_coloring, check_mis

TINY_GRAPHS = [
    ("single", Graph.empty(1)),
    ("two-isolated", Graph.empty(2)),
    ("one-edge", Graph(range(2), [(0, 1)])),
    ("triangle", Graph(range(3), [(0, 1), (1, 2), (0, 2)])),
    ("dust", Graph(range(6), [(0, 1), (3, 4)])),
]

COLORING_ENTRY_POINTS = [
    ("legal", lambda net: legal_coloring(net, 2, p=4)),
    ("oneshot", lambda net: oneshot_legal_coloring(net, 2)),
    ("cor46", lambda net: legal_coloring_corollary46(net, 2, eta=0.5)),
    ("be08", lambda net: be08_coloring(net, 2)),
    ("linial", lambda net: linial_coloring(net)),
    ("luby", lambda net: luby_coloring(net, seed=1)),
    ("kuhn-defective", lambda net: kuhn_defective_coloring(net, 1)),
]


class TestTinyGraphColorings:
    @pytest.mark.parametrize("gname,graph", TINY_GRAPHS, ids=[g[0] for g in TINY_GRAPHS])
    @pytest.mark.parametrize(
        "aname,algorithm",
        COLORING_ENTRY_POINTS,
        ids=[a[0] for a in COLORING_ENTRY_POINTS],
    )
    def test_terminates_and_colors(self, gname, graph, aname, algorithm):
        net = SynchronousNetwork(graph)
        result = algorithm(net)
        assert set(result.colors) == set(graph.vertices)
        if aname != "kuhn-defective":  # the defective coloring may collide
            check_legal_coloring(graph, result.colors)


class TestTinyGraphDecompositions:
    @pytest.mark.parametrize("gname,graph", TINY_GRAPHS, ids=[g[0] for g in TINY_GRAPHS])
    def test_hpartition_and_forests(self, gname, graph):
        net = SynchronousNetwork(graph)
        hp = compute_hpartition(net, 2)
        assert set(hp.index) == set(graph.vertices)
        fd = forests_decomposition(net, 2)
        assert len(fd.forest_of) == graph.m

    @pytest.mark.parametrize("gname,graph", TINY_GRAPHS, ids=[g[0] for g in TINY_GRAPHS])
    def test_orientations(self, gname, graph):
        net = SynchronousNetwork(graph)
        co = complete_orientation(net, 2)
        assert len(co.direction) == graph.m
        po = partial_orientation(net, 2, t=1)
        assert len(po.direction) <= graph.m

    @pytest.mark.parametrize("gname,graph", TINY_GRAPHS, ids=[g[0] for g in TINY_GRAPHS])
    def test_arbdefective_and_arb_kuhn(self, gname, graph):
        net = SynchronousNetwork(graph)
        dec = arbdefective_coloring(net, 2, k=2, t=2)
        assert set(dec.label) == set(graph.vertices)
        ak = arb_kuhn_decomposition(net, 2, defect=1)
        assert set(ak.label) == set(graph.vertices)


class TestTinyGraphMIS:
    @pytest.mark.parametrize("gname,graph", TINY_GRAPHS, ids=[g[0] for g in TINY_GRAPHS])
    def test_mis_variants(self, gname, graph):
        net = SynchronousNetwork(graph)
        det = mis_arboricity(net, 2)
        check_mis(graph, det.members)
        rnd = luby_mis(net, seed=1)
        check_mis(graph, rnd.members)
        rs = ruling_set(net)
        for (u, v) in graph.edges:
            assert not (u in rs.members and v in rs.members)


class TestZeroVertexGraph:
    def test_simulator_noop(self):
        g = Graph([], [])
        result = SynchronousNetwork(g).run(lambda: None.__class__())  # never called
        assert result.outputs == {}
        assert result.rounds == 0
