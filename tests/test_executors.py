"""The executor layer: wire protocol, backend registry, and the socket
backend's scheduling and failure semantics.

The byte-identity of records across backends is pinned by
``tests/test_sweep_equivalence.py``; this module covers what is *specific*
to the executor seam — the length-prefixed JSON wire codec, backend
construction, worker attachment, disconnect-requeue with bounded retries,
retry exhaustion, the no-worker timeout, and remote payload exceptions.

The fault tests drive real ``repro worker`` subprocesses (SIGKILL included)
and hand-rolled protocol peers where determinism demands a worker that
misbehaves on cue.
"""

import os
import pickle
import socket as socketlib
import threading
import time

import pytest

from repro.errors import ExecutorError, InvalidParameterError
from repro.experiments import (
    LocalPoolExecutor,
    ScenarioSpec,
    SerialExecutor,
    SocketExecutor,
    SweepSpec,
    make_executor,
    parse_address,
    run_sweep,
    spawn_local_workers,
)
from repro.experiments.executors.wire import (
    MAX_FRAME,
    decode_value,
    encode_value,
    recv_msg,
    send_msg,
)
from repro.graphs import forest_union


def _sharing_spec(n=40, seeds=(0, 1)):
    """Explicit seeds so two algorithm cells share each graph instance."""
    return SweepSpec(
        "executor-spec",
        [
            ScenarioSpec(family="forest_union", algorithm="cor46",
                         family_params={"n": n, "a": 2}, seeds=list(seeds)),
            ScenarioSpec(family="forest_union", algorithm="forests",
                         family_params={"n": n, "a": 2}, seeds=list(seeds)),
        ],
    )


def _fingerprint(result):
    return [(tr.key, tr.metrics) for tr in result]


class TestWireProtocol:
    def test_json_scalars_round_trip_unpickled(self):
        obj = {"a": 1, "b": 2.5, "c": "x", "d": None, "e": True,
               "f": [1, "y", {"g": False}]}
        assert decode_value(encode_value(obj)) == obj
        # nothing JSON-native grows a pickle tag
        assert "__pickle__" not in repr(encode_value(obj))

    def test_non_json_leaves_ride_as_tagged_pickles(self):
        gen = forest_union(12, 2, seed=0)
        encoded = encode_value({"payload": {"graph": gen}})
        inner = encoded["payload"]["graph"]
        assert set(inner) == {"__pickle__"}
        decoded = decode_value(encoded)
        back = decoded["payload"]["graph"]
        assert back.graph.edges == gen.graph.edges

    def test_literal_dict_with_tag_key_survives(self):
        # a user dict that *contains* the tag key must not be mistaken
        # for a codec-produced tag on the way back
        obj = {"__pickle__": "not actually a pickle", "other": 1}
        assert decode_value(encode_value(obj)) == obj

    def test_tuples_become_lists(self):
        # JSON has no tuple; containers are normalised like json.dumps does
        assert decode_value(encode_value((1, 2))) == [1, 2]

    def test_frames_round_trip_over_a_real_socket(self):
        a, b = socketlib.socketpair()
        try:
            msg = {"type": "task", "task_id": 7,
                   "payload": {"trial": {"n": 3}, "graph": None}}
            send_msg(a, msg)
            assert recv_msg(b) == msg
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_raises_connection_error(self):
        a, b = socketlib.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\xff{")  # promises 255 bytes, sends 1
            a.close()
            with pytest.raises(ConnectionError):
                recv_msg(b)
        finally:
            b.close()

    def test_oversized_frame_is_refused(self):
        a, b = socketlib.socketpair()
        try:
            a.sendall((MAX_FRAME + 1).to_bytes(4, "big"))
            with pytest.raises(ConnectionError):
                recv_msg(b)
        finally:
            a.close()
            b.close()


class TestRegistry:
    def test_make_executor_names(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        pool = make_executor("pool", workers=3)
        assert isinstance(pool, LocalPoolExecutor)
        assert pool.parallelism() == 3
        with pytest.raises(InvalidParameterError):
            make_executor("carrier-pigeon")

    def test_capability_flags(self):
        assert SerialExecutor.supports_shm
        assert SerialExecutor.locality == "in-process"
        assert LocalPoolExecutor.supports_shm
        assert LocalPoolExecutor.locality == "local"
        assert not SocketExecutor.supports_shm
        assert SocketExecutor.locality == "remote"

    def test_pool_rejects_bad_worker_counts(self):
        with pytest.raises(InvalidParameterError):
            LocalPoolExecutor(0)
        with pytest.raises(InvalidParameterError):
            LocalPoolExecutor("two")

    def test_run_sweep_rejects_non_executor(self):
        with pytest.raises(InvalidParameterError):
            run_sweep(_sharing_spec(), executor=42)

    def test_parse_address(self):
        assert parse_address("10.0.0.5:7000") == ("10.0.0.5", 7000)
        assert parse_address("7000") == ("127.0.0.1", 7000)
        assert parse_address(":7000") == ("127.0.0.1", 7000)
        with pytest.raises(ExecutorError):
            parse_address("host:port")


def _attached_executor(count, **kwargs):
    """A listening coordinator with ``count`` loopback workers attached."""
    ex = SocketExecutor(min_workers=count, **kwargs)
    procs = spawn_local_workers(ex.host, ex.port, count)
    try:
        ex.wait_for_workers(count, timeout=60)
    except BaseException:
        for p in procs:
            p.kill()
        ex.close()
        raise
    return ex, procs


def _teardown(ex, procs):
    ex.close()
    for p in procs:
        p.terminate()
    for p in procs:
        try:
            p.wait(timeout=10)
        except Exception:
            p.kill()


class TestSocketExecutor:
    def test_loopback_sweep_matches_serial(self):
        spec = _sharing_spec()
        serial = run_sweep(spec)
        ex, procs = _attached_executor(2)
        try:
            remote = run_sweep(spec, executor=ex)
        finally:
            _teardown(ex, procs)
        assert _fingerprint(remote) == _fingerprint(serial)
        # remote workers can never attach this host's segments: shared
        # graphs must have ridden the wire pickled
        assert {t.graph_source for t in remote} == {"pickled"}
        assert remote.executor == "socket"
        # build/reuse accounting is transport-independent
        assert remote.graph_builds == serial.graph_builds == 2
        assert remote.graph_reuses == remote.num_trials - 2

    def test_executor_instance_survives_multiple_sweeps(self):
        ex, procs = _attached_executor(1)
        try:
            first = run_sweep(_sharing_spec(seeds=(0,)), executor=ex)
            second = run_sweep(_sharing_spec(seeds=(1,)), executor=ex)
        finally:
            _teardown(ex, procs)
        assert first.num_trials == 2 and second.num_trials == 2
        assert not any(t.cached for t in first) and not any(
            t.cached for t in second
        )

    def test_worker_records_carry_worker_identity(self):
        ex, procs = _attached_executor(1)
        try:
            payload = {
                "trial": {
                    "family": "forest_union", "algorithm": "cor46",
                    "seed": 0, "family_params": {"n": 16, "a": 2},
                    "algorithm_params": {},
                },
                "graph": None,
            }
            (rec,) = list(ex.submit(iter([payload])))
        finally:
            _teardown(ex, procs)
        assert rec["provenance"]["worker"] == "w1"

    def test_kill_worker_mid_sweep_requeues_and_matches_serial(self):
        """ISSUE acceptance: a worker SIGKILLed mid-sweep costs retries
        but never a lost or duplicated record — the in-flight payloads
        are requeued onto the surviving fleet and the final records are
        byte-identical to a serial run."""
        # slow-ish trials so the victim is guaranteed to hold in-flight
        # payloads when the kill lands
        spec = _sharing_spec(n=220, seeds=(0, 1, 2))
        serial = run_sweep(spec)

        ex, procs = _attached_executor(1)
        replacement = []
        fired = threading.Event()

        def progress(_msg):
            # runs on run_sweep's thread, once the first record landed:
            # the lone worker has more payloads in flight (window 2) —
            # spawn its replacement, then SIGKILL it
            if not fired.is_set():
                fired.set()
                replacement.extend(spawn_local_workers(ex.host, ex.port, 1))
                procs[0].kill()

        try:
            remote = run_sweep(spec, executor=ex, progress=progress)
        finally:
            _teardown(ex, procs + replacement)

        assert fired.is_set()
        assert ex.disconnects >= 1
        assert ex.requeued >= 1  # in-flight payloads were re-dispatched
        assert _fingerprint(remote) == _fingerprint(serial)
        # at-most-once delivery: every key exactly once, nothing dropped
        assert len({tr.key for tr in remote}) == len(
            {t.key() for t in spec.trials()}
        )

    def test_retry_exhaustion_raises_instead_of_dropping(self):
        """A payload whose every dispatch dies must fail the sweep loudly
        (ExecutorError naming the payload), never vanish."""
        ex = SocketExecutor(min_workers=1, max_retries=0,
                            reconnect_timeout=5.0)
        payload = {
            "trial": {
                "family": "forest_union", "algorithm": "cor46", "seed": 0,
                "family_params": {"n": 16, "a": 2}, "algorithm_params": {},
            },
            "graph": None,
        }

        def silent_worker():
            # speaks the handshake, accepts one task, then hangs up
            # without ever answering — a deterministic mid-flight death
            sock = socketlib.create_connection((ex.host, ex.port), timeout=10)
            try:
                send_msg(sock, {"type": "hello", "pid": os.getpid(),
                                "host": "test"})
                recv_msg(sock)  # welcome
                recv_msg(sock)  # the task
            finally:
                sock.close()

        t = threading.Thread(target=silent_worker, daemon=True)
        t.start()
        try:
            ex.wait_for_workers(1, timeout=30)
            with pytest.raises(ExecutorError, match="retry budget"):
                list(ex.submit(iter([payload])))
        finally:
            ex.close()
            t.join(timeout=10)

    def test_no_workers_times_out_with_instructions(self):
        ex = SocketExecutor(min_workers=1, reconnect_timeout=0.3)
        try:
            with pytest.raises(ExecutorError, match="repro worker --connect"):
                list(ex.submit(iter([{"trial": {}, "graph": None}])))
        finally:
            ex.close()

    def test_remote_payload_exception_propagates_with_traceback(self):
        """A payload that raises on the worker is deterministic, not
        infrastructure: reported with the remote traceback, not retried."""
        ex, procs = _attached_executor(1)
        bad = {
            "trial": {
                "family": "forest_union", "algorithm": "no-such-algorithm",
                "seed": 0, "family_params": {"n": 16, "a": 2},
                "algorithm_params": {},
            },
            "graph": None,
        }
        try:
            with pytest.raises(ExecutorError, match="no-such-algorithm"):
                list(ex.submit(iter([bad])))
            assert ex.requeued == 0  # failures are not retried
        finally:
            _teardown(ex, procs)

    def test_lazy_consumption_interleaves_with_results(self):
        """The Executor contract: payloads must keep flowing while results
        are outstanding — a source gated on its own results deadlocks any
        backend that drains the iterable first."""
        ex, procs = _attached_executor(1)
        got = threading.Event()

        def payload(seed):
            return {
                "trial": {
                    "family": "forest_union", "algorithm": "cor46",
                    "seed": seed, "family_params": {"n": 16, "a": 2},
                    "algorithm_params": {},
                },
                "graph": None,
            }

        def gated_source():
            yield payload(0)
            # refuse to yield the second payload until the first result
            # was absorbed — exactly how the runner's stream() behaves
            # when a build result releases its sharing trials
            assert got.wait(timeout=60), "first result never came back"
            yield payload(1)

        try:
            records = []
            for rec in ex.submit(gated_source()):
                got.set()
                records.append(rec)
        finally:
            _teardown(ex, procs)
        assert len(records) == 2

    def test_records_are_picklable_after_the_wire(self):
        # whatever crossed the wire must still be a plain record the
        # cache can JSON-serialise and a pool could pickle
        ex, procs = _attached_executor(1)
        try:
            remote = run_sweep(_sharing_spec(seeds=(0,)), executor=ex)
        finally:
            _teardown(ex, procs)
        for tr in remote:
            pickle.dumps(tr.metrics)

    def test_close_is_idempotent_and_rejects_late_submits(self):
        ex = SocketExecutor(min_workers=1)
        ex.close()
        ex.close()
        with pytest.raises(ExecutorError, match="closed"):
            list(ex.submit(iter([])))


class TestShareGraphsWarning:
    def test_warns_when_sharing_cannot_help(self):
        # derived seeds: every trial gets its own graph instance
        spec = SweepSpec(
            "no-share",
            [ScenarioSpec(family="tree", algorithm="cor46",
                          family_params={"n": 24}, num_seeds=2)],
        )
        lines = []
        run_sweep(spec, progress=lines.append)
        assert any("share_graphs=True but no two trials" in ln
                   for ln in lines)

    def test_silent_when_graphs_are_shared(self):
        lines = []
        run_sweep(_sharing_spec(n=24, seeds=(0,)), progress=lines.append)
        assert not any("share_graphs" in ln for ln in lines)

    def test_silent_for_single_trial_and_disabled_sharing(self):
        single = SweepSpec(
            "single",
            [ScenarioSpec(family="tree", algorithm="cor46",
                          family_params={"n": 24}, seeds=[0])],
        )
        lines = []
        run_sweep(single, progress=lines.append)
        assert not any("share_graphs" in ln for ln in lines)
        spec = SweepSpec(
            "no-store",
            [ScenarioSpec(family="tree", algorithm="cor46",
                          family_params={"n": 24}, num_seeds=2)],
        )
        lines = []
        run_sweep(spec, share_graphs=False, progress=lines.append)
        assert not any("share_graphs" in ln for ln in lines)


class TestGraphMultiplicityMethod:
    def test_shared_and_unshared_shapes(self):
        assert _sharing_spec().graph_multiplicity() == 2
        derived = SweepSpec(
            "derived",
            [ScenarioSpec(family="tree", algorithm="cor46",
                          family_params={"n": 24}, num_seeds=3)],
        )
        assert derived.graph_multiplicity() == 1
        assert SweepSpec("empty", []).graph_multiplicity() == 0
