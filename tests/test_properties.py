"""Property-based tests: random graphs through the whole stack.

Hypothesis generates arbitrary-ish bounded-arboricity graphs; every paper
guarantee must hold on all of them, not just the fixture families.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import SynchronousNetwork
from repro.core import (
    arbdefective_coloring,
    compute_hpartition,
    forests_decomposition,
    legal_coloring,
    linial_coloring,
    luby_mis,
    mis_from_coloring,
    partial_orientation,
    sequential_greedy_coloring,
)
from repro.graphs import degeneracy, erdos_renyi, forest_union
from repro.verify import (
    check_arbdefective_coloring,
    check_forests_decomposition,
    check_hpartition,
    check_legal_coloring,
    check_mis,
    check_orientation_acyclic,
    check_orientation_deficit,
    check_orientation_out_degree,
)

# A modest profile: each property runs a full distributed simulation.
PROFILE = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def bounded_arboricity_graph(draw):
    """A random graph with a certified arboricity bound."""
    n = draw(st.integers(min_value=5, max_value=80))
    a = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    density = draw(st.floats(min_value=0.2, max_value=1.0))
    return forest_union(n, a, seed=seed, density=density)


@st.composite
def arbitrary_graph(draw):
    """A random G(n, p) graph; its bound is the measured degeneracy."""
    n = draw(st.integers(min_value=4, max_value=50))
    p = draw(st.floats(min_value=0.02, max_value=0.4))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return erdos_renyi(n, p, seed=seed)


@PROFILE
@given(gen=bounded_arboricity_graph())
def test_hpartition_property(gen):
    net = SynchronousNetwork(gen.graph)
    hp = compute_hpartition(net, gen.arboricity_bound)
    check_hpartition(gen.graph, hp)


@PROFILE
@given(gen=bounded_arboricity_graph())
def test_forests_property(gen):
    net = SynchronousNetwork(gen.graph)
    fd = forests_decomposition(net, gen.arboricity_bound)
    check_forests_decomposition(gen.graph, fd)
    assert fd.num_forests <= int(2.5 * gen.arboricity_bound)


@PROFILE
@given(gen=bounded_arboricity_graph(), t=st.integers(min_value=1, max_value=4))
def test_partial_orientation_property(gen, t):
    net = SynchronousNetwork(gen.graph)
    po = partial_orientation(net, gen.arboricity_bound, t=t)
    check_orientation_acyclic(gen.graph, po)
    check_orientation_out_degree(gen.graph, po, int(2.5 * gen.arboricity_bound))
    check_orientation_deficit(gen.graph, po, gen.arboricity_bound // t)


@PROFILE
@given(
    gen=bounded_arboricity_graph(),
    k=st.integers(min_value=1, max_value=4),
    t=st.integers(min_value=1, max_value=4),
)
def test_arbdefective_property(gen, k, t):
    net = SynchronousNetwork(gen.graph)
    dec = arbdefective_coloring(net, gen.arboricity_bound, k=k, t=t)
    assert dec.num_parts <= k
    check_arbdefective_coloring(
        gen.graph, dec.label, dec.arboricity_bound, dec.params["orientation"]
    )


@PROFILE
@given(gen=bounded_arboricity_graph(), p=st.integers(min_value=2, max_value=6))
def test_legal_coloring_property(gen, p):
    net = SynchronousNetwork(gen.graph)
    result = legal_coloring(net, gen.arboricity_bound, p=p)
    check_legal_coloring(gen.graph, result.colors)


@PROFILE
@given(gen=arbitrary_graph())
def test_linial_property_on_arbitrary_graphs(gen):
    net = SynchronousNetwork(gen.graph)
    result = linial_coloring(net)
    check_legal_coloring(gen.graph, result.colors)


@PROFILE
@given(gen=arbitrary_graph(), seed=st.integers(min_value=0, max_value=100))
def test_luby_mis_property(gen, seed):
    net = SynchronousNetwork(gen.graph)
    mis = luby_mis(net, seed=seed)
    check_mis(gen.graph, mis.members)


@PROFILE
@given(gen=arbitrary_graph())
def test_mis_from_any_legal_coloring(gen):
    net = SynchronousNetwork(gen.graph)
    coloring = sequential_greedy_coloring(gen.graph)
    mis = mis_from_coloring(net, coloring)
    check_mis(gen.graph, mis.members)


@PROFILE
@given(gen=arbitrary_graph())
def test_degeneracy_certificate_property(gen):
    """Generators' degeneracy-based bounds are honest on arbitrary graphs."""
    k, order = degeneracy(gen.graph)
    pos = {v: i for i, v in enumerate(order)}
    for v in gen.graph.vertices:
        later = sum(1 for u in gen.graph.neighbors(v) if pos[u] > pos[v])
        assert later <= k
