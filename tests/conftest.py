"""Shared fixtures: small graphs with known structure and their networks."""

from __future__ import annotations

import pytest

from repro import Graph, SynchronousNetwork
from repro.graphs import (
    forest_union,
    grid,
    path,
    planar_triangulation,
    random_regular,
    random_tree,
    ring,
    star,
)


@pytest.fixture
def triangle() -> Graph:
    return Graph(range(3), [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path5() -> Graph:
    return path(5).graph


@pytest.fixture
def small_tree() -> Graph:
    return random_tree(40, seed=7).graph


@pytest.fixture
def forest_graph():
    """A forest-union instance with certified arboricity 3."""
    return forest_union(n=120, a=3, seed=11)


@pytest.fixture
def forest_net(forest_graph) -> SynchronousNetwork:
    return SynchronousNetwork(forest_graph.graph)


@pytest.fixture
def planar_graph():
    return planar_triangulation(90, seed=5)


@pytest.fixture
def planar_net(planar_graph) -> SynchronousNetwork:
    return SynchronousNetwork(planar_graph.graph)


@pytest.fixture(
    params=[
        ("forest_union", lambda: forest_union(100, 3, seed=2)),
        ("planar", lambda: planar_triangulation(80, seed=3)),
        ("grid", lambda: grid(9, 9)),
        ("ring", lambda: ring(60)),
        ("tree", lambda: random_tree(80, seed=4)),
        ("regular", lambda: random_regular(80, 6, seed=5)),
        ("star", lambda: star(50)),
    ],
    ids=lambda p: p[0],
)
def family_graph(request):
    """One representative of every standard graph family."""
    return request.param[1]()
