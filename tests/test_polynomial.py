"""GF(q) polynomial families: agreement, sizes, selection conditions."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.families import PolynomialFamily, select_family


class TestPolynomialFamily:
    def test_size(self):
        fam = PolynomialFamily(q=5, degree=2)
        assert fam.size == 125
        assert fam.num_pairs == 25
        assert fam.agreement == 2

    def test_modulus_must_be_prime(self):
        with pytest.raises(InvalidParameterError):
            PolynomialFamily(q=6, degree=1)

    def test_negative_degree(self):
        with pytest.raises(InvalidParameterError):
            PolynomialFamily(q=5, degree=-1)

    def test_evaluate_constant_polynomials(self):
        fam = PolynomialFamily(q=7, degree=0)
        for x in range(7):
            for alpha in range(7):
                assert fam.evaluate(x, alpha) == x

    def test_evaluate_linear(self):
        # x = c1*q + c0 encodes c0 + c1*alpha
        fam = PolynomialFamily(q=5, degree=1)
        x = 3 * 5 + 2  # 2 + 3*alpha
        assert fam.evaluate(x, 0) == 2
        assert fam.evaluate(x, 1) == 0  # (2+3) mod 5
        assert fam.evaluate(x, 4) == (2 + 12) % 5

    def test_evaluate_bounds_checked(self):
        fam = PolynomialFamily(q=3, degree=1)
        with pytest.raises(InvalidParameterError):
            fam.evaluate(9, 0)
        with pytest.raises(InvalidParameterError):
            fam.evaluate(0, 3)

    def test_agreement_exhaustive_small(self):
        """Two distinct degree-D polynomials agree on ≤ D points: check all
        pairs over GF(5), degree 2."""
        fam = PolynomialFamily(q=5, degree=2)
        rows = [fam.row(x) for x in range(fam.size)]
        for x, y in itertools.combinations(range(fam.size), 2):
            agreements = sum(1 for a, b in zip(rows[x], rows[y], strict=True) if a == b)
            assert agreements <= 2, (x, y)

    def test_rows_distinct(self):
        fam = PolynomialFamily(q=3, degree=1)
        rows = {fam.row(x) for x in range(fam.size)}
        assert len(rows) == fam.size

    def test_encode_decode_pair(self):
        fam = PolynomialFamily(q=11, degree=1)
        for alpha in (0, 5, 10):
            for beta in (0, 7):
                color = fam.encode_pair(alpha, beta)
                assert 0 <= color < fam.num_pairs
                assert fam.decode_pair(color) == (alpha, beta)


class TestSelectFamily:
    def test_covers_color_space(self):
        fam = select_family(1000, conflict_degree=8, defect_prev=0, defect_new=0)
        assert fam.size >= 1000

    def test_conflict_condition_zero_defect(self):
        """Lemma 5.1 condition with d = d' = 0: q > degree * Δ."""
        for M, delta in [(100, 4), (5000, 10), (10**6, 30)]:
            fam = select_family(M, delta, 0, 0)
            assert fam.q > fam.degree * delta
            assert fam.size >= M

    def test_conflict_condition_with_defect(self):
        for M, delta, d in [(4000, 20, 5), (10**5, 50, 10)]:
            fam = select_family(M, delta, 0, d)
            assert fam.q * (d + 1) > fam.degree * delta
            assert fam.size >= M

    def test_accumulated_defect(self):
        fam = select_family(900, conflict_degree=30, defect_prev=4, defect_new=8)
        # condition: q > degree * (30-4) / (8-4+1)
        assert fam.q > fam.degree * 26 / 5
        assert fam.size >= 900

    def test_defect_budget_cannot_shrink(self):
        with pytest.raises(InvalidParameterError):
            select_family(100, 5, defect_prev=3, defect_new=2)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            select_family(0, 5, 0, 0)
        with pytest.raises(InvalidParameterError):
            select_family(10, -1, 0, 0)

    def test_defect_shrinks_modulus(self):
        """Allowing defect must not make the family larger."""
        strict = select_family(10**5, 40, 0, 0)
        loose = select_family(10**5, 40, 0, 10)
        assert loose.q <= strict.q

    def test_isolated_vertices(self):
        fam = select_family(50, conflict_degree=0, defect_prev=0, defect_new=0)
        assert fam.size >= 50

    @given(
        M=st.integers(min_value=2, max_value=10**6),
        delta=st.integers(min_value=0, max_value=200),
        d=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_selection_sound(self, M, delta, d):
        fam = select_family(M, delta, 0, d)
        assert fam.size >= M
        # strict Lemma 5.1 inequality with d' = 0
        assert fam.q * (d + 1) > fam.degree * delta
