"""Section 5: Arb-Kuhn decomposition and Theorems 5.2 / 5.3."""

import pytest

from repro import SynchronousNetwork
from repro.core import (
    arb_kuhn_decomposition,
    theorem52_fast_coloring,
    theorem53_tradeoff,
)
from repro.errors import InvalidParameterError
from repro.graphs import forest_union
from repro.verify import check_arbdefective_coloring, check_legal_coloring


class TestArbKuhnDecomposition:
    def test_arbdefect_witnessed(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        a = family_graph.arboricity_bound
        d = max(1, a // 2)
        dec = arb_kuhn_decomposition(net, a, defect=d)
        check_arbdefective_coloring(
            family_graph.graph, dec.label, d, dec.params["orientation"]
        )

    def test_color_space_shrinks_with_defect(self):
        g = forest_union(500, 16, seed=41)
        net = SynchronousNetwork(g.graph)
        strict = arb_kuhn_decomposition(net, 16, defect=1)
        loose = arb_kuhn_decomposition(net, 16, defect=8)
        assert loose.params["color_space"] <= strict.params["color_space"]

    def test_fast_rounds(self):
        """O(log n) rounds: H-partition + log* iterations, nothing
        proportional to a or t²."""
        g = forest_union(800, 12, seed=42)
        net = SynchronousNetwork(g.graph)
        dec = arb_kuhn_decomposition(net, 12, defect=3)
        # generous: levels(≈log n) + exchange + log* iterations
        assert dec.rounds <= 40

    def test_zero_defect_legal(self):
        g = forest_union(300, 4, seed=43)
        net = SynchronousNetwork(g.graph)
        dec = arb_kuhn_decomposition(net, 4, defect=0)
        check_legal_coloring(g.graph, dec.label)

    def test_invalid(self, forest_net):
        with pytest.raises(InvalidParameterError):
            arb_kuhn_decomposition(forest_net, 0, defect=1)
        with pytest.raises(InvalidParameterError):
            arb_kuhn_decomposition(forest_net, 3, defect=-1)


class TestTheorem52:
    def test_legal_coloring(self):
        g = forest_union(400, 12, seed=44)
        net = SynchronousNetwork(g.graph)
        result = theorem52_fast_coloring(net, 12, d=4)
        check_legal_coloring(g.graph, result.colors)

    def test_colors_below_quadratic(self):
        """The point of Thm 5.2: strictly below the a² of Linial-style
        colorings once d = ω(1)."""
        a = 16
        g = forest_union(500, a, seed=45)
        net = SynchronousNetwork(g.graph)
        result = theorem52_fast_coloring(net, a, d=8)
        assert result.num_colors < a * a

    def test_params_recorded(self):
        g = forest_union(200, 8, seed=46)
        net = SynchronousNetwork(g.graph)
        result = theorem52_fast_coloring(net, 8, d=2, eta=0.5)
        assert result.params["d"] == 2
        assert result.params["num_classes"] >= 1

    def test_invalid_d(self, forest_net):
        with pytest.raises(InvalidParameterError):
            theorem52_fast_coloring(forest_net, 4, d=0)


class TestTheorem53:
    def test_legal_coloring_sweep_t(self):
        a = 12
        g = forest_union(400, a, seed=47)
        net = SynchronousNetwork(g.graph)
        for t in (1, 2, 4, 12):
            result = theorem53_tradeoff(net, a, t=t)
            check_legal_coloring(g.graph, result.colors)

    def test_rounds_drop_as_t_grows(self):
        """Larger t ⇒ smaller per-class arboricity ⇒ cheaper Legal-Coloring
        per class: the (a/t)^µ·log n tradeoff."""
        a = 16
        g = forest_union(500, a, seed=48)
        net = SynchronousNetwork(g.graph)
        slow = theorem53_tradeoff(net, a, t=1)
        fast = theorem53_tradeoff(net, a, t=8)
        assert fast.rounds <= slow.rounds

    def test_invalid_t(self, forest_net):
        with pytest.raises(InvalidParameterError):
            theorem53_tradeoff(forest_net, 4, t=0)
        with pytest.raises(InvalidParameterError):
            theorem53_tradeoff(forest_net, 4, t=5)
