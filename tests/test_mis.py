"""MIS: the §1.2 deterministic algorithm, the class sweep, Luby's baseline."""


from repro import SynchronousNetwork
from repro.core import (
    greedy_mis_sequential,
    luby_mis,
    mis_arboricity,
    mis_from_coloring,
    sequential_greedy_coloring,
)
from repro.graphs import forest_union, path, ring, star
from repro.verify import check_mis


class TestMISFromColoring:
    def test_valid_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        coloring = sequential_greedy_coloring(family_graph.graph)
        mis = mis_from_coloring(net, coloring)
        check_mis(family_graph.graph, mis.members)

    def test_rounds_bounded_by_colors(self, forest_graph, forest_net):
        coloring = sequential_greedy_coloring(forest_graph.graph)
        mis = mis_from_coloring(forest_net, coloring)
        assert mis.rounds <= coloring.num_colors

    def test_class_zero_all_in(self):
        g = star(20)
        net = SynchronousNetwork(g.graph)
        coloring = sequential_greedy_coloring(g.graph)  # hub=0, leaves=...
        mis = mis_from_coloring(net, coloring)
        check_mis(g.graph, mis.members)

    def test_path_alternation(self):
        g = path(10)
        net = SynchronousNetwork(g.graph)
        coloring = sequential_greedy_coloring(g.graph)
        mis = mis_from_coloring(net, coloring)
        check_mis(g.graph, mis.members)
        assert mis.size >= 4  # an MIS of P10 has 4 or 5 vertices


class TestMISArboricity:
    def test_valid_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        mis = mis_arboricity(net, family_graph.arboricity_bound)
        check_mis(family_graph.graph, mis.members)

    def test_round_decomposition_recorded(self, forest_graph, forest_net):
        mis = mis_arboricity(forest_net, forest_graph.arboricity_bound)
        assert (
            mis.rounds
            == mis.params["coloring_rounds"] + mis.params["sweep_rounds"]
        )

    def test_contains_result(self, forest_graph, forest_net):
        mis = mis_arboricity(forest_net, forest_graph.arboricity_bound)
        member = next(iter(mis.members))
        assert member in mis
        assert mis.size == len(mis.members)


class TestLubyMIS:
    def test_valid_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        mis = luby_mis(net, seed=1)
        check_mis(family_graph.graph, mis.members)

    def test_deterministic_given_seed(self, forest_graph, forest_net):
        m1 = luby_mis(forest_net, seed=5)
        m2 = luby_mis(forest_net, seed=5)
        assert m1.members == m2.members

    def test_different_seeds_usually_differ(self, forest_graph, forest_net):
        m1 = luby_mis(forest_net, seed=1)
        m2 = luby_mis(forest_net, seed=2)
        check_mis(forest_graph.graph, m1.members)
        check_mis(forest_graph.graph, m2.members)

    def test_logarithmic_rounds(self):
        g = forest_union(1000, 6, seed=50)
        net = SynchronousNetwork(g.graph)
        mis = luby_mis(net, seed=3)
        check_mis(g.graph, mis.members)
        # 3 rounds per iteration, O(log n) iterations w.h.p.
        assert mis.rounds <= 3 * 30

    def test_edgeless(self):
        from repro import Graph

        g = Graph.empty(5)
        mis = luby_mis(SynchronousNetwork(g), seed=0)
        assert mis.members == set(range(5))

    def test_ring_maximal(self):
        g = ring(30)
        mis = luby_mis(SynchronousNetwork(g.graph), seed=4)
        check_mis(g.graph, mis.members)
        assert 10 <= mis.size <= 15


class TestGreedySequentialMIS:
    def test_reference(self, family_graph):
        members = greedy_mis_sequential(family_graph.graph)
        check_mis(family_graph.graph, members)

    def test_path(self):
        members = greedy_mis_sequential(path(6).graph)
        assert members == {0, 2, 4}
