"""The iterated recoloring engine: schedules and executions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import SynchronousNetwork
from repro.core.recolor import (
    compute_recolor_schedule,
    run_recoloring,
    schedule_final_colors,
)
from repro.errors import InvalidParameterError
from repro.graphs import forest_union, random_regular, random_tree
from repro.verify import check_legal_coloring, coloring_defect


class TestSchedule:
    def test_strictly_shrinking(self):
        schedule = compute_recolor_schedule(10**6, 16, 0)
        sizes = [*(s.colors_in for s in schedule), schedule[-1].colors_out]
        assert all(a > b for a, b in zip(sizes, sizes[1:], strict=False))

    def test_defect_budget_respected(self):
        schedule = compute_recolor_schedule(10**6, 40, 7)
        assert all(s.defect_new <= 7 for s in schedule)
        # the budget is consumed monotonically
        for prev, cur in zip(schedule, schedule[1:], strict=False):
            assert cur.defect_prev == prev.defect_new

    def test_zero_defect_fixpoint_quadratic(self):
        """Linial's fixpoint: O(Δ²) colors from n colors."""
        for delta in (4, 8, 16, 32):
            schedule = compute_recolor_schedule(10**6, delta, 0)
            final = schedule_final_colors(schedule, 10**6)
            assert final <= 16 * delta * delta

    def test_positive_defect_fixpoint_smaller(self):
        delta = 64
        legal = schedule_final_colors(
            compute_recolor_schedule(10**6, delta, 0), 10**6
        )
        defective = schedule_final_colors(
            compute_recolor_schedule(10**6, delta, delta // 4), 10**6
        )
        assert defective < legal

    def test_log_star_length(self):
        """The number of iterations is tiny even for astronomically many
        initial colors (log* behaviour)."""
        schedule = compute_recolor_schedule(10**30, 10, 0)
        assert len(schedule) <= 8

    def test_already_at_fixpoint(self):
        # fewer initial colors than any step could produce: empty schedule
        schedule = compute_recolor_schedule(9, 16, 0)
        assert schedule == []

    def test_single_color(self):
        assert compute_recolor_schedule(1, 5, 0) == []

    def test_equal_split_policy(self):
        half = compute_recolor_schedule(10**6, 40, 8, budget_policy="half-remaining")
        equal = compute_recolor_schedule(10**6, 40, 8, budget_policy="equal-split")
        assert all(s.defect_new <= 8 for s in equal)
        # both terminate with bounded color spaces
        assert schedule_final_colors(half, 10**6) < 10**6
        assert schedule_final_colors(equal, 10**6) < 10**6

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            compute_recolor_schedule(0, 5, 0)
        with pytest.raises(InvalidParameterError):
            compute_recolor_schedule(10, 5, -1)
        with pytest.raises(InvalidParameterError):
            compute_recolor_schedule(10, 5, 0, budget_policy="bogus")

    @given(
        colors=st.integers(min_value=1, max_value=10**9),
        delta=st.integers(min_value=0, max_value=100),
        defect=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_schedule_sound(self, colors, delta, defect):
        schedule = compute_recolor_schedule(colors, delta, defect)
        m = colors
        d_prev = 0
        for step in schedule:
            assert step.colors_in == m
            assert step.colors_out < m
            assert step.defect_prev == d_prev
            assert d_prev <= step.defect_new <= defect
            # Lemma 5.1's strict inequality
            eff = max(0, delta - step.defect_prev)
            denom = step.defect_new - step.defect_prev + 1
            assert step.family.q * denom > step.family.degree * eff
            assert step.family.size >= m
            m = step.colors_out
            d_prev = step.defect_new


class TestRunRecoloring:
    def test_legal_zero_defect(self):
        g = random_regular(150, 6, seed=1)
        net = SynchronousNetwork(g.graph)
        result = run_recoloring(net, conflict_degree=6, defect_target=0)
        check_legal_coloring(g.graph, result.colors)
        assert result.params["final_color_space"] <= 16 * 36

    def test_defective_bound(self):
        g = random_regular(200, 10, seed=2)
        net = SynchronousNetwork(g.graph)
        result = run_recoloring(net, conflict_degree=10, defect_target=3)
        assert coloring_defect(g.graph, result.colors) <= 3

    def test_rounds_equal_schedule_length(self):
        g = random_tree(300, seed=3)
        net = SynchronousNetwork(g.graph)
        delta = g.graph.max_degree
        schedule = compute_recolor_schedule(300, delta, 0)
        result = run_recoloring(net, conflict_degree=delta, defect_target=0)
        assert result.rounds == len(schedule)

    def test_conflicts_against_parents_only(self):
        """Arbdefective mode: same-colored parents bounded, not neighbours."""
        from repro.core.forests import hpartition_orientation
        from repro.core.hpartition import compute_hpartition

        g = forest_union(200, 4, seed=4)
        net = SynchronousNetwork(g.graph)
        hp = compute_hpartition(net, 4)
        orientation = hpartition_orientation(g.graph, hp)

        def parents_of(v):
            return orientation.parents_of(v, g.graph.neighbors(v))

        result = run_recoloring(
            net,
            conflict_degree=hp.degree_bound,
            defect_target=2,
            conflict_set_of=parents_of,
        )
        for v in g.graph.vertices:
            same_parents = sum(
                1
                for u in parents_of(v)
                if result.colors[u] == result.colors[v]
            )
            assert same_parents <= 2

    def test_custom_initial_colors(self):
        g = random_regular(100, 4, seed=5)
        net = SynchronousNetwork(g.graph)
        # start from a (shifted) legal coloring with large color space
        initial = {v: v * 7 for v in g.graph.vertices}
        result = run_recoloring(
            net,
            conflict_degree=4,
            defect_target=0,
            initial_colors=7 * 100,
            initial_color_of=lambda v: initial[v],
        )
        check_legal_coloring(g.graph, result.colors)

    def test_deterministic(self):
        g = random_regular(120, 5, seed=6)
        net = SynchronousNetwork(g.graph)
        r1 = run_recoloring(net, conflict_degree=5, defect_target=0)
        r2 = run_recoloring(net, conflict_degree=5, defect_target=0)
        assert r1.colors == r2.colors

    def test_on_parts(self):
        g = random_regular(100, 6, seed=7)
        net = SynchronousNetwork(g.graph)
        parts = {v: v % 2 for v in g.graph.vertices}
        result = run_recoloring(
            net, conflict_degree=6, defect_target=0, part_of=parts
        )
        # legality holds within every part (cross-part edges may collide)
        for (u, v) in g.graph.edges:
            if parts[u] == parts[v]:
                assert result.colors[u] != result.colors[v]
