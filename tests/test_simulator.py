"""The LOCAL-model round simulator: semantics, accounting, restrictions."""

import pytest

from repro import Graph, NodeProgram, SynchronousNetwork
from repro.errors import RoundLimitExceeded, SimulationError
from repro.simulator import FunctionProgram, RoundLedger, payload_size
from repro.simulator.message import Envelope


class EchoIdProgram(NodeProgram):
    """Halt immediately with own id; no communication."""

    def on_start(self, ctx):
        ctx.halt(ctx.node)


class SumNeighborsProgram(NodeProgram):
    """Broadcast id, then halt with the sum of received ids."""

    def on_start(self, ctx):
        ctx.broadcast(ctx.node)
        if not ctx.neighbors:
            ctx.halt(0)

    def on_round(self, ctx):
        ctx.halt(sum(ctx.inbox.values()))


class ForeverProgram(NodeProgram):
    """Never halts (for round-limit tests)."""

    def on_start(self, ctx):
        ctx.broadcast("tick")

    def on_round(self, ctx):
        ctx.broadcast("tick")


@pytest.fixture
def net(triangle):
    return SynchronousNetwork(triangle)


class TestRoundSemantics:
    def test_zero_rounds_when_no_communication(self, net):
        result = net.run(EchoIdProgram)
        assert result.rounds == 0
        assert result.outputs == {0: 0, 1: 1, 2: 2}
        assert result.messages == 0

    def test_one_round_exchange(self, net):
        result = net.run(SumNeighborsProgram)
        assert result.rounds == 1
        assert result.outputs == {0: 3, 1: 2, 2: 1}
        assert result.messages == 6

    def test_messages_sent_while_halting_are_delivered(self):
        """A node may announce and halt in the same activation."""

        class Announcer(NodeProgram):
            def on_start(self, ctx):
                ctx.broadcast("bye")
                ctx.halt("sender")

            def on_round(self, ctx):  # pragma: no cover
                raise AssertionError("halted node reactivated")

        class Listener(NodeProgram):
            def on_start(self, ctx):
                pass

            def on_round(self, ctx):
                ctx.halt(sorted(ctx.inbox.values()))

        g = Graph(range(2), [(0, 1)])
        net2 = SynchronousNetwork(g)
        instances = iter([Announcer(), Listener()])
        result = net2.run(lambda: next(instances))
        # node 0 (created first) is the announcer
        assert result.outputs[1] == ["bye"]

    def test_messages_to_halted_nodes_dropped(self):
        class FirstHalts(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.halt("early")
                else:
                    ctx.broadcast("late")

            def on_round(self, ctx):
                ctx.halt("done")

        g = Graph(range(2), [(0, 1)])
        result = SynchronousNetwork(g).run(FirstHalts)
        assert result.outputs[0] == "early"
        assert result.outputs[1] == "done"

    def test_round_limit(self, net):
        with pytest.raises(RoundLimitExceeded) as exc:
            net.run(ForeverProgram, round_limit=5)
        assert exc.value.limit == 5
        assert exc.value.still_running == 3


class TestVisibility:
    def test_send_to_non_neighbor_rejected(self):
        class BadSender(NodeProgram):
            def on_start(self, ctx):
                ctx.send(99, "hi")

        g = Graph(range(2), [(0, 1)])
        with pytest.raises(SimulationError):
            SynchronousNetwork(g).run(BadSender)

    def test_participants_restriction(self):
        g = Graph(range(4), [(0, 1), (1, 2), (2, 3)])
        result = SynchronousNetwork(g).run(
            SumNeighborsProgram, participants=[0, 1, 2]
        )
        assert set(result.outputs) == {0, 1, 2}
        # node 2 no longer sees node 3
        assert result.outputs[2] == 1

    def test_unknown_participant_rejected(self, net):
        with pytest.raises(SimulationError):
            net.run(EchoIdProgram, participants=[7])

    def test_part_of_isolates_parts(self):
        g = Graph(range(4), [(0, 1), (1, 2), (2, 3)])
        parts = {0: "a", 1: "a", 2: "b", 3: "b"}
        result = SynchronousNetwork(g).run(SumNeighborsProgram, part_of=parts)
        # 1 only sees 0; 2 only sees 3
        assert result.outputs[1] == 0
        assert result.outputs[2] == 3

    def test_degree_reflects_visibility(self):
        seen = {}

        class DegreeProbe(NodeProgram):
            def on_start(self, ctx):
                seen[ctx.node] = ctx.degree
                ctx.halt()

        g = Graph(range(3), [(0, 1), (1, 2)])
        SynchronousNetwork(g).run(DegreeProbe, part_of={0: 0, 1: 0, 2: 1})
        assert seen == {0: 1, 1: 1, 2: 0}


class TestGlobals:
    def test_n_injected(self):
        captured = {}

        class Probe(NodeProgram):
            def on_start(self, ctx):
                captured[ctx.node] = ctx.globals["n"]
                ctx.halt()

        g = Graph(range(5), [])
        SynchronousNetwork(g).run(Probe)
        assert set(captured.values()) == {5}

    def test_custom_globals(self):
        captured = {}

        class Probe(NodeProgram):
            def on_start(self, ctx):
                captured[ctx.node] = ctx.globals["a"]
                ctx.halt()

        g = Graph(range(2), [])
        SynchronousNetwork(g).run(Probe, global_params={"a": 42})
        assert set(captured.values()) == {42}


class TestAccounting:
    def test_byte_counting(self, net):
        result = net.run(SumNeighborsProgram, count_bytes=True)
        assert result.message_bytes > 0
        assert result.max_message_bytes >= 1

    def test_merged_with(self, net):
        r1 = net.run(SumNeighborsProgram)
        r2 = net.run(EchoIdProgram)
        merged = r1.merged_with(r2)
        assert merged.rounds == r1.rounds + r2.rounds
        assert merged.messages == r1.messages
        assert merged.outputs == r2.outputs  # second run overwrites

    def test_payload_size(self):
        assert payload_size(None) == 0
        assert payload_size(True) == 1
        assert payload_size(255) == 1
        assert payload_size(256) == 2
        assert payload_size((1, 2)) == 3
        assert payload_size("abc") == 3
        assert payload_size({1: 2}) >= 2

    def test_envelope(self):
        e = Envelope(sender=1, dest=2, payload="x")
        assert e.sender == 1 and e.dest == 2


class TestLedger:
    def test_totals_and_breakdown(self):
        ledger = RoundLedger()
        ledger.add("phase-a", 5, messages=10)
        ledger.add("phase-b", 3)
        ledger.add("phase-a", 2)
        assert ledger.total_rounds == 10
        assert ledger.total_messages == 10
        assert ledger.breakdown() == {"phase-a": 7, "phase-b": 3}
        assert "total rounds: 10" in str(ledger)

    def test_add_run(self, net):
        ledger = RoundLedger()
        ledger.add_run("exchange", net.run(SumNeighborsProgram))
        assert ledger.total_rounds == 1

    def test_add_ledger(self):
        inner = RoundLedger()
        inner.add("x", 4)
        outer = RoundLedger()
        outer.add_ledger(inner, prefix="sub/")
        assert outer.breakdown() == {"sub/x": 4}


class TestEventScheduler:
    """Semantics of quiescence declarations under the event fast path."""

    def test_sleeper_woken_by_message(self):
        """An idle node is activated exactly when its mail arrives."""

        class Sleeper(NodeProgram):
            def on_start(self, ctx):
                ctx.idle_until_message()

            def on_round(self, ctx):
                assert ctx.inbox, "idle node activated without messages"
                ctx.halt((ctx.round_number, dict(ctx.inbox)))

        class SlowSender(NodeProgram):
            def on_start(self, ctx):
                pass

            def on_round(self, ctx):
                if ctx.round_number == 3:
                    ctx.broadcast("now")
                    ctx.halt("sent")

        g = Graph(range(2), [(0, 1)])
        instances = iter([Sleeper(), SlowSender()])
        result = SynchronousNetwork(g, scheduler="event").run(
            lambda: next(instances)
        )
        assert result.outputs[0] == (4, {1: "now"})
        assert result.rounds == 4

    def test_wake_at_fast_forwards_empty_rounds(self):
        """With every node asleep, the scheduler jumps to the wakeup round;
        the round count still matches the dense reference."""

        class Napper(NodeProgram):
            def on_start(self, ctx):
                ctx.wake_at(500)
                ctx.idle_until_message()

            def on_round(self, ctx):
                # honours the contract: a no-op until the declared wakeup
                if ctx.round_number >= 500:
                    ctx.halt(ctx.round_number)
                else:
                    ctx.wake_at(500)
                    ctx.idle_until_message()

        g = Graph(range(3), [])
        for mode in ("event", "dense"):
            result = SynchronousNetwork(g, scheduler=mode).run(Napper)
            assert result.rounds == 500
            assert set(result.outputs.values()) == {500}

    def test_declarations_are_per_activation(self):
        """A woken node that does not re-declare idleness runs every round."""
        activations = []

        class OneNap(NodeProgram):
            def on_start(self, ctx):
                ctx.wake_in(5)
                ctx.idle_until_message()

            def on_round(self, ctx):
                activations.append(ctx.round_number)
                if ctx.round_number >= 8:
                    ctx.halt()

        g = Graph(range(1), [])
        SynchronousNetwork(g, scheduler="event").run(OneNap)
        # asleep for rounds 1-4, then awake every round until halting
        assert activations == [5, 6, 7, 8]

    def test_quiescent_deadlock_raises_eagerly(self):
        """All nodes asleep, no mail, no wakeup: the dense engine could only
        exit at the round limit, so the event engine raises the same error
        immediately."""

        class ForeverAsleep(NodeProgram):
            def on_start(self, ctx):
                ctx.idle_until_message()

            def on_round(self, ctx):
                ctx.idle_until_message()

        g = Graph(range(4), [])
        with pytest.raises(RoundLimitExceeded) as exc:
            SynchronousNetwork(g, scheduler="event").run(
                ForeverAsleep, round_limit=99
            )
        assert exc.value.limit == 99
        assert exc.value.still_running == 4

    def test_wake_beyond_round_limit_raises(self):
        class Oversleeper(NodeProgram):
            def on_start(self, ctx):
                ctx.wake_at(1000)
                ctx.idle_until_message()

            def on_round(self, ctx):  # pragma: no cover
                ctx.halt()

        g = Graph(range(2), [])
        with pytest.raises(RoundLimitExceeded):
            SynchronousNetwork(g, scheduler="event").run(
                Oversleeper, round_limit=10
            )

    def test_event_is_default_and_matches_dense_for_plain_programs(self):
        g = Graph(range(4), [(0, 1), (1, 2), (2, 3)])
        assert SynchronousNetwork(g).scheduler == "event"
        dense = SynchronousNetwork(g, scheduler="dense").run(
            SumNeighborsProgram, count_bytes=True
        )
        event = SynchronousNetwork(g, scheduler="event").run(
            SumNeighborsProgram, count_bytes=True
        )
        assert dense == event


class TestFunctionProgram:
    def test_start_only(self):
        g = Graph(range(2), [])
        result = SynchronousNetwork(g).run(
            lambda: FunctionProgram(start=lambda ctx: ctx.halt(ctx.node * 10))
        )
        assert result.outputs == {0: 0, 1: 10}

    def test_round_callback(self):
        g = Graph(range(2), [(0, 1)])

        def start(ctx):
            ctx.broadcast("ping")

        def round_(ctx):
            ctx.halt(list(ctx.inbox.values()))

        result = SynchronousNetwork(g).run(
            lambda: FunctionProgram(start=start, round=round_)
        )
        assert result.outputs == {0: ["ping"], 1: ["ping"]}
