"""Property tests for the CSR graph core (PR 3).

The CSR rewrite must be invisible through the public id-based API: these
tests pin it against an in-test reference implementation of the legacy
dict-of-sets build, against networkx round-trips, and across the numpy /
pure-Python construction paths.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Graph
from repro.errors import InvalidParameterError
from repro.graphs import (
    erdos_renyi,
    forest_union,
    hypercube,
    planar_triangulation,
    preferential_attachment,
    random_geometric,
    random_regular,
    random_tree,
    ring,
    star,
)
from repro.graphs import graph as graph_mod
from repro.types import canonical_edge


def reference_build(vertices, edges):
    """The legacy dict-of-sorted-tuples build, as a reference oracle."""
    vset = set(vertices)
    adjacency = {v: set() for v in vset}
    edge_set = set()
    for u, v in edges:
        e = canonical_edge(u, v)
        if e in edge_set:
            continue
        edge_set.add(e)
        adjacency[u].add(v)
        adjacency[v].add(u)
    return (
        tuple(sorted(vset)),
        {v: tuple(sorted(nbrs)) for v, nbrs in adjacency.items()},
        tuple(sorted(edge_set)),
    )


def assert_matches_reference(g: Graph, vertices, edges):
    verts, adj, es = reference_build(vertices, edges)
    assert g.vertices == verts
    assert g.edges == es
    assert g.n == len(verts)
    assert g.m == len(es)
    for v in verts:
        assert g.neighbors(v) == adj[v]
        assert g.degree(v) == len(adj[v])
    assert g.max_degree == max((len(a) for a in adj.values()), default=0)


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    if n < 2:
        return n, []
    m = draw(st.integers(min_value=0, max_value=3 * n))
    edges = [
        (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
        for _ in range(m)
    ]
    edges = [(u, v) for (u, v) in edges if u != v]
    return n, edges


class TestAgainstReference:
    @settings(max_examples=120, deadline=None)
    @given(edge_lists())
    def test_random_edge_lists(self, case):
        n, edges = case
        assert_matches_reference(Graph(range(n), edges), range(n), edges)
        assert_matches_reference(Graph.from_edge_count(n, edges), range(n), edges)

    @settings(max_examples=60, deadline=None)
    @given(edge_lists(), st.integers(1, 1 << 30))
    def test_noncontiguous_relabeling(self, case, offset):
        n, edges = case
        vmap = {i: 3 * i + offset for i in range(n)}
        verts = [vmap[i] for i in range(n)]
        redges = [(vmap[u], vmap[v]) for (u, v) in edges]
        assert_matches_reference(Graph(verts, redges), verts, redges)

    @pytest.mark.parametrize(
        "gen",
        [
            lambda: forest_union(60, 3, seed=1).graph,
            lambda: forest_union(60, 3, seed=2, density=0.4).graph,
            lambda: planar_triangulation(50, seed=3).graph,
            lambda: random_regular(40, 5, seed=4).graph,
            lambda: random_tree(80, seed=5).graph,
            lambda: erdos_renyi(30, 0.2, seed=6).graph,
            lambda: random_geometric(60, 0.25, seed=7).graph,
            lambda: preferential_attachment(50, 3, seed=8).graph,
            lambda: hypercube(4).graph,
            lambda: ring(17).graph,
            lambda: star(9).graph,
        ],
    )
    def test_generator_families(self, gen):
        g = gen()
        assert_matches_reference(g, g.vertices, g.edges)


class TestBuildPaths:
    @settings(max_examples=60, deadline=None)
    @given(edge_lists())
    def test_pure_equals_numpy(self, case):
        n, edges = case
        fast = Graph.from_edge_count(n, edges)
        saved = graph_mod._np
        try:
            graph_mod._np = None
            pure = Graph.from_edge_count(n, edges)
        finally:
            graph_mod._np = saved
        assert fast == pure
        assert fast.duplicate_edges_dropped == pure.duplicate_edges_dropped
        assert list(fast._offsets) == list(pure._offsets)
        assert list(fast._nbr) == list(pure._nbr)

    def test_from_edge_count_matches_init(self):
        edges = [(0, 1), (3, 2), (1, 3), (0, 1), (1, 0)]
        assert Graph.from_edge_count(4, edges) == Graph(range(4), edges)

    def test_from_edge_count_rejects_bad_edges(self):
        with pytest.raises(InvalidParameterError):
            Graph.from_edge_count(3, [(0, 3)])
        with pytest.raises(InvalidParameterError):
            Graph.from_edge_count(3, [(-1, 0)])
        with pytest.raises(InvalidParameterError):
            Graph.from_edge_count(3, [(1, 1)])
        with pytest.raises(InvalidParameterError):
            Graph.from_edge_count(-1, [])

    def test_float_endpoints_rejected(self):
        with pytest.raises(InvalidParameterError):
            Graph.from_edge_count(4, [(0.5, 1)])


class TestDuplicateAccounting:
    def test_counts_exact_duplicates(self):
        g = Graph(range(3), [(0, 1), (0, 1), (1, 2)])
        assert g.m == 2
        assert g.duplicate_edges_dropped == 1

    def test_counts_reversed_duplicates(self):
        g = Graph.from_edge_count(3, [(0, 1), (1, 0), (2, 1), (1, 2), (1, 2)])
        assert g.m == 2
        assert g.duplicate_edges_dropped == 3

    def test_no_duplicates(self):
        assert star(8).graph.duplicate_edges_dropped == 0

    def test_forest_union_oversampled_density(self):
        base = forest_union(40, 3, seed=9, density=1.0)
        over = forest_union(40, 3, seed=9, density=1.5)
        # oversampling emits reversed duplicates: same simple graph, with
        # the collisions counted rather than silently swallowed
        assert over.graph == base.graph
        assert over.graph.duplicate_edges_dropped > base.graph.duplicate_edges_dropped
        assert over.graph.duplicate_edges_dropped >= 39  # ≥ keep - (n-1) per forest

    def test_forest_union_density_validation(self):
        with pytest.raises(InvalidParameterError):
            forest_union(10, 2, density=0.0)
        with pytest.raises(InvalidParameterError):
            forest_union(10, 2, density=2.5)


class TestNetworkxRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(edge_lists())
    def test_round_trip(self, case):
        nx = pytest.importorskip("networkx")
        n, edges = case
        g = Graph(range(n), edges)
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == g.n
        assert nxg.number_of_edges() == g.m
        back = Graph.from_networkx(nxg)
        assert back == g

    def test_round_trip_noncontiguous(self):
        pytest.importorskip("networkx")
        g = Graph([5, 9, 12, 40], [(5, 12), (9, 40)])
        assert Graph.from_networkx(g.to_networkx()) == g


class TestInducedSubgraph:
    @settings(max_examples=60, deadline=None)
    @given(edge_lists(), st.data())
    def test_id_preservation(self, case, data):
        n, edges = case
        g = Graph(range(n), edges)
        keep = data.draw(st.sets(st.integers(0, max(0, n - 1)), max_size=n))
        if not all(g.has_vertex(v) for v in keep):
            return
        sub = g.induced_subgraph(keep)
        assert sub.vertices == tuple(sorted(keep))
        expected = [(u, v) for (u, v) in g.edges if u in keep and v in keep]
        assert sub.edges == tuple(expected)
        for v in keep:
            assert sub.neighbors(v) == tuple(
                u for u in g.neighbors(v) if u in keep
            )

    def test_matches_pure_fallback(self, monkeypatch):
        g = forest_union(50, 3, seed=11).graph
        keep = [v for v in g.vertices if v % 3 != 0]
        fast = g.induced_subgraph(keep)
        monkeypatch.setattr(graph_mod, "_np", None)
        slow = g.induced_subgraph(keep)
        assert fast == slow
        assert fast.vertices == slow.vertices
        assert all(fast.neighbors(v) == slow.neighbors(v) for v in keep)

    def test_empty_selection(self):
        g = ring(5).graph
        sub = g.induced_subgraph([])
        assert sub.n == 0 and sub.m == 0


class TestEdgeCases:
    def test_empty_graph(self):
        g = Graph([], [])
        assert g.n == 0 and g.m == 0 and g.max_degree == 0
        assert g.vertices == () and g.edges == ()

    def test_singleton(self):
        g = Graph([0], [])
        assert g.n == 1 and g.degree(0) == 0 and g.neighbors(0) == ()

    def test_singleton_noncontiguous(self):
        g = Graph([7], [])
        assert g.vertices == (7,) and g.neighbors(7) == ()
        assert not g.ids_contiguous

    def test_star_shape(self):
        g = star(6).graph
        assert g.degree(0) == 5
        assert g.neighbors(0) == (1, 2, 3, 4, 5)
        assert all(g.neighbors(i) == (0,) for i in range(1, 6))


class TestIndexAPI:
    def test_contiguous_identity(self):
        g = forest_union(30, 2, seed=13).graph
        assert g.ids_contiguous
        for v in g.vertices:
            assert g.index_of(v) == v
            assert g.vertex_at(v) == v
            assert g.degree_index(v) == g.degree(v)
            assert tuple(g.neighbors_index(v)) == g.neighbors(v)

    def test_noncontiguous_translation(self):
        g = Graph([10, 20, 30], [(10, 30), (20, 30)])
        assert not g.ids_contiguous
        for i, v in enumerate(g.vertices):
            assert g.index_of(v) == i
            assert g.vertex_at(i) == v
            assert g.degree_index(i) == g.degree(v)
            assert tuple(g.vertex_at(j) for j in g.neighbors_index(i)) == g.neighbors(v)

    def test_csr_views_are_readonly(self):
        g = ring(6).graph
        off, nbr = g.csr()
        assert off[-1] == len(nbr) == 2 * g.m
        with pytest.raises(TypeError):
            nbr[0] = 99

    def test_pickle_round_trip(self):
        for g in (forest_union(25, 2, seed=17).graph, Graph([4, 8], [(4, 8)])):
            back = pickle.loads(pickle.dumps(g))
            assert back == g
            assert back.neighbors(g.vertices[0]) == g.neighbors(g.vertices[0])
            assert back.duplicate_edges_dropped == g.duplicate_edges_dropped
