"""Baselines: BE08 coloring, Luby coloring, sequential greedy."""


from repro import SynchronousNetwork
from repro.core import (
    be08_coloring,
    luby_coloring,
    sequential_greedy_coloring,
)
from repro.graphs import forest_union, random_regular, random_tree
from repro.verify import check_legal_coloring


class TestBE08:
    def test_legal_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        a = family_graph.arboricity_bound
        result = be08_coloring(net, a)
        check_legal_coloring(family_graph.graph, result.colors)

    def test_palette_bound(self):
        g = forest_union(300, 6, seed=51)
        net = SynchronousNetwork(g.graph)
        result = be08_coloring(net, 6)
        assert result.num_colors <= int(2.5 * 6) + 1

    def test_rounds_grow_with_a(self):
        """O(a log n): doubling a at fixed n increases the greedy phase."""
        n = 400
        r = {}
        for a in (4, 16):
            g = forest_union(n, a, seed=a + 52)
            net = SynchronousNetwork(g.graph)
            r[a] = be08_coloring(net, a).rounds
        assert r[16] > r[4]

    def test_phase_accounting(self):
        g = forest_union(200, 4, seed=53)
        net = SynchronousNetwork(g.graph)
        result = be08_coloring(net, 4)
        assert result.rounds == (
            result.params["orientation_rounds"] + result.params["greedy_rounds"]
        )


class TestLubyColoring:
    def test_legal_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        result = luby_coloring(net, seed=1)
        check_legal_coloring(family_graph.graph, result.colors)
        assert result.num_colors <= family_graph.graph.max_degree + 1

    def test_deterministic_given_seed(self):
        g = random_regular(100, 5, seed=54)
        net = SynchronousNetwork(g.graph)
        assert luby_coloring(net, seed=3).colors == luby_coloring(net, seed=3).colors

    def test_fast(self):
        g = forest_union(800, 6, seed=55)
        net = SynchronousNetwork(g.graph)
        result = luby_coloring(net, seed=2)
        check_legal_coloring(g.graph, result.colors)
        assert result.rounds <= 30  # O(log n) w.h.p.

    def test_explicit_degree_bound(self):
        g = random_tree(100, seed=56)
        net = SynchronousNetwork(g.graph)
        result = luby_coloring(net, max_degree=g.graph.max_degree + 5, seed=1)
        check_legal_coloring(g.graph, result.colors)


class TestSequentialGreedy:
    def test_legal_and_bounded(self, family_graph):
        result = sequential_greedy_coloring(family_graph.graph)
        check_legal_coloring(family_graph.graph, result.colors)
        assert result.num_colors <= family_graph.graph.max_degree + 1

    def test_deterministic(self, forest_graph):
        a = sequential_greedy_coloring(forest_graph.graph)
        b = sequential_greedy_coloring(forest_graph.graph)
        assert a.colors == b.colors
