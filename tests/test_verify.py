"""The verification layer itself: every checker must catch violations."""

import pytest

from repro.errors import VerificationError
from repro.graphs import complete_graph, path, ring
from repro.types import ForestsDecomposition, HPartition, Orientation
from repro.verify import (
    check_arbdefective_coloring,
    check_defective_coloring,
    check_forests_decomposition,
    check_hpartition,
    check_legal_coloring,
    check_mis,
    check_orientation_acyclic,
    check_orientation_complete,
    check_orientation_deficit,
    check_orientation_edges_exist,
    check_orientation_out_degree,
    check_palette,
    check_partition_covers,
    color_class_subgraphs,
    coloring_arbdefect_bounds,
    coloring_defect,
    is_legal_coloring,
    orientation_length,
)


@pytest.fixture
def p4():
    return path(4).graph


class TestColoringCheckers:
    def test_legal_accepts(self, p4):
        check_legal_coloring(p4, {0: 0, 1: 1, 2: 0, 3: 1})

    def test_legal_rejects_monochromatic_edge(self, p4):
        with pytest.raises(VerificationError, match="monochromatic"):
            check_legal_coloring(p4, {0: 0, 1: 0, 2: 1, 3: 0})

    def test_legal_rejects_uncolored(self, p4):
        with pytest.raises(VerificationError, match="uncolored"):
            check_legal_coloring(p4, {0: 0, 1: 1, 2: 0})

    def test_is_legal(self, p4):
        assert is_legal_coloring(p4, {0: 0, 1: 1, 2: 0, 3: 1})
        assert not is_legal_coloring(p4, {0: 0, 1: 0, 2: 0, 3: 0})

    def test_defect_measured(self, p4):
        assert coloring_defect(p4, {0: 0, 1: 0, 2: 0, 3: 1}) == 2  # vertex 1

    def test_defective_checker(self, p4):
        check_defective_coloring(p4, {0: 0, 1: 0, 2: 1, 3: 1}, 1)
        with pytest.raises(VerificationError):
            check_defective_coloring(p4, {0: 0, 1: 0, 2: 0, 3: 1}, 1)

    def test_color_classes(self, p4):
        subs = color_class_subgraphs(p4, {0: 0, 1: 1, 2: 0, 3: 1})
        assert subs[0].vertices == (0, 2)
        assert subs[0].m == 0

    def test_arbdefect_bounds_detect_cycle(self):
        g = ring(6).graph
        mono = {v: 0 for v in g.vertices}
        lower, upper = coloring_arbdefect_bounds(g, mono)
        assert lower >= 2  # the whole cycle needs 2 forests
        assert upper >= lower

    def test_arbdefective_without_witness_rejects(self):
        g = complete_graph(6).graph
        mono = {v: 0 for v in g.vertices}
        with pytest.raises(VerificationError):
            check_arbdefective_coloring(g, mono, 1)

    def test_arbdefective_with_witness(self, p4):
        orientation = Orientation(direction={(0, 1): 1, (1, 2): 2, (2, 3): 3})
        check_arbdefective_coloring(p4, {v: 0 for v in p4.vertices}, 1, orientation)
        with pytest.raises(VerificationError):
            check_arbdefective_coloring(
                p4, {v: 0 for v in p4.vertices}, 0, orientation
            )

    def test_palette(self):
        check_palette({0: 1, 1: 2}, 2)
        with pytest.raises(VerificationError):
            check_palette({0: 1, 1: 2, 2: 3}, 2)


class TestOrientationCheckers:
    def test_acyclic_rejects_cycle(self):
        g = ring(3).graph
        cyclic = Orientation(direction={(0, 1): 1, (1, 2): 2, (0, 2): 0})
        with pytest.raises(VerificationError, match="cycle"):
            check_orientation_acyclic(g, cyclic)

    def test_complete_rejects_missing(self, p4):
        partial = Orientation(direction={(0, 1): 1})
        with pytest.raises(VerificationError, match="unoriented"):
            check_orientation_complete(p4, partial)

    def test_edges_exist_rejects_phantom(self, p4):
        phantom = Orientation(direction={(0, 3): 3})
        with pytest.raises(VerificationError):
            check_orientation_edges_exist(p4, phantom)

    def test_out_degree_bound(self, p4):
        fan = Orientation(direction={(0, 1): 1, (1, 2): 2, (2, 3): 3})
        check_orientation_out_degree(p4, fan, 1)
        star_out = Orientation(direction={(0, 1): 0, (1, 2): 2, (2, 3): 2})
        # vertex 1 points to 0? no: (0,1)->0 means tail 1; (1,2)->2 tail 1
        with pytest.raises(VerificationError):
            check_orientation_out_degree(p4, star_out, 1)

    def test_deficit_bound(self, p4):
        partial = Orientation(direction={(0, 1): 1})
        with pytest.raises(VerificationError):
            check_orientation_deficit(p4, partial, 0)
        check_orientation_deficit(p4, partial, 2)

    def test_length_on_directed_path(self, p4):
        chain = Orientation(direction={(0, 1): 1, (1, 2): 2, (2, 3): 3})
        assert orientation_length(p4, chain) == 3
        alternating = Orientation(direction={(0, 1): 1, (1, 2): 1, (2, 3): 3})
        assert orientation_length(p4, alternating) == 1


class TestDecompositionCheckers:
    def test_hpartition_rejects_overfull_level(self):
        g = complete_graph(5).graph
        hp = HPartition(index={v: 1 for v in g.vertices}, degree_bound=2)
        with pytest.raises(VerificationError):
            check_hpartition(g, hp)

    def test_hpartition_rejects_missing_vertex(self, p4):
        hp = HPartition(index={0: 1, 1: 1, 2: 1}, degree_bound=5)
        with pytest.raises(VerificationError, match="H-index"):
            check_hpartition(p4, hp)

    def test_forests_rejects_unlabeled_edge(self, p4):
        fd = ForestsDecomposition(
            forest_of={(0, 1): 0},
            orientation=Orientation(direction={(0, 1): 1}),
            num_forests=1,
        )
        with pytest.raises(VerificationError, match="no forest label"):
            check_forests_decomposition(p4, fd)

    def test_forests_rejects_two_parents(self):
        g = path(3).graph  # 0-1-2
        fd = ForestsDecomposition(
            forest_of={(0, 1): 0, (1, 2): 0},
            orientation=Orientation(direction={(0, 1): 0, (1, 2): 2}),
            num_forests=1,
        )
        # vertex 1 points to both 0 and 2 in forest 0
        with pytest.raises(VerificationError, match="two parents"):
            check_forests_decomposition(g, fd)

    def test_forests_rejects_cycle(self):
        g = ring(3).graph
        fd = ForestsDecomposition(
            forest_of={(0, 1): 0, (1, 2): 0, (0, 2): 0},
            orientation=Orientation(
                direction={(0, 1): 1, (1, 2): 2, (0, 2): 0}
            ),
            num_forests=1,
        )
        with pytest.raises(VerificationError, match="cycle"):
            check_forests_decomposition(g, fd)

    def test_partition_covers(self, p4):
        check_partition_covers(p4, {v: 0 for v in p4.vertices})
        with pytest.raises(VerificationError):
            check_partition_covers(p4, {0: 0})


class TestMISChecker:
    def test_rejects_adjacent_members(self, p4):
        with pytest.raises(VerificationError, match="both endpoints"):
            check_mis(p4, {0, 1})

    def test_rejects_non_maximal(self, p4):
        with pytest.raises(VerificationError, match="maximal"):
            check_mis(p4, {0})

    def test_accepts(self, p4):
        check_mis(p4, {0, 2})
        check_mis(p4, {1, 3})
