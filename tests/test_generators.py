"""Generators: shapes, certified arboricity bounds, determinism."""

import pytest

from repro.errors import InvalidParameterError
from repro.graphs import (
    binary_tree,
    complete_graph,
    disjoint_union,
    erdos_renyi,
    forest_union,
    grid,
    hypercube,
    low_arboricity_high_degree,
    nash_williams_lower_bound,
    path,
    planar_triangulation,
    preferential_attachment,
    random_geometric,
    random_regular,
    random_tree,
    ring,
    standard_families,
    star,
    degeneracy,
    is_forest,
)


def certified_bound_holds(gen):
    """The certified arboricity bound must dominate the degeneracy-based
    upper bound... no — it must be a true upper bound, so it must be at
    least the Nash–Williams lower bound and at least the pseudoarboricity."""
    lb = nash_williams_lower_bound(gen.graph)
    assert gen.arboricity_bound >= lb, (
        f"{gen.name}: certified bound {gen.arboricity_bound} below "
        f"Nash-Williams witness {lb}"
    )


class TestDeterministicGraphs:
    def test_path(self):
        g = path(6)
        assert g.graph.m == 5
        assert is_forest(g.graph)
        assert g.arboricity_bound == 1

    def test_path_single_vertex(self):
        assert path(1).graph.n == 1

    def test_path_invalid(self):
        with pytest.raises(InvalidParameterError):
            path(0)

    def test_ring(self):
        g = ring(8)
        assert g.graph.m == 8
        assert all(g.graph.degree(v) == 2 for v in g.graph.vertices)
        certified_bound_holds(g)

    def test_ring_invalid(self):
        with pytest.raises(InvalidParameterError):
            ring(2)

    def test_star(self):
        g = star(10)
        assert g.graph.degree(0) == 9
        assert g.arboricity_bound == 1
        assert is_forest(g.graph)

    def test_complete_graph_nash_williams(self):
        g = complete_graph(7)
        assert g.graph.m == 21
        assert g.arboricity_bound == 4  # ceil(7/2)
        certified_bound_holds(g)

    def test_grid(self):
        g = grid(4, 5)
        assert g.graph.n == 20
        assert g.graph.m == 4 * 4 + 3 * 5
        certified_bound_holds(g)

    def test_grid_degenerate_dimensions(self):
        assert grid(1, 7).arboricity_bound == 1

    def test_hypercube(self):
        g = hypercube(4)
        assert g.graph.n == 16
        assert all(g.graph.degree(v) == 4 for v in g.graph.vertices)
        certified_bound_holds(g)

    def test_binary_tree(self):
        g = binary_tree(4)
        assert g.graph.n == 31
        assert is_forest(g.graph)


class TestRandomGraphs:
    def test_random_tree_is_tree(self):
        g = random_tree(50, seed=3)
        assert g.graph.m == 49
        assert is_forest(g.graph)

    def test_random_tree_deterministic(self):
        assert random_tree(30, seed=9).graph == random_tree(30, seed=9).graph
        assert random_tree(30, seed=9).graph != random_tree(30, seed=10).graph

    def test_forest_union_bound(self):
        g = forest_union(150, 5, seed=1)
        certified_bound_holds(g)
        # dense instance: Nash-Williams witness should be close to a
        assert nash_williams_lower_bound(g.graph) >= 3

    def test_forest_union_density(self):
        sparse = forest_union(100, 4, seed=2, density=0.3)
        dense = forest_union(100, 4, seed=2, density=1.0)
        assert sparse.graph.m < dense.graph.m

    def test_forest_union_invalid(self):
        with pytest.raises(InvalidParameterError):
            forest_union(1, 2)
        with pytest.raises(InvalidParameterError):
            forest_union(10, 0)
        with pytest.raises(InvalidParameterError):
            forest_union(10, 2, density=0.0)

    def test_random_regular_degrees(self):
        g = random_regular(60, 4, seed=4)
        assert all(g.graph.degree(v) <= 4 for v in g.graph.vertices)
        certified_bound_holds(g)

    def test_random_regular_invalid(self):
        with pytest.raises(InvalidParameterError):
            random_regular(4, 5)

    def test_erdos_renyi_bound_is_degeneracy(self):
        g = erdos_renyi(60, 0.1, seed=6)
        k, _ = degeneracy(g.graph)
        assert g.arboricity_bound == max(1, k)
        certified_bound_holds(g)

    def test_erdos_renyi_extremes(self):
        assert erdos_renyi(20, 0.0, seed=1).graph.m == 0
        assert erdos_renyi(10, 1.0, seed=1).graph.m == 45

    def test_random_geometric_edges_match_distances(self):
        import math
        import random as _random

        n, radius, seed = 70, 0.2, 3
        g = random_geometric(n, radius, seed=seed)
        # regenerate the point set (same RNG discipline as the generator)
        rng = _random.Random(seed)
        points = [(rng.random(), rng.random()) for _ in range(n)]
        expected = {
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if math.dist(points[u], points[v]) <= radius
        }
        assert {tuple(sorted(e)) for e in g.graph.edges} == expected

    def test_random_geometric_bound_is_degeneracy(self):
        g = random_geometric(120, 0.15, seed=4)
        k, _ = degeneracy(g.graph)
        assert g.arboricity_bound == max(1, k)
        certified_bound_holds(g)

    def test_random_geometric_deterministic(self):
        a = random_geometric(50, 0.3, seed=11)
        b = random_geometric(50, 0.3, seed=11)
        assert set(a.graph.edges) == set(b.graph.edges)
        c = random_geometric(50, 0.3, seed=12)
        assert set(a.graph.edges) != set(c.graph.edges)

    def test_random_geometric_radius_extremes(self):
        # sqrt(2) spans the whole unit square: complete graph
        full = random_geometric(12, 2**0.5, seed=0)
        assert full.graph.m == 12 * 11 // 2
        # a tiny radius yields an (almost) empty graph
        sparse = random_geometric(30, 1e-9, seed=0)
        assert sparse.graph.m == 0

    def test_random_geometric_invalid(self):
        with pytest.raises(InvalidParameterError):
            random_geometric(0, 0.1)
        with pytest.raises(InvalidParameterError):
            random_geometric(10, 0.0)
        with pytest.raises(InvalidParameterError):
            random_geometric(10, 1.5)

    def test_preferential_attachment(self):
        g = preferential_attachment(80, 3, seed=7)
        certified_bound_holds(g)
        # hubs emerge: max degree well above the attachment parameter
        assert g.max_degree > 6

    def test_preferential_attachment_invalid(self):
        with pytest.raises(InvalidParameterError):
            preferential_attachment(3, 3)

    def test_planar_triangulation_is_planar_dense(self):
        g = planar_triangulation(50, seed=8)
        assert g.graph.m == 3 * 50 - 6  # Apollonian: 3 + 3(n-3) = 3n-6 edges
        assert g.arboricity_bound == 3
        certified_bound_holds(g)

    def test_low_arboricity_high_degree_regime(self):
        g = low_arboricity_high_degree(300, a=3, num_hubs=3, seed=9)
        certified_bound_holds(g)
        # the Cor 4.7 regime: arboricity bound far below the max degree
        assert g.arboricity_bound**2 < g.max_degree

    def test_disjoint_union(self):
        g = disjoint_union([path(5), ring(6)])
        assert g.graph.n == 11
        assert g.graph.m == 4 + 6
        assert g.arboricity_bound == 2

    def test_disjoint_union_empty(self):
        with pytest.raises(InvalidParameterError):
            disjoint_union([])

    def test_standard_families_cover(self):
        fams = standard_families(64, 3, seed=0)
        assert set(fams) == {"forest_union", "planar", "grid", "random_regular", "tree"}
        for gen in fams.values():
            certified_bound_holds(gen)


class TestGeneratedGraphMetadata:
    def test_properties(self):
        g = forest_union(40, 2, seed=0)
        assert g.n == 40
        assert g.m == g.graph.m
        assert g.max_degree == g.graph.max_degree
        assert "forest_union" in repr(g)

    def test_params_recorded(self):
        g = forest_union(40, 2, seed=5)
        assert g.params["seed"] == 5
        assert g.params["a"] == 2
