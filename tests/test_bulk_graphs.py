"""Bulk (numpy-native) graph construction and file-backed CSR graphs."""

import pickle

import pytest

from repro.errors import InvalidParameterError
from repro.graphs import Graph, forest_union_bulk
from repro.graphs.arboricity import nash_williams_lower_bound

np = pytest.importorskip("numpy")


class TestFromArrays:
    def test_matches_from_edge_count(self):
        u = np.array([0, 1, 2, 0, 2], dtype=np.int64)
        v = np.array([1, 2, 3, 1, 0], dtype=np.int64)  # dups both ways
        ga = Graph.from_arrays(4, u, v)
        gb = Graph.from_edge_count(4, [(0, 1), (1, 2), (2, 3), (0, 1), (2, 0)])
        assert ga == gb
        assert ga.duplicate_edges_dropped == gb.duplicate_edges_dropped == 1

    def test_empty(self):
        empty = np.array([], dtype=np.int64)
        g = Graph.from_arrays(5, empty, empty)
        assert g.n == 5 and g.m == 0

    def test_validation(self):
        one = np.array([0], dtype=np.int64)
        with pytest.raises(InvalidParameterError):
            Graph.from_arrays(4, one, np.array([4], dtype=np.int64))
        with pytest.raises(InvalidParameterError):
            Graph.from_arrays(4, np.array([-1], dtype=np.int64), one)
        two = np.array([2], dtype=np.int64)
        with pytest.raises(InvalidParameterError):
            Graph.from_arrays(4, two, two)
        with pytest.raises(InvalidParameterError):
            Graph.from_arrays(4, one, np.array([1, 2], dtype=np.int64))
        with pytest.raises(InvalidParameterError):
            Graph.from_arrays(-1, one, one)


class TestForestUnionBulk:
    def test_structure_and_certificate(self):
        gg = forest_union_bulk(500, 4, seed=11)
        g = gg.graph
        assert g.n == 500
        assert gg.arboricity_bound == 4
        assert gg.name == "forest_union_bulk"
        # each forest contributes <= n-1 edges, minus cross-forest collisions
        assert g.m <= 4 * 499
        # the union of 4 spanning trees is dense enough that Nash–Williams
        # certifies the bound is not wildly loose
        assert nash_williams_lower_bound(g) >= 3

    def test_deterministic_in_seed(self):
        a = forest_union_bulk(200, 3, seed=7).graph
        b = forest_union_bulk(200, 3, seed=7).graph
        c = forest_union_bulk(200, 3, seed=8).graph
        assert a == b
        assert a != c

    def test_density(self):
        sparse = forest_union_bulk(300, 2, seed=1, density=0.5)
        assert sparse.graph.m <= 2 * int(0.5 * 299)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            forest_union_bulk(1, 2)
        with pytest.raises(InvalidParameterError):
            forest_union_bulk(10, 0)
        with pytest.raises(InvalidParameterError):
            forest_union_bulk(10, 2, density=0.0)
        with pytest.raises(InvalidParameterError):
            forest_union_bulk(10, 2, density=1.5)

    def test_runs_under_every_engine_identically(self):
        from repro import SynchronousNetwork
        from repro.core import compute_hpartition
        from repro.simulator import engine_names

        gg = forest_union_bulk(300, 3, seed=2)
        results = {
            engine: compute_hpartition(
                SynchronousNetwork(gg.graph, scheduler=engine), 3
            )
            for engine in engine_names()
        }
        ref = results.pop("dense")
        for engine, got in results.items():
            assert got == ref, engine


class TestCsrFile:
    def _roundtrip(self, g, tmp_path, **kwargs):
        path = tmp_path / "g.csr"
        g.to_csr_file(path)
        return Graph.from_csr_file(path, **kwargs)

    def test_mmap_roundtrip(self, tmp_path):
        g = forest_union_bulk(400, 3, seed=5).graph
        g2 = self._roundtrip(g, tmp_path)
        assert g2 == g
        assert g2.mmap_backed
        assert g2.duplicate_edges_dropped == g.duplicate_edges_dropped

    def test_copy_roundtrip(self, tmp_path):
        g = forest_union_bulk(400, 3, seed=5).graph
        g2 = self._roundtrip(g, tmp_path, mmap=False)
        assert g2 == g
        assert not g2.mmap_backed

    def test_non_contiguous_ids(self, tmp_path):
        g = Graph.from_edge_count(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub = g.induced_subgraph([1, 2, 3])
        sub2 = self._roundtrip(sub, tmp_path)
        assert sub2 == sub
        assert sub2.vertices == (1, 2, 3)

    def test_pickle_materialises(self, tmp_path):
        g = forest_union_bulk(100, 2, seed=5).graph
        g2 = self._roundtrip(g, tmp_path)
        g3 = pickle.loads(pickle.dumps(g2))
        assert g3 == g and not g3.mmap_backed

    def test_mapped_graph_runs_on_column_engine(self, tmp_path):
        from repro import SynchronousNetwork
        from repro.core import compute_hpartition

        gg = forest_union_bulk(300, 3, seed=6)
        g2 = self._roundtrip(gg.graph, tmp_path)
        got = compute_hpartition(
            SynchronousNetwork(g2, scheduler="column"), 3
        )
        want = compute_hpartition(SynchronousNetwork(gg.graph), 3)
        assert got == want

    def test_rejects_non_graph_files(self, tmp_path):
        bad = tmp_path / "bad.csr"
        bad.write_bytes(b"nonsense")  # 8 bytes, wrong magic
        with pytest.raises(InvalidParameterError):
            Graph.from_csr_file(bad)
        odd = tmp_path / "odd.csr"
        odd.write_bytes(b"12345")  # not a multiple of 8
        with pytest.raises(InvalidParameterError):
            Graph.from_csr_file(odd)
