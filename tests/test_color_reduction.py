"""Color reduction: greedy, Kuhn–Wattenhofer, and the Δ+1 pipeline."""

import pytest

from repro import SynchronousNetwork
from repro.core import (
    delta_plus_one_coloring,
    greedy_reduction,
    kuhn_wattenhofer_reduction,
)
from repro.errors import InvalidParameterError, SimulationError
from repro.graphs import grid, random_regular, random_tree
from repro.verify import check_legal_coloring


def legal_base_coloring(graph):
    """A legal coloring with a wastefully large palette (ids as colors)."""
    return {v: v for v in graph.vertices}, graph.n


class TestGreedyReduction:
    def test_reduces_to_target(self):
        g = random_regular(80, 4, seed=1)
        net = SynchronousNetwork(g.graph)
        colors, m = legal_base_coloring(g.graph)
        reduced = greedy_reduction(net, colors, m, target=5)
        check_legal_coloring(g.graph, reduced.colors)
        assert reduced.num_colors <= 5
        assert all(c < 5 for c in reduced.colors.values())

    def test_rounds_m_minus_target(self):
        g = random_regular(60, 4, seed=2)
        net = SynchronousNetwork(g.graph)
        colors, m = legal_base_coloring(g.graph)
        reduced = greedy_reduction(net, colors, m, target=5)
        assert reduced.rounds <= m - 5

    def test_noop_when_under_target(self):
        g = grid(5, 5)
        net = SynchronousNetwork(g.graph)
        base = {v: v % 2 for v in g.graph.vertices}  # grid is bipartite
        reduced = greedy_reduction(net, base, 2, target=5)
        assert reduced.rounds == 0
        assert reduced.colors == base

    def test_target_too_small_raises(self):
        g = random_regular(40, 6, seed=3)
        net = SynchronousNetwork(g.graph)
        colors, m = legal_base_coloring(g.graph)
        with pytest.raises(SimulationError):
            greedy_reduction(net, colors, m, target=2)

    def test_invalid_target(self):
        g = grid(3, 3)
        net = SynchronousNetwork(g.graph)
        with pytest.raises(InvalidParameterError):
            greedy_reduction(net, {v: v for v in g.graph.vertices}, 9, target=0)


class TestKuhnWattenhofer:
    def test_reduces_to_delta_plus_one(self):
        g = random_regular(100, 6, seed=4)
        net = SynchronousNetwork(g.graph)
        colors, m = legal_base_coloring(g.graph)
        delta = g.graph.max_degree
        reduced = kuhn_wattenhofer_reduction(net, colors, m, delta)
        check_legal_coloring(g.graph, reduced.colors)
        assert reduced.num_colors <= delta + 1

    def test_faster_than_greedy_for_large_palettes(self):
        g = random_regular(300, 4, seed=5)
        net = SynchronousNetwork(g.graph)
        colors, m = legal_base_coloring(g.graph)
        delta = g.graph.max_degree
        kw = kuhn_wattenhofer_reduction(net, colors, m, delta)
        greedy = greedy_reduction(net, colors, m, delta + 1)
        assert kw.rounds < greedy.rounds

    def test_rounds_scale_log_m(self):
        """KW rounds grow ~Δ·log(m/Δ): doubling m adds ~Δ rounds, far less
        than the m−Δ of greedy."""
        g = random_tree(256, seed=6)
        net = SynchronousNetwork(g.graph)
        delta = g.graph.max_degree
        colors, m = legal_base_coloring(g.graph)
        kw = kuhn_wattenhofer_reduction(net, colors, m, delta)
        assert kw.rounds <= 3 * (delta + 1) * (m.bit_length() + 1)

    def test_on_parts(self):
        g = random_regular(80, 4, seed=7)
        net = SynchronousNetwork(g.graph)
        parts = {v: v % 2 for v in g.graph.vertices}
        colors, m = legal_base_coloring(g.graph)
        reduced = kuhn_wattenhofer_reduction(
            net, colors, m, g.graph.max_degree, part_of=parts
        )
        for (u, v) in g.graph.edges:
            if parts[u] == parts[v]:
                assert reduced.colors[u] != reduced.colors[v]


class TestDeltaPlusOne:
    def test_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        delta = family_graph.graph.max_degree
        result = delta_plus_one_coloring(net, delta)
        check_legal_coloring(family_graph.graph, result.colors)
        assert result.num_colors <= delta + 1

    def test_greedy_reduction_variant(self):
        g = random_tree(100, seed=8)
        net = SynchronousNetwork(g.graph)
        delta = g.graph.max_degree
        result = delta_plus_one_coloring(net, delta, reduction="greedy")
        check_legal_coloring(g.graph, result.colors)
        assert result.num_colors <= delta + 1

    def test_invalid_reduction(self, forest_net):
        with pytest.raises(InvalidParameterError):
            delta_plus_one_coloring(forest_net, 5, reduction="bogus")

    def test_composition_rounds(self):
        g = random_regular(120, 5, seed=9)
        net = SynchronousNetwork(g.graph)
        result = delta_plus_one_coloring(net, g.graph.max_degree)
        assert result.rounds == (
            result.params["linial_rounds"] + result.params["reduction_rounds"]
        )
