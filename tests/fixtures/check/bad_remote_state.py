"""Fixture: congest-remote-state violations (and nothing else)."""

from repro.simulator.context import NodeContext
from repro.simulator.network import SynchronousNetwork
from repro.simulator.program import NodeProgram


class PeekingProgram(NodeProgram):
    def __init__(self, net):
        self._net = net

    def on_start(self, ctx: NodeContext) -> None:
        # reads the global graph through the captured network object
        degree_of_far_node = self._net.graph.degree(0)
        ctx.broadcast(degree_of_far_node)

    def on_round(self, ctx: NodeContext) -> None:
        # touches the context's private internals
        if ctx._outbox:
            return
        # spins up a simulator inside a node
        inner = SynchronousNetwork(self._net.graph)
        ctx.halt(inner)
