"""Fixture: violations silenced by inline `# repro: allow[...]` comments."""

import random

from repro.simulator.context import NodeContext
from repro.simulator.program import NodeProgram


class AuditedProgram(NodeProgram):
    def on_start(self, ctx: NodeContext) -> None:
        jitter = random.random()  # repro: allow[determinism] fixture exercises suppression plumbing
        ctx.broadcast(jitter)

    def on_round(self, ctx: NodeContext) -> None:
        # repro: allow[congest-payload] reason on the line above the finding
        ctx.broadcast(list(ctx.neighbors))
        ctx.halt()


class UnreasonedProgram(NodeProgram):
    def on_start(self, ctx: NodeContext) -> None:
        stamp = random.random()  # repro: allow[determinism]
        ctx.halt(stamp)
