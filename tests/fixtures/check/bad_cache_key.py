"""Fixture: cache-key-stability violations — non-JSON-stable spec params."""

import time

from repro.experiments.spec import ScenarioSpec, TrialSpec


def unstable_specs():
    trial = TrialSpec(
        family="forest_union",
        algorithm="cor46",
        family_params={"levels": {1, 2, 3}},  # set: no canonical JSON form
        algorithm_params={"stamp": time.time()},  # fresh key every run
    )
    scenario = ScenarioSpec(
        family="forest_union",
        algorithm="cor46",
        family_params={"eta": float("nan"), 3: "int-key"},
        algorithm_params={"pick": lambda a: a},
    )
    return trial, scenario
