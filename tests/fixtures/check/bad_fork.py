"""Fixture: fork-thread-safety violations — threads/locks/shm vs fork."""

import multiprocessing
import threading
from multiprocessing import shared_memory

_publish_lock = threading.Lock()


def thread_then_pool(records):
    absorb = threading.Thread(target=records.append, args=(1,))
    absorb.start()
    # the pool forks while the absorb thread is live
    with multiprocessing.Pool(2) as pool:
        return pool.map(str, records)


def pool_under_lock(records):
    with _publish_lock:
        # forks with _publish_lock held: children inherit it locked
        pool = multiprocessing.Pool(2)
    try:
        return pool.map(str, records)
    finally:
        pool.terminate()


def rogue_segment(payload: bytes):
    # created outside the GraphStore layer: never registered for teardown
    seg = shared_memory.SharedMemory(create=True, size=len(payload))
    seg.buf[: len(payload)] = payload
    return seg.name
