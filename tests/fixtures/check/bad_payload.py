"""Fixture: congest-payload violations — O(Δ) and unsizable payloads."""

from repro.simulator.context import NodeContext
from repro.simulator.program import NodeProgram


class ChattyProgram(NodeProgram):
    def on_start(self, ctx: NodeContext) -> None:
        # the whole neighbour list in one message: O(Δ log n) bits
        ctx.broadcast(list(ctx.neighbors))

    def on_round(self, ctx: NodeContext) -> None:
        for u in ctx.neighbors:
            # a comprehension over the neighbourhood as payload
            ctx.send(u, {v: 1 for v in ctx.neighbors if v != u})
        # a callable payload: payload_size cannot size it
        ctx.broadcast(lambda: 42)
        ctx.halt()
