"""Fixture: determinism violations — global RNG, clocks, set iteration."""

import random
import time

from repro.simulator.context import NodeContext
from repro.simulator.program import NodeProgram


class FlakyProgram(NodeProgram):
    def on_start(self, ctx: NodeContext) -> None:
        # module-level RNG: unseeded, shared across nodes
        priority = random.random()
        ctx.broadcast(priority)

    def on_round(self, ctx: NodeContext) -> None:
        # wall clock flowing into program state
        stamp = time.time()
        for u in set(ctx.inbox):
            # sending while iterating an unordered set
            ctx.send(u, stamp)
        ctx.halt(stamp)
