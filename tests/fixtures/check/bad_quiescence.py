"""Fixture: quiescence-safety violation — a send after declaring idle."""

from repro.simulator.context import NodeContext
from repro.simulator.program import NodeProgram


class SleepySenderProgram(NodeProgram):
    def on_start(self, ctx: NodeContext) -> None:
        ctx.broadcast(1)

    def on_round(self, ctx: NodeContext) -> None:
        ctx.idle_until_message()
        if ctx.inbox:
            # breaks the idle promise made two lines up
            ctx.broadcast(2)
