"""A model-compliant node program: every `repro check` rule stays quiet.

This fixture is the positive control for tests/test_check.py: a program
that uses the ctx API only, sends O(1) payloads, draws randomness from a
seeded per-node random.Random, declares quiescence after its last send,
ships a pure column kernel, and builds specs from JSON-stable params.
"""

import random

from repro.experiments.spec import ScenarioSpec, TrialSpec
from repro.simulator.context import NodeContext
from repro.simulator.program import NodeProgram


class CleanProgram(NodeProgram):
    def __init__(self, seed: int):
        self._seed = seed
        self._rng = None
        self._best = None

    def on_start(self, ctx: NodeContext) -> None:
        self._rng = random.Random(self._seed * 7 + ctx.node)
        ctx.broadcast(self._rng.randrange(1 << 16))
        ctx.wake_at(3)
        ctx.idle_until_message()

    def on_round(self, ctx: NodeContext) -> None:
        for sender in sorted(ctx.inbox):
            payload = ctx.inbox[sender]
            if self._best is None or payload < self._best:
                self._best = payload
        if ctx.round_number >= 3:
            ctx.halt(self._best)
            return
        ctx.idle_until_message()

    def column_kernel(self, col):
        np = col.np

        def run() -> None:
            local = col.degrees.copy()
            local += 1
            col.note_round(0, col.n, int(local.sum()))
            col.outputs = dict(enumerate(np.zeros(col.n, dtype=bool).tolist()))
            col.rounds = 1

        return run


def clean_specs():
    trial = TrialSpec(
        family="forest_union",
        algorithm="cor46",
        seed=3,
        family_params={"n": 100, "a": 4},
        algorithm_params={"eta": 0.5},
    )
    scenario = ScenarioSpec(
        family="forest_union",
        algorithm="cor46",
        family_params={"n": 100, "a": 4},
        num_seeds=2,
    )
    return trial, scenario
