"""Fixture: kernel-purity violations — CSR mutation, self state, ctx use."""

from repro.simulator.context import NodeContext
from repro.simulator.program import NodeProgram


class ImpureKernelProgram(NodeProgram):
    def on_start(self, ctx: NodeContext) -> None:
        ctx.halt(0)

    def column_kernel(self, col):
        def run() -> None:
            # in-place mutation of the shared CSR view
            col.neighbors[0] = 99
            col.offsets.sort()
            # state parked on the prototype instance
            self._last_run_rounds = 1
            col.outputs = {}
            col.rounds = 1

        return run
