"""Linial's O(Δ²)-coloring [20] and Kuhn's defective coloring (Lemma 2.1)."""

import pytest

from repro import SynchronousNetwork
from repro.analysis import log_star
from repro.core import kuhn_defective_coloring, linial_coloring
from repro.errors import InvalidParameterError
from repro.graphs import random_regular, random_tree, ring
from repro.verify import check_legal_coloring, coloring_defect


class TestLinial:
    def test_legal_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        result = linial_coloring(net)
        check_legal_coloring(family_graph.graph, result.colors)

    def test_quadratic_color_bound(self):
        """Colors at most O(Δ²) — with the explicit polynomial families the
        fixpoint is at most (2Δ+small prime gap)² ≤ 16Δ² for Δ ≥ 2."""
        for d, n in ((4, 600), (6, 900)):
            g = random_regular(n, d, seed=d)
            net = SynchronousNetwork(g.graph)
            result = linial_coloring(net)
            check_legal_coloring(g.graph, result.colors)
            delta = g.graph.max_degree
            assert result.params["final_color_space"] <= 16 * delta * delta

    def test_log_star_rounds(self):
        g = random_regular(1000, 4, seed=11)
        net = SynchronousNetwork(g.graph)
        result = linial_coloring(net)
        assert result.rounds <= log_star(1000) + 4

    def test_explicit_degree_bound(self):
        g = ring(50)
        net = SynchronousNetwork(g.graph)
        result = linial_coloring(net, max_degree=2)
        check_legal_coloring(g.graph, result.colors)
        assert result.params["final_color_space"] <= 49  # (2*2+prime gap)²

    def test_ring_constant_colors(self):
        """Rings: Δ=2, so O(1) colors in O(log* n) rounds — Linial's classic
        setting."""
        for n in (64, 512):
            g = ring(n)
            result = linial_coloring(SynchronousNetwork(g.graph))
            check_legal_coloring(g.graph, result.colors)
            assert result.num_colors <= 49


class TestKuhnDefective:
    def test_defect_bound_sweep(self):
        g = random_regular(300, 12, seed=12)
        net = SynchronousNetwork(g.graph)
        delta = g.graph.max_degree
        for p in (1, 2, 3, 6):
            result = kuhn_defective_coloring(net, p)
            assert coloring_defect(g.graph, result.colors) <= delta // p

    def test_p_one_single_color_allowed(self):
        """p=1 allows defect Δ: a single color is legal output."""
        g = random_tree(100, seed=13)
        net = SynchronousNetwork(g.graph)
        result = kuhn_defective_coloring(net, 1)
        assert coloring_defect(g.graph, result.colors) <= g.graph.max_degree

    def test_colors_grow_with_p(self):
        g = random_regular(500, 16, seed=14)
        net = SynchronousNetwork(g.graph)
        few = kuhn_defective_coloring(net, 2)
        many = kuhn_defective_coloring(net, 8)
        assert few.params["final_color_space"] <= many.params["final_color_space"]

    def test_large_p_equals_legal(self):
        """p ≥ Δ means defect 0 — the coloring must be legal."""
        g = random_regular(150, 5, seed=15)
        net = SynchronousNetwork(g.graph)
        result = kuhn_defective_coloring(net, g.graph.max_degree + 1)
        check_legal_coloring(g.graph, result.colors)

    def test_log_star_rounds(self):
        g = random_regular(800, 10, seed=16)
        net = SynchronousNetwork(g.graph)
        result = kuhn_defective_coloring(net, 3)
        assert result.rounds <= log_star(800) + 4

    def test_invalid_p(self, forest_net):
        with pytest.raises(InvalidParameterError):
            kuhn_defective_coloring(forest_net, 0)

    def test_params_recorded(self):
        g = random_tree(60, seed=17)
        net = SynchronousNetwork(g.graph)
        result = kuhn_defective_coloring(net, 2)
        assert result.params["p"] == 2
        assert result.params["defect_bound"] == g.graph.max_degree // 2
