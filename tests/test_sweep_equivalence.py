"""Acceptance: sweep records are byte-identical — same content keys, same
metrics — across every execution path of the staged engine: serial (shared
in-process store), parallel over shared memory, parallel over the pickle
fallback, rebuild-per-trial (the pre-staged engine's shape), with
shared-graph builds overlapped into the pool or prebuilt in the parent,
and over a socket coordinator with attached worker processes.

Stage timings and provenance legitimately differ per path; they live
outside ``metrics`` precisely so everything the cache and the aggregate
reports consume cannot.  GraphStore build/reuse accounting, by contrast,
must NOT differ per path — the same spec counts the same builds and reuses
whichever transport or schedule ran it.
"""

import pytest

from repro.experiments import (
    ResultCache,
    ScenarioSpec,
    SocketExecutor,
    SweepSpec,
    grid_scenarios,
    report_table,
    run_sweep,
    shm_available,
    spawn_local_workers,
)


def _spec():
    """Multi-kind ablation: several algorithm-param cells per shared graph.

    Seeds are explicit: scenario-derived seeds fold the algorithm cell into
    their derivation (so adding a scenario never shifts its neighbours'),
    which means only explicit seeds make different algorithm cells land on
    the *same* graph instances — the shape graph sharing exists for.
    """
    scenarios = grid_scenarios(
        families=[
            {"name": "forest_union", "n": 40, "a": 2},
            {"name": "tree", "n": 40},
        ],
        algorithms=[
            {"name": "cor46", "eta": 0.5},
            {"name": "cor46", "eta": 1.0},
            {"name": "forests", "epsilon": 0.5},
            {"name": "luby_mis"},
        ],
        seeds=[0, 1],
    )
    return SweepSpec("equivalence", scenarios)


def _fingerprint(result):
    """Everything the cache/report layer sees: ordered (key, metrics)."""
    return [(tr.key, tr.metrics) for tr in result]


class TestExecutionPathEquivalence:
    def test_all_paths_produce_identical_records(self, monkeypatch):
        spec = _spec()
        serial = run_sweep(spec)
        rebuild = run_sweep(spec, share_graphs=False)
        parallel_shm = run_sweep(spec, workers=2)
        prebuilt_shm = run_sweep(spec, workers=2, overlap_builds=False)
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        parallel_pickle = run_sweep(spec, workers=2)
        prebuilt_pickle = run_sweep(spec, workers=2, overlap_builds=False)
        monkeypatch.delenv("REPRO_NO_SHM")

        others = (rebuild, parallel_shm, prebuilt_shm, parallel_pickle,
                  prebuilt_pickle)
        baseline = _fingerprint(serial)
        for other in others:
            assert _fingerprint(other) == baseline
        # and the aggregate presentation layer agrees byte for byte
        expected = report_table(serial)
        for other in others:
            assert report_table(other) == expected

        # each path really was the path it claims to be
        assert {t.graph_source for t in serial} == {"store"}
        assert {t.graph_source for t in rebuild} == {"built"}
        if shm_available():
            assert {t.graph_source for t in parallel_shm} == {"shm"}
            assert {t.graph_source for t in prebuilt_shm} == {"shm"}
        assert {t.graph_source for t in parallel_pickle} == {"pickled"}
        assert {t.graph_source for t in prebuilt_pickle} == {"pickled"}
        assert parallel_shm.build_overlap and parallel_pickle.build_overlap
        assert not prebuilt_shm.build_overlap
        assert not prebuilt_pickle.build_overlap
        assert not serial.build_overlap and not rebuild.build_overlap

        # the ablation shape: 4 algorithm cells share each unique graph —
        # and the build/reuse accounting is identical across transports
        # and schedules (4 graphs = 2 families x 2 seeds)
        stores = (serial, parallel_shm, prebuilt_shm, parallel_pickle,
                  prebuilt_pickle)
        for res in stores:
            assert res.graph_builds == 4
            assert res.graph_reuses == res.num_trials - 4
            assert res.graph_build_s > 0.0
        assert rebuild.graph_builds == 0
        assert rebuild.graph_reuses == 0

    def test_socket_loopback_matches_every_local_path(self):
        """The seventh execution path: the same spec through a socket
        coordinator with two loopback ``repro worker`` processes.  Remote
        workers cannot attach the parent's shm, so shared graphs ride the
        wire pickled — and the records are still byte-identical."""
        spec = _spec()
        serial = run_sweep(spec)
        ex = SocketExecutor(min_workers=2)
        procs = spawn_local_workers(ex.host, ex.port, 2)
        try:
            ex.wait_for_workers(2, timeout=60)
            remote = run_sweep(spec, executor=ex)
        finally:
            ex.close()
            for p in procs:
                p.terminate()
            for p in procs:
                try:
                    p.wait(timeout=10)
                except Exception:
                    p.kill()
        assert _fingerprint(remote) == _fingerprint(serial)
        assert report_table(remote) == report_table(serial)
        assert {t.graph_source for t in remote} == {"pickled"}
        assert remote.build_overlap
        assert remote.graph_builds == 4
        assert remote.graph_reuses == remote.num_trials - 4
        assert remote.executor == "socket"
        assert serial.executor == "serial"

    def test_cache_warmed_by_one_path_serves_every_other(self, tmp_path):
        spec = _spec()
        cache_dir = str(tmp_path / "cache")
        fresh = run_sweep(spec, cache=ResultCache(cache_dir), workers=2)
        assert fresh.cache_misses == len({t.key() for t in spec.trials()})
        for kwargs in (
            {},
            {"share_graphs": False},
            {"workers": 2},
            {"workers": 2, "overlap_builds": False},
        ):
            again = run_sweep(spec, cache=ResultCache(cache_dir), **kwargs)
            assert again.hit_rate == 1.0
            assert _fingerprint(again) == _fingerprint(fresh)

    @pytest.mark.skipif(not shm_available(), reason="no shared memory here")
    def test_forced_shm_off_matches_forced_on(self):
        # two algorithms over the same explicit seeds: each graph is shared,
        # so pool runs publish it (shm or pickled) instead of rebuilding
        spec = SweepSpec(
            "shm-toggle",
            [
                ScenarioSpec(family="planar", algorithm="mis_arboricity",
                             family_params={"n": 36}, seeds=[0, 1]),
                ScenarioSpec(family="planar", algorithm="forests",
                             family_params={"n": 36}, seeds=[0, 1]),
            ],
        )
        on = run_sweep(spec, workers=2, use_shm=True)
        off = run_sweep(spec, workers=2, use_shm=False)
        assert _fingerprint(on) == _fingerprint(off)
        assert {t.graph_source for t in on} == {"shm"}
        assert {t.graph_source for t in off} == {"pickled"}

    def test_single_use_graphs_build_in_the_workers(self):
        # derived seeds never collide across scenarios, so every graph here
        # is single-use: pool mode must not pre-build them in the parent
        spec = SweepSpec(
            "unshared",
            [ScenarioSpec(family="tree", algorithm="cor46",
                          family_params={"n": 40}, num_seeds=3)],
        )
        par = run_sweep(spec, workers=2)
        assert {t.graph_source for t in par} == {"built"}
        assert par.graph_builds == 0  # nothing was worth pre-building
        serial = run_sweep(spec)
        assert _fingerprint(par) == _fingerprint(serial)
        assert serial.graph_builds == 3  # serial still dedups in-process
