"""Acceptance: sweep records are byte-identical — same content keys, same
metrics — across every execution path of the staged engine: serial (shared
in-process store), parallel over shared memory, parallel over the pickle
fallback, and rebuild-per-trial (the pre-staged engine's shape).

Stage timings and provenance legitimately differ per path; they live
outside ``metrics`` precisely so everything the cache and the aggregate
reports consume cannot.
"""

import pytest

from repro.experiments import (
    ResultCache,
    ScenarioSpec,
    SweepSpec,
    grid_scenarios,
    report_table,
    run_sweep,
    shm_available,
)


def _spec():
    """Multi-kind ablation: several algorithm-param cells per shared graph.

    Seeds are explicit: scenario-derived seeds fold the algorithm cell into
    their derivation (so adding a scenario never shifts its neighbours'),
    which means only explicit seeds make different algorithm cells land on
    the *same* graph instances — the shape graph sharing exists for.
    """
    scenarios = grid_scenarios(
        families=[
            {"name": "forest_union", "n": 40, "a": 2},
            {"name": "tree", "n": 40},
        ],
        algorithms=[
            {"name": "cor46", "eta": 0.5},
            {"name": "cor46", "eta": 1.0},
            {"name": "forests", "epsilon": 0.5},
            {"name": "luby_mis"},
        ],
        seeds=[0, 1],
    )
    return SweepSpec("equivalence", scenarios)


def _fingerprint(result):
    """Everything the cache/report layer sees: ordered (key, metrics)."""
    return [(tr.key, tr.metrics) for tr in result]


class TestExecutionPathEquivalence:
    def test_all_paths_produce_identical_records(self, monkeypatch):
        spec = _spec()
        serial = run_sweep(spec)
        rebuild = run_sweep(spec, share_graphs=False)
        parallel_shm = run_sweep(spec, workers=2)
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        parallel_pickle = run_sweep(spec, workers=2)
        monkeypatch.delenv("REPRO_NO_SHM")

        baseline = _fingerprint(serial)
        assert _fingerprint(rebuild) == baseline
        assert _fingerprint(parallel_shm) == baseline
        assert _fingerprint(parallel_pickle) == baseline
        # and the aggregate presentation layer agrees byte for byte
        expected = report_table(serial)
        for other in (rebuild, parallel_shm, parallel_pickle):
            assert report_table(other) == expected

        # each path really was the path it claims to be
        assert {t.graph_source for t in serial} == {"store"}
        assert {t.graph_source for t in rebuild} == {"built"}
        if shm_available():
            assert {t.graph_source for t in parallel_shm} == {"shm"}
        assert {t.graph_source for t in parallel_pickle} == {"pickled"}

        # the ablation shape: 4 algorithm cells share each unique graph
        assert serial.graph_builds == 4  # 2 families x 2 seeds
        assert serial.graph_reuses == serial.num_trials - 4
        assert rebuild.graph_builds == 0

    def test_cache_warmed_by_one_path_serves_every_other(self, tmp_path):
        spec = _spec()
        cache_dir = str(tmp_path / "cache")
        fresh = run_sweep(spec, cache=ResultCache(cache_dir), workers=2)
        assert fresh.cache_misses == len({t.key() for t in spec.trials()})
        for kwargs in (
            {},
            {"share_graphs": False},
            {"workers": 2},
        ):
            again = run_sweep(spec, cache=ResultCache(cache_dir), **kwargs)
            assert again.hit_rate == 1.0
            assert _fingerprint(again) == _fingerprint(fresh)

    @pytest.mark.skipif(not shm_available(), reason="no shared memory here")
    def test_forced_shm_off_matches_forced_on(self):
        # two algorithms over the same explicit seeds: each graph is shared,
        # so pool runs publish it (shm or pickled) instead of rebuilding
        spec = SweepSpec(
            "shm-toggle",
            [
                ScenarioSpec(family="planar", algorithm="mis_arboricity",
                             family_params={"n": 36}, seeds=[0, 1]),
                ScenarioSpec(family="planar", algorithm="forests",
                             family_params={"n": 36}, seeds=[0, 1]),
            ],
        )
        on = run_sweep(spec, workers=2, use_shm=True)
        off = run_sweep(spec, workers=2, use_shm=False)
        assert _fingerprint(on) == _fingerprint(off)
        assert {t.graph_source for t in on} == {"shm"}
        assert {t.graph_source for t in off} == {"pickled"}

    def test_single_use_graphs_build_in_the_workers(self):
        # derived seeds never collide across scenarios, so every graph here
        # is single-use: pool mode must not pre-build them in the parent
        spec = SweepSpec(
            "unshared",
            [ScenarioSpec(family="tree", algorithm="cor46",
                          family_params={"n": 40}, num_seeds=3)],
        )
        par = run_sweep(spec, workers=2)
        assert {t.graph_source for t in par} == {"built"}
        assert par.graph_builds == 0  # nothing was worth pre-building
        serial = run_sweep(spec)
        assert _fingerprint(par) == _fingerprint(serial)
        assert serial.graph_builds == 3  # serial still dedups in-process
