"""Message tracing and CONGEST-style size accounting.

The LOCAL model allows unbounded messages, but the paper's algorithms are
naturally frugal: colors, levels, and small tuples.  These tests pin that
down — every core algorithm's messages stay logarithmic-size — and cover
the MessageTrace API.
"""

import math


from repro import Graph, SynchronousNetwork
from repro.core import (
    compute_hpartition,
    kuhn_defective_coloring,
    legal_coloring,
    linial_coloring,
)
from repro.graphs import forest_union, random_regular
from repro.simulator import MessageTrace, NodeProgram


class PingProgram(NodeProgram):
    def on_start(self, ctx):
        ctx.broadcast(("ping", ctx.node))

    def on_round(self, ctx):
        ctx.halt(len(ctx.inbox))


class TestMessageTraceAPI:
    def test_records_every_message(self):
        g = Graph(range(3), [(0, 1), (1, 2)])
        net = SynchronousNetwork(g)
        trace = MessageTrace()
        net.run(PingProgram, trace=trace)
        assert len(trace) == 4  # 1+2+1 broadcasts

    def test_round_numbers(self):
        g = Graph(range(2), [(0, 1)])
        trace = MessageTrace()
        SynchronousNetwork(g).run(PingProgram, trace=trace)
        assert trace.per_round() == {0: 2}

    def test_between(self):
        g = Graph(range(3), [(0, 1), (1, 2)])
        trace = MessageTrace()
        SynchronousNetwork(g).run(PingProgram, trace=trace)
        assert len(trace.between(0, 1)) == 2
        assert len(trace.between(0, 2)) == 0

    def test_sizes(self):
        g = Graph(range(2), [(0, 1)])
        trace = MessageTrace()
        SynchronousNetwork(g).run(PingProgram, trace=trace)
        assert trace.max_size >= 1
        assert trace.total_bytes >= 2
        hist = trace.sizes_histogram(bucket=4)
        assert sum(hist.values()) == 2


class TestCongestFrugality:
    """Messages of the core algorithms stay O(log n)-bit."""

    def _max_message_bytes(self, net, runner):
        trace = MessageTrace()
        original_run = net.run

        def run_traced(*args, **kwargs):
            kwargs.setdefault("trace", trace)
            return original_run(*args, **kwargs)

        net.run = run_traced
        try:
            runner()
        finally:
            net.run = original_run
        return trace.max_size

    def test_hpartition_messages_constant(self):
        g = forest_union(400, 4, seed=90)
        net = SynchronousNetwork(g.graph)
        size = self._max_message_bytes(
            net, lambda: compute_hpartition(net, 4)
        )
        assert size <= 16  # the single "leaving" token

    def test_linial_messages_logarithmic(self):
        g = random_regular(500, 6, seed=91)
        net = SynchronousNetwork(g.graph)
        size = self._max_message_bytes(net, lambda: linial_coloring(net))
        # colors are < n initially: O(log n) bits = a few bytes
        assert size <= math.ceil(math.log2(500) / 8) + 4

    def test_defective_messages_logarithmic(self):
        g = random_regular(500, 8, seed=92)
        net = SynchronousNetwork(g.graph)
        size = self._max_message_bytes(
            net, lambda: kuhn_defective_coloring(net, 2)
        )
        assert size <= 8

    def test_legal_coloring_messages_small(self):
        g = forest_union(300, 6, seed=93)
        net = SynchronousNetwork(g.graph)
        size = self._max_message_bytes(
            net, lambda: legal_coloring(net, 6, p=4)
        )
        # tuples of (level, color) and small color values
        assert size <= 24
