"""End-to-end integration: full pipelines, cross-algorithm consistency,
and determinism across the whole stack."""

import pytest

from repro import SynchronousNetwork
from repro.core import (
    arb_kuhn_decomposition,
    arbdefective_coloring,
    be08_coloring,
    compute_hpartition,
    forests_decomposition,
    legal_coloring,
    legal_coloring_corollary46,
    legal_coloring_theorem43,
    linial_coloring,
    luby_coloring,
    mis_arboricity,
    mis_from_coloring,
    oneshot_legal_coloring,
    theorem52_fast_coloring,
    theorem53_tradeoff,
)
from repro.graphs import (
    disjoint_union,
    forest_union,
    grid,
    planar_triangulation,
    preferential_attachment,
    random_tree,
)
from repro.verify import (
    check_forests_decomposition,
    check_hpartition,
    check_legal_coloring,
    check_mis,
)

ALL_COLORING_PIPELINES = [
    ("legal_p4", lambda net, a: legal_coloring(net, a, p=4)),
    ("oneshot", lambda net, a: oneshot_legal_coloring(net, a)),
    ("thm43", lambda net, a: legal_coloring_theorem43(net, a, mu=1.0)),
    ("cor46", lambda net, a: legal_coloring_corollary46(net, a, eta=0.5)),
    ("thm52", lambda net, a: theorem52_fast_coloring(net, a, d=max(1, a // 3))),
    ("thm53", lambda net, a: theorem53_tradeoff(net, a, t=max(1, a // 2))),
    ("be08", lambda net, a: be08_coloring(net, a)),
]


class TestEveryPipelineOnEveryFamily:
    @pytest.mark.parametrize(
        "name,pipeline", ALL_COLORING_PIPELINES, ids=[p[0] for p in ALL_COLORING_PIPELINES]
    )
    def test_legal_everywhere(self, family_graph, name, pipeline):
        net = SynchronousNetwork(family_graph.graph)
        result = pipeline(net, family_graph.arboricity_bound)
        check_legal_coloring(family_graph.graph, result.colors)
        assert result.rounds >= 0


class TestDeterminism:
    def test_full_stack_reproducible(self):
        g = forest_union(250, 8, seed=61)
        net = SynchronousNetwork(g.graph)
        r1 = legal_coloring_theorem43(net, 8, mu=1.0)
        r2 = legal_coloring_theorem43(net, 8, mu=1.0)
        assert r1.colors == r2.colors
        assert r1.rounds == r2.rounds

    def test_decompositions_reproducible(self):
        g = planar_triangulation(120, seed=62)
        net = SynchronousNetwork(g.graph)
        d1 = arbdefective_coloring(net, 3, k=2, t=2)
        d2 = arbdefective_coloring(net, 3, k=2, t=2)
        assert d1.label == d2.label


class TestComposedPipelines:
    def test_hpartition_feeds_forests(self):
        g = forest_union(300, 5, seed=63)
        net = SynchronousNetwork(g.graph)
        hp = compute_hpartition(net, 5)
        check_hpartition(g.graph, hp)
        fd = forests_decomposition(net, 5, hpartition=hp)
        check_forests_decomposition(g.graph, fd)

    def test_coloring_feeds_mis(self):
        g = forest_union(300, 6, seed=64)
        net = SynchronousNetwork(g.graph)
        coloring = legal_coloring_corollary46(net, 6, eta=0.5)
        mis = mis_from_coloring(net, coloring)
        check_mis(g.graph, mis.members)
        assert mis.rounds < coloring.normalized().num_colors + 1

    def test_disconnected_graph(self):
        gen = disjoint_union(
            [forest_union(80, 3, seed=65), random_tree(60, seed=66), grid(6, 6)]
        )
        net = SynchronousNetwork(gen.graph)
        result = legal_coloring(net, gen.arboricity_bound, p=4)
        check_legal_coloring(gen.graph, result.colors)
        mis = mis_arboricity(net, gen.arboricity_bound)
        check_mis(gen.graph, mis.members)

    def test_power_law_graph(self):
        """Preferential attachment: low arboricity, heavy degree tail —
        the regime where arboricity-based algorithms shine."""
        gen = preferential_attachment(300, 3, seed=67)
        net = SynchronousNetwork(gen.graph)
        result = legal_coloring_corollary46(net, gen.arboricity_bound, eta=0.5)
        check_legal_coloring(gen.graph, result.colors)
        # far fewer colors than Δ+1 (what degree-based algorithms pay)
        assert result.num_colors < gen.max_degree

    def test_arb_kuhn_refines_into_legal(self):
        g = forest_union(300, 9, seed=68)
        net = SynchronousNetwork(g.graph)
        dec = arb_kuhn_decomposition(net, 9, defect=3)
        parts = {v: lab for v, lab in dec.label.items()}
        inner = legal_coloring(net, 3, p=4, part_of=parts)
        # legality within every part
        for (u, v) in g.graph.edges:
            if parts[u] == parts[v]:
                assert inner.colors[u] != inner.colors[v]


class TestRoundComplexityOrdering:
    def test_randomized_beats_deterministic_beats_be08(self):
        """The qualitative ordering the paper's Table-free §1.2 narrative
        implies at our scale: Luby (randomized) is fastest, the paper's
        deterministic polylog algorithms sit in the middle, BE08's
        O(a log n) is slowest for large a."""
        g = forest_union(500, 16, seed=69)
        net = SynchronousNetwork(g.graph)
        luby = luby_coloring(net, seed=1)
        ours = legal_coloring_theorem43(net, 16, mu=0.5)
        be08 = be08_coloring(net, 16)
        assert luby.rounds < ours.rounds < be08.rounds

    def test_linial_fast_but_many_colors(self):
        g = forest_union(2000, 4, seed=70)
        net = SynchronousNetwork(g.graph)
        lin = linial_coloring(net)
        ours = legal_coloring_corollary46(net, 4, eta=0.5)
        check_legal_coloring(g.graph, lin.colors)
        check_legal_coloring(g.graph, ours.colors)
        assert lin.rounds < ours.rounds
        assert ours.num_colors < lin.params["final_color_space"]
