"""Result types: ColorAssignment, Orientation, decompositions."""

import pytest

from repro.types import (
    ColorAssignment,
    Decomposition,
    HPartition,
    MISResult,
    Orientation,
    canonical_edge,
)


class TestCanonicalEdge:
    def test_orders(self):
        assert canonical_edge(3, 1) == (1, 3)
        assert canonical_edge(1, 3) == (1, 3)
        assert canonical_edge(2, 2) == (2, 2)


class TestColorAssignment:
    def test_counts(self):
        ca = ColorAssignment(colors={0: 5, 1: 7, 2: 5})
        assert ca.num_colors == 2
        assert ca.max_color == 7

    def test_empty(self):
        ca = ColorAssignment(colors={})
        assert ca.num_colors == 0
        assert ca.max_color == 0

    def test_color_classes(self):
        ca = ColorAssignment(colors={0: 1, 1: 2, 2: 1})
        classes = ca.color_classes()
        assert sorted(classes[1]) == [0, 2]
        assert classes[2] == [1]

    def test_normalized_compacts_and_preserves_order(self):
        ca = ColorAssignment(colors={0: 10, 1: 3, 2: 10, 3: 99}, rounds=7)
        norm = ca.normalized()
        assert norm.colors == {0: 1, 1: 0, 2: 1, 3: 2}
        assert norm.rounds == 7
        assert norm.num_colors == 3

    def test_normalized_does_not_mutate(self):
        ca = ColorAssignment(colors={0: 10})
        ca.normalized()
        assert ca.colors == {0: 10}

    def test_restricted_to(self):
        ca = ColorAssignment(colors={0: 1, 1: 2, 2: 3})
        sub = ca.restricted_to([0, 2])
        assert sub.colors == {0: 1, 2: 3}


class TestOrientation:
    def test_head_and_is_oriented(self):
        o = Orientation(direction={(0, 1): 1})
        assert o.head(0, 1) == 1
        assert o.head(1, 0) == 1
        assert o.head(1, 2) is None
        assert o.is_oriented(1, 0)
        assert not o.is_oriented(2, 3)

    def test_orient(self):
        o = Orientation(direction={})
        o.orient(3, 1, towards=1)
        assert o.head(1, 3) == 1

    def test_orient_rejects_non_endpoint(self):
        o = Orientation(direction={})
        with pytest.raises(ValueError):
            o.orient(0, 1, towards=5)

    def test_parents_children_unoriented(self):
        o = Orientation(direction={(0, 1): 1, (0, 2): 0})
        neighbors = [1, 2, 3]
        assert o.parents_of(0, neighbors) == [1]
        assert o.children_of(0, neighbors) == [2]
        assert o.unoriented_neighbors(0, neighbors) == [3]


class TestHPartition:
    def test_levels(self):
        hp = HPartition(index={0: 1, 1: 2, 2: 1}, degree_bound=4)
        assert hp.num_levels == 2
        assert sorted(hp.level(1)) == [0, 2]
        assert hp.levels() == {1: [0, 2], 2: [1]}

    def test_empty(self):
        assert HPartition(index={}, degree_bound=1).num_levels == 0


class TestDecomposition:
    def test_parts(self):
        d = Decomposition(label={0: 0, 1: 1, 2: 0}, arboricity_bound=2)
        assert d.num_parts == 2
        assert sorted(d.parts()[0]) == [0, 2]


class TestMISResult:
    def test_membership(self):
        m = MISResult(members={1, 3})
        assert 1 in m
        assert 2 not in m
        assert m.size == 2
