"""Cole–Vishkin 3-coloring of rooted forests."""

import pytest

from repro import SynchronousNetwork
from repro.analysis import log_star
from repro.core import (
    cole_vishkin_forest,
    cv_iterations_needed,
    forests_decomposition,
)
from repro.errors import SimulationError
from repro.graphs import binary_tree, path, random_tree, star, forest_union


def parent_map_by_id(graph):
    """Root every tree of the graph at its smallest-id vertex (BFS).

    Builds a valid parent map for any forest-shaped graph.
    """
    parent = {}
    visited = set()
    for root in graph.vertices:
        if root in visited:
            continue
        parent[root] = None
        visited.add(root)
        frontier = [root]
        while frontier:
            v = frontier.pop()
            for u in graph.neighbors(v):
                if u not in visited:
                    visited.add(u)
                    parent[u] = v
                    frontier.append(u)
    return parent


class TestCVIterations:
    def test_monotone(self):
        assert cv_iterations_needed(10) <= cv_iterations_needed(10**6)

    def test_log_star_scale(self):
        assert cv_iterations_needed(10**9) <= log_star(10**9) + 4

    def test_tiny(self):
        assert cv_iterations_needed(1) >= 1
        assert cv_iterations_needed(2) >= 1


class TestColeVishkin:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: path(50).graph,
            lambda: star(40).graph,
            lambda: binary_tree(5).graph,
            lambda: random_tree(200, seed=1).graph,
        ],
        ids=["path", "star", "binary", "random"],
    )
    def test_three_colors_on_trees(self, make):
        g = make()
        net = SynchronousNetwork(g)
        parent = parent_map_by_id(g)
        result = cole_vishkin_forest(net, parent)
        assert all(0 <= c < 3 for c in result.colors.values())
        for (u, v) in g.edges:
            assert result.colors[u] != result.colors[v]

    def test_rounds_log_star(self):
        g = random_tree(1000, seed=2).graph
        net = SynchronousNetwork(g)
        result = cole_vishkin_forest(net, parent_map_by_id(g))
        assert result.rounds <= cv_iterations_needed(1000) + 6

    def test_forest_with_many_components(self):
        from repro.graphs import disjoint_union, random_tree as rt

        gen = disjoint_union([rt(30, seed=3), rt(40, seed=4), rt(50, seed=5)])
        g = gen.graph
        net = SynchronousNetwork(g)
        result = cole_vishkin_forest(net, parent_map_by_id(g))
        for (u, v) in g.edges:
            assert result.colors[u] != result.colors[v]
        assert max(result.colors.values()) < 3

    def test_single_vertex(self):
        g = path(1).graph
        net = SynchronousNetwork(g)
        result = cole_vishkin_forest(net, {0: None})
        assert result.colors[0] in (0, 1, 2)

    def test_colors_forest_inside_larger_graph(self):
        """CV on one forest of a forests decomposition: legal on *forest*
        edges even though the network has more edges."""
        gen = forest_union(150, 3, seed=6)
        net = SynchronousNetwork(gen.graph)
        fd = forests_decomposition(net, 3)
        g = gen.graph
        # build the parent map of forest 0 from the decomposition
        parent = {v: None for v in g.vertices}
        for (u, v) in fd.forest_edges(0):
            head = fd.orientation.head(u, v)
            tail = u if head == v else v
            parent[tail] = head
        result = cole_vishkin_forest(net, parent)
        for (u, v) in fd.forest_edges(0):
            assert result.colors[u] != result.colors[v]
        assert max(result.colors.values()) < 3

    def test_parent_must_be_neighbor(self):
        g = path(4).graph
        net = SynchronousNetwork(g)
        with pytest.raises(SimulationError):
            cole_vishkin_forest(net, {0: 3, 1: None, 2: None, 3: None})
