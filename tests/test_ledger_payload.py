"""Round/message accounting edge cases: the RoundLedger and payload_size.

Covers the corners the composite algorithms rely on: nested payload size
estimation, zero-round protocols (halt-at-start costs 0 rounds and 0
messages), and ledger composition/breakdown semantics."""

import dataclasses

import pytest

from repro import Graph, SynchronousNetwork
from repro.simulator.ledger import PhaseRecord, RoundLedger
from repro.simulator.message import Envelope, payload_size
from repro.simulator.network import RunResult
from repro.simulator.program import FunctionProgram


class TestPayloadSize:
    def test_none_is_free(self):
        assert payload_size(None) == 0

    def test_bool_is_one_byte_not_int(self):
        # bool is an int subclass; it must hit the bool branch first
        assert payload_size(True) == 1
        assert payload_size(False) == 1

    def test_int_bit_length(self):
        assert payload_size(0) == 1
        assert payload_size(255) == 1
        assert payload_size(256) == 2
        assert payload_size(1 << 16) == 3

    def test_negative_int_pays_a_sign_bit(self):
        # magnitude bits + 1 sign bit: -5 still fits a byte, -255 does not
        assert payload_size(-5) == 1
        assert payload_size(-127) == 1  # 7 + 1 = 8 bits
        assert payload_size(-128) == 2  # 8 + 1 = 9 bits
        assert payload_size(-255) == 2
        assert payload_size(-(1 << 16)) == 3  # 17 + 1 = 18 bits

    def test_sets_sized_by_element_not_repr(self):
        # like tuples: elements + 1 byte container overhead
        assert payload_size({1, 2, 3}) == 4
        assert payload_size(frozenset({1, 2, 3})) == 4
        assert payload_size(set()) == 1
        # deterministic regardless of element magnitude/iteration order
        big = {1 << 40, 3, 7, 1 << 20}
        assert payload_size(big) == payload_size(tuple(sorted(big)))
        assert payload_size({(1, 2), (3, 4)}) == 2 * 3 + 1

    def test_string_utf8(self):
        assert payload_size("abc") == 3
        assert payload_size("é") == 2
        assert payload_size("") == 0

    def test_flat_tuple_and_list(self):
        # container overhead is 1 byte
        assert payload_size((1, 2, 3)) == 4
        assert payload_size([1, 2, 3]) == 4
        assert payload_size(()) == 1

    def test_nested_payloads(self):
        nested = (1, (2, (3, (4,))))
        # each tuple level adds 1: ints are 1 each, four levels of nesting
        assert payload_size(nested) == 4 + 4
        deep = [[[[0]]]]
        assert payload_size(deep) == 1 + 4

    def test_dict_counts_keys_and_values(self):
        assert payload_size({1: 2}) == 3
        assert payload_size({"ab": (1, 2)}) == 2 + 3 + 1

    def test_mixed_nested_structure(self):
        msg = {"color": 300, "parents": [1, 2], "done": False}
        expected = (
            1  # dict overhead
            + len("color") + 2
            + len("parents") + (1 + 1 + 1)
            + len("done") + 1
        )
        assert payload_size(msg) == expected

    def test_fallback_is_repr_length(self):
        class Blob:
            def __repr__(self):
                return "<blob>"

        assert payload_size(Blob()) == len("<blob>")

    def test_envelope_is_frozen(self):
        env = Envelope(sender=0, dest=1, payload=(1, 2))
        with pytest.raises(dataclasses.FrozenInstanceError):
            env.payload = None


class TestZeroRoundProtocols:
    def test_halt_at_start_costs_zero_rounds_and_messages(self):
        g = Graph(range(4), [(0, 1), (1, 2), (2, 3)])
        net = SynchronousNetwork(g)
        result = net.run(
            lambda: FunctionProgram(start=lambda ctx: ctx.halt(ctx.node)),
            count_bytes=True,
        )
        assert result.rounds == 0
        assert result.messages == 0
        assert result.message_bytes == 0
        assert result.max_message_bytes == 0
        assert result.outputs == {v: v for v in range(4)}

    def test_zero_round_phase_in_ledger(self):
        g = Graph(range(3), [(0, 1), (1, 2)])
        net = SynchronousNetwork(g)
        result = net.run(
            lambda: FunctionProgram(start=lambda ctx: ctx.halt(None))
        )
        ledger = RoundLedger()
        ledger.add_run("decide-locally", result)
        assert ledger.total_rounds == 0
        assert ledger.total_messages == 0
        assert ledger.breakdown() == {"decide-locally": 0}


class TestRoundLedger:
    def test_empty_ledger(self):
        ledger = RoundLedger()
        assert ledger.total_rounds == 0
        assert ledger.total_messages == 0
        assert ledger.breakdown() == {}
        assert str(ledger) == "total rounds: 0"

    def test_add_and_totals(self):
        ledger = RoundLedger()
        ledger.add("phase-a", 3, messages=10, message_bytes=40)
        ledger.add("phase-b", 2, messages=5, message_bytes=20)
        assert ledger.total_rounds == 5
        assert ledger.total_messages == 15
        assert [p.name for p in ledger.phases] == ["phase-a", "phase-b"]

    def test_breakdown_sums_repeated_phase_names(self):
        ledger = RoundLedger()
        ledger.add("recurse", 4)
        ledger.add("recurse", 6)
        ledger.add("finish", 1)
        assert ledger.breakdown() == {"recurse": 10, "finish": 1}
        assert ledger.total_rounds == 11

    def test_add_run_copies_run_result_fields(self):
        run = RunResult(outputs={}, rounds=7, messages=9, message_bytes=33,
                        max_message_bytes=8)
        ledger = RoundLedger()
        ledger.add_run("bfs", run)
        (phase,) = ledger.phases
        assert phase == PhaseRecord("bfs", 7, 9, 33)

    def test_add_ledger_prefixes_absorbed_phases(self):
        inner = RoundLedger()
        inner.add("color", 5, messages=2)
        inner.add("sweep", 3)
        outer = RoundLedger()
        outer.add("setup", 1)
        outer.add_ledger(inner, prefix="mis/")
        assert outer.total_rounds == 9
        assert outer.breakdown() == {"setup": 1, "mis/color": 5, "mis/sweep": 3}
        # absorbing must copy, not alias
        inner.phases[0].rounds = 100
        assert outer.total_rounds == 9

    def test_str_lists_phases(self):
        ledger = RoundLedger()
        ledger.add("alpha", 2)
        ledger.add("beta", 3)
        text = str(ledger)
        assert "total rounds: 5" in text
        assert "alpha: 2" in text
        assert "beta: 3" in text
