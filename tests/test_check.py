"""The `repro check` static analyzer: rules, suppressions, output."""

import json
import os

import pytest

from typing import ClassVar

from repro.analysis.check import (
    RULES,
    check_paths,
    check_source,
    parse_suppressions,
    rule_ids,
)
from repro.analysis.check.core import get_rules
from repro.analysis.check.runner import (
    iter_python_files,
    render_github,
    render_human,
    render_json,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "check")

ALL_RULE_IDS = (
    "cache-key-stability",
    "congest-payload",
    "congest-remote-state",
    "determinism",
    "fork-thread-safety",
    "kernel-purity",
    "quiescence-safety",
)


def check_fixture(name, rule=None):
    path = os.path.join(FIXTURES, name)
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    rules = get_rules([rule]) if rule else None
    return check_source(path, source, rules)


class TestRegistry:
    def test_all_seven_rules_registered(self):
        assert set(ALL_RULE_IDS) <= set(rule_ids())

    def test_rule_ids_sorted(self):
        assert list(rule_ids()) == sorted(rule_ids())

    def test_every_rule_documented(self):
        for rid in rule_ids():
            rule = RULES[rid]
            assert rule.summary, rid
            assert rule.doc, rid
            assert rule.severity in ("error", "warning"), rid

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(KeyError) as exc:
            get_rules(["bogus"])
        assert "bogus" in str(exc.value)


class TestRulesFire:
    """Each rule fires on its violating fixture, stays quiet on the clean
    one — the acceptance criterion made a test."""

    FIXTURE_OF: ClassVar = {
        "congest-remote-state": "bad_remote_state.py",
        "congest-payload": "bad_payload.py",
        "determinism": "bad_determinism.py",
        "kernel-purity": "bad_kernel.py",
        "quiescence-safety": "bad_quiescence.py",
        "fork-thread-safety": "bad_fork.py",
        "cache-key-stability": "bad_cache_key.py",
    }

    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_rule_fires_on_violating_fixture(self, rule_id):
        findings, _ = check_fixture(self.FIXTURE_OF[rule_id], rule=rule_id)
        assert findings, f"{rule_id} silent on {self.FIXTURE_OF[rule_id]}"
        assert all(f.rule == rule_id for f in findings)
        assert all(f.line > 0 and f.col > 0 for f in findings)

    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_rule_quiet_on_clean_fixture(self, rule_id):
        findings, suppressed = check_fixture("clean_program.py", rule=rule_id)
        assert findings == []
        assert suppressed == []

    def test_remote_state_details(self):
        findings, _ = check_fixture(
            "bad_remote_state.py", rule="congest-remote-state"
        )
        messages = " ".join(f.message for f in findings)
        assert ".graph" in messages
        assert "ctx._outbox" in messages
        assert "SynchronousNetwork" in messages

    def test_determinism_catches_all_three_shapes(self):
        findings, _ = check_fixture("bad_determinism.py", rule="determinism")
        messages = " ".join(f.message for f in findings)
        assert "random.random" in messages
        assert "time.time" in messages
        assert "unordered set" in messages

    def test_kernel_purity_catches_all_three_shapes(self):
        findings, _ = check_fixture("bad_kernel.py", rule="kernel-purity")
        messages = " ".join(f.message for f in findings)
        assert "col.neighbors[...]" in messages
        assert ".sort()" in messages
        assert "self._last_run_rounds" in messages

    def test_fork_safety_catches_all_three_shapes(self):
        findings, _ = check_fixture("bad_fork.py", rule="fork-thread-safety")
        messages = " ".join(f.message for f in findings)
        assert "Thread was started" in messages
        assert "holding a lock" in messages
        assert "SharedMemory(create=True)" in messages

    def test_payload_findings_not_duplicated_per_subtree(self):
        """Only the outermost offending expression is reported."""
        findings, _ = check_fixture("bad_payload.py", rule="congest-payload")
        assert len(findings) == 3

    def test_seeded_random_instance_is_not_flagged(self):
        """random.Random(seed) is the sanctioned pattern (mis.py,
        baselines.py) — the rule must not flag it."""
        findings, _ = check_fixture("clean_program.py", rule="determinism")
        assert findings == []


class TestSuppressions:
    def test_parse_inline_and_standalone(self):
        sups = parse_suppressions(
            "x = 1  # repro: allow[determinism] replay harness\n"
            "# repro: allow[congest-payload]\n"
            "y = 2\n"
        )
        assert sups[1][0].rule == "determinism"
        assert sups[1][0].reason == "replay harness"
        assert sups[2][0].rule == "congest-payload"
        assert sups[2][0].reason == "(no reason given)"

    def test_suppressed_fixture_has_no_open_findings(self):
        findings, suppressed = check_fixture("suppressed.py")
        assert findings == []
        assert len(suppressed) == 3
        reasons = {s.suppression_reason for s in suppressed}
        assert "fixture exercises suppression plumbing" in reasons
        assert "(no reason given)" in reasons

    def test_suppression_covers_only_its_rule(self):
        source = (
            "from repro.simulator.program import NodeProgram\n"
            "import random\n"
            "class P(NodeProgram):\n"
            "    def on_start(self, ctx):\n"
            "        ctx.broadcast(random.random())  "
            "# repro: allow[congest-payload] wrong rule id\n"
        )
        findings, suppressed = check_source("p.py", source)
        assert [f.rule for f in findings] == ["determinism"]
        assert suppressed == []

    def test_wildcard_suppression(self):
        source = (
            "from repro.simulator.program import NodeProgram\n"
            "import random\n"
            "class P(NodeProgram):\n"
            "    def on_start(self, ctx):\n"
            "        ctx.broadcast(random.random())  "
            "# repro: allow[*] replay fixture\n"
        )
        findings, suppressed = check_source("p.py", source)
        assert findings == []
        assert [s.rule for s in suppressed] == ["determinism"]


class TestRunner:
    def test_iter_python_files_skips_caches(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        pycache = tmp_path / "__pycache__"
        pycache.mkdir()
        (pycache / "a.cpython-311.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        files = iter_python_files([str(tmp_path)])
        assert files == [str(tmp_path / "a.py")]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            iter_python_files(["/nonexistent/nowhere"])

    def test_syntax_error_is_a_finding_not_a_crash(self):
        findings, _ = check_source("broken.py", "def f(:\n")
        assert [f.rule for f in findings] == ["syntax-error"]
        assert findings[0].severity == "error"

    def test_check_paths_on_fixture_dir(self):
        result = check_paths([FIXTURES])
        assert result.files >= 9
        assert not result.ok
        fired = {f.rule for f in result.findings}
        assert set(ALL_RULE_IDS) <= fired

    def test_repo_sources_are_clean(self):
        """The shipped tree passes its own checker — the CI gate."""
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        result = check_paths(
            [
                os.path.join(root, "src"),
                os.path.join(root, "benchmarks"),
                os.path.join(root, "examples"),
            ]
        )
        assert result.ok, render_human(result)


class TestOutputFormats:
    def test_json_schema(self):
        result = check_paths([FIXTURES])
        doc = json.loads(render_json(result))
        assert doc["version"] == 1
        assert doc["files"] == result.files
        assert doc["summary"]["error"] > 0
        assert doc["summary"]["suppressed"] == len(result.suppressed)
        for f in doc["findings"]:
            assert set(f) == {
                "rule", "severity", "path", "line", "col", "message",
            }
            assert f["severity"] in ("error", "warning")
        # suppressions are surfaced with their reasons
        assert doc["suppressed"], "expected suppressed findings in fixtures"
        for s in doc["suppressed"]:
            assert s["suppressed"] is True
            assert s["suppression_reason"]

    def test_human_format(self):
        result = check_paths([os.path.join(FIXTURES, "bad_quiescence.py")])
        text = render_human(result)
        assert "error[quiescence-safety]" in text
        assert "bad_quiescence.py:" in text
        assert "repro check: 1 file(s)" in text

    def test_github_format(self):
        result = check_paths([os.path.join(FIXTURES, "bad_payload.py")])
        text = render_github(result)
        assert "::warning file=" in text
        assert "title=repro check [congest-payload]" in text

    def test_findings_sorted_by_location(self):
        result = check_paths([FIXTURES])
        keys = [f.sort_key() for f in result.findings]
        assert keys == sorted(keys)
