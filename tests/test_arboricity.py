"""Degeneracy, Nash–Williams bounds, pseudoarboricity (max-flow)."""

from hypothesis import given, settings, strategies as st

from repro import Graph
from repro.graphs import (
    arboricity_bounds,
    complete_graph,
    degeneracy,
    degeneracy_orientation,
    forest_union,
    grid,
    is_forest,
    nash_williams_lower_bound,
    path,
    planar_triangulation,
    pseudoarboricity,
    random_tree,
    ring,
)
from repro.verify import check_orientation_acyclic, orientation_max_out_degree


class TestDegeneracy:
    def test_tree_is_1_degenerate(self):
        k, order = degeneracy(random_tree(50, seed=1).graph)
        assert k == 1
        assert len(order) == 50

    def test_cycle_is_2_degenerate(self):
        k, _ = degeneracy(ring(10).graph)
        assert k == 2

    def test_complete_graph(self):
        k, _ = degeneracy(complete_graph(6).graph)
        assert k == 5

    def test_empty(self):
        assert degeneracy(Graph.empty(4))[0] == 0
        assert degeneracy(Graph([], []))[0] == 0

    def test_order_property(self):
        """Every vertex has ≤ k neighbours later in the order."""
        g = planar_triangulation(60, seed=2).graph
        k, order = degeneracy(g)
        pos = {v: i for i, v in enumerate(order)}
        for v in g.vertices:
            later = sum(1 for u in g.neighbors(v) if pos[u] > pos[v])
            assert later <= k

    def test_planar_at_most_5(self):
        k, _ = degeneracy(planar_triangulation(100, seed=3).graph)
        assert k <= 5


class TestDegeneracyOrientation:
    def test_acyclic_and_bounded(self):
        g = planar_triangulation(60, seed=4).graph
        orientation = degeneracy_orientation(g)
        check_orientation_acyclic(g, orientation)
        k, _ = degeneracy(g)
        assert orientation_max_out_degree(g, orientation) <= k

    def test_complete_on_all_edges(self):
        g = grid(5, 5).graph
        orientation = degeneracy_orientation(g)
        assert len(orientation.direction) == g.m


class TestNashWilliams:
    def test_forest_lower_bound_one(self):
        assert nash_williams_lower_bound(random_tree(40, seed=5).graph) == 1

    def test_complete_graph_exact(self):
        # a(K_n) = ceil(n/2); the whole-graph witness achieves it
        assert nash_williams_lower_bound(complete_graph(8).graph) == 4

    def test_tiny(self):
        assert nash_williams_lower_bound(Graph.empty(1)) == 0

    def test_lower_bounds_certified_generators(self):
        g = forest_union(120, 4, seed=6)
        assert nash_williams_lower_bound(g.graph) <= 4


class TestPseudoarboricity:
    def test_forest(self):
        assert pseudoarboricity(random_tree(30, seed=7).graph) == 1

    def test_cycle(self):
        assert pseudoarboricity(ring(12).graph) == 1  # orient around the cycle

    def test_complete_k4(self):
        # K4: max density ceil(6/4) = 2
        assert pseudoarboricity(complete_graph(4).graph) == 2

    def test_complete_k6(self):
        # K6: ceil(15/6) = 3
        assert pseudoarboricity(complete_graph(6).graph) == 3

    def test_empty(self):
        assert pseudoarboricity(Graph.empty(5)) == 0

    def test_sandwich(self):
        """pseudoarboricity ≤ arboricity certificate everywhere we generate."""
        for gen in (forest_union(80, 3, seed=8), planar_triangulation(60, seed=9)):
            p = pseudoarboricity(gen.graph)
            assert p <= gen.arboricity_bound


class TestArboricityBounds:
    def test_interval_valid(self):
        for gen in (
            forest_union(70, 3, seed=10),
            planar_triangulation(50, seed=11),
            ring(20),
        ):
            lo, hi = arboricity_bounds(gen.graph)
            assert 0 < lo <= hi
            assert hi <= gen.arboricity_bound + max(2, gen.arboricity_bound)

    def test_forest_exact(self):
        lo, hi = arboricity_bounds(random_tree(25, seed=12).graph)
        assert lo == 1
        assert hi <= 2  # pseudoarboricity 1 → a ∈ {1, 2}; degeneracy gives 1
        k, _ = degeneracy(random_tree(25, seed=12).graph)
        assert k == 1

    def test_empty(self):
        assert arboricity_bounds(Graph.empty(3)) == (0, 0)


class TestIsForest:
    def test_positive(self):
        assert is_forest(path(9).graph)
        assert is_forest(random_tree(30, seed=13).graph)
        assert is_forest(Graph.empty(4))

    def test_negative(self):
        assert not is_forest(ring(5).graph)
        assert not is_forest(complete_graph(3).graph)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=24),
    seed=st.integers(min_value=0, max_value=10_000),
    density=st.floats(min_value=0.05, max_value=0.6),
)
def test_property_degeneracy_brackets_arboricity(n, seed, density):
    """For random graphs: NW lower bound ≤ pseudoarboricity + 1 and the
    degeneracy orientation witnesses arboricity ≤ degeneracy."""
    from repro.graphs import erdos_renyi

    gen = erdos_renyi(n, density, seed=seed)
    g = gen.graph
    if g.m == 0:
        return
    k, _ = degeneracy(g)
    p = pseudoarboricity(g)
    lb = nash_williams_lower_bound(g)
    assert lb <= p + 1  # the NW witness cannot exceed the arboricity ≤ p+1
    assert p <= k  # the degeneracy orientation has out-degree ≤ k
    assert lb <= k  # lower bound below the degeneracy certificate
    assert k <= 2 * (p + 1) - 1  # degeneracy ≤ 2a − 1 ≤ 2(p+1) − 1
