"""The command-line interface."""

import os

import pytest

from repro.cli import COLORING_ALGORITHMS, FAMILIES, MIS_ALGORITHMS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["color"])
        assert args.family == "forest_union"
        assert args.n == 400
        assert args.algorithm == "cor46"


class TestCommands:
    def test_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        for name in FAMILIES:
            assert name in out

    @pytest.mark.parametrize("algorithm", sorted(COLORING_ALGORITHMS))
    def test_color_each_algorithm(self, algorithm, capsys):
        code = main(
            ["color", "--family", "forest_union", "--n", "120", "--a", "4",
             "--algorithm", algorithm]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "legal ✓" in out

    @pytest.mark.parametrize("algorithm", sorted(MIS_ALGORITHMS))
    def test_mis_each_algorithm(self, algorithm, capsys):
        code = main(
            ["mis", "--family", "tree", "--n", "120", "--algorithm", algorithm]
        )
        assert code == 0
        assert "independent+maximal ✓" in capsys.readouterr().out

    def test_decompose(self, capsys):
        assert main(["decompose", "--family", "planar", "--n", "100"]) == 0
        out = capsys.readouterr().out
        assert "H-partition" in out
        assert "forests" in out

    def test_color_on_various_families(self, capsys):
        for family in ("planar", "grid", "tree", "preferential", "hubs"):
            code = main(
                ["color", "--family", family, "--n", "100", "--a", "3"]
            )
            assert code == 0

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["color", "--family", "nonsense"])

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["color", "--algorithm", "nonsense"])


class TestCheckCommand:
    FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "check")

    def test_clean_fixture_exits_zero(self, capsys):
        code = main(["check", f"{self.FIXTURES}/clean_program.py"])
        assert code == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_bad_fixture_exits_one(self, capsys):
        code = main(["check", f"{self.FIXTURES}/bad_determinism.py"])
        assert code == 1
        assert "error[determinism]" in capsys.readouterr().out

    def test_json_format_parses(self, capsys):
        import json

        code = main(
            ["check", f"{self.FIXTURES}/bad_payload.py", "--format", "json"]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert all(f["rule"] == "congest-payload" for f in doc["findings"])

    def test_rule_filter(self, capsys):
        code = main(
            ["check", f"{self.FIXTURES}/bad_determinism.py",
             "--rule", "congest-payload"]
        )
        assert code == 0

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "congest-remote-state", "congest-payload", "determinism",
            "kernel-purity", "quiescence-safety", "fork-thread-safety",
            "cache-key-stability",
        ):
            assert rule_id in out

    def test_unknown_rule_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "--rule", "nonsense"])

    def test_missing_path_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "/nonexistent/nowhere"])
