"""The command-line interface."""

import pytest

from repro.cli import COLORING_ALGORITHMS, FAMILIES, MIS_ALGORITHMS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["color"])
        assert args.family == "forest_union"
        assert args.n == 400
        assert args.algorithm == "cor46"


class TestCommands:
    def test_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        for name in FAMILIES:
            assert name in out

    @pytest.mark.parametrize("algorithm", sorted(COLORING_ALGORITHMS))
    def test_color_each_algorithm(self, algorithm, capsys):
        code = main(
            ["color", "--family", "forest_union", "--n", "120", "--a", "4",
             "--algorithm", algorithm]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "legal ✓" in out

    @pytest.mark.parametrize("algorithm", sorted(MIS_ALGORITHMS))
    def test_mis_each_algorithm(self, algorithm, capsys):
        code = main(
            ["mis", "--family", "tree", "--n", "120", "--algorithm", algorithm]
        )
        assert code == 0
        assert "independent+maximal ✓" in capsys.readouterr().out

    def test_decompose(self, capsys):
        assert main(["decompose", "--family", "planar", "--n", "100"]) == 0
        out = capsys.readouterr().out
        assert "H-partition" in out
        assert "forests" in out

    def test_color_on_various_families(self, capsys):
        for family in ("planar", "grid", "tree", "preferential", "hubs"):
            code = main(
                ["color", "--family", family, "--n", "100", "--a", "3"]
            )
            assert code == 0

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["color", "--family", "nonsense"])

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["color", "--algorithm", "nonsense"])
