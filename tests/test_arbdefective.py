"""Arbdefective colorings: Theorem 3.2 and Corollary 3.6."""

import pytest

from repro import SynchronousNetwork
from repro.analysis import arbdefective_bound
from repro.core import (
    arbdefective_coloring,
    partial_orientation,
    simple_arbdefective,
)
from repro.errors import InvalidParameterError
from repro.graphs import forest_union
from repro.verify import (
    check_arbdefective_coloring,
    orientation_length,
)


class TestSimpleArbdefective:
    def test_theorem32_bounds(self, forest_graph, forest_net):
        a = forest_graph.arboricity_bound
        po = partial_orientation(forest_net, a, t=2)
        out_bound = int(po.params["out_degree_bound"])
        deficit = int(po.params["deficit_bound"])
        for k in (2, 3, 5):
            dec = simple_arbdefective(
                forest_net, po, k,
                out_degree_bound=out_bound, deficit_bound=deficit,
            )
            assert dec.num_parts <= k
            assert dec.arboricity_bound == deficit + out_bound // k
            check_arbdefective_coloring(
                forest_graph.graph, dec.label, dec.arboricity_bound, po
            )

    def test_rounds_at_most_length_plus_one(self, forest_graph, forest_net):
        a = forest_graph.arboricity_bound
        po = partial_orientation(forest_net, a, t=2)
        dec = simple_arbdefective(
            forest_net, po, 3,
            out_degree_bound=int(po.params["out_degree_bound"]),
        )
        assert dec.rounds <= orientation_length(forest_graph.graph, po) + 1

    def test_invalid_k(self, forest_graph, forest_net):
        po = partial_orientation(forest_net, forest_graph.arboricity_bound, t=1)
        with pytest.raises(InvalidParameterError):
            simple_arbdefective(forest_net, po, 0, out_degree_bound=5)

    def test_k_one_everything_same_part(self, forest_graph, forest_net):
        a = forest_graph.arboricity_bound
        po = partial_orientation(forest_net, a, t=1)
        dec = simple_arbdefective(
            forest_net, po, 1,
            out_degree_bound=int(po.params["out_degree_bound"]),
            deficit_bound=int(po.params["deficit_bound"]),
        )
        assert dec.num_parts == 1


class TestArbdefectiveColoring:
    def test_corollary36_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        a = family_graph.arboricity_bound
        dec = arbdefective_coloring(net, a, k=2, t=2)
        assert dec.num_parts <= 2
        # the achieved bound must match the paper's formula up to flooring
        assert dec.arboricity_bound <= arbdefective_bound(a, 2, 2, 0.5) + 1
        check_arbdefective_coloring(
            family_graph.graph, dec.label, dec.arboricity_bound,
            dec.params["orientation"],
        )

    def test_arboricity_shrinks_with_k_and_t(self):
        g = forest_union(400, 12, seed=21)
        net = SynchronousNetwork(g.graph)
        coarse = arbdefective_coloring(net, 12, k=2, t=2)
        fine = arbdefective_coloring(net, 12, k=6, t=6)
        assert fine.arboricity_bound < coarse.arboricity_bound
        assert fine.num_parts <= 6

    def test_decomposition_covers_graph(self, planar_graph, planar_net):
        dec = arbdefective_coloring(planar_net, 3, k=3, t=3)
        assert set(dec.label) == set(planar_graph.graph.vertices)
        assert all(0 <= c < 3 for c in dec.label.values())

    def test_parts_accessor(self, forest_graph, forest_net):
        dec = arbdefective_coloring(forest_net, forest_graph.arboricity_bound, k=2, t=2)
        parts = dec.parts()
        assert sum(len(vs) for vs in parts.values()) == forest_graph.n

    def test_rounds_grow_with_t(self):
        """Cor 3.6: runtime O(t² log n) — larger t costs more rounds than
        t=1 (longer intra-level color chains)."""
        g = forest_union(500, 9, seed=22)
        net = SynchronousNetwork(g.graph)
        fast = arbdefective_coloring(net, 9, k=3, t=1)
        slow = arbdefective_coloring(net, 9, k=3, t=3)
        # both must at least terminate well under the complete-orientation
        # cost; t=1 should not be slower than t=3
        assert fast.rounds <= slow.rounds + 2

    def test_invalid_a(self, forest_net):
        with pytest.raises(InvalidParameterError):
            arbdefective_coloring(forest_net, 0, k=2, t=2)
