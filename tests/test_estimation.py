"""Arboricity estimation by doubling, and coloring with unknown a."""

import pytest

from repro import SynchronousNetwork
from repro.core import (
    estimate_arboricity_bound,
    legal_coloring_auto,
    try_hpartition,
)
from repro.errors import InvalidParameterError
from repro.graphs import (
    complete_graph,
    forest_union,
    nash_williams_lower_bound,
    random_tree,
)
from repro.verify import check_hpartition, check_legal_coloring


class TestTryHPartition:
    def test_success_with_true_bound(self, forest_graph, forest_net):
        hp, rounds = try_hpartition(forest_net, forest_graph.arboricity_bound)
        assert hp is not None
        check_hpartition(forest_graph.graph, hp)
        assert rounds == hp.rounds

    def test_failure_with_underestimate(self):
        g = complete_graph(20)  # arboricity 10
        net = SynchronousNetwork(g.graph)
        hp, rounds = try_hpartition(net, 1)
        assert hp is None
        assert rounds > 0  # the attempt still costs its budget

    def test_invalid_candidate(self, forest_net):
        with pytest.raises(InvalidParameterError):
            try_hpartition(forest_net, 0)


class TestEstimate:
    def test_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        bound, hp, rounds = estimate_arboricity_bound(net)
        check_hpartition(family_graph.graph, hp)
        # upper-bound-ness: the H-partition at the bound succeeded, and the
        # doubling guarantees bound < 2·(true arboricity) + 2; compare
        # against the generator's certificate
        assert bound <= 2 * family_graph.arboricity_bound + 2

    def test_not_wildly_above_truth(self):
        g = forest_union(300, 8, seed=80)
        net = SynchronousNetwork(g.graph)
        bound, _hp, _rounds = estimate_arboricity_bound(net)
        lb = nash_williams_lower_bound(g.graph)
        assert bound <= 2 * 8 + 2
        assert bound >= max(1, lb // 4)  # sanity: not absurdly below either

    def test_tree_estimates_one_or_two(self):
        g = random_tree(100, seed=81)
        net = SynchronousNetwork(g.graph)
        bound, _, _ = estimate_arboricity_bound(net)
        assert bound <= 2

    def test_rounds_accumulate_over_attempts(self):
        """A high-arboricity graph needs several doubling attempts; each
        failed attempt contributes its budget to the total."""
        g = complete_graph(32)  # arboricity 16
        net = SynchronousNetwork(g.graph)
        bound, _, total = estimate_arboricity_bound(net)
        single_hp, single_rounds = try_hpartition(net, bound)
        assert single_hp is not None
        assert total > single_rounds

    def test_deterministic(self, forest_graph, forest_net):
        b1 = estimate_arboricity_bound(forest_net)
        b2 = estimate_arboricity_bound(forest_net)
        assert b1[0] == b2[0]
        assert b1[1].index == b2[1].index


class TestAutoColoring:
    def test_legal_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        result = legal_coloring_auto(net, eta=0.5)
        check_legal_coloring(family_graph.graph, result.colors)

    def test_round_breakdown(self, forest_graph, forest_net):
        result = legal_coloring_auto(forest_net, eta=0.5)
        assert result.rounds == (
            result.params["estimation_rounds"] + result.params["coloring_rounds"]
        )
        assert result.params["estimated_bound"] >= 1

    def test_colors_comparable_to_known_a(self):
        """Not knowing a costs rounds, not colors (the bound is within 2x)."""
        from repro.core import legal_coloring_corollary46

        g = forest_union(250, 6, seed=82)
        net = SynchronousNetwork(g.graph)
        auto = legal_coloring_auto(net, eta=0.5)
        known = legal_coloring_corollary46(net, 6, eta=0.5)
        check_legal_coloring(g.graph, auto.colors)
        assert auto.num_colors <= 4 * max(1, known.num_colors)
