"""Engine equivalence across the algorithm library.

Every engine in the registry must be an *observationally invisible*
optimisation over the ``dense`` reference: for every algorithm on every
instance, it must produce byte-identical results — the same outputs, the
same round count (the paper's complexity measure!), the same message and
byte accounting.  All result types are dataclasses, so ``==`` compares
every field including nested params.

The suite is parametrized over :func:`repro.simulator.engine_names`, so a
newly registered engine is pinned against the reference automatically.  It
runs every ``core/`` algorithm under every engine on a forest-union, a
planar-triangulation, and a preferential-attachment instance — including
programs with no column kernel, which exercises the column engine's
fallback path; a separate test checks raw :class:`RunResult` equality (all
five fields, with byte counting on) for programs that declare quiescence.
"""

import pytest

from typing import ClassVar

from repro import SynchronousNetwork
from repro.core import (
    arb_kuhn_decomposition,
    arbdefective_coloring,
    be08_coloring,
    cole_vishkin_forest,
    complete_orientation,
    compute_hpartition,
    delta_plus_one_via_arboricity,
    forest_mis,
    forests_decomposition,
    kuhn_defective_coloring,
    legal_coloring_auto,
    legal_coloring_corollary44,
    legal_coloring_corollary46,
    legal_coloring_theorem43,
    legal_coloring_tradeoff45,
    linial_coloring,
    luby_coloring,
    luby_mis,
    mis_arboricity,
    oneshot_legal_coloring,
    partial_orientation,
    root_forest_by_bfs,
    ruling_set,
    theorem52_fast_coloring,
    theorem53_tradeoff,
)
from repro.graphs import (
    forest_union,
    planar_triangulation,
    preferential_attachment,
    random_tree,
)
from repro.simulator import MessageTrace, engine_names

#: every registered engine that must match the dense reference
CANDIDATE_ENGINES = [e for e in engine_names() if e != "dense"]

INSTANCES = [
    ("forest_union", lambda: forest_union(150, 3, seed=21)),
    ("planar", lambda: planar_triangulation(110, seed=22)),
    ("preferential", lambda: preferential_attachment(130, 3, seed=23)),
]

ALGORITHMS = [
    ("hpartition", lambda net, a: compute_hpartition(net, a)),
    ("forests", lambda net, a: forests_decomposition(net, a)),
    ("complete_orientation", lambda net, a: complete_orientation(net, a)),
    ("partial_orientation", lambda net, a: partial_orientation(net, a, t=2)),
    ("arbdefective", lambda net, a: arbdefective_coloring(net, a, k=2, t=2)),
    ("arb_kuhn", lambda net, a: arb_kuhn_decomposition(net, a, defect=2)),
    ("thm52", lambda net, a: theorem52_fast_coloring(net, a, d=2)),
    ("thm53", lambda net, a: theorem53_tradeoff(net, a, t=2)),
    ("oneshot_legal", lambda net, a: oneshot_legal_coloring(net, a)),
    ("thm43", lambda net, a: legal_coloring_theorem43(net, a, mu=0.5)),
    ("cor44", lambda net, a: legal_coloring_corollary44(net, a, mu=0.5)),
    ("tradeoff45", lambda net, a: legal_coloring_tradeoff45(net, a, f_value=4)),
    ("cor46", lambda net, a: legal_coloring_corollary46(net, a, eta=0.5)),
    ("delta_plus_one", lambda net, a: delta_plus_one_via_arboricity(net, a)),
    ("auto", lambda net, a: legal_coloring_auto(net)),
    ("linial", lambda net, a: linial_coloring(net)),
    ("kuhn_defective", lambda net, a: kuhn_defective_coloring(net, p=3)),
    ("mis_arboricity", lambda net, a: mis_arboricity(net, a)),
    ("luby_mis", lambda net, a: luby_mis(net, seed=5)),
    ("ruling_set", lambda net, a: ruling_set(net)),
    ("be08", lambda net, a: be08_coloring(net, a)),
    ("luby_coloring", lambda net, a: luby_coloring(net, seed=5)),
]


@pytest.fixture(scope="module", params=INSTANCES, ids=lambda p: p[0])
def instance(request):
    gen = request.param[1]()
    nets = {
        engine: SynchronousNetwork(gen.graph, scheduler=engine)
        for engine in engine_names()
    }
    return gen, nets


@pytest.mark.parametrize("engine", CANDIDATE_ENGINES)
@pytest.mark.parametrize("name,algo", ALGORITHMS, ids=[a[0] for a in ALGORITHMS])
def test_engines_agree_with_dense(instance, engine, name, algo):
    gen, nets = instance
    a = gen.arboricity_bound
    dense = algo(nets["dense"], a)
    candidate = algo(nets[engine], a)
    # dataclass equality: every field, including rounds and nested params
    assert dense == candidate


@pytest.mark.parametrize("engine", CANDIDATE_ENGINES)
def test_forest_programs_agree(engine):
    gen = random_tree(90, seed=31)
    parent_of = root_forest_by_bfs(gen.graph)
    dense_net = SynchronousNetwork(gen.graph, scheduler="dense")
    other_net = SynchronousNetwork(gen.graph, scheduler=engine)
    assert cole_vishkin_forest(dense_net, parent_of) == cole_vishkin_forest(
        other_net, parent_of
    )
    assert forest_mis(dense_net, parent_of) == forest_mis(other_net, parent_of)


@pytest.mark.parametrize("engine", CANDIDATE_ENGINES)
@pytest.mark.parametrize("inst_name,make", INSTANCES, ids=[i[0] for i in INSTANCES])
def test_run_results_byte_identical(inst_name, make, engine):
    """Raw RunResult equality — all five fields, byte accounting on — for a
    pipeline whose programs all declare quiescence (H-partition feeding the
    color-class MIS sweep via the full Theorem 4.3 stack).  Both programs
    have column kernels, so for ``engine="column"`` this pins the kernels'
    message/byte accounting against the reference, not just the outputs."""
    from repro.core.hpartition import HPartitionProgram, degree_threshold
    from repro.core.mis import _ColorClassMISProgram
    from repro.core.legal import legal_coloring_theorem43

    gen = make()
    net_dense = SynchronousNetwork(gen.graph, scheduler="dense")
    net_other = SynchronousNetwork(gen.graph, scheduler=engine)
    threshold = degree_threshold(gen.arboricity_bound, 0.5)

    r_dense = net_dense.run(
        lambda: HPartitionProgram(threshold), count_bytes=True
    )
    r_other = net_other.run(
        lambda: HPartitionProgram(threshold), count_bytes=True
    )
    assert r_dense == r_other  # outputs, rounds, messages, bytes, max bytes

    coloring = legal_coloring_theorem43(net_other, gen.arboricity_bound, 0.5)
    normalized = coloring.normalized()
    sweep = lambda net: net.run(
        lambda: _ColorClassMISProgram(lambda v: normalized.colors[v]),
        count_bytes=True,
    )
    assert sweep(net_dense) == sweep(net_other)


class TestMessageTraceEquivalence:
    """The full message log — not just the aggregate accounting — is
    byte-identical across schedulers, including through stall phases the
    event engine fast-forwards without executing a round loop for."""

    @staticmethod
    def _traced(scheduler, graph, runner):
        from repro.obs import RoundTelemetry

        net = SynchronousNetwork(graph, scheduler=scheduler)
        trace = MessageTrace()
        telemetry = RoundTelemetry()
        original_run = net.run

        def run_traced(*args, **kwargs):
            kwargs.setdefault("trace", trace)
            kwargs.setdefault("telemetry", telemetry)
            return original_run(*args, **kwargs)

        net.run = run_traced
        runner(net)
        return trace, telemetry

    TRACED_ALGORITHMS: ClassVar = [
        ("mis_arboricity", lambda net, a: mis_arboricity(net, a)),
        ("ruling_set", lambda net, a: ruling_set(net)),
        ("cor46", lambda net, a: legal_coloring_corollary46(net, a, eta=0.5)),
    ]

    @pytest.mark.parametrize(
        "name,algo", TRACED_ALGORITHMS, ids=[a[0] for a in TRACED_ALGORITHMS]
    )
    def test_trace_identical_across_schedulers(self, name, algo):
        gen = forest_union(150, 3, seed=21)
        a = gen.arboricity_bound
        dense_trace, _ = self._traced(
            "dense", gen.graph, lambda net: algo(net, a)
        )
        event_trace, _ = self._traced(
            "event", gen.graph, lambda net: algo(net, a)
        )
        # every message: round number, endpoints, payload, and size
        assert dense_trace.messages == event_trace.messages

    def test_trace_identical_through_fast_forwarded_rounds(self):
        """A sparse color palette leaves multi-round gaps between class
        activations: the event engine must fast-forward those empty rounds
        without executing them, yet keep the message log — including every
        round number — byte-identical to the dense reference."""
        from repro.core import greedy_reduction

        gen = forest_union(150, 3, seed=21)
        graph = gen.graph
        target = graph.max_degree + 1
        colors = {v: 7 * v for v in graph.vertices}  # classes 7 rounds apart

        def workload(net):
            return greedy_reduction(net, dict(colors), 7 * graph.n, target)

        dense_trace, dense_tel = self._traced("dense", graph, workload)
        event_trace, event_tel = self._traced("event", graph, workload)
        assert event_tel.fast_forwarded > 0  # the gaps were actually skipped
        assert dense_tel.fast_forwarded == 0  # dense executes every round
        assert dense_trace.messages == event_trace.messages
        # aggregate accounting agrees with the per-message log too
        assert dense_tel.total_messages == event_tel.total_messages
        assert event_tel.total_messages == len(event_trace)
        assert dense_tel.message_rounds() == event_tel.message_rounds()

    def test_trace_as_telemetry_matches_trace_argument(self):
        """``telemetry=MessageTrace()`` records exactly what ``trace=`` does."""
        from repro.core.hpartition import HPartitionProgram, degree_threshold

        gen = forest_union(120, 3, seed=21)
        threshold = degree_threshold(gen.arboricity_bound, 0.5)
        as_trace = MessageTrace()
        SynchronousNetwork(gen.graph).run(
            lambda: HPartitionProgram(threshold), trace=as_trace
        )
        as_telemetry = MessageTrace()
        SynchronousNetwork(gen.graph).run(
            lambda: HPartitionProgram(threshold), telemetry=as_telemetry
        )
        assert as_trace.messages == as_telemetry.messages


def test_per_run_scheduler_override():
    """run(scheduler=...) overrides the network default, and an invalid
    name is rejected."""
    from repro.errors import SimulationError

    gen = forest_union(60, 2, seed=7)
    net = SynchronousNetwork(gen.graph)  # event by default
    assert net.scheduler == "event"
    a = ruling_set(net)
    dense = SynchronousNetwork(gen.graph, scheduler="dense")
    assert ruling_set(dense) == a
    with pytest.raises(SimulationError):
        net.run(lambda: None, scheduler="bogus")
    with pytest.raises(SimulationError):
        SynchronousNetwork(gen.graph, scheduler="bogus")
