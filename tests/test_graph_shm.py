"""Graph shared-memory interchange: ``to_shm``/``from_shm`` round trips,
segment lifecycle, and the GraphStore publish/attach/fallback paths."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.experiments import GraphStore, ShmGraphRef, shm_available
from repro.experiments.graphstore import resolve_graph
from repro.experiments.spec import TrialSpec
from repro.graphs import (
    erdos_renyi,
    forest_union,
    grid,
    hypercube,
    planar_triangulation,
    random_geometric,
    random_tree,
    ring,
)
from repro.graphs.graph import Graph

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)

#: generator family -> builder(n, seed), exercised by the round-trip tests
_BUILDERS = {
    "forest_union": lambda n, seed: forest_union(n, 3, seed=seed),
    "planar": lambda n, seed: planar_triangulation(n, seed=seed),
    "tree": lambda n, seed: random_tree(n, seed=seed),
    "ring": lambda n, seed: ring(n),
    "grid": lambda n, seed: grid(max(2, n // 8), 8),
    "hypercube": lambda n, seed: hypercube(max(2, (n - 1).bit_length())),
    "erdos_renyi": lambda n, seed: erdos_renyi(n, 0.05, seed=seed),
    "random_geometric": lambda n, seed: random_geometric(n, 0.15, seed=seed),
}


def _assert_byte_identical(a: Graph, b: Graph) -> None:
    """The CSR arrays, ids, and derived views of two graphs match exactly."""
    assert a == b
    assert a.vertices == b.vertices
    assert a.edges == b.edges
    assert bytes(a.csr()[0]) == bytes(b.csr()[0])
    assert bytes(a.csr()[1]) == bytes(b.csr()[1])
    assert a.duplicate_edges_dropped == b.duplicate_edges_dropped
    assert a.max_degree == b.max_degree


def _round_trip(g: Graph) -> None:
    shm = g.to_shm()
    try:
        attached = Graph.from_shm(shm.name)
        assert attached.shm_backed and not g.shm_backed
        _assert_byte_identical(g, attached)
        del attached
    finally:
        shm.close()
        shm.unlink()


class TestRoundTrip:
    @settings(max_examples=24, deadline=None)
    @given(
        family=st.sampled_from(sorted(_BUILDERS)),
        n=st.integers(min_value=8, max_value=96),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_families_round_trip_byte_identical(self, family, n, seed):
        _round_trip(_BUILDERS[family](n, seed).graph)

    def test_empty_and_edgeless_graphs(self):
        _round_trip(Graph.empty(0))
        _round_trip(Graph.empty(17))

    def test_non_contiguous_ids_round_trip(self):
        g = forest_union(60, 3, seed=1).graph
        sub = g.induced_subgraph([3, 5, 9, 10, 41, 42, 57])
        assert not sub.ids_contiguous
        _round_trip(sub)

    def test_attached_graph_supports_hot_paths(self):
        gen = forest_union(120, 3, seed=2)
        shm = gen.graph.to_shm()
        try:
            h = Graph.from_shm(shm.name)
            # id API, index API, and derived-graph paths all work on views
            assert h.neighbors(5) == gen.graph.neighbors(5)
            assert h.degree(5) == gen.graph.degree(5)
            assert list(h.neighbors_index(7)) == list(
                gen.graph.neighbors_index(7)
            )
            assert h.induced_subgraph(range(40)) == gen.graph.induced_subgraph(
                range(40)
            )
            rel, _ = h.relabeled()
            assert rel.n == h.n
            del h, rel
        finally:
            shm.close()
            shm.unlink()

    def test_pickling_attached_graph_materialises(self):
        g = planar_triangulation(50, seed=0).graph
        shm = g.to_shm()
        try:
            h = Graph.from_shm(shm.name)
            copy = pickle.loads(pickle.dumps(h))
            del h
        finally:
            shm.close()
            shm.unlink()
        # the copy owns its arrays: fully usable after the segment is gone
        assert not copy.shm_backed
        _assert_byte_identical(g, copy)


class TestLifecycle:
    def test_segment_cleanup_on_close_unlink(self):
        g = forest_union(40, 2, seed=0).graph
        shm = g.to_shm()
        name = shm.name
        h = Graph.from_shm(name)
        del h  # releases the attachment's views
        shm.close()
        shm.unlink()
        with pytest.raises(FileNotFoundError):
            Graph.from_shm(name)

    def test_bad_segment_rejected(self):
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=64)
        try:
            with pytest.raises(InvalidParameterError):
                Graph.from_shm(seg.name)
        finally:
            seg.close()
            seg.unlink()

    def test_graphstore_close_unlinks_everything(self):
        trial = TrialSpec(family="tree", algorithm="cor46", seed=1,
                          family_params={"n": 30})
        store = GraphStore(use_shm=True)
        ref = store.payload_graph(trial, for_pool=True)
        assert isinstance(ref, ShmGraphRef)
        name = ref.shm_name
        # attachable while the store is open
        gen, source = resolve_graph(ref)
        assert source == "shm"
        assert gen.graph.shm_backed
        assert gen.n == 30
        del gen
        # close() unlinks the segment AND evicts this process's attach
        # cache entry for it (no manual cache surgery needed)
        from repro.experiments import graphstore as gs

        store.close()
        assert (name, ref.graph_key) not in gs._ATTACHED
        with pytest.raises(FileNotFoundError):
            Graph.from_shm(name)
        assert store.close() is None  # idempotent

    def test_adopted_segment_is_owned_like_a_published_one(self):
        """adopt_segment: the parent takes over a segment it did not build
        (the overlapped scheduler's worker hand-off) — minting refs and
        unlinking on close work exactly as for parent-published graphs."""
        gen = forest_union(40, 2, seed=3)
        trial = TrialSpec(family="forest_union", algorithm="cor46", seed=3,
                          family_params={"n": 40, "a": 2})
        gkey = trial.graph_key()
        # "worker side": publish under a chosen name, drop the local map
        seg = gen.graph.to_shm()
        name = seg.name
        seg.close()
        # "parent side": adopt, mint, consume
        store = GraphStore(use_shm=True)
        store.adopt_segment(gkey, name, name=gen.name,
                            arboricity_bound=gen.arboricity_bound,
                            params=dict(gen.params), build_s=0.01)
        assert store.builds == 1
        assert store.build_s == pytest.approx(0.01)
        ref = store.mint(gkey)
        assert isinstance(ref, ShmGraphRef) and ref.shm_name == name
        attached, source = resolve_graph(ref)
        assert source == "shm"
        assert attached.graph == gen.graph
        # first mint consumed the build; the second is a reuse
        store.mint(gkey)
        assert (store.builds, store.reuses) == (1, 1)
        del attached
        store.close()
        with pytest.raises(FileNotFoundError):
            Graph.from_shm(name)

    def test_expected_but_unadopted_segments_are_reclaimed_on_close(self):
        """A segment name promised to a worker whose build result never
        came back (interrupt / pool crash mid-overlap) is unlinked by
        close() even though the store never attached it."""
        from multiprocessing import shared_memory

        g = forest_union(30, 2, seed=0).graph
        seg = g.to_shm()
        name = seg.name
        seg.close()  # the "worker" wrote it and went away
        store = GraphStore(use_shm=True)
        store.expect_segment("deadbeef", name)
        store.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        # absent segments are fine too (worker died before to_shm)
        store2 = GraphStore(use_shm=True)
        store2.expect_segment("deadbeef", name)
        store2.close()  # no raise


class TestAttachCache:
    """The worker-side attach cache must never serve a stale graph and must
    not accumulate dead attachments across sweeps in a long-lived process."""

    def _publish(self, gen, name=None):
        seg = gen.graph.to_shm(name=name)
        seg.close()
        return ShmGraphRef(
            graph_key=TrialSpec(
                family=gen.name, algorithm="x", seed=0,
                family_params=dict(gen.params),
            ).graph_key(),
            shm_name=seg.name,
            name=gen.name,
            arboricity_bound=gen.arboricity_bound,
            params=dict(gen.params),
        )

    def test_recycled_segment_name_never_serves_stale_graph(self):
        """If the OS hands a later sweep the same segment name for
        *different* content, the content-keyed cache evicts the stale
        attachment instead of serving it."""
        from repro.experiments import graphstore as gs
        from repro.experiments.graphstore import _unlink_segment

        a = forest_union(40, 2, seed=0)
        ref_a = self._publish(a)
        try:
            gen_a, _ = resolve_graph(ref_a)
            assert gen_a.n == 40
            # sweep 1 ends without evicting (simulating the old bug's
            # environment: a long-lived process with a dirty cache)
            _unlink_segment(ref_a.shm_name)
            # sweep 2: the OS recycles the exact segment name for new bytes
            b = random_tree(24, seed=9)
            seg_b = b.graph.to_shm(name=ref_a.shm_name)
            seg_b.close()
            ref_b = ShmGraphRef(
                graph_key="different-content-key",
                shm_name=ref_a.shm_name,
                name=b.name,
                arboricity_bound=b.arboricity_bound,
                params=dict(b.params),
            )
            gen_b, _ = resolve_graph(ref_b)
            assert gen_b.n == 24  # the new graph, not the stale one
            assert gen_b.graph == b.graph
            # and the stale same-name entry was evicted, not retained
            stale = [k for k in gs._ATTACHED
                     if k[0] == ref_a.shm_name and k[1] == ref_a.graph_key]
            assert stale == []
        finally:
            gs.detach_segments([ref_a.shm_name])
            _unlink_segment(ref_a.shm_name)

    def test_two_sweeps_do_not_accumulate_attachments(self):
        """GraphStore.close() evicts this process's attach-cache entries
        for its segments, so back-to-back sweeps leave no dead entries."""
        from repro.experiments import graphstore as gs

        before = dict(gs._ATTACHED)
        for seed in (0, 1):
            trial = TrialSpec(family="tree", algorithm="cor46", seed=seed,
                              family_params={"n": 24})
            with GraphStore(use_shm=True) as store:
                ref = store.payload_graph(trial, for_pool=True)
                gen, _ = resolve_graph(ref)
                assert (ref.shm_name, ref.graph_key) in gs._ATTACHED
                del gen
        assert gs._ATTACHED == before  # nothing survived either sweep


class TestStoreFallbacks:
    def test_store_dedups_builds_by_graph_key(self):
        store = GraphStore(use_shm=False)
        t1 = TrialSpec(family="tree", algorithm="cor46", seed=1,
                       family_params={"n": 30})
        t2 = TrialSpec(family="tree", algorithm="be08", seed=1,
                       family_params={"n": 30})  # same graph, other algorithm
        t3 = TrialSpec(family="tree", algorithm="cor46", seed=2,
                       family_params={"n": 30})  # different seed: new graph
        assert t1.graph_key() == t2.graph_key() != t3.graph_key()
        g1 = store.get(t1)
        assert store.get(t2) is g1
        assert store.get(t3) is not g1
        assert (store.builds, store.reuses) == (2, 1)

    def test_no_shm_env_forces_pickle_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        store = GraphStore()
        assert store.use_shm is False
        trial = TrialSpec(family="tree", algorithm="cor46", seed=0,
                          family_params={"n": 24})
        payload = store.payload_graph(trial, for_pool=True)
        # the graph itself rides in the payload (pool pickles it)
        gen, source = resolve_graph(payload)
        assert source == "pickled"
        assert not gen.graph.shm_backed
        # fallback equality: pickle round trip == shm round trip == built
        copy = pickle.loads(pickle.dumps(gen))
        _assert_byte_identical(gen.graph, copy.graph)
        assert copy.arboricity_bound == gen.arboricity_bound
        store.close()
