"""The engine registry and the column engine's dispatch semantics."""

import pytest

import repro
from repro import SynchronousNetwork
from repro.core.hpartition import HPartitionProgram, degree_threshold
from repro.errors import SimulationError
from repro.graphs import forest_union
from repro.obs import RoundTelemetry
from repro.simulator import (
    Engine,
    MessageTrace,
    engine_names,
    get_engine,
    register_engine,
)
from repro.simulator.engines import ENGINES


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert {"dense", "event", "column"} <= set(engine_names())

    def test_engine_names_sorted(self):
        assert list(engine_names()) == sorted(engine_names())

    def test_unknown_engine_error_lists_registered(self):
        with pytest.raises(SimulationError) as exc:
            get_engine("bogus")
        msg = str(exc.value)
        assert "bogus" in msg
        for name in engine_names():
            assert name in msg

    def test_get_engine_returns_registered_instance(self):
        eng = get_engine("event")
        assert isinstance(eng, Engine)
        assert eng.name == "event"

    def test_shadowing_builtin_warns_outside_pytest(self, monkeypatch):
        monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
        original = ENGINES["event"]
        try:
            with pytest.warns(RuntimeWarning, match="shadows the built-in"):

                @register_engine("event")
                class ShadowEngine(Engine):
                    def execute(self, run):
                        original.execute(run)

        finally:
            ENGINES["event"] = original

    def test_shadowing_builtin_silent_under_pytest(self, recwarn):
        # PYTEST_CURRENT_TEST is set here, so the shadow is sanctioned.
        original = ENGINES["event"]
        try:

            @register_engine("event")
            class QuietShadow(Engine):
                def execute(self, run):
                    original.execute(run)

        finally:
            ENGINES["event"] = original
        assert not [w for w in recwarn if w.category is RuntimeWarning]

    def test_registering_fresh_name_never_warns(self, monkeypatch, recwarn):
        monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
        try:

            @register_engine("test-fresh")
            class FreshEngine(Engine):
                def execute(self, run):
                    raise NotImplementedError

        finally:
            del ENGINES["test-fresh"]
        assert not [w for w in recwarn if w.category is RuntimeWarning]

    def test_register_engine_is_visible_to_networks(self):
        event = get_engine("event")

        @register_engine("test-proxy")
        class ProxyEngine(Engine):
            def execute(self, run):
                event.execute(run)

        try:
            assert "test-proxy" in engine_names()
            gen = forest_union(40, 2, seed=3)
            net = SynchronousNetwork(gen.graph, scheduler="test-proxy")
            threshold = degree_threshold(2, 0.5)
            got = net.run(lambda: HPartitionProgram(threshold))
            want = SynchronousNetwork(gen.graph).run(
                lambda: HPartitionProgram(threshold)
            )
            assert got == want
        finally:
            del ENGINES["test-proxy"]
        with pytest.raises(SimulationError):
            get_engine("test-proxy")

    def test_top_level_api_exports(self):
        for name in (
            "Graph",
            "SynchronousNetwork",
            "run_sweep",
            "ScenarioSpec",
            "SweepSpec",
            "Engine",
            "register_engine",
            "engine_names",
            "get_engine",
            "forest_union_bulk",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None


def _hp_run(net, gen, **kwargs):
    threshold = degree_threshold(gen.arboricity_bound, 0.5)
    return net.run(lambda: HPartitionProgram(threshold), **kwargs)


class TestColumnDispatch:
    """Which engine actually executes is observable via telemetry: the
    ``scheduler`` reported to ``on_run_start`` is the *executing* engine."""

    def test_kernel_program_runs_on_column(self):
        gen = forest_union(80, 2, seed=5)
        net = SynchronousNetwork(gen.graph, scheduler="column")
        tel = RoundTelemetry()
        _hp_run(net, gen, telemetry=tel)
        assert tel.scheduler == "column"

    def test_program_without_kernel_falls_back_to_event(self):
        from repro.core.mis import _LubyProgram

        gen = forest_union(80, 2, seed=5)
        net = SynchronousNetwork(gen.graph, scheduler="column")
        tel = RoundTelemetry()
        net.run(lambda: _LubyProgram(3), telemetry=tel)
        assert tel.scheduler == "event"

    def test_trace_request_falls_back_to_event(self):
        gen = forest_union(80, 2, seed=5)
        net = SynchronousNetwork(gen.graph, scheduler="column")
        tel = RoundTelemetry()
        trace = MessageTrace()
        _hp_run(net, gen, telemetry=tel, trace=trace)
        assert tel.scheduler == "event"
        assert len(trace) > 0

    def test_subgraph_run_falls_back_to_event(self):
        gen = forest_union(80, 2, seed=5)
        net = SynchronousNetwork(gen.graph, scheduler="column")
        tel = RoundTelemetry()
        participants = list(range(0, 80, 2))
        _hp_run(net, gen, telemetry=tel, participants=participants)
        assert tel.scheduler == "event"

    def test_telemetry_round_stream_matches_event(self):
        """The engine-independent telemetry view — per-round message and
        byte counts — is identical between column and event."""
        gen = forest_union(120, 3, seed=9)
        tels = {}
        for engine in ("event", "column"):
            net = SynchronousNetwork(gen.graph, scheduler=engine)
            tel = tels[engine] = RoundTelemetry(count_bytes=True)
            _hp_run(net, gen, telemetry=tel)
        assert tels["column"].scheduler == "column"  # kernel actually ran
        assert (
            tels["column"].message_rounds() == tels["event"].message_rounds()
        )
        assert tels["column"].total_messages == tels["event"].total_messages
        assert tels["column"].total_bytes == tels["event"].total_bytes
        assert len(tels["column"].samples) == len(tels["event"].samples)


class TestSchedulerKnob:
    """The sweep layer's engine selection: spec -> trial -> provenance."""

    def test_trial_key_stable_when_scheduler_unset(self):
        from repro.experiments.spec import TrialSpec

        t = TrialSpec(family="forest_union", algorithm="linial", seed=3)
        assert "scheduler" not in t.to_dict()  # legacy cache keys unchanged

    def test_scheduler_flows_into_key_and_round_trips(self):
        from repro.experiments.spec import ScenarioSpec, TrialSpec

        base = TrialSpec(family="forest_union", algorithm="linial", seed=3)
        col = TrialSpec(
            family="forest_union", algorithm="linial", seed=3,
            scheduler="column",
        )
        assert col.key() != base.key()
        assert TrialSpec.from_dict(col.to_dict()) == col
        sc = ScenarioSpec(
            family="forest_union", algorithm="linial",
            scheduler="column", num_seeds=2,
        )
        assert all(t.scheduler == "column" for t in sc.trials())
        assert ScenarioSpec.from_dict(sc.to_dict()).scheduler == "column"

    def test_scheduler_does_not_shift_derived_seeds(self):
        """Engine A/B cells must run on the *same* graphs."""
        from repro.experiments.spec import ScenarioSpec

        mk = lambda sched: ScenarioSpec(
            family="forest_union", algorithm="linial",
            scheduler=sched, num_seeds=3,
        )
        assert mk("column").resolved_seeds() == mk("").resolved_seeds()

    def test_execute_trial_records_and_uses_engine(self):
        from repro.experiments.registry import execute_trial
        from repro.experiments.spec import TrialSpec

        mk = lambda sched: TrialSpec(
            family="forest_union", algorithm="mis_arboricity", seed=1,
            family_params={"n": 60, "a": 2}, scheduler=sched,
        ).to_dict()
        rec_col = execute_trial(mk("column"))
        rec_def = execute_trial(mk(""))
        assert rec_col["provenance"]["scheduler"] == "column"
        assert rec_def["provenance"]["scheduler"] == "event"
        # engine choice never leaks into metrics
        assert rec_col["metrics"] == rec_def["metrics"]
