"""Forest specialists: parent maps, rooting, O(log* n) forest MIS."""

import pytest

from repro import Graph, SynchronousNetwork
from repro.analysis import log_star
from repro.core import (
    forest_mis,
    forest_parent_map,
    forests_decomposition,
    root_forest_by_bfs,
)
from repro.errors import InvalidParameterError
from repro.graphs import binary_tree, disjoint_union, path, random_tree, ring, star
from repro.verify import check_mis


class TestRootForest:
    def test_path(self):
        g = path(5).graph
        parent = root_forest_by_bfs(g)
        assert parent[0] is None
        # every non-root has exactly one parent, and parents are neighbours
        for v in g.vertices:
            if parent[v] is not None:
                assert g.has_edge(v, parent[v])
        assert sum(1 for p in parent.values() if p is None) == 1

    def test_forest_many_components(self):
        gen = disjoint_union([random_tree(20, seed=1), random_tree(30, seed=2)])
        parent = root_forest_by_bfs(gen.graph)
        roots = [v for v, p in parent.items() if p is None]
        assert len(roots) == 2

    def test_rejects_cycle(self):
        with pytest.raises(InvalidParameterError, match="not a forest"):
            root_forest_by_bfs(ring(5).graph)

    def test_isolated_vertices_are_roots(self):
        g = Graph(range(4), [(0, 1)])
        parent = root_forest_by_bfs(g)
        assert parent[2] is None and parent[3] is None


class TestForestParentMap:
    def test_from_decomposition(self, forest_graph, forest_net):
        fd = forests_decomposition(forest_net, forest_graph.arboricity_bound)
        g = forest_graph.graph
        for f in range(min(3, fd.num_forests)):
            parent = forest_parent_map(g, fd, f)
            # each forest edge appears as exactly one parent pointer
            assert (
                sum(1 for p in parent.values() if p is not None)
                == len(fd.forest_edges(f))
            )
            for v, p in parent.items():
                if p is not None:
                    assert g.has_edge(v, p)

    def test_invalid_index(self, forest_graph, forest_net):
        fd = forests_decomposition(forest_net, forest_graph.arboricity_bound)
        with pytest.raises(InvalidParameterError):
            forest_parent_map(forest_graph.graph, fd, fd.num_forests + 1)


class TestForestMIS:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: path(30).graph,
            lambda: star(25).graph,
            lambda: binary_tree(5).graph,
            lambda: random_tree(150, seed=3).graph,
        ],
        ids=["path", "star", "binary", "random"],
    )
    def test_valid_mis(self, make):
        g = make()
        net = SynchronousNetwork(g)
        parent = root_forest_by_bfs(g)
        mis = forest_mis(net, parent)
        check_mis(g, mis.members)

    def test_log_star_rounds(self):
        g = random_tree(2000, seed=4).graph
        net = SynchronousNetwork(g)
        mis = forest_mis(net, root_forest_by_bfs(g))
        check_mis(g, mis.members)
        # CV iterations + shift/removal + <= 2 sweep rounds
        assert mis.rounds <= log_star(2000) + 12

    def test_mis_of_forest_inside_graph(self, forest_graph, forest_net):
        """MIS of forest 0 of a decomposition: independent and maximal
        *within that forest*, even though the ambient graph is denser."""
        fd = forests_decomposition(forest_net, forest_graph.arboricity_bound)
        g = forest_graph.graph
        parent = forest_parent_map(g, fd, 0)
        forest_edges = [(v, p) for v, p in parent.items() if p is not None]
        forest = Graph(g.vertices, forest_edges)
        mis = forest_mis(forest_net, parent)
        check_mis(forest, mis.members)

    def test_round_breakdown(self):
        g = random_tree(100, seed=5).graph
        net = SynchronousNetwork(g)
        mis = forest_mis(net, root_forest_by_bfs(g))
        assert mis.rounds == (
            mis.params["coloring_rounds"] + mis.params["sweep_rounds"]
        )
        assert mis.params["sweep_rounds"] <= 2
