"""H-partition (Lemma 2.3): defining property, level counts, failure modes."""


import pytest

from repro import SynchronousNetwork
from repro.core import compute_hpartition, degree_threshold, expected_num_levels
from repro.errors import InvalidParameterError, SimulationError
from repro.graphs import complete_graph, forest_union, ring
from repro.verify import check_hpartition


class TestDegreeThreshold:
    def test_values(self):
        assert degree_threshold(4, 0.5) == 10
        assert degree_threshold(1, 0.5) == 2
        assert degree_threshold(10, 1.0) == 30

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            degree_threshold(0, 0.5)
        with pytest.raises(InvalidParameterError):
            degree_threshold(3, 0.0)


class TestHPartition:
    def test_property_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        hp = compute_hpartition(net, family_graph.arboricity_bound)
        check_hpartition(family_graph.graph, hp)

    def test_rounds_equal_levels(self, forest_graph, forest_net):
        hp = compute_hpartition(forest_net, forest_graph.arboricity_bound)
        assert hp.rounds == hp.num_levels

    def test_levels_logarithmic(self):
        """ℓ stays near the log_{(2+ε)/2} n bound as n grows."""
        for n in (64, 256, 1024):
            g = forest_union(n, 3, seed=n)
            hp = compute_hpartition(SynchronousNetwork(g.graph), 3)
            bound = expected_num_levels(n, 0.5)
            assert hp.num_levels <= bound

    def test_all_vertices_assigned(self, forest_graph, forest_net):
        hp = compute_hpartition(forest_net, forest_graph.arboricity_bound)
        assert set(hp.index) == set(forest_graph.graph.vertices)
        assert all(i >= 1 for i in hp.index.values())

    def test_tree_single_level_often(self):
        """A star has every leaf (and then the hub) at low levels."""
        from repro.graphs import star

        g = star(30)
        hp = compute_hpartition(SynchronousNetwork(g.graph), 1)
        check_hpartition(g.graph, hp)
        assert hp.num_levels <= 2

    def test_levels_accessors(self, forest_graph, forest_net):
        hp = compute_hpartition(forest_net, forest_graph.arboricity_bound)
        levels = hp.levels()
        assert sum(len(vs) for vs in levels.values()) == forest_graph.n
        for i, vs in levels.items():
            assert set(hp.level(i)) == set(vs)

    def test_underestimated_arboricity_fails_loudly(self):
        """K12 has arboricity 6; claiming a=1 must raise, not hang."""
        g = complete_graph(12)
        net = SynchronousNetwork(g.graph)
        with pytest.raises(SimulationError, match="arboricity"):
            compute_hpartition(net, 1)

    def test_on_subgraph(self, forest_graph, forest_net):
        verts = list(forest_graph.graph.vertices)[: forest_graph.n // 2]
        hp = compute_hpartition(
            forest_net, forest_graph.arboricity_bound, participants=verts
        )
        sub = forest_graph.graph.induced_subgraph(verts)
        check_hpartition(sub, hp)

    def test_epsilon_tradeoff(self):
        """Larger ε ⇒ higher threshold ⇒ no more levels than smaller ε."""
        g = forest_union(400, 4, seed=17)
        net = SynchronousNetwork(g.graph)
        tight = compute_hpartition(net, 4, epsilon=0.1)
        loose = compute_hpartition(net, 4, epsilon=2.0)
        assert loose.num_levels <= tight.num_levels
        assert loose.degree_bound > tight.degree_bound

    def test_ring_two_levels_max(self):
        g = ring(100)
        hp = compute_hpartition(SynchronousNetwork(g.graph), 2)
        # threshold = 5 >= every degree: everything leaves in round 1
        assert hp.num_levels == 1

    def test_deterministic(self, forest_graph, forest_net):
        hp1 = compute_hpartition(forest_net, forest_graph.arboricity_bound)
        hp2 = compute_hpartition(forest_net, forest_graph.arboricity_bound)
        assert hp1.index == hp2.index


class TestExpectedNumLevels:
    def test_monotone_in_n(self):
        assert expected_num_levels(10, 0.5) <= expected_num_levels(10_000, 0.5)

    def test_tiny(self):
        assert expected_num_levels(1, 0.5) == 1
