"""The sweep engine: specs, content-addressed cache, staged runner,
aggregation, and the ``repro sweep`` CLI surface."""

import json
import os
import subprocess
import sys
import time

import pytest

from typing import ClassVar

from repro.cli import main
from repro.errors import InvalidParameterError
from repro.experiments import (
    ALGORITHMS,
    STAGES,
    AlgorithmSpec,
    ResultCache,
    ScenarioSpec,
    SweepSpec,
    TrialSpec,
    default_workers,
    derive_seed,
    execute_trial,
    grid_scenarios,
    percentile,
    report_table,
    run_sweep,
    stage_timing_table,
    summarize,
)


def tiny_spec(n=48, num_seeds=2):
    """A fast multi-family, multi-algorithm sweep for tests."""
    return SweepSpec(
        "tiny",
        grid_scenarios(
            families=[
                {"name": "forest_union", "n": n, "a": 2},
                {"name": "tree", "n": n},
            ],
            algorithms=[{"name": "cor46"}, {"name": "mis_arboricity"}],
            num_seeds=num_seeds,
        ),
    )


class TestSpec:
    def test_json_round_trip(self):
        spec = tiny_spec()
        again = SweepSpec.from_json(spec.to_json())
        assert again.to_dict() == spec.to_dict()
        assert [t.key() for t in again.trials()] == [
            t.key() for t in spec.trials()
        ]

    def test_trial_key_is_stable_and_param_sensitive(self):
        t = TrialSpec(family="tree", algorithm="cor46", seed=3,
                      family_params={"n": 50})
        same = TrialSpec.from_dict(t.to_dict())
        assert t.key() == same.key()
        other = TrialSpec(family="tree", algorithm="cor46", seed=3,
                          family_params={"n": 51})
        assert t.key() != other.key()
        assert t.key() != TrialSpec(family="tree", algorithm="be08", seed=3,
                                    family_params={"n": 50}).key()

    def test_derived_seeds_are_deterministic_and_scenario_local(self):
        sc = ScenarioSpec(family="tree", algorithm="cor46",
                          family_params={"n": 30}, num_seeds=3)
        assert sc.resolved_seeds() == sc.resolved_seeds()
        assert len(set(sc.resolved_seeds())) == 3
        # a different cell derives different seeds (no shared counter)
        other = ScenarioSpec(family="tree", algorithm="be08",
                             family_params={"n": 30}, num_seeds=3)
        assert sc.resolved_seeds() != other.resolved_seeds()

    def test_explicit_seeds_win(self):
        sc = ScenarioSpec(family="tree", algorithm="cor46", seeds=[7, 9])
        assert [t.seed for t in sc.trials()] == [7, 9]

    def test_derive_seed_range(self):
        for i in range(50):
            s = derive_seed("x", i)
            assert 0 <= s < 2**31

    def test_grid_scenarios_cartesian(self):
        spec = tiny_spec(num_seeds=3)
        assert len(spec.scenarios) == 4
        assert len(spec.trials()) == 12


class TestExecuteTrial:
    def test_record_shape_and_verification(self):
        t = TrialSpec(family="forest_union", algorithm="cor46", seed=1,
                      family_params={"n": 40, "a": 2})
        rec = execute_trial(t.to_dict())
        assert rec["key"] == t.key()
        assert rec["metrics"]["verified"] is True
        assert rec["metrics"]["colors"] >= 1
        assert rec["metrics"]["n"] == 40
        json.dumps(rec)  # the record must be JSON-serialisable for the cache

    def test_unknown_algorithm(self):
        t = TrialSpec(family="tree", algorithm="nope")
        with pytest.raises(InvalidParameterError):
            execute_trial(t.to_dict())

    def test_unknown_family(self):
        t = TrialSpec(family="nope", algorithm="cor46")
        with pytest.raises(InvalidParameterError):
            execute_trial(t.to_dict())

    def test_bad_family_params(self):
        t = TrialSpec(family="tree", algorithm="cor46",
                      family_params={"bogus": 1})
        with pytest.raises(InvalidParameterError):
            execute_trial(t.to_dict())

    def test_deterministic_metrics(self):
        t = TrialSpec(family="forest_union", algorithm="luby_coloring",
                      seed=5, family_params={"n": 40, "a": 2})
        a = execute_trial(t.to_dict())["metrics"]
        b = execute_trial(t.to_dict())["metrics"]
        assert a == b

    def test_record_carries_stage_timings_and_provenance(self):
        t = TrialSpec(family="tree", algorithm="forests", seed=2,
                      family_params={"n": 40})
        rec = execute_trial(t.to_dict())
        assert tuple(rec["stages"]) == STAGES  # all four, in order
        assert all(v >= 0.0 for v in rec["stages"].values())
        assert rec["elapsed_s"] == pytest.approx(
            sum(rec["stages"].values()), abs=1e-6
        )
        assert rec["provenance"]["graph_source"] == "built"
        assert rec["provenance"]["pid"] == os.getpid()
        json.dumps(rec)  # stages/provenance must stay cacheable

    def test_wall_times_never_leak_into_metrics(self):
        t = TrialSpec(family="tree", algorithm="cor46", seed=0,
                      family_params={"n": 30})
        rec = execute_trial(t.to_dict())
        assert "stages" not in rec["metrics"]
        assert "elapsed_s" not in rec["metrics"]
        assert "provenance" not in rec["metrics"]


class TestCache:
    def test_put_get_and_persistence(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = ResultCache(path)
        assert cache.get("0" * 64) is None
        rec = {"key": "ab" + "0" * 62, "trial": {}, "metrics": {"rounds": 3}}
        cache.put(rec)
        assert cache.get(rec["key"]) == rec
        # a fresh instance reloads from disk
        again = ResultCache(path)
        assert again.get(rec["key"]) == rec
        assert again.stats() == (1, 0, 0)
        assert len(again) == 1

    def test_sharding_by_key_prefix(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put({"key": "aa" + "0" * 62, "metrics": {}})
        cache.put({"key": "bb" + "0" * 62, "metrics": {}})
        names = sorted(
            n for n in os.listdir(str(tmp_path / "cache"))
            if n.endswith(".jsonl")
        )
        assert names == ["aa.jsonl", "bb.jsonl"]

    def test_truncated_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = ResultCache(path)
        good = {"key": "cc" + "0" * 62, "metrics": {"rounds": 1}}
        cache.put(good)
        # simulate a crash mid-append: a truncated trailing line
        with open(os.path.join(path, "cc.jsonl"), "a", encoding="utf-8") as fh:
            fh.write('{"key": "cc11", "metr')
        again = ResultCache(path)
        assert again.get(good["key"]) == good
        assert again.corrupt_lines == 1
        # the damage is surfaced, not silently swallowed
        assert again.stats() == (1, 0, 1)

    def test_last_writer_wins_and_compact(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = ResultCache(path)
        key = "dd" + "0" * 62
        cache.put({"key": key, "metrics": {"rounds": 1}})
        cache.put({"key": key, "metrics": {"rounds": 2}})
        again = ResultCache(path)
        assert again.get(key)["metrics"]["rounds"] == 2
        assert again.compact() == 1  # one shadowed line dropped
        final = ResultCache(path)
        assert final.get(key)["metrics"]["rounds"] == 2

    def test_compact_keeps_concurrent_writer_records(self, tmp_path):
        """Regression: compact() must not rewrite shards from a stale
        in-memory view — a second writer's appends landed on disk after
        this process loaded, and used to be silently discarded."""
        path = str(tmp_path / "cache")
        writer_a = ResultCache(path)
        key_old = "ee" + "0" * 62
        writer_a.put({"key": key_old, "metrics": {"rounds": 1}})  # a is loaded

        # a second process appends to the same shard and shadows a's record
        writer_b = ResultCache(path)
        key_new = "ee" + "1" * 62
        writer_b.put({"key": key_new, "metrics": {"rounds": 9}})
        writer_b.put({"key": key_old, "metrics": {"rounds": 2}})

        dropped = writer_a.compact()  # stale view: must re-read, not rewrite
        assert dropped == 1  # only the shadowed key_old line goes

        fresh = ResultCache(path)
        assert fresh.get(key_new)["metrics"]["rounds"] == 9
        assert fresh.get(key_old)["metrics"]["rounds"] == 2
        # and the compacting instance refreshed its own view from disk
        assert writer_a.get(key_new)["metrics"]["rounds"] == 9
        assert writer_a.get(key_old)["metrics"]["rounds"] == 2


class TestRunner:
    def test_second_run_is_fully_cached_with_identical_report(self, tmp_path):
        """Acceptance: an identical re-invocation is served >= 90% from the
        cache and aggregates to byte-identical output."""
        spec = tiny_spec()
        cache = ResultCache(str(tmp_path / "cache"))
        first = run_sweep(spec, cache=cache)
        assert first.cache_hits == 0
        assert first.cache_misses == first.num_trials == 8

        cache2 = ResultCache(str(tmp_path / "cache"))
        second = run_sweep(spec, cache=cache2)
        assert second.num_trials == first.num_trials
        assert second.hit_rate >= 0.9  # in fact 1.0
        assert second.cache_misses == 0
        assert report_table(second) == report_table(first)
        for a, b in zip(first, second, strict=True):
            assert a.metrics == b.metrics

    def test_no_cache_recomputes(self):
        spec = tiny_spec(num_seeds=1)
        res = run_sweep(spec)
        assert res.cache_hits == 0
        assert res.num_trials == 4
        assert all(not tr.cached for tr in res)

    def test_parallel_matches_serial(self, tmp_path):
        spec = tiny_spec(num_seeds=1)
        serial = run_sweep(spec)
        parallel = run_sweep(spec, workers=2)
        assert [t.metrics for t in serial] == [t.metrics for t in parallel]

    def test_results_in_spec_order(self):
        spec = tiny_spec(num_seeds=1)
        res = run_sweep(spec)
        expected = [(t.family, t.algorithm, t.seed) for t in spec.trials()]
        got = [(t.trial.family, t.trial.algorithm, t.trial.seed) for t in res]
        assert got == expected

    def test_duplicate_trials_counted_once(self, tmp_path):
        """Regression: a sweep listing the same trial twice computes it once
        and must account exactly one miss (not one per occurrence)."""
        dup = SweepSpec(
            "dup",
            [ScenarioSpec(family="tree", algorithm="cor46",
                          family_params={"n": 30}, seeds=[3, 3])],
        )
        cache = ResultCache(str(tmp_path / "cache"))
        first = run_sweep(dup, cache=cache)
        assert first.num_trials == 2  # both occurrences are reported...
        assert first.cache_misses == 1  # ...but the unique key missed once
        assert first.cache_hits == 0
        assert first.hit_rate == 0.0
        assert first.results[0].metrics == first.results[1].metrics

        second = run_sweep(dup, cache=ResultCache(str(tmp_path / "cache")))
        assert second.cache_hits == 1
        assert second.cache_misses == 0
        assert second.hit_rate == 1.0
        assert all(tr.cached for tr in second)

    def test_duplicate_trials_probe_the_cache_once(self, tmp_path):
        """Regression: the cache object's own hit/miss counters must agree
        with SweepResult — one probe per unique key, not per occurrence (a
        duplicated trial used to inflate ``ResultCache.hits``, making
        ``cache.stats()`` disagree with ``SweepResult.hit_rate``)."""
        dup = SweepSpec(
            "dup-stats",
            [ScenarioSpec(family="tree", algorithm="cor46",
                          family_params={"n": 30}, seeds=[5, 5, 5])],
        )
        cache = ResultCache(str(tmp_path / "cache"))
        first = run_sweep(dup, cache=cache)
        assert cache.stats() == (0, 1, 0)
        assert cache.stats()[:2] == (first.cache_hits, first.cache_misses)

        cache2 = ResultCache(str(tmp_path / "cache"))
        second = run_sweep(dup, cache=cache2)
        assert cache2.stats() == (1, 0, 0)
        assert cache2.stats()[:2] == (second.cache_hits, second.cache_misses)
        assert second.hit_rate == 1.0

    def test_interrupted_sweep_resumes(self, tmp_path):
        """A cache warmed by a prefix of the sweep only recomputes the rest."""
        spec = tiny_spec()
        half = SweepSpec("half", spec.scenarios[:2])
        cache = ResultCache(str(tmp_path / "cache"))
        run_sweep(half, cache=cache)
        full = run_sweep(spec, cache=ResultCache(str(tmp_path / "cache")))
        assert full.cache_hits == len(half.trials())
        assert full.cache_misses == full.num_trials - len(half.trials())

    def test_workers_below_one_is_an_error(self):
        for bad in (0, -3):
            with pytest.raises(InvalidParameterError, match="workers"):
                run_sweep(tiny_spec(num_seeds=1), workers=bad)
        with pytest.raises(InvalidParameterError, match="workers"):
            run_sweep(tiny_spec(num_seeds=1), workers=2.0)


class TestOverlappedBuilds:
    """The overlapped build pipeline: shared graphs built in the pool,
    streamed lazily, with bounded parent memory and airtight segment
    cleanup on interrupts."""

    @staticmethod
    def _shared_spec(num_graphs, n=60):
        """Every graph shared by two algorithm cells (explicit seeds)."""
        return SweepSpec(
            "overlap",
            grid_scenarios(
                families=[{"name": "forest_union", "n": n, "a": 2}],
                algorithms=[{"name": "cor46"}, {"name": "forests"}],
                seeds=list(range(num_graphs)),
            ),
        )

    @staticmethod
    def _spy_store(monkeypatch):
        """Capture the GraphStore instance run_sweep creates internally."""
        import repro.experiments.runner as runner_mod
        from repro.experiments import GraphStore

        created = []

        class Spy(GraphStore):
            def __init__(self, *a, **kw):
                super().__init__(*a, **kw)
                created.append(self)

        monkeypatch.setattr(runner_mod, "GraphStore", Spy)
        return created

    def test_no_shm_pool_keeps_only_graphs_still_ahead(self, monkeypatch):
        """Regression: the pickle-fallback pool path used to materialise
        every payload (each holding the graph) before dispatch, so all
        shared graphs were live at once and the remaining-count eviction
        freed nothing.  With the lazy stream and its build-dispatch
        backpressure window (pool size + 2), the parent can never hold
        more than ``window + 1`` graphs at once, however fast the builds
        return — each copy is dropped with its last dispatched trial."""
        num_graphs = 8
        workers = 2
        window = workers + 2  # the runner's backpressure window
        created = self._spy_store(monkeypatch)
        res = run_sweep(self._shared_spec(num_graphs), workers=workers,
                        use_shm=False)
        (store,) = created
        assert res.graph_builds == num_graphs
        assert store.live_peak >= 1  # graphs really were adopted in-process
        assert store.live_peak <= window + 1
        assert store.live_peak < num_graphs
        assert len(store) == 0  # nothing survives the sweep

    def test_interrupt_mid_overlap_leaks_no_segments(self, monkeypatch):
        """A KeyboardInterrupt while builds are overlapped with execution
        must not leak shared-memory segments — including segments a worker
        published that the parent never got to adopt."""
        from repro.experiments import shm_available

        if not shm_available():
            pytest.skip("no shared memory here")
        from multiprocessing import shared_memory

        # record every segment name the runner promises to a worker
        import repro.experiments.graphstore as gs

        seen_names = []
        orig_expect = gs.GraphStore.expect_segment
        monkeypatch.setattr(
            gs.GraphStore, "expect_segment",
            lambda self, gkey, name: (seen_names.append(name),
                                      orig_expect(self, gkey, name))[-1],
        )

        hits = {"n": 0}

        def interrupting_progress(msg):
            if "[" in msg:  # a trial completion line: builds are in flight
                hits["n"] += 1
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(self._shared_spec(4, n=120), workers=2,
                      progress=interrupting_progress)
        assert hits["n"] == 1
        assert seen_names  # the overlapped path really ran
        for name in seen_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_worker_exception_mid_overlap_leaks_no_segments(self, monkeypatch):
        """Same guarantee when a worker crashes: the error propagates and
        every promised segment is reclaimed."""
        from repro.experiments import shm_available

        if not shm_available():
            pytest.skip("no shared memory here")
        from multiprocessing import shared_memory

        import repro.experiments.graphstore as gs

        seen_names = []
        orig_expect = gs.GraphStore.expect_segment
        monkeypatch.setattr(
            gs.GraphStore, "expect_segment",
            lambda self, gkey, name: (seen_names.append(name),
                                      orig_expect(self, gkey, name))[-1],
        )
        # verification fails in the worker: luby_mis params are invalid
        spec = SweepSpec(
            "crash-overlap",
            grid_scenarios(
                families=[{"name": "forest_union", "n": 60, "a": 2}],
                algorithms=[{"name": "cor46"},
                            {"name": "cor46", "eta": "bogus"}],
                seeds=[0, 1],
            ),
        )
        with pytest.raises(ValueError):
            run_sweep(spec, workers=2)
        assert seen_names
        for name in seen_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_overlap_accounting_matches_prebuild(self):
        spec = self._shared_spec(3)
        overlapped = run_sweep(spec, workers=2)
        prebuilt = run_sweep(spec, workers=2, overlap_builds=False)
        assert overlapped.build_overlap
        assert not prebuilt.build_overlap
        assert (overlapped.graph_builds, overlapped.graph_reuses) == (
            prebuilt.graph_builds, prebuilt.graph_reuses,
        )
        assert [t.metrics for t in overlapped] == [t.metrics for t in prebuilt]

    def test_stage_timings_surface_build_overlap(self):
        spec = self._shared_spec(2)
        overlapped = run_sweep(spec, workers=2)
        table = stage_timing_table(overlapped)
        assert "overlapped with pool execution" in table
        prebuilt = run_sweep(spec, workers=2, overlap_builds=False)
        assert "built before dispatch" in stage_timing_table(prebuilt)


class TestDefaultWorkers:
    def test_default_cap_is_eight(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == max(1, min(os.cpu_count() or 1, 8))

    def test_env_overrides_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert default_workers() == max(1, min(os.cpu_count() or 1, 2))
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "999")
        assert default_workers() == max(1, min(os.cpu_count() or 1, 999))

    def test_invalid_env_is_a_clear_error(self, monkeypatch):
        for bad in ("zero", "0", "-4", "2.5"):
            monkeypatch.setenv("REPRO_WORKERS", bad)
            with pytest.raises(InvalidParameterError, match="REPRO_WORKERS"):
                default_workers()


class TestStreamingPersistence:
    """Fresh records land in the cache as each trial completes, so a sweep
    that dies mid-run resumes from every finished trial."""

    def test_crash_mid_sweep_keeps_finished_trials(self, tmp_path, monkeypatch):
        calls = {"n": 0}

        def _boom(net, gen, seed, params):
            calls["n"] += 1
            if calls["n"] > 2:
                raise RuntimeError("injected crash")
            return ALGORITHMS["cor46"].run(net, gen, seed, params)

        monkeypatch.setitem(
            ALGORITHMS, "flaky", AlgorithmSpec("coloring", _boom)
        )
        spec = SweepSpec(
            "crashy",
            [ScenarioSpec(family="tree", algorithm="flaky",
                          family_params={"n": 30}, seeds=[0, 1, 2, 3])],
        )
        cache_dir = str(tmp_path / "cache")
        with pytest.raises(RuntimeError, match="injected crash"):
            run_sweep(spec, cache=ResultCache(cache_dir))
        # the two completed trials were persisted before the crash...
        assert len(ResultCache(cache_dir)) == 2

        # ...and the retry serves them from cache, computing only the rest
        calls["n"] = -10_000  # stay on the happy path this time
        again = run_sweep(spec, cache=ResultCache(cache_dir))
        assert again.cache_hits == 2
        assert again.cache_misses == 2
        assert all(tr.metrics["verified"] for tr in again)

    @pytest.mark.parametrize(
        "extra",
        [
            [],
            ["--executor", "socket", "--spawn-workers", "2"],
        ],
        ids=["pool", "socket"],
    )
    def test_kill_mid_sweep_resumes_from_disk(self, tmp_path, extra):
        """The real thing: SIGKILL a sweep process, then resume.

        Streaming writes mean whatever finished before the kill is on disk
        (each record is one atomic append); the rerun must serve exactly
        those trials from cache and compute only the remainder.  Runs once
        through the default local pool and once through a socket
        coordinator with loopback workers — killing the coordinator must
        lose nothing that completed either (and its orphaned workers exit
        on their own when the connection drops).
        """
        cache_dir = str(tmp_path / "cache")
        args = ["sweep", "--n", "150", "--seeds", "2", "--workers", "2",
                "--cache-dir", cache_dir, *extra]
        env = dict(os.environ, PYTHONPATH=os.pathsep.join(
            filter(None, [os.path.join(os.path.dirname(__file__), "..", "src"),
                          os.environ.get("PYTHONPATH", "")])
        ))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            cache = ResultCache(cache_dir)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if cache.refresh() >= 1 or proc.poll() is not None:
                    break
                time.sleep(0.005)
            else:
                pytest.fail("no record appeared within 60s")
        finally:
            proc.kill()
            proc.wait()
        survived = ResultCache(cache_dir).refresh()
        assert survived >= 1  # streaming writes: something finished, it's there

        # resume the very same spec against the survivors: everything that
        # finished before the kill is a hit, only the remainder recomputes
        from repro.cli import _default_sweep_spec

        spec = _default_sweep_spec(150, 2)
        unique = len({t.key() for t in spec.trials()})
        resumed = run_sweep(spec, cache=ResultCache(cache_dir))
        assert resumed.cache_hits >= survived
        assert resumed.cache_hits + resumed.cache_misses == unique
        assert len(ResultCache(cache_dir)) == unique
        assert all(tr.metrics["verified"] for tr in resumed)


class TestAggregate:
    def test_percentile_interpolation(self):
        vals = [1, 2, 3, 4]
        assert percentile(vals, 0) == 1
        assert percentile(vals, 100) == 4
        assert percentile(vals, 50) == 2.5
        assert percentile([5], 95) == 5

    def test_percentile_domain(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_summarize_groups_and_stats(self):
        spec = tiny_spec()
        res = run_sweep(spec)
        groups = summarize(res.results)
        assert len(groups) == 4  # 2 families x 2 algorithms
        for g in groups:
            assert g.count == 2
            assert g.stat("rounds", "p50") is not None
            # booleans (verified) are not aggregated as numbers
            assert "verified" not in g.metrics
        kinds = {(g.group["family"], g.group["algorithm"]) for g in groups}
        assert ("tree", "cor46") in kinds

    def test_report_table_mixes_kinds(self):
        res = run_sweep(tiny_spec(num_seeds=1))
        table = report_table(res)
        assert "colors p50" in table
        assert "|MIS| p50" in table
        assert "4 trials" in table

    def test_stage_timing_table_means_and_untimed_records(self):
        res = run_sweep(tiny_spec(num_seeds=1))
        table = stage_timing_table(res)
        for header in ("trials", "timed", "cached", "build_graph ms",
                       "run_algorithm ms", "verify ms", "metrics ms",
                       "total ms"):
            assert header in table

    @staticmethod
    def _timed_trial(seed, stages, cached):
        from repro.experiments import TrialResult

        return TrialResult(
            trial=TrialSpec(family="tree", algorithm="cor46", seed=seed,
                            family_params={"n": 30}),
            metrics={"rounds": 3}, stages=stages, cached=cached,
        )

    @staticmethod
    def _row_cells(table, *needles):
        rows = [ln for ln in table.splitlines()
                if all(n in ln for n in needles)]
        assert len(rows) == 1, (needles, table)
        return [c.strip() for c in rows[0].strip().strip("|").split("|")]

    def test_stage_timing_table_mixes_cached_and_fresh(self):
        """A group mixing fresh trials, cache hits that kept their timings,
        and a pre-staged record with no ``stages`` at all: the untimed
        record counts as a cached row and is excluded from the means
        instead of being dropped or zero-filled."""
        from repro.experiments import SweepResult

        full = {"build_graph": 0.010, "run_algorithm": 0.020,
                "verify": 0.002, "metrics": 0.001}
        hit = {"build_graph": 0.030, "run_algorithm": 0.040,
               "verify": 0.004, "metrics": 0.003}
        mixed = SweepResult(name="mixed", results=[
            self._timed_trial(0, full, cached=False),
            self._timed_trial(1, hit, cached=True),   # hit carrying timings
            self._timed_trial(2, {}, cached=True),    # pre-staged: no stages
        ])
        cells = self._row_cells(stage_timing_table(mixed), "tree", "cor46")
        # family, algorithm, trials, timed, cached, 4 stage means, total
        assert cells[2:5] == ["3", "2", "2"]
        # means over the 2 timed trials only, rendered in milliseconds
        assert float(cells[5]) == pytest.approx(20.0)  # build_graph
        assert float(cells[6]) == pytest.approx(30.0)  # run_algorithm
        assert "-" not in cells[5:]

    def test_stage_timing_table_all_cached_group_untimed(self):
        """A group of only pre-staged records renders ``-`` means (never
        fabricated zeros) but still shows its trial and cached counts."""
        from repro.experiments import SweepResult

        legacy = SweepResult(name="legacy", results=[
            self._timed_trial(0, {}, cached=True),
            self._timed_trial(1, {}, cached=True),
        ])
        table = stage_timing_table(legacy)
        cells = self._row_cells(table, "tree", "cor46")
        assert cells[2:5] == ["2", "0", "2"]
        assert set(cells[5:]) == {"-"}
        assert "pre-staged cache records carry no timings" in table


class TestPhaseBreakdowns:
    """Composite algorithms surface their RoundLedger next to — never
    inside — the deterministic metrics, and the breakdown survives the
    cache round-trip byte-for-byte."""

    @staticmethod
    def phase_spec():
        return SweepSpec(
            "phases",
            grid_scenarios(
                families=[{"name": "forest_union", "n": 40, "a": 2}],
                algorithms=[{"name": "mis_arboricity"}, {"name": "forests"},
                            {"name": "linial"}],
                seeds=[0],
            ),
        )

    EXPECTED: ClassVar = {
        "mis_arboricity": ["coloring_thm43", "color_class_sweep"],
        "forests": ["hpartition", "forest_labeling"],
    }

    def test_composite_algorithms_report_phases(self):
        res = run_sweep(self.phase_spec())
        by_algo = {tr.trial.algorithm: tr for tr in res}
        for algo, phase_names in self.EXPECTED.items():
            tr = by_algo[algo]
            assert [p["name"] for p in tr.phases] == phase_names
            # the phases tile the reported round complexity exactly
            assert sum(p["rounds"] for p in tr.phases) == tr.metrics["rounds"]
            for p in tr.phases:
                assert p["messages"] >= 0 and p["message_bytes"] >= 0
            # phases live next to metrics, never inside: aggregate reports
            # stay byte-identical to the pre-ledger engine
            assert "phases" not in tr.metrics
        # single-run algorithms simply report none
        assert by_algo["linial"].phases == []

    def test_phases_round_trip_through_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fresh = run_sweep(self.phase_spec(), cache=cache)
        again = run_sweep(self.phase_spec(), cache=cache)
        assert again.cache_hits == again.num_trials
        fresh_phases = {tr.key: tr.phases for tr in fresh}
        again_phases = {tr.key: tr.phases for tr in again}
        assert fresh_phases == again_phases
        assert any(fresh_phases.values())  # the comparison is not vacuous

    def test_phases_rehydrate_as_ledger(self):
        from repro.simulator import RoundLedger

        res = run_sweep(self.phase_spec())
        tr = next(t for t in res if t.trial.algorithm == "mis_arboricity")
        ledger = RoundLedger.from_dicts(tr.phases)
        assert ledger.to_dicts() == tr.phases
        assert [p.name for p in ledger.phases] == self.EXPECTED["mis_arboricity"]


class TestSweepCLI:
    def _run(self, capsys, *extra):
        rc = main(["sweep", "--n", "40", "--seeds", "1", "--workers", "1",
                   *extra])
        assert rc == 0
        return capsys.readouterr().out

    def test_sweep_twice_hits_cache_with_identical_report(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        out1 = self._run(capsys, "--cache-dir", cache, "--report")
        assert "0 hit(s)" in out1
        out2 = self._run(capsys, "--cache-dir", cache, "--report")
        assert "(100% hit rate)" in out2
        # identical aggregate table, modulo the streaming progress lines
        # (prefixed by the spec name) and the wall-time summary line
        def table_lines(out):
            return [ln for ln in out.splitlines()
                    if not ln.startswith(("sweep:", "builtin-demo:"))]
        assert table_lines(out1) == table_lines(out2)

    def test_sweep_no_cache(self, tmp_path, capsys):
        out = self._run(capsys, "--no-cache")
        assert "0 hit(s)" in out

    def test_sweep_from_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(tiny_spec(n=30, num_seeds=1).to_json())
        out = self._run(capsys, "--spec", str(spec_path), "--no-cache")
        assert "tiny" in out

    def test_sweep_stage_timings_table(self, capsys):
        out = self._run(capsys, "--no-cache", "--stage-timings")
        assert "stage timings — builtin-demo" in out
        for stage in ("build_graph ms", "run_algorithm ms", "verify ms",
                      "metrics ms"):
            assert stage in out

    def test_sweep_rejects_bad_workers(self, capsys):
        with pytest.raises(SystemExit, match="workers"):
            main(["sweep", "--n", "30", "--seeds", "1", "--no-cache",
                  "--workers", "0"])

    def test_sweep_no_shm_flag(self, tmp_path, capsys):
        out = self._run(capsys, "--no-cache", "--workers", "2", "--no-shm")
        assert "via shared memory" not in out

    @staticmethod
    def _shared_spec_file(tmp_path):
        """Explicit seeds so the two algorithm cells share each graph."""
        spec = SweepSpec(
            "cli-overlap",
            grid_scenarios(
                families=[{"name": "tree", "n": 40}],
                algorithms=[{"name": "cor46"}, {"name": "forests"}],
                seeds=[0, 1],
            ),
        )
        path = tmp_path / "overlap.json"
        path.write_text(spec.to_json())
        return str(path)

    def test_sweep_no_overlap_flag(self, tmp_path, capsys):
        rc = main(["sweep", "--spec", self._shared_spec_file(tmp_path),
                   "--workers", "2", "--no-cache", "--no-overlap",
                   "--stage-timings"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "built before dispatch" in out
        assert "overlapped" not in out

    def test_sweep_summary_reports_build_overlap(self, tmp_path, capsys):
        rc = main(["sweep", "--spec", self._shared_spec_file(tmp_path),
                   "--workers", "2", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overlapped with execution" in out


@pytest.mark.slow
def test_parallel_sweep_at_scale(tmp_path):
    """Sweep-scale smoke test (excluded from tier-1 by the slow marker)."""
    spec = SweepSpec(
        "scale",
        grid_scenarios(
            families=[
                {"name": "forest_union", "n": 600, "a": 8},
                {"name": "planar", "n": 600},
                {"name": "random_geometric", "n": 600, "radius": 0.05},
                {"name": "hubs", "n": 600, "a": 3, "num_hubs": 4},
            ],
            algorithms=[
                {"name": "cor46"}, {"name": "be08"},
                {"name": "forests"}, {"name": "mis_arboricity"},
            ],
            num_seeds=3,
        ),
    )
    cache = ResultCache(str(tmp_path / "cache"))
    res = run_sweep(spec, cache=cache, workers=4)
    assert res.num_trials == 48
    assert all(tr.metrics["verified"] for tr in res)
    again = run_sweep(spec, cache=ResultCache(str(tmp_path / "cache")))
    assert again.hit_rate == 1.0
