"""Vertex-partition utilities."""

import pytest

from repro.errors import InvalidParameterError
from repro.graphs import (
    check_is_partition,
    cross_part_edges,
    dense_relabel,
    grid,
    part_subgraphs,
    parts_of,
    refine_partition,
)


class TestRefinePartition:
    def test_with_base(self):
        base = {0: "x", 1: "x", 2: "y"}
        labels = {0: 1, 1: 2, 2: 1}
        refined = refine_partition(base, labels)
        assert refined == {0: ("x", 1), 1: ("x", 2), 2: ("y", 1)}

    def test_without_base(self):
        refined = refine_partition(None, {0: 5})
        assert refined == {0: (None, 5)}

    def test_keyed_by_labels(self):
        """Vertices absent from labels (non-participants) are dropped."""
        refined = refine_partition({0: "a", 1: "a"}, {0: 0})
        assert set(refined) == {0}


class TestDenseRelabel:
    def test_compacts(self):
        labels = {0: 100, 1: 7, 2: 100, 3: ("a", 2)}
        dense = dense_relabel(labels)
        assert set(dense.values()) <= {0, 1, 2}
        assert len(set(dense.values())) == 3
        assert dense[0] == dense[2]

    def test_deterministic(self):
        labels = {i: (i % 3, "tag") for i in range(9)}
        assert dense_relabel(labels) == dense_relabel(dict(labels))


class TestPartsAndSubgraphs:
    def test_parts_of(self):
        parts = parts_of({0: "a", 1: "b", 2: "a"})
        assert sorted(parts["a"]) == [0, 2]
        assert parts["b"] == [1]

    def test_part_subgraphs(self):
        g = grid(2, 3).graph  # vertices 0..5
        labels = {v: v % 2 for v in g.vertices}
        subs = part_subgraphs(g, labels)
        assert set(subs) == {0, 1}
        assert sum(s.n for s in subs.values()) == g.n
        # no cross-part edge survives in the induced subgraphs
        for s in subs.values():
            for (u, v) in s.edges:
                assert labels[u] == labels[v]

    def test_cross_part_edges(self):
        g = grid(2, 2).graph
        labels = {0: 0, 1: 0, 2: 1, 3: 1}
        crossing = cross_part_edges(g, labels)
        assert all(labels[u] != labels[v] for (u, v) in crossing)
        assert len(crossing) + sum(
            1 for (u, v) in g.edges if labels[u] == labels[v]
        ) == g.m


class TestCheckIsPartition:
    def test_accepts_complete(self):
        check_is_partition([0, 1], {0: "a", 1: "b"})

    def test_rejects_incomplete(self):
        with pytest.raises(InvalidParameterError, match="misses"):
            check_is_partition([0, 1, 2], {0: "a"})
