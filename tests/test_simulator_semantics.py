"""Deeper simulator semantics: the contracts docs/model.md promises."""

import pytest

from repro import Graph, NodeProgram, SynchronousNetwork
from repro.errors import RoundLimitExceeded
from repro.simulator import MessageTrace


class TestMessageOverwrite:
    def test_second_send_same_round_overwrites(self):
        """One message per ordered pair per round: the last send wins."""

        class DoubleSender(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(1, "first")
                    ctx.send(1, "second")
                    ctx.halt()

            def on_round(self, ctx):
                ctx.halt(dict(ctx.inbox))

        g = Graph(range(2), [(0, 1)])
        result = SynchronousNetwork(g).run(DoubleSender)
        assert result.outputs[1] == {0: "second"}


class TestMultiRoundDelivery:
    def test_message_latency_one_round(self):
        """A message sent in round r is readable exactly in round r+1."""
        observed = {}

        class Chain(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(1, "hop")
                    ctx.halt()

            def on_round(self, ctx):
                if ctx.node == 1 and "hop" in ctx.inbox.values():
                    observed["round"] = ctx.round_number
                    ctx.send(2, "hop")
                    ctx.halt()
                elif ctx.node == 2 and "hop" in ctx.inbox.values():
                    observed["round2"] = ctx.round_number
                    ctx.halt()

        g = Graph(range(3), [(0, 1), (1, 2)])
        SynchronousNetwork(g).run(Chain)
        assert observed == {"round": 1, "round2": 2}

    def test_rounds_equals_chain_length(self):
        """Information travels one hop per round: a k-hop relay costs k."""

        class Relay(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.broadcast("token")
                    ctx.halt(0)

            def on_round(self, ctx):
                if ctx.inbox:
                    ctx.broadcast("token")
                    ctx.halt(ctx.round_number)

        n = 12
        g = Graph(range(n), [(i, i + 1) for i in range(n - 1)])
        result = SynchronousNetwork(g).run(Relay)
        assert result.rounds == n - 1
        assert result.outputs[n - 1] == n - 1


class TestPartsAndParticipantsCombined:
    def test_part_of_composes_with_participants(self):
        class CountVisible(NodeProgram):
            def on_start(self, ctx):
                ctx.halt(ctx.degree)

        g = Graph(range(6), [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        result = SynchronousNetwork(g).run(
            CountVisible,
            participants=[0, 1, 2, 3],
            part_of={0: "a", 1: "a", 2: "b", 3: "b", 4: "a", 5: "a"},
        )
        # 4 and 5 are excluded by participants even though labeled 'a';
        # 1 sees only 0 (2 is in part b); 3 sees only 2
        assert result.outputs == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_unlabeled_vertices_form_their_own_part(self):
        class CountVisible(NodeProgram):
            def on_start(self, ctx):
                ctx.halt(ctx.degree)

        g = Graph(range(3), [(0, 1), (1, 2)])
        result = SynchronousNetwork(g).run(
            CountVisible, part_of={0: "a"}  # 1 and 2 share the None label
        )
        assert result.outputs == {0: 0, 1: 1, 2: 1}


class TestRoundLimits:
    def test_default_limit_scales_with_n(self):
        class Forever(NodeProgram):
            def on_start(self, ctx):
                ctx.broadcast(0)

            def on_round(self, ctx):
                ctx.broadcast(0)

        g = Graph(range(2), [(0, 1)])
        with pytest.raises(RoundLimitExceeded) as exc:
            SynchronousNetwork(g).run(Forever)
        assert exc.value.limit >= 1000

    def test_error_reports_survivors(self):
        class OneHalts(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.halt()
                else:
                    ctx.broadcast(0)

            def on_round(self, ctx):
                ctx.broadcast(0)

        g = Graph(range(3), [(0, 1), (1, 2)])
        with pytest.raises(RoundLimitExceeded) as exc:
            SynchronousNetwork(g).run(OneHalts, round_limit=4)
        assert exc.value.still_running == 2


class TestTraceRoundNumbers:
    def test_trace_spans_rounds(self):
        class TwoRounds(NodeProgram):
            def on_start(self, ctx):
                ctx.broadcast("a")

            def on_round(self, ctx):
                if ctx.round_number == 1:
                    ctx.broadcast("b")
                else:
                    ctx.halt()

        g = Graph(range(2), [(0, 1)])
        trace = MessageTrace()
        SynchronousNetwork(g).run(TwoRounds, trace=trace)
        assert trace.per_round() == {0: 2, 1: 2}


class TestOutputCollection:
    def test_default_output_is_none(self):
        class HaltsBare(NodeProgram):
            def on_start(self, ctx):
                ctx.halt()

        g = Graph.empty(3)
        result = SynchronousNetwork(g).run(HaltsBare)
        assert all(v is None for v in result.outputs.values())

    def test_outputs_keyed_by_participants_only(self):
        class EchoId(NodeProgram):
            def on_start(self, ctx):
                ctx.halt(ctx.node)

        g = Graph.empty(5)
        result = SynchronousNetwork(g).run(EchoId, participants=[1, 3])
        assert set(result.outputs) == {1, 3}
