"""Forests decomposition (Lemma 2.2(2)) and its orientation (Lemma 2.4)."""


from repro import SynchronousNetwork
from repro.core import compute_hpartition, forests_decomposition, hpartition_orientation
from repro.graphs import is_forest
from repro.verify import (
    check_forests_decomposition,
    check_orientation_acyclic,
    check_orientation_complete,
    check_orientation_out_degree,
    orientation_max_out_degree,
)


class TestForestsDecomposition:
    def test_valid_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        fd = forests_decomposition(net, family_graph.arboricity_bound)
        check_forests_decomposition(family_graph.graph, fd)

    def test_num_forests_bounded(self, forest_graph, forest_net):
        fd = forests_decomposition(forest_net, forest_graph.arboricity_bound)
        threshold = int(2.5 * forest_graph.arboricity_bound)
        assert fd.num_forests <= threshold

    def test_orientation_acyclic_complete_bounded(self, planar_graph, planar_net):
        fd = forests_decomposition(planar_net, planar_graph.arboricity_bound)
        g = planar_graph.graph
        check_orientation_acyclic(g, fd.orientation)
        check_orientation_complete(g, fd.orientation)
        check_orientation_out_degree(g, fd.orientation, int(2.5 * 3))

    def test_rounds_hpartition_plus_two(self, forest_graph, forest_net):
        hp = compute_hpartition(forest_net, forest_graph.arboricity_bound)
        fd = forests_decomposition(forest_net, forest_graph.arboricity_bound)
        assert fd.rounds == hp.rounds + 2

    def test_each_forest_is_forest(self, forest_graph, forest_net):
        fd = forests_decomposition(forest_net, forest_graph.arboricity_bound)
        g = forest_graph.graph
        for f in range(fd.num_forests):
            edges = fd.forest_edges(f)
            if edges:
                assert is_forest(g.subgraph_of_edges(edges))

    def test_forest_edges_partition(self, forest_graph, forest_net):
        fd = forests_decomposition(forest_net, forest_graph.arboricity_bound)
        total = sum(len(fd.forest_edges(f)) for f in range(fd.num_forests))
        assert total == forest_graph.graph.m

    def test_parent_in_forest(self, small_tree):
        net = SynchronousNetwork(small_tree)
        fd = forests_decomposition(net, 1)
        g = small_tree
        roots = 0
        for v in g.vertices:
            parents = [
                fd.parent_in_forest(v, f, g.neighbors(v))
                for f in range(fd.num_forests)
            ]
            if all(p is None for p in parents):
                roots += 1
        assert roots >= 1  # a forest has at least one root

    def test_precomputed_hpartition_reused(self, forest_graph, forest_net):
        hp = compute_hpartition(forest_net, forest_graph.arboricity_bound)
        fd = forests_decomposition(
            forest_net, forest_graph.arboricity_bound, hpartition=hp
        )
        check_forests_decomposition(forest_graph.graph, fd)


class TestHPartitionOrientation:
    def test_acyclic_and_bounded(self, forest_graph, forest_net):
        hp = compute_hpartition(forest_net, forest_graph.arboricity_bound)
        orientation = hpartition_orientation(forest_graph.graph, hp)
        g = forest_graph.graph
        check_orientation_acyclic(g, orientation)
        check_orientation_complete(g, orientation)
        assert orientation_max_out_degree(g, orientation) <= hp.degree_bound

    def test_tree(self, small_tree):
        net = SynchronousNetwork(small_tree)
        hp = compute_hpartition(net, 1)
        orientation = hpartition_orientation(small_tree, hp)
        check_orientation_acyclic(small_tree, orientation)
        # a tree with threshold 2: out-degree at most 2
        assert orientation_max_out_degree(small_tree, orientation) <= 2
