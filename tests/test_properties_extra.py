"""Additional property-based tests: Cole–Vishkin, reductions, ruling sets,
estimation — random inputs through the newer parts of the stack."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import SynchronousNetwork
from repro.core import (
    cole_vishkin_forest,
    greedy_reduction,
    kuhn_wattenhofer_reduction,
    root_forest_by_bfs,
    ruling_set,
    ruling_set_domination_radius,
    try_hpartition,
)
from repro.core.mis import greedy_mis_sequential
from repro.graphs import erdos_renyi, forest_union, random_tree
from repro.verify import check_legal_coloring, check_mis

PROFILE = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def random_forest(draw):
    n = draw(st.integers(min_value=2, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return random_tree(n, seed=seed)


@PROFILE
@given(gen=random_forest())
def test_cole_vishkin_property(gen):
    g = gen.graph
    net = SynchronousNetwork(g)
    result = cole_vishkin_forest(net, root_forest_by_bfs(g))
    assert all(0 <= c < 3 for c in result.colors.values())
    for (u, v) in g.edges:
        assert result.colors[u] != result.colors[v]


@PROFILE
@given(
    n=st.integers(min_value=4, max_value=60),
    p=st.floats(min_value=0.05, max_value=0.4),
    seed=st.integers(min_value=0, max_value=10**6),
    target_slack=st.integers(min_value=1, max_value=5),
)
def test_greedy_reduction_property(n, p, seed, target_slack):
    gen = erdos_renyi(n, p, seed=seed)
    g = gen.graph
    net = SynchronousNetwork(g)
    target = g.max_degree + target_slack
    reduced = greedy_reduction(net, {v: v for v in g.vertices}, n, target)
    check_legal_coloring(g, reduced.colors)
    assert all(c < target for c in reduced.colors.values())


@PROFILE
@given(
    n=st.integers(min_value=4, max_value=60),
    p=st.floats(min_value=0.05, max_value=0.4),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_kw_reduction_property(n, p, seed):
    gen = erdos_renyi(n, p, seed=seed)
    g = gen.graph
    net = SynchronousNetwork(g)
    delta = g.max_degree
    reduced = kuhn_wattenhofer_reduction(
        net, {v: v for v in g.vertices}, n, delta
    )
    check_legal_coloring(g, reduced.colors)
    assert reduced.num_colors <= delta + 1


@PROFILE
@given(
    n=st.integers(min_value=2, max_value=80),
    p=st.floats(min_value=0.02, max_value=0.3),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_ruling_set_property(n, p, seed):
    gen = erdos_renyi(n, p, seed=seed)
    g = gen.graph
    net = SynchronousNetwork(g)
    rs = ruling_set(net)
    # independence
    for (u, v) in g.edges:
        assert not (u in rs.members and v in rs.members)
    # domination within the stated radius
    assert ruling_set_domination_radius(g, rs.members) <= rs.params["beta_bound"]


@PROFILE
@given(
    n=st.integers(min_value=5, max_value=80),
    a=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_try_hpartition_never_lies(n, a, seed):
    """A successful attempt always returns a *valid* H-partition."""
    from repro.verify import check_hpartition

    gen = forest_union(n, a, seed=seed)
    net = SynchronousNetwork(gen.graph)
    hp, _rounds = try_hpartition(net, a)
    if hp is not None:
        check_hpartition(gen.graph, hp)


@PROFILE
@given(
    n=st.integers(min_value=3, max_value=60),
    p=st.floats(min_value=0.05, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_greedy_mis_reference_property(n, p, seed):
    gen = erdos_renyi(n, p, seed=seed)
    members = greedy_mis_sequential(gen.graph)
    check_mis(gen.graph, members)
