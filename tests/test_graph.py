"""Unit tests for the immutable Graph type."""

import pytest

from repro import Graph
from repro.errors import InvalidParameterError


class TestConstruction:
    def test_basic(self, triangle):
        assert triangle.n == 3
        assert triangle.m == 3
        assert triangle.vertices == (0, 1, 2)

    def test_edges_canonical_and_sorted(self):
        g = Graph(range(4), [(3, 1), (2, 0)])
        assert g.edges == ((0, 2), (1, 3))

    def test_duplicate_edges_collapse(self):
        g = Graph(range(3), [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidParameterError):
            Graph(range(3), [(1, 1)])

    def test_edge_to_unknown_vertex_rejected(self):
        with pytest.raises(InvalidParameterError):
            Graph(range(3), [(0, 5)])

    def test_non_int_vertex_rejected(self):
        with pytest.raises(InvalidParameterError):
            Graph(["a"], [])

    def test_empty_graph(self):
        g = Graph.empty(5)
        assert g.n == 5
        assert g.m == 0
        assert g.max_degree == 0

    def test_zero_vertex_graph(self):
        g = Graph([], [])
        assert g.n == 0
        assert g.max_degree == 0

    def test_noncontiguous_ids(self):
        g = Graph([10, 20, 30], [(10, 30)])
        assert g.vertices == (10, 20, 30)
        assert g.has_edge(30, 10)

    def test_from_edges(self):
        g = Graph.from_edges([(1, 2), (2, 5)])
        assert g.vertices == (1, 2, 5)
        assert g.m == 2


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph(range(4), [(2, 0), (2, 3), (2, 1)])
        assert g.neighbors(2) == (0, 1, 3)

    def test_degree(self, triangle):
        assert all(triangle.degree(v) == 2 for v in triangle.vertices)

    def test_max_degree(self):
        g = Graph(range(4), [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree == 3

    def test_has_edge_both_directions(self, triangle):
        assert triangle.has_edge(0, 2)
        assert triangle.has_edge(2, 0)
        assert not triangle.has_edge(0, 0)

    def test_contains_and_iter(self, triangle):
        assert 1 in triangle
        assert 9 not in triangle
        assert list(triangle) == [0, 1, 2]
        assert len(triangle) == 3

    def test_equality_and_hash(self, triangle):
        other = Graph(range(3), [(0, 1), (1, 2), (0, 2)])
        assert triangle == other
        assert hash(triangle) == hash(other)
        assert triangle != Graph(range(3), [(0, 1)])

    def test_repr(self, triangle):
        assert repr(triangle) == "Graph(n=3, m=3)"


class TestDerivedGraphs:
    def test_induced_subgraph_keeps_ids(self, triangle):
        sub = triangle.induced_subgraph([0, 2])
        assert sub.vertices == (0, 2)
        assert sub.edges == ((0, 2),)

    def test_induced_subgraph_unknown_vertex(self, triangle):
        with pytest.raises(InvalidParameterError):
            triangle.induced_subgraph([0, 99])

    def test_subgraph_of_edges(self, triangle):
        sub = triangle.subgraph_of_edges([(0, 1)])
        assert sub.n == 3
        assert sub.m == 1

    def test_subgraph_of_edges_rejects_non_edge(self, path5):
        with pytest.raises(InvalidParameterError):
            path5.subgraph_of_edges([(0, 4)])

    def test_relabeled(self):
        g = Graph([5, 9, 12], [(5, 12)])
        relabeled, mapping = g.relabeled()
        assert relabeled.vertices == (0, 1, 2)
        assert mapping == {5: 0, 9: 1, 12: 2}
        assert relabeled.has_edge(0, 2)


class TestNetworkxInterop:
    def test_roundtrip(self, forest_graph):
        nxg = forest_graph.graph.to_networkx()
        back = Graph.from_networkx(nxg)
        assert back == forest_graph.graph

    def test_to_networkx_counts(self, triangle):
        nxg = triangle.to_networkx()
        assert nxg.number_of_nodes() == 3
        assert nxg.number_of_edges() == 3
