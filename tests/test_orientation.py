"""Orientations: Complete-Orientation (L3.3), Partial-Orientation (T3.5),
topological completion (L3.1), greedy coloring along orientations (App. A)."""

import pytest

from repro import SynchronousNetwork
from repro.analysis import (
    complete_orientation_length_bound,
    partial_orientation_length_bound,
)
from repro.core import (
    complete_from_partial,
    complete_orientation,
    orientation_greedy_coloring,
    partial_orientation,
)
from repro.errors import InvalidParameterError
from repro.graphs import forest_union
from repro.verify import (
    check_legal_coloring,
    check_orientation_acyclic,
    check_orientation_complete,
    check_orientation_deficit,
    check_orientation_edges_exist,
    check_orientation_out_degree,
    longest_directed_path,
    orientation_length,
    orientation_max_deficit,
    orientation_max_out_degree,
)


class TestCompleteOrientation:
    def test_invariants_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        a = family_graph.arboricity_bound
        co = complete_orientation(net, a)
        g = family_graph.graph
        check_orientation_acyclic(g, co)
        check_orientation_complete(g, co)
        check_orientation_edges_exist(g, co)
        check_orientation_out_degree(g, co, int(2.5 * a))

    def test_length_bound_shape(self):
        """Measured length stays within a constant of (2+ε)a·log n."""
        for a in (2, 4, 8):
            g = forest_union(500, a, seed=a)
            net = SynchronousNetwork(g.graph)
            co = complete_orientation(net, a)
            measured = orientation_length(g.graph, co)
            bound = complete_orientation_length_bound(a, 500, 0.5)
            assert measured <= 3 * bound

    def test_deficit_zero(self, forest_graph, forest_net):
        co = complete_orientation(forest_net, forest_graph.arboricity_bound)
        assert orientation_max_deficit(forest_graph.graph, co) == 0


class TestPartialOrientation:
    def test_invariants_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        a = family_graph.arboricity_bound
        po = partial_orientation(net, a, t=2)
        g = family_graph.graph
        check_orientation_acyclic(g, po)
        check_orientation_edges_exist(g, po)
        check_orientation_out_degree(g, po, int(2.5 * a))
        check_orientation_deficit(g, po, a // 2)

    def test_deficit_decreases_with_t(self):
        g = forest_union(400, 8, seed=3)
        net = SynchronousNetwork(g.graph)
        deficits = []
        for t in (1, 2, 4, 8):
            po = partial_orientation(net, 8, t=t)
            d = orientation_max_deficit(g.graph, po)
            assert d <= 8 // t
            deficits.append(d)
        assert deficits[-1] == 0 or deficits[-1] <= deficits[0]

    def test_much_faster_than_complete(self):
        """The paper's key point: Partial-Orientation runs in O(log n)
        rounds, Complete-Orientation needs Θ(a log n) greedy waiting."""
        g = forest_union(600, 12, seed=4)
        net = SynchronousNetwork(g.graph)
        po = partial_orientation(net, 12, t=2)
        co = complete_orientation(net, 12)
        assert po.rounds < co.rounds

    def test_length_bound_shape(self):
        for t in (1, 2, 4):
            g = forest_union(500, 8, seed=t)
            net = SynchronousNetwork(g.graph)
            po = partial_orientation(net, 8, t=t)
            measured = orientation_length(g.graph, po)
            bound = partial_orientation_length_bound(t, 500, 0.5)
            # the defective coloring uses O(t² polylog) colors, so allow a
            # generous constant
            assert measured <= 60 * bound

    def test_invalid_t(self, forest_net):
        with pytest.raises(InvalidParameterError):
            partial_orientation(forest_net, 3, t=0)


class TestCompleteFromPartial:
    def test_lemma31(self, forest_graph, forest_net):
        po = partial_orientation(forest_net, forest_graph.arboricity_bound, t=1)
        g = forest_graph.graph
        completed = complete_from_partial(g, po)
        check_orientation_acyclic(g, completed)
        check_orientation_complete(g, completed)
        # the completion preserves already-oriented edges
        for e, head in po.direction.items():
            assert completed.direction[e] == head

    def test_out_degree_grows_at_most_by_deficit(self, forest_graph, forest_net):
        a = forest_graph.arboricity_bound
        po = partial_orientation(forest_net, a, t=1)
        g = forest_graph.graph
        completed = complete_from_partial(g, po)
        assert (
            orientation_max_out_degree(g, completed)
            <= orientation_max_out_degree(g, po) + orientation_max_deficit(g, po)
        )


class TestOrientationGreedy:
    def test_legal_within_palette(self, planar_graph, planar_net):
        a = planar_graph.arboricity_bound
        co = complete_orientation(planar_net, a)
        out_bound = int(co.params["out_degree_bound"])
        coloring = orientation_greedy_coloring(planar_net, co, out_bound)
        check_legal_coloring(planar_graph.graph, coloring.colors)
        assert coloring.max_color <= out_bound

    def test_rounds_at_most_length_plus_one(self, forest_graph, forest_net):
        a = forest_graph.arboricity_bound
        co = complete_orientation(forest_net, a)
        coloring = orientation_greedy_coloring(
            forest_net, co, int(co.params["out_degree_bound"])
        )
        assert coloring.rounds <= orientation_length(forest_graph.graph, co) + 1

    def test_appendix_a_bound(self, forest_graph, forest_net):
        """A complete acyclic orientation of length ℓ yields an (ℓ+1)-
        coloring (Appendix A) — greedy uses no more colors than that."""
        a = forest_graph.arboricity_bound
        co = complete_orientation(forest_net, a)
        length = orientation_length(forest_graph.graph, co)
        coloring = orientation_greedy_coloring(
            forest_net, co, int(co.params["out_degree_bound"])
        )
        assert coloring.num_colors <= length + 1


class TestLongestPath:
    def test_path_is_consistent(self, forest_graph, forest_net):
        po = partial_orientation(forest_net, forest_graph.arboricity_bound, t=2)
        g = forest_graph.graph
        path = longest_directed_path(g, po)
        assert len(path) - 1 == orientation_length(g, po)
        for u, v in zip(path, path[1:], strict=False):
            assert po.head(u, v) == v
