"""Procedure Legal-Coloring (Algorithm 2) and Section 4's corollaries."""

import pytest

from repro import SynchronousNetwork
from repro.core import (
    be08_coloring,
    delta_plus_one_via_arboricity,
    legal_coloring,
    legal_coloring_corollary44,
    legal_coloring_corollary46,
    legal_coloring_theorem43,
    legal_coloring_tradeoff45,
    oneshot_legal_coloring,
)
from repro.errors import InvalidParameterError
from repro.graphs import (
    forest_union,
    low_arboricity_high_degree,
    planar_triangulation,
)
from repro.verify import check_legal_coloring


class TestOneshot:
    def test_lemma41_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        a = family_graph.arboricity_bound
        result = oneshot_legal_coloring(net, a)
        check_legal_coloring(family_graph.graph, result.colors)
        # O(a) colors: k parts × (2+ε)(3+ε)a^{2/3} palette ≈ 9a
        assert result.num_colors <= max(30, 30 * a)

    def test_color_count_linear_in_a(self):
        ratios = []
        for a in (4, 8, 16):
            g = forest_union(300, a, seed=a)
            net = SynchronousNetwork(g.graph)
            result = oneshot_legal_coloring(net, a)
            check_legal_coloring(g.graph, result.colors)
            ratios.append(result.num_colors / a)
        # colors/a stays bounded (no quadratic blow-up)
        assert max(ratios) <= 25


class TestLegalColoring:
    def test_algorithm2_on_families(self, family_graph):
        net = SynchronousNetwork(family_graph.graph)
        a = family_graph.arboricity_bound
        result = legal_coloring(net, a, p=4)
        check_legal_coloring(family_graph.graph, result.colors)

    def test_small_a_skips_recursion(self):
        g = planar_triangulation(100, seed=31)
        net = SynchronousNetwork(g.graph)
        result = legal_coloring(net, 3, p=4)
        assert result.params["iterations"] == 0
        check_legal_coloring(g.graph, result.colors)

    def test_recursion_depth_grows_with_a_over_p(self):
        g = forest_union(400, 16, seed=32)
        net = SynchronousNetwork(g.graph)
        shallow = legal_coloring(net, 16, p=16)
        deep = legal_coloring(net, 16, p=4)
        assert deep.params["iterations"] >= shallow.params["iterations"]

    def test_colors_linear_in_a_for_constant_iterations(self):
        """Theorem 4.3's invariant: colors ≤ (3+ε)^iters · O(a)."""
        for a in (8, 16, 32):
            g = forest_union(300, a, seed=a + 1)
            net = SynchronousNetwork(g.graph)
            result = legal_coloring(net, a, p=max(4, int(a**0.5)))
            check_legal_coloring(g.graph, result.colors)
            iters = result.params["iterations"]
            assert result.num_colors <= (4.0**iters) * 4 * a

    def test_invalid_params(self, forest_net):
        with pytest.raises(InvalidParameterError):
            legal_coloring(forest_net, 0, p=4)
        with pytest.raises(InvalidParameterError):
            legal_coloring(forest_net, 4, p=1)


class TestTheorem43:
    def test_legal_and_bounded(self):
        g = forest_union(400, 16, seed=33)
        net = SynchronousNetwork(g.graph)
        result = legal_coloring_theorem43(net, 16, mu=0.8)
        check_legal_coloring(g.graph, result.colors)
        assert result.params["mu"] == 0.8

    def test_smaller_mu_slower_but_valid(self):
        g = forest_union(300, 16, seed=34)
        net = SynchronousNetwork(g.graph)
        fast = legal_coloring_theorem43(net, 16, mu=1.5)
        slow = legal_coloring_theorem43(net, 16, mu=0.4)
        check_legal_coloring(g.graph, fast.colors)
        check_legal_coloring(g.graph, slow.colors)

    def test_invalid_mu(self, forest_net):
        with pytest.raises(InvalidParameterError):
            legal_coloring_theorem43(forest_net, 4, mu=0.0)
        with pytest.raises(InvalidParameterError):
            legal_coloring_theorem43(forest_net, 4, mu=3.0)


class TestCorollary44:
    def test_fallback_regime_small_a(self):
        g = forest_union(300, 8, seed=45)
        net = SynchronousNetwork(g.graph)
        result = legal_coloring_corollary44(net, 8, mu=1.0)
        check_legal_coloring(g.graph, result.colors)
        assert result.params["regime"] == "theorem-4.3-fallback"

    def test_superlogarithmic_regime(self):
        """a large relative to log n triggers the p = a^{µ/2}/log n branch."""
        g = forest_union(80, 64, seed=46)
        net = SynchronousNetwork(g.graph)
        result = legal_coloring_corollary44(net, 64, mu=2.0)
        check_legal_coloring(g.graph, result.colors)
        assert result.params["regime"] == "superlogarithmic"

    def test_invalid_mu(self, forest_net):
        with pytest.raises(InvalidParameterError):
            legal_coloring_corollary44(forest_net, 4, mu=0.0)


class TestTheorem45AndCorollary46:
    def test_tradeoff45(self):
        g = forest_union(300, 20, seed=35)
        net = SynchronousNetwork(g.graph)
        result = legal_coloring_tradeoff45(net, 20, f_value=9)
        check_legal_coloring(g.graph, result.colors)

    def test_tradeoff45_tiny_f_clamped(self):
        g = forest_union(200, 8, seed=36)
        net = SynchronousNetwork(g.graph)
        result = legal_coloring_tradeoff45(net, 8, f_value=1)
        check_legal_coloring(g.graph, result.colors)

    def test_corollary46(self):
        g = forest_union(300, 16, seed=37)
        net = SynchronousNetwork(g.graph)
        result = legal_coloring_corollary46(net, 16, eta=0.5)
        check_legal_coloring(g.graph, result.colors)
        # O(a^{1+η}) colors, generous constant
        assert result.num_colors <= 40 * 16 ** (1.5)

    def test_corollary46_invalid_eta(self, forest_net):
        with pytest.raises(InvalidParameterError):
            legal_coloring_corollary46(forest_net, 4, eta=0.0)


class TestCorollary47:
    def test_delta_plus_one_in_sparse_regime(self):
        g = low_arboricity_high_degree(400, a=3, num_hubs=4, seed=38)
        net = SynchronousNetwork(g.graph)
        delta = g.graph.max_degree
        result = delta_plus_one_via_arboricity(net, g.arboricity_bound, nu=0.5)
        check_legal_coloring(g.graph, result.colors)
        assert result.num_colors <= delta + 1
        # the o(Δ) intermediate coloring is what makes this cheap
        assert result.params["pre_reduction_colors"] <= delta + 1 or (
            result.params["pre_reduction_colors"] < 3 * delta
        )

    def test_no_reduction_needed_when_already_small(self):
        g = forest_union(200, 3, seed=39)
        net = SynchronousNetwork(g.graph)
        delta = g.graph.max_degree
        result = delta_plus_one_via_arboricity(net, 3, nu=0.5)
        check_legal_coloring(g.graph, result.colors)
        assert result.num_colors <= delta + 1


class TestAgainstBE08:
    def test_same_colors_fewer_rounds_large_a(self):
        """The headline: Theorem 4.3 colors like BE08 but much faster once
        a is large (a^µ·log n vs a·log n)."""
        g = forest_union(600, 16, seed=40)
        net = SynchronousNetwork(g.graph)
        ours = legal_coloring_theorem43(net, 16, mu=0.5)
        theirs = be08_coloring(net, 16)
        check_legal_coloring(g.graph, ours.colors)
        check_legal_coloring(g.graph, theirs.colors)
        assert ours.rounds < theirs.rounds
