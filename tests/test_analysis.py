"""Bound formulas, slope fitting, table rendering."""


import pytest

from repro.analysis import (
    arbdefective_bound,
    complete_orientation_length_bound,
    fit_linear_slope,
    fit_loglog_slope,
    hpartition_levels_bound,
    log2_ceil,
    log_star,
    partial_orientation_length_bound,
    ratio_spread,
    render_table,
    theorem52_colors_bound,
    theorem53_colors_bound,
)


class TestLogStar:
    def test_values(self):
        assert log_star(2) == 0
        assert log_star(4) == 1
        assert log_star(16) == 2
        assert log_star(2**16) == 3
        assert 4 <= log_star(2**65536) <= 5

    def test_log2_ceil(self):
        assert log2_ceil(1) == 0
        assert log2_ceil(2) == 1
        assert log2_ceil(3) == 2
        assert log2_ceil(1024) == 10
        assert log2_ceil(1025) == 11


class TestBoundFormulas:
    def test_hpartition_levels_monotone(self):
        assert hpartition_levels_bound(100, 0.5) < hpartition_levels_bound(10_000, 0.5)
        assert hpartition_levels_bound(1, 0.5) == 1.0

    def test_lengths(self):
        assert complete_orientation_length_bound(4, 100, 0.5) > 0
        assert partial_orientation_length_bound(2, 100, 0.5) > 0
        # the whole point: partial beats complete for small t, large a
        assert partial_orientation_length_bound(
            2, 1000, 0.5
        ) < complete_orientation_length_bound(50, 1000, 0.5)

    def test_arbdefective_formula(self):
        assert arbdefective_bound(12, 4, 4, 0.5) == int(12 / 4 + 2.5 * 12 / 4)

    def test_theorem_bounds(self):
        assert theorem52_colors_bound(10, 5) == 20.0
        assert theorem53_colors_bound(10, 3) == 30.0


class TestSlopeFitting:
    def test_power_law_recovered(self):
        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [x**1.7 for x in xs]
        assert abs(fit_loglog_slope(xs, ys) - 1.7) < 1e-9

    def test_linear_recovered(self):
        xs = [1.0, 2.0, 3.0]
        ys = [5 * x + 1 for x in xs]
        assert abs(fit_linear_slope(xs, ys) - 5.0) < 1e-9

    def test_errors(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_loglog_slope([2.0, 2.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_linear_slope([1.0, 2.0], [1.0])

    def test_ratio_spread(self):
        assert ratio_spread([1.0, 2.0, 4.0]) == 4.0
        assert ratio_spread([]) == 1.0


class TestTables:
    def test_render(self):
        table = render_table(
            "demo", ["x", "y"], [[1, 2.5], [30, 4.0]], note="hello"
        )
        assert "== demo ==" in table
        assert "note: hello" in table
        lines = table.splitlines()
        assert len(lines) == 6
        # aligned columns: header and rows share the separator width
        assert len(lines[1]) == len(lines[2])

    def test_float_formatting(self):
        table = render_table("t", ["v"], [[0.0], [123.456], [1.23456]])
        assert "0" in table
        assert "123" in table
        assert "1.23" in table
