"""Failure injection: corrupt real algorithm outputs and make sure the
verification layer catches every corruption.

These tests guard the guards: a checker that silently accepts broken
output would let an algorithm regression slip past the whole suite.
"""

import random

import pytest

from repro import SynchronousNetwork
from repro.core import (
    arbdefective_coloring,
    complete_orientation,
    compute_hpartition,
    forests_decomposition,
    legal_coloring,
    mis_arboricity,
)
from repro.errors import VerificationError
from repro.graphs import forest_union
from repro.verify import (
    check_arbdefective_coloring,
    check_forests_decomposition,
    check_hpartition,
    check_legal_coloring,
    check_mis,
    check_orientation_acyclic,
    check_orientation_out_degree,
)


@pytest.fixture(scope="module")
def instance():
    gen = forest_union(150, 4, seed=99)
    return gen, SynchronousNetwork(gen.graph)


class TestColoringCorruption:
    def test_copy_neighbor_color_detected(self, instance):
        gen, net = instance
        coloring = legal_coloring(net, 4, p=4)
        u, v = gen.graph.edges[0]
        corrupted = dict(coloring.colors)
        corrupted[u] = corrupted[v]
        with pytest.raises(VerificationError):
            check_legal_coloring(gen.graph, corrupted)

    def test_dropped_vertex_detected(self, instance):
        gen, net = instance
        coloring = legal_coloring(net, 4, p=4)
        corrupted = dict(coloring.colors)
        del corrupted[gen.graph.vertices[0]]
        with pytest.raises(VerificationError):
            check_legal_coloring(gen.graph, corrupted)

    def test_every_single_edge_corruption_detected(self, instance):
        """Exhaustive: corrupt each of the first 25 edges in turn."""
        gen, net = instance
        coloring = legal_coloring(net, 4, p=4)
        for (u, v) in gen.graph.edges[:25]:
            corrupted = dict(coloring.colors)
            corrupted[u] = corrupted[v]
            with pytest.raises(VerificationError):
                check_legal_coloring(gen.graph, corrupted)


class TestHPartitionCorruption:
    def test_level_inflation_detected(self, instance):
        gen, net = instance
        hp = compute_hpartition(net, 4)
        # move the whole graph into level 1: some vertex must then exceed
        # the degree bound (the graph has vertices of degree > bound)
        hp.index.update({v: 1 for v in gen.graph.vertices})
        if any(
            gen.graph.degree(v) > hp.degree_bound for v in gen.graph.vertices
        ):
            with pytest.raises(VerificationError):
                check_hpartition(gen.graph, hp)

    def test_shrunk_bound_detected(self, instance):
        gen, net = instance
        hp = compute_hpartition(net, 4)
        hp_bad = type(hp)(index=hp.index, degree_bound=0)
        with pytest.raises(VerificationError):
            check_hpartition(gen.graph, hp_bad)


class TestOrientationCorruption:
    def test_flipped_edge_can_create_cycle(self, instance):
        gen, net = instance
        co = complete_orientation(net, 4)
        # flip every edge around one vertex of positive in- and out-degree;
        # at least one flip must produce a cycle or an out-degree breach
        rng = random.Random(1)
        caught = 0
        edges = list(co.direction.items())
        rng.shuffle(edges)
        for e, head in edges[:40]:
            corrupted = dict(co.direction)
            u, v = e
            corrupted[e] = u if head == v else v
            bad = type(co)(direction=corrupted)
            try:
                check_orientation_acyclic(gen.graph, bad)
                check_orientation_out_degree(
                    gen.graph, bad, int(co.params["out_degree_bound"])
                )
            except VerificationError:
                caught += 1
        assert caught > 0

    def test_missing_edge_detected_as_incomplete(self, instance):
        from repro.verify import check_orientation_complete

        gen, net = instance
        co = complete_orientation(net, 4)
        corrupted = dict(co.direction)
        corrupted.pop(next(iter(corrupted)))
        with pytest.raises(VerificationError):
            check_orientation_complete(gen.graph, type(co)(direction=corrupted))


class TestForestsCorruption:
    def test_merging_two_forests_detected(self, instance):
        gen, net = instance
        fd = forests_decomposition(net, 4)
        if fd.num_forests < 2:
            pytest.skip("needs at least two forests")
        # relabel every edge into forest 0: some vertex gets two parents
        corrupted = {e: 0 for e in fd.forest_of}
        bad = type(fd)(
            forest_of=corrupted,
            orientation=fd.orientation,
            num_forests=fd.num_forests,
        )
        with pytest.raises(VerificationError):
            check_forests_decomposition(gen.graph, bad)


class TestArbdefectCorruption:
    def test_merged_parts_detected_without_witness(self, instance):
        gen, net = instance
        dec = arbdefective_coloring(net, 4, k=3, t=3)
        # collapse all parts into one: the single class is the whole graph,
        # whose arboricity (≈4) exceeds the per-class bound when that bound
        # is small enough
        merged = {v: 0 for v in dec.label}
        if dec.arboricity_bound < 3:
            with pytest.raises(VerificationError):
                check_arbdefective_coloring(
                    gen.graph, merged, dec.arboricity_bound
                )

    def test_witness_checker_catches_overfull_class(self, instance):
        gen, net = instance
        dec = arbdefective_coloring(net, 4, k=3, t=3)
        orientation = dec.params["orientation"]
        merged = {v: 0 for v in dec.label}
        # with the witness the check is per-vertex out-degree: the full
        # graph has vertices with out-degree above the per-class bound
        with pytest.raises(VerificationError):
            check_arbdefective_coloring(gen.graph, merged, 0, orientation)


class TestMISCorruption:
    def test_added_member_detected(self, instance):
        gen, net = instance
        mis = mis_arboricity(net, 4)
        outside = next(
            v for v in gen.graph.vertices if v not in mis.members
        )
        with pytest.raises(VerificationError):
            check_mis(gen.graph, mis.members | {outside})

    def test_removed_member_detected(self, instance):
        gen, net = instance
        mis = mis_arboricity(net, 4)
        member = next(iter(mis.members))
        with pytest.raises(VerificationError):
            check_mis(gen.graph, mis.members - {member})
