"""S5 (infrastructure) — graph core: CSR fast path vs. the seed implementation.

PR 3 rewrote :class:`repro.graphs.Graph` around a flat CSR layout (contiguous
``array('q')`` offset/neighbour arrays, O(1) degree, allocation-free
index-based rows, vectorized batched-neighbour passes) with a bulk
:meth:`Graph.from_edge_count` constructor, and threaded index-based fast
paths through the simulator and the centralized helpers.  This bench pins
the two headline claims against the preserved seed implementation
(``legacy_graph``: the exact pre-CSR graph *and* simulator loop):

* *build* — constructing a forest-union instance from a raw edge list is
  ≥3× faster than the legacy per-edge set-mutation build, with the public
  id-based API (vertices / edges / neighbors / degree) byte-identical;
* *sparse sweep* — one end-to-end sweep trial (build → H-partition →
  verify → per-level induced subgraphs → greedy MIS → verify) is ≥2×
  faster, with identical outputs at every step.

``REPRO_PERF_HANDICAP`` (a fraction, e.g. ``0.25``) synthetically inflates
the measured CSR wall times; it exists so the CI regression gate
(``check_perf_regression.py``) can be shown to trip on a 25% slowdown
without hurting the real library.  The in-test speedup assertions are
skipped while a handicap is active — tripping the gate is then the point.
"""

from __future__ import annotations

import os
import random
import time

import perf_record
from conftest import run_once
from legacy_graph import LegacyGraph, LegacySynchronousNetwork
from repro import SynchronousNetwork
from repro.analysis import emit, render_table
from repro.core import compute_hpartition
from repro.core.mis import greedy_mis_sequential
from repro.graphs.graph import Graph
from repro.types import canonical_edge
from repro.verify.decomposition import check_hpartition, check_mis

A = 4

_HANDICAP = float(os.environ.get("REPRO_PERF_HANDICAP", "0") or 0.0)


def _forest_edges(n, a, seed):
    """The raw edge list of a forest union, exactly as the generator emits it
    (duplicates included) — both builds consume the identical input."""
    rng = random.Random(seed)
    edges = []
    for _ in range(a):
        perm = list(range(n))
        rng.shuffle(perm)
        for i in range(1, n):
            edges.append(canonical_edge(perm[i], perm[rng.randrange(i)]))
    return edges


def _best_of(fn, repeats=3):
    """Best-of-N wall time (and the last result, for output comparison)."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _seed_greedy_mis(graph):
    """The seed-era centralized greedy MIS (id-keyed sets)."""
    members, blocked = set(), set()
    for v in graph.vertices:
        if v not in blocked:
            members.add(v)
            blocked.update(graph.neighbors(v))
    return members


def _seed_induced(graph, keep):
    """The seed-era induced subgraph: edge-list filter + dict rebuild."""
    keep = set(keep)
    edges = [(u, v) for (u, v) in graph.edges if u in keep and v in keep]
    return LegacyGraph(keep, edges)


def _levels_of(hp):
    out = {}
    for v, i in hp.index.items():
        out.setdefault(i, []).append(v)
    return out


def _sweep_trial(n, edges, legacy):
    """One end-to-end sweep trial: build → decompose → verify → baseline.

    The legacy variant uses the seed graph, the seed simulator loop, and
    the seed centralized helpers; the CSR variant uses the current library.
    ``check_hpartition``/``check_mis`` dispatch internally (vectorized for
    CSR graphs, the generic loop for the legacy graph).
    """
    if legacy:
        g = LegacyGraph(range(n), edges)
        net = LegacySynchronousNetwork(g)
    else:
        g = Graph.from_edge_count(n, edges)
        net = SynchronousNetwork(g)
    hp = compute_hpartition(net, A)
    check_hpartition(g, hp)
    level_degrees = []
    for _lvl, vs in sorted(_levels_of(hp).items()):
        sub = _seed_induced(g, vs) if legacy else g.induced_subgraph(vs)
        level_degrees.append(sub.max_degree)
        assert sub.max_degree <= hp.degree_bound
    mis = _seed_greedy_mis(g) if legacy else greedy_mis_sequential(g)
    check_mis(g, mis)
    return hp.index, level_degrees, mis, hp.rounds


def test_graph_core_construction_and_sweep(benchmark):
    rows = []
    build_speedups = []
    # interpreter/allocator warmup so the first timed build is not penalized
    warm = _forest_edges(2000, A, seed=11)
    LegacyGraph(range(2000), warm)
    Graph.from_edge_count(2000, warm)
    for n in (50_000, 80_000):
        edges = _forest_edges(n, A, seed=5000 + n)
        legacy, t_leg = _best_of(lambda n=n, edges=edges: LegacyGraph(range(n), edges))
        csr, t_csr = _best_of(lambda n=n, edges=edges: Graph.from_edge_count(n, edges))
        t_csr *= 1.0 + _HANDICAP
        # byte-compatibility of the public id-based API
        assert csr.vertices == legacy.vertices
        assert csr.edges == legacy.edges
        step = max(1, n // 97)
        assert all(
            csr.neighbors(v) == legacy.neighbors(v)
            and csr.degree(v) == legacy.degree(v)
            for v in range(0, n, step)
        )
        build_speedups.append(t_leg / t_csr)
        rows.append(
            [
                f"build (n={n})",
                n,
                legacy.m,
                f"{t_leg * 1e3:.0f} ms",
                f"{t_csr * 1e3:.0f} ms",
                f"{t_leg / t_csr:.1f}x",
            ]
        )

    sweep_speedups = []
    sweep_tput = 0.0
    for n in (40_000,):
        edges = _forest_edges(n, A, seed=7000 + n)
        out_leg, t_leg = _best_of(
            lambda n=n, edges=edges: _sweep_trial(n, edges, legacy=True)
        )
        out_csr, t_csr = _best_of(
            lambda n=n, edges=edges: _sweep_trial(n, edges, legacy=False)
        )
        t_csr *= 1.0 + _HANDICAP
        assert out_leg == out_csr, "sweep trial diverged between builds"
        rounds = out_csr[3]
        sweep_speedups.append(t_leg / t_csr)
        sweep_tput = rounds * n / max(t_csr, 1e-9)
        rows.append(
            [
                f"sweep trial (n={n})",
                n,
                rounds,
                f"{t_leg * 1e3:.0f} ms",
                f"{t_csr * 1e3:.0f} ms",
                f"{t_leg / t_csr:.1f}x",
            ]
        )

    emit(
        render_table(
            "S5 — graph core: seed implementation vs. CSR fast path",
            ["workload", "n", "m/rounds", "seed", "CSR", "speedup"],
            rows,
            note="build = graph construction from a raw edge list; sweep "
            "trial = build + H-partition + verify + per-level induced "
            "subgraphs + greedy MIS + verify, outputs asserted identical",
        ),
        "s5_graph_core.txt",
    )
    perf_record.add_metrics(
        "graph_core",
        construction_speedup=round(min(build_speedups), 3),
        sparse_sweep_speedup=round(min(sweep_speedups), 3),
        sweep_rounds_nodes_per_s=round(sweep_tput, 1),
        handicap=_HANDICAP,
    )
    if _HANDICAP == 0.0:
        assert min(build_speedups) >= 3.0, (
            f"CSR construction speedup {min(build_speedups):.2f}x < 3x"
        )
        assert min(sweep_speedups) >= 2.0, (
            f"end-to-end sparse-sweep speedup {min(sweep_speedups):.2f}x < 2x"
        )

    edges = _forest_edges(20_000, A, seed=1)
    run_once(benchmark, lambda: Graph.from_edge_count(20_000, edges))
