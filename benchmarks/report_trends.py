#!/usr/bin/env python
"""Render per-metric perf trajectories from accumulated ``BENCH_*.json``.

Usage::

    python benchmarks/report_trends.py benchmarks/baselines/BENCH_*.json \
        results/BENCH_*.json [--output results/TRENDS.md]

Each input is one perf record (see ``perf_record.py``).  Records are
grouped by their ``bench`` name and ordered by timestamp — committed
baselines carry no timestamp and sort first, labeled ``baseline`` — and
every numeric metric gets one trajectory row: a unicode sparkline over
the observed values, the first and latest value, the delta of the latest
run against the previous one, and the short git sha of the latest run.

The script is standalone on purpose (stdlib only, no ``repro`` imports):
CI runs it against downloaded artifact directories where the package may
not be importable, and so can anyone with a pile of BENCH files.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Min-max scaled sparkline; a flat or single-point series shows mid."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK_CHARS[3] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(SPARK_CHARS) - 1))
        out.append(SPARK_CHARS[idx])
    return "".join(out)


def load_records(paths: Sequence[str]) -> List[Dict[str, Any]]:
    records = []
    for path in paths:
        try:
            with open(path) as fh:
                rec = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"report_trends: skipping {path}: {exc}", file=sys.stderr)
            continue
        if isinstance(rec, dict) and rec.get("bench"):
            rec["_path"] = path
            records.append(rec)
    return records


def _label(rec: Dict[str, Any]) -> str:
    if not rec.get("timestamp"):
        return "baseline"
    sha = rec.get("git_sha", "unknown")
    return sha[:10] if sha and sha != "unknown" else "unknown"


def _fmt(v: float) -> str:
    return f"{v:.4g}"


def _delta(prev: Optional[float], last: float) -> str:
    if prev is None or prev == 0:
        return "-"
    pct = 100.0 * (last - prev) / abs(prev)
    sign = "+" if pct >= 0 else ""
    return f"{sign}{pct:.1f}%"


def trend_rows(records: List[Dict[str, Any]]) -> List[List[str]]:
    """One row per (bench, metric): sparkline + first/latest/delta/sha."""
    # baselines (no timestamp) first, then chronological
    ordered = sorted(
        records, key=lambda r: (bool(r.get("timestamp")), r.get("timestamp") or "")
    )
    metrics: Dict[str, List[Dict[str, Any]]] = {}
    for rec in ordered:
        metrics.setdefault(rec["bench"], []).append(rec)
    rows: List[List[str]] = []
    for bench in sorted(metrics):
        series = metrics[bench]
        names: List[str] = []
        for rec in series:
            for name, val in rec.get("metrics", {}).items():
                if (
                    isinstance(val, (int, float))
                    and not isinstance(val, bool)
                    and name not in names
                ):
                    names.append(name)
        for name in sorted(names):
            points = [
                (float(rec["metrics"][name]), rec)
                for rec in series
                if isinstance(rec.get("metrics", {}).get(name), (int, float))
                and not isinstance(rec["metrics"].get(name), bool)
            ]
            if not points:
                continue
            values = [v for v, _ in points]
            prev = values[-2] if len(values) >= 2 else None
            rows.append(
                [
                    bench,
                    name,
                    sparkline(values),
                    _fmt(values[0]),
                    _fmt(values[-1]),
                    _delta(prev, values[-1]),
                    str(len(values)),
                    _label(points[-1][1]),
                ]
            )
    return rows


HEADERS = ["bench", "metric", "trend", "first", "latest", "delta", "runs", "latest run"]


def render_markdown(rows: List[List[str]]) -> str:
    lines = ["# Perf trends", ""]
    if not rows:
        lines.append("_no numeric metrics found in the given records_")
        return "\n".join(lines) + "\n"
    lines.append("| " + " | ".join(HEADERS) + " |")
    lines.append("|" + "|".join("---" for _ in HEADERS) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    lines.append(
        "_trend is min-max scaled per row, oldest to newest; baselines "
        "(committed floors, no timestamp) sort first; delta compares the "
        "latest run to the previous point._"
    )
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("records", nargs="+", help="BENCH_*.json files")
    parser.add_argument(
        "--output",
        default=None,
        help="write the markdown report here as well as stdout",
    )
    args = parser.parse_args(argv)

    records = load_records(args.records)
    if not records:
        print("report_trends: no readable BENCH records", file=sys.stderr)
        return 1
    report = render_markdown(trend_rows(records))
    print(report, end="")
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
        print(f"report_trends: wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
