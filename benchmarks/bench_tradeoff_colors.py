"""E08 — Theorem 4.5 / Corollary 4.6: colors-vs-time tradeoff.

Claims: with p = ⌈√f(a)⌉ (slowly growing f), a^{1+o(1)} colors in
O(f(a) log a log n) rounds; with constant p = 2^{O(1/η)}, O(a^{1+η})
colors in O(log a log n) rounds.  Sweep p at fixed (n, a): smaller p gives
fewer rounds per iteration but more iterations, hence more colors — the
tradeoff curve.
"""

import math


from conftest import cached_forest_union, run_once
from repro.analysis import emit, render_table
from repro.core import legal_coloring, legal_coloring_corollary46, legal_coloring_tradeoff45
from repro.verify import check_legal_coloring

N = 384
A = 32


def _measure(p):
    gen, net = cached_forest_union(N, A, seed=700)
    result = legal_coloring(net, A, p=p)
    check_legal_coloring(gen.graph, result.colors)
    return result


def test_tradeoff_curve(benchmark):
    rows = []
    results = {}
    for p in [4, 6, 8, 16, 32]:
        result = _measure(p)
        results[p] = result
        rows.append(
            [p, result.params["iterations"], result.num_colors,
             f"{result.num_colors / A:.2f}", result.rounds]
        )
    emit(
        render_table(
            "E08 Theorems 4.5/4.6 — tradeoff across p (n=384, a=32)",
            ["p", "iterations", "colors", "colors/a", "rounds"],
            rows,
            note="claim: more iterations (small p) multiply colors by (3+ε) each; "
            "larger p costs O(p² log n) rounds per iteration",
        ),
        "e08_tradeoff.txt",
    )
    # Theorem 4.5 shape: iteration count decreases as p grows
    iters = [results[p].params["iterations"] for p in [4, 8, 32]]
    assert iters[0] >= iters[1] >= iters[2]
    # colors stay a^{1+o(1)}: far below a² everywhere on the curve
    assert all(r.num_colors < A * A for r in results.values())
    run_once(benchmark, lambda: _measure(8))


def test_corollary46_eta_sweep(benchmark):
    gen, net = cached_forest_union(N, A, seed=700)
    rows = []
    for eta in [1.0, 0.5, 0.34]:
        result = legal_coloring_corollary46(net, A, eta=eta)
        check_legal_coloring(gen.graph, result.colors)
        bound = A ** (1.0 + eta)
        rows.append(
            [eta, result.num_colors, f"{bound:.0f}",
             f"{result.num_colors / bound:.2f}", result.rounds]
        )
        assert result.num_colors <= 40 * bound
    emit(
        render_table(
            "E08b Corollary 4.6 — O(a^{1+eta}) colors (n=384, a=32)",
            ["eta", "colors", "a^{1+eta}", "colors/bound", "rounds"],
            rows,
        ),
        "e08_tradeoff.txt",
    )
    run_once(benchmark, lambda: legal_coloring_corollary46(net, A, eta=0.5))


def test_theorem45_slow_growing_f(benchmark):
    gen, net = cached_forest_union(N, A, seed=700)
    f_value = max(4, int(math.log2(A)))  # f(a) = log a, a canonical ω(1)
    result = run_once(
        benchmark, lambda: legal_coloring_tradeoff45(net, A, f_value=f_value)
    )
    check_legal_coloring(gen.graph, result.colors)
    emit(
        render_table(
            "E08c Theorem 4.5 — f(a)=log a (n=384, a=32)",
            ["f(a)", "colors", "colors/a", "rounds"],
            [[f_value, result.num_colors, f"{result.num_colors / A:.2f}", result.rounds]],
            note="claim: a^{1+o(1)} colors in O(f(a) log a log n) rounds",
        ),
        "e08_tradeoff.txt",
    )
    assert result.num_colors < A * A
