"""Machine-readable perf records: ``BENCH_<name>.json`` under ``results/``.

Every benchmark run produces one JSON record per ``bench_*.py`` module so
that perf is a *trajectory*, not a table that scrolls away:

* the conftest hooks time every bench test and call :func:`note_test`;
* benches with first-class metrics (rounds·nodes/s, speedup ratios, sweep
  cache hit rates) attach them with :func:`add_metrics`;
* at session end :func:`flush` writes ``BENCH_<name>.json`` with the git
  sha, a UTC timestamp, total wall time, per-test wall times, and the
  attached metrics.

CI uploads the records as workflow artifacts and gates on the ratio metrics
(see ``check_perf_regression.py``): ratios of two measurements taken on the
same machine are comparable across machines, absolute wall times are not.

Compare two records locally with::

    python benchmarks/check_perf_regression.py results/BENCH_graph_core.json \
        benchmarks/baselines/BENCH_graph_core.json
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, Optional

SCHEMA_VERSION = 1

#: per-bench state accumulated during the pytest session
_PENDING: Dict[str, Dict[str, Any]] = {}


def results_dir() -> str:
    """Where records land; honors ``REPRO_RESULTS_DIR`` like the tables do."""
    from repro.analysis.tables import results_dir as _rd

    return _rd()


def git_sha() -> str:
    """The current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def topology() -> Dict[str, Any]:
    """The host-shape block embedded in every record.

    Parallelism-dependent ratio metrics (``overlap_vs_*``) only mean
    something relative to a machine shape; recording it lets
    ``check_perf_regression.py`` skip those floors on smaller boxes
    instead of tripping on topology rather than regression.
    """
    try:
        from repro.obs.topology import topology as _topo

        return _topo()
    except Exception:  # never fail a perf record over the probe
        return {"cpu_count": os.cpu_count() or 1}


def _entry(bench: str) -> Dict[str, Any]:
    return _PENDING.setdefault(bench, {"metrics": {}, "tests": {}})


def add_metrics(bench: str, **metrics: Any) -> None:
    """Attach named metrics to the ``BENCH_<bench>.json`` record.

    Call from inside a bench test with whatever first-class numbers the
    bench measures (``*_speedup`` ratios, ``*_rounds_nodes_per_s``
    throughputs, ``cache_hit_rate``...).  Values must be JSON-serializable.
    """
    _entry(bench)["metrics"].update(metrics)


def add_sweep_metrics(bench: str, sweep_result: Any) -> None:
    """Attach the standard accounting of a ``run_sweep`` result."""
    add_metrics(
        bench,
        cache_hit_rate=round(sweep_result.hit_rate, 4),
        cache_hits=sweep_result.cache_hits,
        cache_misses=sweep_result.cache_misses,
        sweep_trials=sweep_result.num_trials,
        sweep_wall_s=round(sweep_result.wall_s, 4),
    )


def note_test(bench: str, test_name: str, duration_s: float) -> None:
    """Record one bench test's wall time (called by the conftest hooks)."""
    _entry(bench)["tests"][test_name] = round(duration_s, 4)


def record(bench: str, extra: Optional[Dict[str, Any]] = None) -> str:
    """Write ``BENCH_<bench>.json`` now; returns the path written."""
    state = _entry(bench)
    tests = state["tests"]
    payload = {
        "schema": SCHEMA_VERSION,
        "bench": bench,
        "git_sha": git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "wall_s": round(sum(tests.values()), 4),
        "topology": topology(),
        "tests": dict(sorted(tests.items())),
        "metrics": state["metrics"],
    }
    if extra:
        payload.update(extra)
    path = os.path.join(results_dir(), f"BENCH_{bench}.json")
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def flush() -> None:
    """Write one record per bench module seen this session (conftest hook)."""
    for bench in sorted(_PENDING):
        try:
            path = record(bench)
        except OSError as exc:  # never fail the run over a perf record
            print(f"perf_record: could not write {bench}: {exc}", file=sys.stderr)
        else:
            print(f"perf record: {path}")
    _PENDING.clear()
