"""E05 — Theorem 3.2 / Corollary 3.6: Procedure Arbdefective-Coloring.

Claim: an ⌊a/t + (2+ε)a/k⌋-arbdefective k-coloring in O(t² log n) rounds.
Sweep (k, t) and verify (with the orientation witness) that every color
class honours the arboricity bound, and that rounds stay near the
H-partition cost for small t.
"""


from conftest import cached_forest_union, run_once
from repro.analysis import arbdefective_bound, emit, render_table
from repro.core import arbdefective_coloring
from repro.verify import check_arbdefective_coloring, coloring_arbdefect_bounds

N = 512
A = 12
SWEEP = [(2, 2), (3, 3), (4, 4), (6, 6), (3, 6), (6, 3)]


def _measure(k, t):
    gen, net = cached_forest_union(N, A, seed=300)
    dec = arbdefective_coloring(net, A, k=k, t=t)
    check_arbdefective_coloring(
        gen.graph, dec.label, dec.arboricity_bound, dec.params["orientation"]
    )
    return gen, dec


def test_corollary36_sweep(benchmark):
    rows = []
    for k, t in SWEEP:
        gen, dec = _measure(k, t)
        paper = arbdefective_bound(A, k, t, 0.5)
        measured_lb, measured_ub = coloring_arbdefect_bounds(gen.graph, dec.label)
        rows.append(
            [f"k={k},t={t}", dec.num_parts, dec.arboricity_bound, paper,
             measured_ub, dec.rounds]
        )
        # the achieved bound matches the paper's formula (up to flooring)
        assert dec.arboricity_bound <= paper + 1
        # and the actual classes respect it
        assert measured_ub <= dec.arboricity_bound + 1
    emit(
        render_table(
            "E05 Corollary 3.6 — Arbdefective-Coloring (n=512, a=12, eps=0.5)",
            ["params", "parts", "achieved bound", "paper bound ⌊a/t+(2+ε)a/k⌋",
             "measured arbdefect (degeneracy ub)", "rounds"],
            rows,
            note="claim: r·k = O(a): parts × arboricity stays linear in a",
        ),
        "e05_arbdefective.txt",
    )
    # r · k = O(a): check the product across the diagonal sweep
    for k, t in [(2, 2), (4, 4), (6, 6)]:
        _, dec = _measure(k, t)
        assert dec.num_parts * max(1, dec.arboricity_bound) <= 6 * A
    run_once(benchmark, lambda: _measure(4, 4))
