"""E13 — Lemma 2.1: Kuhn's ⌊Δ/p⌋-defective O(p²)-coloring in O(log* n).

Sweep p at fixed Δ: defect must stay ≤ Δ/p, colors grow ~p² (up to the
polylog factor of the explicit families), and rounds stay at the log* n
plateau for every p.
"""


from conftest import run_once
from repro import SynchronousNetwork
from repro.analysis import emit, fit_loglog_slope, log_star, render_table
from repro.core import kuhn_defective_coloring
from repro.graphs import random_regular
from repro.verify import coloring_defect

N = 600
D = 16


def _net():
    gen = random_regular(N, D, seed=1300)
    return gen, SynchronousNetwork(gen.graph)


def test_lemma21_sweep_p(benchmark):
    gen, net = _net()
    delta = gen.graph.max_degree
    rows = []
    color_spaces = []
    sweep = [1, 2, 4, 8]
    for p in sweep:
        result = kuhn_defective_coloring(net, p, max_degree=delta)
        defect = coloring_defect(gen.graph, result.colors)
        rows.append(
            [p, defect, delta // p, result.params["final_color_space"],
             p * p, result.rounds]
        )
        assert defect <= delta // p
        assert result.rounds <= log_star(N) + 4
        color_spaces.append(result.params["final_color_space"])
    emit(
        render_table(
            f"E13 Lemma 2.1 — Kuhn defective coloring (random regular, n={N}, Δ={delta})",
            ["p", "defect", "bound Δ/p", "color space", "p²", "rounds"],
            rows,
            note="claim: ⌊Δ/p⌋-defective O(p²)-coloring in O(log* n) rounds "
            "(explicit families add a polylog factor to the colors)",
        ),
        "e13_defective.txt",
    )
    # color space grows ~quadratically in p
    slope = fit_loglog_slope(
        [float(p) for p in sweep[1:]], [float(c) for c in color_spaces[1:]]
    )
    assert 1.0 <= slope <= 3.0
    run_once(benchmark, lambda: kuhn_defective_coloring(net, 4, max_degree=delta))
