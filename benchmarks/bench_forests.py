"""E02 — Lemma 2.2(2): forests decomposition.

Claim: an O(a)-forests decomposition (specifically ≤ ⌊(2+ε)a⌋ forests) in
O(log n) rounds.  Sweep a at fixed n and n at fixed a; verify forest count
and that rounds track the H-partition's O(log n), independent of a.
"""

import pytest

from conftest import cached_forest_union, cached_planar, run_once
from repro.analysis import emit, render_table
from repro.core import forests_decomposition
from repro.verify import check_forests_decomposition

N = 512
SWEEP_A = [2, 4, 8, 16]


def _measure(n, a, seed):
    gen, net = cached_forest_union(n, a, seed=seed)
    fd = forests_decomposition(net, a)
    check_forests_decomposition(gen.graph, fd)
    return fd


def test_forest_count_linear_in_a(benchmark):
    rows = []
    rounds_seen = []
    for a in SWEEP_A:
        fd = _measure(N, a, seed=a)
        bound = int(2.5 * a)
        rows.append([a, fd.num_forests, bound, fd.rounds])
        assert fd.num_forests <= bound
        rounds_seen.append(fd.rounds)
    emit(
        render_table(
            "E02 Lemma 2.2(2) — forests decomposition (n=512, eps=0.5)",
            ["a", "forests", "bound (2.5a)", "rounds"],
            rows,
            note="claim: O(a) forests in O(log n) rounds — rounds must not grow with a",
        ),
        "e02_forests.txt",
    )
    # round cost is orthogonal to a (it is the H-partition's log n)
    assert max(rounds_seen) - min(rounds_seen) <= 6
    run_once(benchmark, lambda: _measure(N, SWEEP_A[-1], seed=SWEEP_A[-1]))


def test_forests_on_planar(benchmark):
    gen, net = cached_planar(400, seed=2)
    fd = run_once(benchmark, lambda: forests_decomposition(net, 3))
    check_forests_decomposition(gen.graph, fd)
    emit(
        render_table(
            "E02b — planar triangulation (a<=3, n=400)",
            ["forests", "bound", "rounds"],
            [[fd.num_forests, int(2.5 * 3), fd.rounds]],
        ),
        "e02_forests.txt",
    )
    assert fd.num_forests <= 7
