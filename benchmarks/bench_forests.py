"""E02 — Lemma 2.2(2): forests decomposition.

Claim: an O(a)-forests decomposition (specifically ≤ ⌊(2+ε)a⌋ forests) in
O(log n) rounds.  Sweep a at fixed n and n at fixed a; verify forest count
and that rounds track the H-partition's O(log n), independent of a.

Ported to the :mod:`repro.experiments` sweep engine: the workload is a
declarative spec, execution and verification live in the engine, and
``--trials``/``--seed`` (see conftest) override the replicate count and the
base seed without editing this file.
"""

import perf_record
from conftest import cached_forest_union, cached_planar, run_once
from repro.analysis import emit, render_table
from repro.core import forests_decomposition
from repro.experiments import ScenarioSpec, SweepSpec, run_sweep

N = 512
SWEEP_A = [2, 4, 8, 16]


def _spec(trials: int, base_seed: int, sweep_a=SWEEP_A) -> SweepSpec:
    return SweepSpec(
        "e02-forests",
        [
            ScenarioSpec(
                family="forest_union",
                family_params={"n": N, "a": a},
                algorithm="forests",
                algorithm_params={"a": a},
                # the historical instances used seed = a; --seed shifts them
                seeds=[base_seed + a + i for i in range(trials)],
            )
            for a in sweep_a
        ],
    )


def test_forest_count_linear_in_a(benchmark, sweep_trials, sweep_base_seed):
    result = run_sweep(_spec(sweep_trials, sweep_base_seed))
    perf_record.add_sweep_metrics("forests", result)
    rows = []
    rounds_seen = []
    for tr in result:
        a = tr.trial.family_params["a"]
        bound = int(2.5 * a)
        rows.append([a, tr.trial.seed, tr.metrics["num_forests"], bound,
                     tr.metrics["rounds"]])
        assert tr.metrics["num_forests"] <= bound
        assert tr.metrics["verified"]
        rounds_seen.append(tr.metrics["rounds"])
    emit(
        render_table(
            "E02 Lemma 2.2(2) — forests decomposition (n=512, eps=0.5)",
            ["a", "seed", "forests", "bound (2.5a)", "rounds"],
            rows,
            note="claim: O(a) forests in O(log n) rounds — rounds must not grow with a",
        ),
        "e02_forests.txt",
    )
    # round cost is orthogonal to a (it is the H-partition's log n)
    assert max(rounds_seen) - min(rounds_seen) <= 6
    # timed region = the algorithm alone on a prebuilt network, as before
    # the sweep-engine port (keeps benchmark history comparable)
    a = SWEEP_A[-1]
    _gen, net = cached_forest_union(N, a, seed=sweep_base_seed + a)
    run_once(benchmark, lambda: forests_decomposition(net, a))


def test_forests_on_planar(benchmark, sweep_base_seed):
    spec = SweepSpec(
        "e02b-planar",
        [
            ScenarioSpec(
                family="planar",
                family_params={"n": 400},
                algorithm="forests",
                algorithm_params={"a": 3},
                seeds=[sweep_base_seed + 2],
            )
        ],
    )
    result = run_sweep(spec)
    (tr,) = list(result)
    _gen, net = cached_planar(400, seed=sweep_base_seed + 2)
    run_once(benchmark, lambda: forests_decomposition(net, 3))
    emit(
        render_table(
            "E02b — planar triangulation (a<=3, n=400)",
            ["forests", "bound", "rounds"],
            [[tr.metrics["num_forests"], int(2.5 * 3), tr.metrics["rounds"]]],
        ),
        "e02_forests.txt",
    )
    assert tr.metrics["num_forests"] <= 7
