"""S4 (infrastructure) — simulator scheduler throughput: dense vs. event.

The simulator substrate executes every benchmark and sweep in this repo, so
its throughput bounds everything else.  This bench measures effective
**rounds·nodes/s** (how many node-rounds of the synchronous model each
engine retires per second) for the dense reference scheduler and the
event-driven fast path on three activity profiles:

* *sweep* — a greedy color reduction with an n-color palette: one color
  class (≈1 node) acts per round while everyone else waits for its turn —
  the extreme sparse-activity case, and the shape of the paper's
  color-class sweeps and stall phases;
* *stall* — the §1.2 MIS pipeline, whose coloring recursion and class
  sweep mix short bursts of activity with long quiescent stretches;
* *flood* — Luby coloring, where nearly every node acts in every round —
  the dense-activity case the fast path must not regress.

Acceptance: both engines produce identical results, and the event engine
is ≥2× faster on the sparse-activity sweep (in practice it is 10–100×;
the flood rows document that dense-activity throughput stays comparable).
"""

from __future__ import annotations

import time

import perf_record
from conftest import cached_forest_union
from repro import SynchronousNetwork
from repro.analysis import emit, render_table
from repro.core import greedy_reduction, luby_coloring, mis_arboricity

A = 3


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _throughput(rounds: int, n: int, seconds: float) -> float:
    return rounds * n / max(seconds, 1e-9)


def _run_workload(name, graph, workload):
    """Run one workload under both schedulers; return a table row."""
    n = graph.n
    dense_out, dense_s = _timed(
        lambda: workload(SynchronousNetwork(graph, scheduler="dense"))
    )
    event_out, event_s = _timed(
        lambda: workload(SynchronousNetwork(graph, scheduler="event"))
    )
    assert dense_out == event_out, f"{name}: scheduler results diverge"
    rounds = dense_out.rounds
    return [
        name,
        n,
        rounds,
        f"{_throughput(rounds, n, dense_s) / 1e3:.0f}",
        f"{_throughput(rounds, n, event_s) / 1e3:.0f}",
        f"{dense_s / event_s:.1f}x",
    ], dense_s, event_s


def test_simulator_throughput(benchmark):
    rows = []
    sweep_speedups = []
    for n in (400, 900):
        gen, _ = cached_forest_union(n, A, seed=3100 + n)
        graph = gen.graph
        target = graph.max_degree + 1
        sweep = lambda net, g=graph, t=target: greedy_reduction(
            net, {v: v for v in g.vertices}, g.n, t
        )
        row, dense_s, event_s = _run_workload(f"sweep (m={n})", graph, sweep)
        rows.append(row)
        sweep_speedups.append(dense_s / event_s)

        row, _, _ = _run_workload(
            f"stall (MIS §1.2)", graph, lambda net: mis_arboricity(net, A)
        )
        rows.append(row)

        row, _, _ = _run_workload(
            "flood (Luby)", graph, lambda net: luby_coloring(net, seed=4)
        )
        rows.append(row)

    emit(
        render_table(
            "S4 — scheduler throughput: dense reference vs. event fast path",
            ["workload", "n", "rounds", "dense kRN/s", "event kRN/s", "speedup"],
            rows,
            note="kRN/s = thousand rounds·nodes of the synchronous model "
            "retired per second; results are byte-identical by assertion",
        ),
        "s4_simulator_throughput.txt",
    )
    perf_record.add_metrics(
        "simulator_throughput",
        event_vs_dense_sweep_speedup=round(min(sweep_speedups), 3),
        sweep_rows=[
            {"workload": r[0], "n": r[1], "rounds": r[2],
             "dense_krn_per_s": r[3], "event_krn_per_s": r[4]}
            for r in rows
        ],
    )
    # Acceptance: ≥2× on every sparse-activity sweep size (observed: 4–100×).
    assert min(sweep_speedups) >= 2.0, (
        f"event scheduler speedup {min(sweep_speedups):.2f}x < 2x on the "
        "sparse-activity sweep"
    )

    gen, _ = cached_forest_union(900, A, seed=4000)
    target = gen.graph.max_degree + 1
    benchmark.pedantic(
        lambda: greedy_reduction(
            SynchronousNetwork(gen.graph),
            {v: v for v in gen.graph.vertices},
            gen.graph.n,
            target,
        ),
        iterations=1,
        rounds=1,
    )
