"""S4 (infrastructure) — simulator engine throughput: dense vs. event vs. column.

The simulator substrate executes every benchmark and sweep in this repo, so
its throughput bounds everything else.  This bench measures effective
**rounds·nodes/s** (how many node-rounds of the synchronous model each
engine retires per second) for the dense reference scheduler and the
event-driven fast path on three activity profiles:

* *sweep* — a greedy color reduction with an n-color palette: one color
  class (≈1 node) acts per round while everyone else waits for its turn —
  the extreme sparse-activity case, and the shape of the paper's
  color-class sweeps and stall phases;
* *stall* — the §1.2 MIS pipeline, whose coloring recursion and class
  sweep mix short bursts of activity with long quiescent stretches;
* *flood* — Luby coloring, where nearly every node acts in every round —
  the dense-activity case the fast path must not regress.

Acceptance: both engines produce identical results, and the event engine
is ≥2× faster on the sparse-activity sweep (in practice it is 10–100×;
the flood rows document that dense-activity throughput stays comparable).

A second test guards the telemetry spine's overhead contract: the
instrumented scheduler with telemetry *disabled* must stay within 3% of
``legacy_network.LegacySynchronousNetwork``, a frozen copy of the
scheduler from before the telemetry hooks existed (the same A/B idiom as
``legacy_graph`` for the CSR core).

A third test runs the column engine at the scale the per-node engines
cannot reach: the H-partition peel on a million-node forest union (built
with the numpy bulk generator, no Python edge objects).  Acceptance:
byte-identical to the event engine and ≥10× faster on the structured-core
workload (observed: 100–300×; the committed baseline floor is gated in
CI, skipped visibly on low-memory boxes).
"""

from __future__ import annotations

import time

import perf_record
import pytest
from conftest import cached_forest_union
from legacy_network import LegacySynchronousNetwork
from repro import SynchronousNetwork
from repro.analysis import emit, render_table
from repro.core import greedy_reduction, luby_coloring, mis_arboricity
from repro.obs import RoundTelemetry

A = 3


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _throughput(rounds: int, n: int, seconds: float) -> float:
    return rounds * n / max(seconds, 1e-9)


def _run_workload(name, graph, workload):
    """Run one workload under both schedulers; return a table row."""
    n = graph.n
    dense_out, dense_s = _timed(
        lambda: workload(SynchronousNetwork(graph, scheduler="dense"))
    )
    event_out, event_s = _timed(
        lambda: workload(SynchronousNetwork(graph, scheduler="event"))
    )
    assert dense_out == event_out, f"{name}: scheduler results diverge"
    rounds = dense_out.rounds
    return [
        name,
        n,
        rounds,
        f"{_throughput(rounds, n, dense_s) / 1e3:.0f}",
        f"{_throughput(rounds, n, event_s) / 1e3:.0f}",
        f"{dense_s / event_s:.1f}x",
    ], dense_s, event_s


def test_simulator_throughput(benchmark):
    rows = []
    sweep_speedups = []
    for n in (400, 900):
        gen, _ = cached_forest_union(n, A, seed=3100 + n)
        graph = gen.graph
        target = graph.max_degree + 1
        sweep = lambda net, g=graph, t=target: greedy_reduction(
            net, {v: v for v in g.vertices}, g.n, t
        )
        row, dense_s, event_s = _run_workload(f"sweep (m={n})", graph, sweep)
        rows.append(row)
        sweep_speedups.append(dense_s / event_s)

        row, _, _ = _run_workload(
            f"stall (MIS §1.2)", graph, lambda net: mis_arboricity(net, A)
        )
        rows.append(row)

        row, _, _ = _run_workload(
            "flood (Luby)", graph, lambda net: luby_coloring(net, seed=4)
        )
        rows.append(row)

    emit(
        render_table(
            "S4 — scheduler throughput: dense reference vs. event fast path",
            ["workload", "n", "rounds", "dense kRN/s", "event kRN/s", "speedup"],
            rows,
            note="kRN/s = thousand rounds·nodes of the synchronous model "
            "retired per second; results are byte-identical by assertion",
        ),
        "s4_simulator_throughput.txt",
    )
    perf_record.add_metrics(
        "simulator_throughput",
        event_vs_dense_sweep_speedup=round(min(sweep_speedups), 3),
        sweep_rows=[
            {"workload": r[0], "n": r[1], "rounds": r[2],
             "dense_krn_per_s": r[3], "event_krn_per_s": r[4]}
            for r in rows
        ],
    )
    # Acceptance: ≥2× on every sparse-activity sweep size (observed: 4–100×).
    assert min(sweep_speedups) >= 2.0, (
        f"event scheduler speedup {min(sweep_speedups):.2f}x < 2x on the "
        "sparse-activity sweep"
    )

    gen, _ = cached_forest_union(900, A, seed=4000)
    target = gen.graph.max_degree + 1
    benchmark.pedantic(
        lambda: greedy_reduction(
            SynchronousNetwork(gen.graph),
            {v: v for v in gen.graph.vertices},
            gen.graph.n,
            target,
        ),
        iterations=1,
        rounds=1,
    )


def _best_of(k, fn):
    """Best-of-k wall time: the min filters out scheduler hiccups."""
    out, best = None, None
    for _ in range(k):
        out, seconds = _timed(fn)
        best = seconds if best is None else min(best, seconds)
    return out, best


def test_column_engine_scale(benchmark):
    """Column vs. event at n = 10^6: the vectorized engine's reason to exist.

    The workload is the structured core of the paper's pipeline — the
    H-partition peel (Lemma 2.3) — on a million-node arboricity-3 forest
    union.  The event engine executes it one node activation at a time
    (~10^6 NodeContext objects, dict inboxes); the column engine executes
    whole rounds as numpy array passes over the shared CSR.  Both must
    produce byte-identical RunResults; the speedup is recorded as
    ``column_vs_event_speedup`` and gated against the committed baseline.
    """
    pytest.importorskip("numpy")
    from repro.core.hpartition import HPartitionProgram, degree_threshold
    from repro.graphs import forest_union_bulk

    n = 1_000_000
    gen, gen_s = _timed(lambda: forest_union_bulk(n, A, seed=4100))
    graph = gen.graph
    threshold = degree_threshold(A, 0.5)

    def peel(engine):
        return SynchronousNetwork(graph, scheduler=engine).run(
            lambda: HPartitionProgram(threshold)
        )

    col_out, col_s = _best_of(3, lambda: peel("column"))
    event_out, event_s = _timed(lambda: peel("event"))  # once: ~10^2 s
    assert col_out == event_out, "column and event results diverge"
    speedup = event_s / col_s
    rounds = col_out.rounds
    emit(
        render_table(
            "S4 — column engine at scale: H-partition peel, n = 10^6",
            ["engine", "n", "rounds", "wall s", "MRN/s"],
            [
                ["event", n, rounds, f"{event_s:.2f}",
                 f"{_throughput(rounds, n, event_s) / 1e6:.1f}"],
                ["column", n, rounds, f"{col_s:.2f}",
                 f"{_throughput(rounds, n, col_s) / 1e6:.1f}"],
            ],
            note=f"bulk graph build {gen_s:.2f}s (numpy, m={graph.m}); "
            f"column speedup {speedup:.0f}x; results byte-identical "
            "by assertion",
        ),
        "s4_column_engine_scale.txt",
    )
    perf_record.add_metrics(
        "simulator_throughput",
        column_vs_event_speedup=round(speedup, 1),
        column_rounds_nodes_per_s=round(_throughput(rounds, n, col_s)),
        column_scale_n=n,
    )
    # Acceptance: ≥10× over the event engine at n = 10^6 (observed 100–300×).
    assert speedup >= 10.0, (
        f"column engine speedup {speedup:.1f}x < 10x at n={n}"
    )
    benchmark.pedantic(lambda: peel("column"), iterations=1, rounds=1)


def _with_telemetry(net, tel):
    """Attach a telemetry sink to every ``run`` of a network instance."""
    orig = net.run

    def run(*args, **kwargs):
        kwargs.setdefault("telemetry", tel)
        return orig(*args, **kwargs)

    net.run = run
    return net


def test_telemetry_overhead(benchmark):
    """Telemetry-disabled scheduler within 3% of the pre-telemetry copy.

    A/B against ``LegacySynchronousNetwork`` (frozen before the telemetry
    hooks landed) on the sparse-sweep and dense-flood workloads; the gated
    ratio is total legacy time over total current time with telemetry off.
    Also records the enabled/disabled ratio for context (never gated).
    """
    gen, _ = cached_forest_union(400, A, seed=3500)
    graph = gen.graph
    target = graph.max_degree + 1
    workloads = [
        (
            "sweep",
            lambda net: greedy_reduction(
                net, {v: v for v in graph.vertices}, graph.n, target
            ),
        ),
        ("flood", lambda net: luby_coloring(net, seed=4)),
    ]
    rows = []
    legacy_total = disabled_total = enabled_total = 0.0
    for name, workload in workloads:
        legacy_out, legacy_s = _best_of(
            5,
            lambda workload=workload: workload(
                LegacySynchronousNetwork(graph, scheduler="event")
            ),
        )
        disabled_out, disabled_s = _best_of(
            5,
            lambda workload=workload: workload(
                SynchronousNetwork(graph, scheduler="event")
            ),
        )
        enabled_out, enabled_s = _best_of(
            5,
            lambda workload=workload: workload(
                _with_telemetry(
                    SynchronousNetwork(graph, scheduler="event"), RoundTelemetry()
                )
            ),
        )
        assert legacy_out == disabled_out == enabled_out, (
            f"{name}: instrumented scheduler diverges from the frozen copy"
        )
        legacy_total += legacy_s
        disabled_total += disabled_s
        enabled_total += enabled_s
        rows.append(
            [
                name,
                graph.n,
                f"{1e3 * legacy_s:.1f}",
                f"{1e3 * disabled_s:.1f}",
                f"{1e3 * enabled_s:.1f}",
                f"{legacy_s / disabled_s:.3f}x",
            ]
        )
    disabled_ratio = legacy_total / disabled_total
    enabled_ratio = disabled_total / enabled_total
    emit(
        render_table(
            "S4 — telemetry overhead: frozen pre-telemetry scheduler vs. current",
            ["workload", "n", "legacy ms", "disabled ms", "enabled ms", "ratio"],
            rows,
            note="ratio = legacy/disabled best-of-5 wall time; the disabled "
            "path must stay within 3% of the frozen copy (floor 0.97)",
        ),
        "s4_telemetry_overhead.txt",
    )
    perf_record.add_metrics(
        "simulator_throughput",
        telemetry_disabled_vs_legacy_speedup=round(disabled_ratio, 3),
        telemetry_enabled_vs_disabled_ratio=round(enabled_ratio, 3),
    )
    # Acceptance: instrumented-but-disabled within 3% of pre-instrumentation.
    assert disabled_ratio >= 0.97, (
        f"telemetry-disabled scheduler at {disabled_ratio:.3f}x of the frozen "
        "pre-telemetry copy (floor 0.97)"
    )

    benchmark.pedantic(
        lambda: luby_coloring(SynchronousNetwork(graph), seed=4),
        iterations=1,
        rounds=1,
    )
