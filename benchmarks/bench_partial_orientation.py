"""E04 — Theorem 3.5 + Figure 1: Procedure Partial-Orientation.

Claims: acyclic partial orientation with out-degree ⌊(2+ε)a⌋, deficit
≤ ⌊a/t⌋, length O(t² log n), in O(log n) rounds.  Figure 1's structure:
any directed path crosses between H-levels at most ℓ−1 = O(log n) times,
with bounded same-level runs in between.

Sweeps t; also reproduces the Figure 1 decomposition of the single longest
directed path into cross-level edges vs intra-level runs.
"""


from conftest import cached_forest_union, run_once
from repro.analysis import emit, partial_orientation_length_bound, render_table
from repro.core import compute_hpartition, partial_orientation
from repro.verify import (
    check_orientation_acyclic,
    check_orientation_deficit,
    check_orientation_out_degree,
    longest_directed_path,
    orientation_length,
    orientation_max_deficit,
)

N = 512
A = 8
SWEEP_T = [1, 2, 4, 8]


def _measure(t):
    gen, net = cached_forest_union(N, A, seed=200)
    po = partial_orientation(net, A, t=t)
    check_orientation_acyclic(gen.graph, po)
    check_orientation_out_degree(gen.graph, po, int(2.5 * A))
    check_orientation_deficit(gen.graph, po, A // t)
    return gen, po


def test_theorem35_sweep_t(benchmark):
    rows = []
    for t in SWEEP_T:
        gen, po = _measure(t)
        deficit = orientation_max_deficit(gen.graph, po)
        length = orientation_length(gen.graph, po)
        bound = partial_orientation_length_bound(t, N, 0.5)
        rows.append([t, deficit, A // t, length, f"{bound:.0f}", po.rounds])
    emit(
        render_table(
            "E04 Theorem 3.5 — Partial-Orientation (n=512, a=8, eps=0.5)",
            ["t", "deficit", "deficit bound a/t", "length", "len bound (t²+1)log n", "rounds"],
            rows,
            note="claim: deficit <= a/t, length O(t² log n), O(log n) rounds",
        ),
        "e04_partial_orientation.txt",
    )
    run_once(benchmark, lambda: _measure(2))


def test_partial_beats_complete_in_rounds(benchmark):
    """The paper's central speedup: Partial-Orientation costs O(log n)
    rounds where Complete-Orientation pays for legal level colorings."""
    from repro.core import complete_orientation

    gen, net = cached_forest_union(N, A, seed=200)
    po = partial_orientation(net, A, t=2)
    co = complete_orientation(net, A)
    emit(
        render_table(
            "E04b — partial vs complete orientation rounds (n=512, a=8)",
            ["variant", "rounds"],
            [["partial (t=2)", po.rounds], ["complete", co.rounds]],
            note="claim: partial O(log n) << complete O(a + log n) with Δ+1 coloring cost",
        ),
        "e04_partial_orientation.txt",
    )
    assert po.rounds < co.rounds
    run_once(benchmark, lambda: partial_orientation(net, A, t=2))


def test_figure1_path_structure(benchmark):
    """Figure 1: the longest directed path decomposes into ≤ ℓ−1
    cross-level edges separated by bounded same-level runs."""
    gen, net = cached_forest_union(N, A, seed=200)
    hp = compute_hpartition(net, A)
    po = partial_orientation(net, A, t=2, hpartition=hp)
    path = longest_directed_path(gen.graph, po)
    levels = [hp.index[v] for v in path]
    cross = sum(1 for x, y in zip(levels, levels[1:], strict=False) if x != y)
    # longest same-level run of edges
    best_run = run = 0
    for x, y in zip(levels, levels[1:], strict=False):
        run = run + 1 if x == y else 0
        best_run = max(best_run, run)
    emit(
        render_table(
            "E04c Figure 1 — longest directed path structure (n=512, a=8, t=2)",
            ["path length", "cross-level edges", "bound ℓ-1", "longest same-level run"],
            [[len(path) - 1, cross, hp.num_levels - 1, best_run]],
            note="claim: <= ℓ−1 cross-level edges; same-level runs bounded by the defective palette",
        ),
        "e04_partial_orientation.txt",
    )
    assert cross <= hp.num_levels - 1
    run_once(benchmark, lambda: longest_directed_path(gen.graph, po))
