"""Frozen pre-telemetry copy of the round scheduler, for overhead gating.

This is the simulator's ``SynchronousNetwork.run`` exactly as it stood
before the telemetry spine was threaded through the hot loop (same
mechanism as ``legacy_graph.py``: preserve the old implementation so the
perf claim stays measurable *after* the change lands).
``bench_simulator_throughput.py`` runs identical workloads through this
engine and the instrumented one with telemetry disabled, and gates the
ratio: the disabled path must stay within a few percent of this baseline.

Do not modify this file when changing the live scheduler — that would
silently re-baseline the overhead gate.  It reuses the live
:class:`~repro.simulator.network.RunResult` so results from both engines
compare equal with plain dataclass ``==``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import RoundLimitExceeded, SimulationError
from repro.graphs.graph import Graph
from repro.simulator import NodeContext, NodeProgram, payload_size
from repro.simulator.network import RunResult
from repro.types import Vertex

ProgramFactory = Callable[[], NodeProgram]

DEFAULT_ROUND_LIMIT_FACTOR = 50

SCHEDULERS = ("event", "dense")


class LegacySynchronousNetwork:
    """The scheduler as it was before telemetry instrumentation."""

    def __init__(self, graph: Graph, scheduler: str = "event"):
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
            )
        self.graph = graph
        self.scheduler = scheduler

    # ------------------------------------------------------------------
    def run(
        self,
        program_factory: ProgramFactory,
        *,
        global_params: Optional[Mapping[str, Any]] = None,
        participants: Optional[Iterable[Vertex]] = None,
        part_of: Optional[Mapping[Vertex, Any]] = None,
        round_limit: Optional[int] = None,
        count_bytes: bool = False,
        trace=None,
        scheduler: Optional[str] = None,
    ) -> RunResult:
        mode = scheduler if scheduler is not None else self.scheduler
        if mode not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {mode!r}; expected one of {SCHEDULERS}"
            )
        graph = self.graph
        if participants is None:
            order: Tuple[Vertex, ...] = graph.vertices
            active_set = None
        else:
            active_set = set(participants)
            for v in active_set:
                if not graph.has_vertex(v):
                    raise SimulationError(f"participant {v} is not a vertex")
            order = tuple(sorted(active_set))
        if round_limit is None:
            round_limit = DEFAULT_ROUND_LIMIT_FACTOR * max(1, graph.n) + 1000

        gp: Dict[str, Any] = dict(global_params or {})
        gp.setdefault("n", graph.n)

        S = len(order)
        full = active_set is None or len(active_set) == graph.n
        identity = full and getattr(graph, "ids_contiguous", False)
        rank: Optional[Dict[Vertex, int]] = (
            None if identity else {v: i for i, v in enumerate(order)}
        )

        contexts: List[NodeContext] = []
        programs: List[NodeProgram] = []
        for v in order:
            if part_of is not None:
                label = part_of.get(v)
                visible = tuple(
                    u
                    for u in graph.neighbors(v)
                    if (active_set is None or u in active_set)
                    and part_of.get(u) == label
                )
                ctx = NodeContext(v, visible, gp)
            elif not full:
                visible = tuple(
                    u for u in graph.neighbors(v) if u in active_set
                )
                ctx = NodeContext(v, visible, gp)
            else:
                ctx = NodeContext(v, graph.neighbors(v), gp)
            contexts.append(ctx)
            programs.append(program_factory())

        running = bytearray(b"\x01") * S
        running_count = S
        messages = 0
        message_bytes = 0
        max_message_bytes = 0
        pending: Dict[int, Dict[Vertex, Any]] = {}

        current_round = 0
        slow_path = count_bytes or trace is not None

        def dispatch_slow(sender: Vertex, outbox) -> None:
            nonlocal messages, message_bytes, max_message_bytes
            for dest, payload in outbox:
                messages += 1
                if count_bytes:
                    size = payload_size(payload)
                    message_bytes += size
                    if size > max_message_bytes:
                        max_message_bytes = size
                if trace is not None:
                    trace.record(current_round, sender, dest, payload)
                slot = dest if rank is None else rank[dest]
                box = pending.get(slot)
                if box is None:
                    box = pending[slot] = {}
                box[sender] = payload

        awake = set(range(S))
        wake_round: Dict[int, int] = {}
        wake_heap: List[Tuple[int, int]] = []  # (round, slot)
        heappush = heapq.heappush

        for slot in range(S):
            ctx = contexts[slot]
            programs[slot].on_start(ctx)
            outbox = ctx._outbox
            if outbox:
                ctx._outbox = []
                if slow_path:
                    dispatch_slow(ctx.node, outbox)
                else:
                    messages += len(outbox)
                    sender = ctx.node
                    for dest, payload in outbox:
                        dslot = dest if rank is None else rank[dest]
                        box = pending.get(dslot)
                        if box is None:
                            box = pending[dslot] = {}
                        box[sender] = payload
            if mode == "event":
                idle = ctx._idle_requested
                wake = ctx._wake_round
                if idle:
                    ctx._idle_requested = False
                if wake is not None:
                    ctx._wake_round = None
                if not ctx.halted:
                    if idle:
                        awake.discard(slot)
                    else:
                        awake.add(slot)
                    if wake is not None:
                        wake_round[slot] = wake
                        heappush(wake_heap, (wake, slot))
            else:
                ctx._idle_requested = False
                ctx._wake_round = None
            if ctx.halted:
                running[slot] = 0
                running_count -= 1
                awake.discard(slot)

        rounds = 0
        if mode == "dense":
            while running_count:
                if rounds >= round_limit:
                    raise RoundLimitExceeded(round_limit, running_count)
                rounds += 1
                current_round = rounds
                delivery = pending
                pending = {}
                for slot in range(S):
                    if not running[slot]:
                        continue
                    ctx = contexts[slot]
                    ctx.inbox = delivery.get(slot, {})
                    ctx.round_number = rounds
                    programs[slot].on_round(ctx)
                    outbox = ctx._outbox
                    if outbox:
                        ctx._outbox = []
                        if slow_path:
                            dispatch_slow(ctx.node, outbox)
                        else:
                            messages += len(outbox)
                            sender = ctx.node
                            for dest, payload in outbox:
                                dslot = dest if rank is None else rank[dest]
                                box = pending.get(dslot)
                                if box is None:
                                    box = pending[dslot] = {}
                                box[sender] = payload
                    ctx._idle_requested = False
                    ctx._wake_round = None
                for slot in range(S):
                    if running[slot] and contexts[slot].halted:
                        running[slot] = 0
                        running_count -= 1
        else:
            while running_count:
                if awake or pending:
                    next_round = rounds + 1
                else:
                    next_round = None
                    while wake_heap:
                        r, slot = wake_heap[0]
                        if running[slot] and wake_round.get(slot) == r:
                            next_round = max(r, rounds + 1)
                            break
                        heapq.heappop(wake_heap)  # stale entry
                    if next_round is None:
                        raise RoundLimitExceeded(round_limit, running_count)
                if next_round > round_limit:
                    raise RoundLimitExceeded(round_limit, running_count)
                rounds = next_round
                current_round = rounds
                delivery = pending
                pending = {}
                cand = set(awake)
                for slot in delivery:
                    if running[slot]:
                        cand.add(slot)
                while wake_heap and wake_heap[0][0] <= rounds:
                    r, slot = heapq.heappop(wake_heap)
                    if running[slot] and wake_round.get(slot) == r:
                        cand.add(slot)
                if len(cand) * 4 < S:
                    schedule = sorted(cand)
                else:
                    schedule = (s for s in range(S) if s in cand)
                for slot in schedule:
                    ctx = contexts[slot]
                    wake_round.pop(slot, None)
                    ctx.inbox = delivery.get(slot, {})
                    ctx.round_number = rounds
                    programs[slot].on_round(ctx)
                    outbox = ctx._outbox
                    if outbox:
                        ctx._outbox = []
                        if slow_path:
                            dispatch_slow(ctx.node, outbox)
                        else:
                            messages += len(outbox)
                            sender = ctx.node
                            for dest, payload in outbox:
                                dslot = dest if rank is None else rank[dest]
                                box = pending.get(dslot)
                                if box is None:
                                    box = pending[dslot] = {}
                                box[sender] = payload
                    idle = ctx._idle_requested
                    wake = ctx._wake_round
                    if idle:
                        ctx._idle_requested = False
                    if wake is not None:
                        ctx._wake_round = None
                    if not ctx.halted:
                        if idle:
                            awake.discard(slot)
                        else:
                            awake.add(slot)
                        if wake is not None:
                            wake_round[slot] = wake
                            heappush(wake_heap, (wake, slot))
                for slot in cand:
                    if contexts[slot].halted:
                        if running[slot]:
                            running[slot] = 0
                            running_count -= 1
                        awake.discard(slot)
                        wake_round.pop(slot, None)

        outputs = {ctx.node: ctx.output for ctx in contexts}
        return RunResult(
            outputs=outputs,
            rounds=rounds,
            messages=messages,
            message_bytes=message_bytes,
            max_message_bytes=max_message_bytes,
        )
