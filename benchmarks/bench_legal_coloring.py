"""E07 — Theorem 4.3: Procedure Legal-Coloring with p = ⌈a^{µ/2}⌉.

Claim: O(a) colors in O(a^µ log n) rounds.  Two sweeps:
  (i) sweep a at fixed n, µ — colors stay O(a);
 (ii) sweep n at fixed a, µ — rounds grow ~log n (the polylog claim).
"""


from conftest import cached_forest_union, run_once
from repro.analysis import emit, fit_loglog_slope, render_table
from repro.core import legal_coloring_theorem43
from repro.verify import check_legal_coloring

MU = 1.0


def _measure(n, a, seed):
    gen, net = cached_forest_union(n, a, seed=seed)
    result = legal_coloring_theorem43(net, a, mu=MU)
    check_legal_coloring(gen.graph, result.colors)
    return result


def test_colors_linear_in_a(benchmark):
    rows = []
    colors = []
    sweep_a = [8, 16, 32]
    for a in sweep_a:
        result = _measure(384, a, seed=500 + a)
        rows.append(
            [a, result.params["p"], result.params["iterations"],
             result.num_colors, f"{result.num_colors / a:.2f}", result.rounds]
        )
        colors.append(result.num_colors)
    emit(
        render_table(
            "E07 Theorem 4.3 — Legal-Coloring colors vs a (n=384, mu=1.0)",
            ["a", "p", "iterations", "colors", "colors/a", "rounds"],
            rows,
            note="claim: O(a) colors in O(a^mu log n) rounds",
        ),
        "e07_legal_coloring.txt",
    )
    # linear-in-a shape: the log-log slope stays well below quadratic and
    # the colors/a ratio stays bounded (the per-a constant varies with the
    # iteration count, so the slope alone can dip below 1 at small scale)
    slope = fit_loglog_slope([float(a) for a in sweep_a], [float(c) for c in colors])
    assert slope <= 1.5
    assert all(c <= 20 * a for c, a in zip(colors, sweep_a, strict=True))
    run_once(benchmark, lambda: _measure(384, 16, seed=516))


def test_rounds_polylog_in_n(benchmark):
    import math

    rows = []
    logs, rounds = [], []
    for n in [128, 256, 512, 1024]:
        result = _measure(n, 16, seed=600 + n)
        rows.append([n, result.rounds, f"{result.rounds / math.log2(n):.1f}"])
        logs.append(math.log2(n))
        rounds.append(float(result.rounds))
    emit(
        render_table(
            "E07b Theorem 4.3 — Legal-Coloring rounds vs n (a=16, mu=1.0)",
            ["n", "rounds", "rounds/log2(n)"],
            rows,
            note="claim: rounds O(a^mu log n) — linear in log n at fixed a",
        ),
        "e07_legal_coloring.txt",
    )
    # rounds/log n bounded: the ratio across an 8x sweep stays within 3x
    ratios = [r / l for r, l in zip(rounds, logs, strict=True)]
    assert max(ratios) / min(ratios) <= 3.0
    run_once(benchmark, lambda: _measure(512, 16, seed=1112))
