"""E03 — Lemma 3.3: Procedure Complete-Orientation.

Claim: complete acyclic orientation with out-degree ⌊(2+ε)a⌋ and length
O(a log n).  Sweep a at fixed n: the measured length must grow ~linearly
with a (the log n factor fixed), and the out-degree bound must hold
exactly.
"""


from conftest import cached_forest_union, run_once
from repro.analysis import (
    complete_orientation_length_bound,
    emit,
    fit_loglog_slope,
    render_table,
)
from repro.core import complete_orientation
from repro.verify import (
    check_orientation_acyclic,
    check_orientation_complete,
    orientation_length,
    orientation_max_out_degree,
)

N = 512
SWEEP_A = [2, 4, 8, 16]


def _measure(a):
    gen, net = cached_forest_union(N, a, seed=a + 100)
    co = complete_orientation(net, a)
    check_orientation_acyclic(gen.graph, co)
    check_orientation_complete(gen.graph, co)
    return gen, co


def test_length_linear_in_a(benchmark):
    rows = []
    lengths = []
    for a in SWEEP_A:
        gen, co = _measure(a)
        length = orientation_length(gen.graph, co)
        out = orientation_max_out_degree(gen.graph, co)
        bound = complete_orientation_length_bound(a, N, 0.5)
        rows.append([a, out, int(2.5 * a), length, f"{bound:.0f}", co.rounds])
        lengths.append(length)
        assert out <= int(2.5 * a)
        assert length <= 3 * bound
    emit(
        render_table(
            "E03 Lemma 3.3 — Complete-Orientation (n=512, eps=0.5)",
            ["a", "out-deg", "bound", "length", "len bound (2.5a+1)log n", "rounds"],
            rows,
            note="claim: length O(a log n) — length must grow with a",
        ),
        "e03_complete_orientation.txt",
    )
    # length grows with a: log-log slope positive and near-linear-ish
    slope = fit_loglog_slope([float(a) for a in SWEEP_A], [float(x) for x in lengths])
    assert 0.3 <= slope <= 1.6
    run_once(benchmark, lambda: _measure(SWEEP_A[-1]))
