"""E14 — Corollary 4.7: (Δ+1)-coloring in polylog time when a ≤ Δ^{1−ν}.

Workload: forest unions plus a few hubs (arboricity a+hubs, Δ = Θ(n/hubs))
— the polynomially-separated regime.  The paper's pipeline computes an
o(Δ) coloring via Corollary 4.6, then reduces greedily to exactly Δ+1.
We verify the intermediate coloring is o(Δ) and the final palette is Δ+1,
and compare against a pure degree-based baseline for color count.

Ported to the :mod:`repro.experiments` sweep engine: the hub-graph sweep is
a declarative spec; ``--trials``/``--seed`` (see conftest) override
replication and seeding.
"""

import perf_record
from conftest import cached_sparse_high_degree, run_once
from repro.analysis import emit, render_table
from repro.core import delta_plus_one_via_arboricity, linial_coloring
from repro.experiments import ScenarioSpec, SweepSpec, run_sweep

NU = 0.5
SWEEP_CONFIGS = [(300, 3, 3), (600, 3, 4), (900, 4, 4)]


def _scenario(n, a, hubs, seeds, algorithm="delta_plus_one", **alg_params):
    params = {"nu": NU, **alg_params} if algorithm == "delta_plus_one" else alg_params
    return ScenarioSpec(
        family="hubs",
        family_params={"n": n, "a": a, "num_hubs": hubs},
        algorithm=algorithm,
        algorithm_params=params,
        seeds=seeds,
    )


def test_corollary47(benchmark, sweep_trials, sweep_base_seed):
    # the historical instances used seed = 1400; --seed shifts them
    seeds = [sweep_base_seed + 1400 + i for i in range(sweep_trials)]
    spec = SweepSpec(
        "e14-delta-plus-one",
        [_scenario(n, a, hubs, seeds) for n, a, hubs in SWEEP_CONFIGS],
    )
    result = run_sweep(spec)
    perf_record.add_sweep_metrics("delta_plus_one", result)
    rows = []
    for tr in result:
        n = tr.trial.family_params["n"]
        delta = tr.metrics["max_degree"]
        pre = tr.metrics["pre_reduction_colors"]
        rows.append(
            [n, tr.metrics["arboricity_bound"], delta, pre,
             tr.metrics["colors"], delta + 1, tr.metrics["rounds"]]
        )
        assert tr.metrics["verified"]
        assert tr.metrics["colors"] <= delta + 1
        # the intermediate coloring is o(Δ): strictly below Δ here
        assert pre <= delta
    emit(
        render_table(
            "E14 Corollary 4.7 — (Δ+1)-coloring when a ≤ Δ^{1-ν} (ν=0.5)",
            ["n", "a", "Δ", "pre-reduction colors", "final colors",
             "Δ+1", "rounds"],
            rows,
            note="claim: o(Δ) intermediate coloring via C4.6, then greedy to Δ+1",
        ),
        "e14_delta_plus_one.txt",
    )
    # timed region = the algorithm alone on a prebuilt network, as before
    # the sweep-engine port (keeps benchmark history comparable)
    gen, net = cached_sparse_high_degree(600, 3, 4, seed=seeds[0])
    run_once(
        benchmark,
        lambda: delta_plus_one_via_arboricity(net, gen.arboricity_bound, nu=NU),
    )


def test_arboricity_route_beats_degree_route_on_colors(benchmark, sweep_base_seed):
    """On the a ≪ Δ workload, the arboricity route matches Δ+1 while the
    intermediate palette stays tiny — degree-oblivious algorithms like
    Linial would pay Δ² intermediate colors."""
    seeds = [sweep_base_seed + 1400]
    spec = SweepSpec(
        "e14b-routes",
        [
            _scenario(600, 3, 4, seeds),
            _scenario(600, 3, 4, seeds, algorithm="linial"),
        ],
    )
    result = run_sweep(spec)
    ours, linial = list(result)
    delta = ours.metrics["max_degree"]
    emit(
        render_table(
            "E14b — intermediate palettes: arboricity vs degree route "
            f"(n=600, a={ours.metrics['arboricity_bound']}, Δ={delta})",
            ["route", "intermediate colors", "final colors", "rounds"],
            [
                ["C4.6 + greedy (paper)", ours.metrics["pre_reduction_colors"],
                 ours.metrics["colors"], ours.metrics["rounds"]],
                ["Linial O(Δ²)", linial.metrics["final_color_space"],
                 linial.metrics["colors"], linial.metrics["rounds"]],
            ],
        ),
        "e14_delta_plus_one.txt",
    )
    assert (
        ours.metrics["pre_reduction_colors"]
        < linial.metrics["final_color_space"]
    )
    _gen, net = cached_sparse_high_degree(600, 3, 4, seed=seeds[0])
    run_once(benchmark, lambda: linial_coloring(net))
