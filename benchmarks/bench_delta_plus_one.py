"""E14 — Corollary 4.7: (Δ+1)-coloring in polylog time when a ≤ Δ^{1−ν}.

Workload: forest unions plus a few hubs (arboricity a+hubs, Δ = Θ(n/hubs))
— the polynomially-separated regime.  The paper's pipeline computes an
o(Δ) coloring via Corollary 4.6, then reduces greedily to exactly Δ+1.
We verify the intermediate coloring is o(Δ) and the final palette is Δ+1,
and compare against a pure degree-based baseline (Luby) for color count.
"""

import pytest

from conftest import cached_sparse_high_degree, run_once
from repro.analysis import emit, render_table
from repro.core import delta_plus_one_via_arboricity, luby_coloring
from repro.verify import check_legal_coloring

NU = 0.5


def test_corollary47(benchmark):
    rows = []
    for n, a, hubs in [(300, 3, 3), (600, 3, 4), (900, 4, 4)]:
        gen, net = cached_sparse_high_degree(n, a, hubs, seed=1400)
        delta = gen.graph.max_degree
        result = delta_plus_one_via_arboricity(net, gen.arboricity_bound, nu=NU)
        check_legal_coloring(gen.graph, result.colors)
        pre = result.params["pre_reduction_colors"]
        rows.append(
            [n, gen.arboricity_bound, delta, pre, result.num_colors,
             delta + 1, result.rounds]
        )
        assert result.num_colors <= delta + 1
        # the intermediate coloring is o(Δ): strictly below Δ here
        assert pre <= delta
    emit(
        render_table(
            "E14 Corollary 4.7 — (Δ+1)-coloring when a ≤ Δ^{1-ν} (ν=0.5)",
            ["n", "a", "Δ", "pre-reduction colors", "final colors",
             "Δ+1", "rounds"],
            rows,
            note="claim: o(Δ) intermediate coloring via C4.6, then greedy to Δ+1",
        ),
        "e14_delta_plus_one.txt",
    )
    gen, net = cached_sparse_high_degree(600, 3, 4, seed=1400)
    run_once(
        benchmark,
        lambda: delta_plus_one_via_arboricity(net, gen.arboricity_bound, nu=NU),
    )


def test_arboricity_route_beats_degree_route_on_colors(benchmark):
    """On the a ≪ Δ workload, the arboricity route matches Δ+1 while the
    intermediate palette stays tiny — degree-oblivious algorithms like
    Linial would pay Δ² intermediate colors."""
    from repro.core import linial_coloring

    gen, net = cached_sparse_high_degree(600, 3, 4, seed=1400)
    delta = gen.graph.max_degree
    ours = delta_plus_one_via_arboricity(net, gen.arboricity_bound, nu=NU)
    linial = linial_coloring(net)
    emit(
        render_table(
            "E14b — intermediate palettes: arboricity vs degree route "
            f"(n=600, a={gen.arboricity_bound}, Δ={delta})",
            ["route", "intermediate colors", "final colors", "rounds"],
            [
                ["C4.6 + greedy (paper)", ours.params["pre_reduction_colors"],
                 ours.num_colors, ours.rounds],
                ["Linial O(Δ²)", linial.params["final_color_space"],
                 linial.num_colors, linial.rounds],
            ],
        ),
        "e14_delta_plus_one.txt",
    )
    assert (
        ours.params["pre_reduction_colors"]
        < linial.params["final_color_space"]
    )
    run_once(benchmark, lambda: linial_coloring(net))
