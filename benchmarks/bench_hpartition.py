"""E01 — Lemma 2.3: H-partition.

Claim: an H-partition of degree ⌊(2+ε)a⌋ with ℓ = O(log n) levels is
computed in O(log n) rounds.  We sweep n at fixed a and check that the
measured level count tracks log n (and never exceeds the analysis bound),
and that the partition property verifies.
"""


from conftest import cached_forest_union, run_once
from repro.analysis import emit, hpartition_levels_bound, render_table
from repro.core import compute_hpartition
from repro.verify import check_hpartition

SWEEP_N = [128, 256, 512, 1024, 2048]
A = 4
EPS = 0.5


def _measure(n):
    gen, net = cached_forest_union(n, A, seed=n)
    hp = compute_hpartition(net, A, EPS)
    check_hpartition(gen.graph, hp)
    return hp


def test_hpartition_levels_scale_log_n(benchmark):
    rows = []
    levels = []
    for n in SWEEP_N:
        hp = _measure(n)
        bound = hpartition_levels_bound(n, EPS)
        rows.append([n, hp.num_levels, hp.rounds, f"{bound:.1f}",
                     f"{hp.num_levels / bound:.2f}"])
        levels.append(hp.num_levels)
        assert hp.num_levels <= bound
        assert hp.rounds == hp.num_levels
    emit(
        render_table(
            "E01 Lemma 2.3 — H-partition levels vs log n (a=4, eps=0.5)",
            ["n", "levels", "rounds", "bound log_{1.25} n", "measured/bound"],
            rows,
            note="claim: levels = O(log n); measured/bound must stay <= 1",
        ),
        "e01_hpartition.txt",
    )
    # levels grow (weakly) with log n but sublinearly in n: the increase
    # across a 16x growth in n stays within a few levels
    assert levels[-1] - levels[0] <= 6
    run_once(benchmark, lambda: _measure(SWEEP_N[-1]))
