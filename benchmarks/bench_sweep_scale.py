"""S6 (infrastructure) — staged sweep engine: shared GraphStore vs.
rebuild-per-trial.

The workload is the execution shape the paper's pipeline calls for and the
staged engine exists for: an **ablation sweep** that varies only algorithm
parameters (the forests-decomposition ε knob) over the *same* graph
instances.  The family is ``erdos_renyi`` — its generator samples all
O(n²) vertex pairs and then certifies the arboricity bound by measuring
degeneracy, so instance construction dominates each trial and rebuilding
it per trial (the pre-staged engine's behaviour) wastes most of the wall
clock.

Both paths run serially in one process so the measured ratio isolates the
graph-sharing win (no pool noise); a parallel shared-memory run is also
timed for context.  Acceptance: identical records, and the shared
GraphStore path is ≥2× faster end to end (observed locally: ~2.5-2.7×).

``REPRO_PERF_HANDICAP`` (a fraction, e.g. ``0.25``) synthetically inflates
the shared path's time so the regression gate can be watched tripping.
"""

from __future__ import annotations

import os
import time

import perf_record
from repro.analysis import emit, render_table
from repro.experiments import SweepSpec, grid_scenarios, run_sweep

#: the ε ablation: one shared graph serves this many algorithm cells
EPSILONS = (0.2, 0.35, 0.5, 0.8, 1.2, 2.0)
N = 3000
SEEDS = (0, 1)

_HANDICAP = float(os.environ.get("REPRO_PERF_HANDICAP", "0") or 0.0)


def _spec() -> SweepSpec:
    # explicit seeds: scenario-derived seeds fold the algorithm cell into
    # their derivation, so only explicit seeds share graphs across cells
    return SweepSpec(
        "sweep-scale-ablation",
        grid_scenarios(
            families=[{"name": "erdos_renyi", "n": N, "p": 4.0 / N}],
            algorithms=[
                {"name": "forests", "epsilon": e} for e in EPSILONS
            ],
            seeds=list(SEEDS),
        ),
    )


def _timed_sweep(**kwargs):
    t0 = time.perf_counter()
    result = run_sweep(_spec(), **kwargs)
    return result, time.perf_counter() - t0


def test_shared_graphstore_speedup(benchmark):
    rebuild, rebuild_s = _timed_sweep(share_graphs=False)
    shared, shared_s = _timed_sweep()
    parallel, parallel_s = _timed_sweep(workers=2)
    shared_s *= 1.0 + _HANDICAP

    # identical records: same content keys, same metrics, every path
    fingerprints = [
        [(t.key, t.metrics) for t in res]
        for res in (rebuild, shared, parallel)
    ]
    assert fingerprints[0] == fingerprints[1] == fingerprints[2]
    assert shared.graph_builds == len(SEEDS)
    assert shared.graph_reuses == shared.num_trials - len(SEEDS)

    speedup = rebuild_s / shared_s
    trials = rebuild.num_trials
    build_s = sum(t.stages["build_graph"] for t in rebuild)
    rows = [
        ["rebuild-per-trial", trials, trials, f"{rebuild_s:.2f}",
         f"{build_s:.2f}", "1.0x"],
        ["shared GraphStore (serial)", trials, shared.graph_builds,
         f"{shared_s:.2f}",
         f"{sum(t.stages['build_graph'] for t in shared):.2f}",
         f"{speedup:.1f}x"],
        ["shared GraphStore (2 workers, shm)", trials,
         parallel.graph_builds, f"{parallel_s:.2f}", "-",
         f"{rebuild_s / parallel_s:.1f}x"],
    ]
    emit(
        render_table(
            "S6 — staged sweep engine: build once, share everywhere",
            ["execution path", "trials", "graph builds", "wall s",
             "build_graph s", "speedup"],
            rows,
            note=f"erdos_renyi(n={N}) x {len(EPSILONS)} forests-ε cells x "
            f"{len(SEEDS)} seeds; records byte-identical by assertion",
        ),
        "s6_sweep_scale.txt",
    )
    perf_record.add_metrics(
        "sweep_scale",
        shared_graphstore_speedup=round(speedup, 3),
        rebuild_wall_s=round(rebuild_s, 4),
        shared_wall_s=round(shared_s, 4),
        parallel_shm_wall_s=round(parallel_s, 4),
        graph_builds=shared.graph_builds,
        graph_reuses=shared.graph_reuses,
        handicap=_HANDICAP,
    )
    # Acceptance: sharing the graph builds wins ≥2× on the ablation shape.
    if _HANDICAP == 0.0:
        assert speedup >= 2.0, (
            f"shared GraphStore speedup {speedup:.2f}x < 2x on the "
            "graph-build-dominated ablation sweep"
        )

    benchmark.pedantic(
        lambda: run_sweep(_spec()), iterations=1, rounds=1
    )
