"""S6 (infrastructure) — staged sweep engine: shared GraphStore vs.
rebuild-per-trial, and overlapped vs. sequential shared-graph builds.

The workload is the execution shape the paper's pipeline calls for and the
staged engine exists for: an **ablation sweep** that varies only algorithm
parameters (the forests-decomposition ε knob) over the *same* graph
instances.  The family is ``erdos_renyi`` — its generator samples all
O(n²) vertex pairs and then certifies the arboricity bound by measuring
degeneracy, so instance construction dominates each trial and rebuilding
it per trial (the pre-staged engine's behaviour) wastes most of the wall
clock.

Three scenarios:

* ``test_shared_graphstore_speedup`` — few shared graphs, many cells.
  Both paths run serially in one process so the measured ratio isolates
  the graph-sharing win (no pool noise); a parallel shared-memory run is
  also timed for context.  Acceptance: identical records, and the shared
  GraphStore path is ≥2× faster end to end (observed locally: ~2.5-2.7×).
* ``test_overlapped_builds_dominate`` — **many distinct shared graphs**,
  the shape where the old engine's sequential parent-side prebuild
  serialised most of the wall clock (and could even lose to
  ``share_graphs=False``).  Overlapping builds with pool execution must
  beat both the sequential-prebuild schedule and rebuild-per-trial.
* ``test_socket_loopback_speedup`` — the ablation sweep again, through a
  :class:`~repro.experiments.SocketExecutor` coordinator with two
  loopback ``repro worker`` processes: the wire protocol's overhead must
  not eat the parallelism (floor gated as ``parallelism_dependent``).

``REPRO_PERF_HANDICAP`` (a fraction, e.g. ``0.25``) synthetically inflates
the shared/overlapped path's time so the regression gate can be watched
tripping.
"""

from __future__ import annotations

import os
import time

import perf_record
from repro.analysis import emit, render_table
from repro.experiments import SweepSpec, grid_scenarios, run_sweep

#: the ε ablation: one shared graph serves this many algorithm cells
EPSILONS = (0.2, 0.35, 0.5, 0.8, 1.2, 2.0)
N = 3000
SEEDS = (0, 1)

_HANDICAP = float(os.environ.get("REPRO_PERF_HANDICAP", "0") or 0.0)


def _spec() -> SweepSpec:
    # explicit seeds: scenario-derived seeds fold the algorithm cell into
    # their derivation, so only explicit seeds share graphs across cells
    return SweepSpec(
        "sweep-scale-ablation",
        grid_scenarios(
            families=[{"name": "erdos_renyi", "n": N, "p": 4.0 / N}],
            algorithms=[
                {"name": "forests", "epsilon": e} for e in EPSILONS
            ],
            seeds=list(SEEDS),
        ),
    )


def _timed_sweep(make_spec=None, **kwargs):
    t0 = time.perf_counter()
    result = run_sweep((make_spec or _spec)(), **kwargs)
    return result, time.perf_counter() - t0


def test_shared_graphstore_speedup(benchmark):
    rebuild, rebuild_s = _timed_sweep(share_graphs=False)
    shared, shared_s = _timed_sweep()
    parallel, parallel_s = _timed_sweep(workers=2)
    shared_s *= 1.0 + _HANDICAP

    # identical records: same content keys, same metrics, every path
    fingerprints = [
        [(t.key, t.metrics) for t in res]
        for res in (rebuild, shared, parallel)
    ]
    assert fingerprints[0] == fingerprints[1] == fingerprints[2]
    assert shared.graph_builds == len(SEEDS)
    assert shared.graph_reuses == shared.num_trials - len(SEEDS)

    speedup = rebuild_s / shared_s
    trials = rebuild.num_trials
    build_s = sum(t.stages["build_graph"] for t in rebuild)
    rows = [
        ["rebuild-per-trial", trials, trials, f"{rebuild_s:.2f}",
         f"{build_s:.2f}", "1.0x"],
        ["shared GraphStore (serial)", trials, shared.graph_builds,
         f"{shared_s:.2f}",
         f"{sum(t.stages['build_graph'] for t in shared):.2f}",
         f"{speedup:.1f}x"],
        ["shared GraphStore (2 workers, shm)", trials,
         parallel.graph_builds, f"{parallel_s:.2f}", "-",
         f"{rebuild_s / parallel_s:.1f}x"],
    ]
    emit(
        render_table(
            "S6 — staged sweep engine: build once, share everywhere",
            ["execution path", "trials", "graph builds", "wall s",
             "build_graph s", "speedup"],
            rows,
            note=f"erdos_renyi(n={N}) x {len(EPSILONS)} forests-ε cells x "
            f"{len(SEEDS)} seeds; records byte-identical by assertion",
        ),
        "s6_sweep_scale.txt",
    )
    perf_record.add_metrics(
        "sweep_scale",
        shared_graphstore_speedup=round(speedup, 3),
        rebuild_wall_s=round(rebuild_s, 4),
        shared_wall_s=round(shared_s, 4),
        parallel_shm_wall_s=round(parallel_s, 4),
        graph_builds=shared.graph_builds,
        graph_reuses=shared.graph_reuses,
        handicap=_HANDICAP,
    )
    # Acceptance: sharing the graph builds wins ≥2× on the ablation shape.
    if _HANDICAP == 0.0:
        assert speedup >= 2.0, (
            f"shared GraphStore speedup {speedup:.2f}x < 2x on the "
            "graph-build-dominated ablation sweep"
        )

    benchmark.pedantic(
        lambda: run_sweep(_spec()), iterations=1, rounds=1
    )


# -- many distinct shared graphs: overlapped vs. sequential builds ---------

#: distinct graph instances (seeds), each shared by the ε cells below
OVERLAP_GRAPHS = 6
OVERLAP_EPSILONS = (0.35, 0.5, 1.2)
OVERLAP_N = 2400


def _overlap_spec() -> SweepSpec:
    # explicit seeds so every ε cell lands on the same graph instances
    return SweepSpec(
        "sweep-scale-overlap",
        grid_scenarios(
            families=[{"name": "erdos_renyi",
                       "n": OVERLAP_N, "p": 4.0 / OVERLAP_N}],
            algorithms=[
                {"name": "forests", "epsilon": e} for e in OVERLAP_EPSILONS
            ],
            seeds=list(range(OVERLAP_GRAPHS)),
        ),
    )


def test_overlapped_builds_dominate(benchmark):
    """Acceptance: with many distinct shared graphs and a pool, dispatching
    the builds *into* the pool beats (a) the old sequential parent-side
    prebuild and (b) ``share_graphs=False`` — the tradeoff the prebuild
    schedule used to lose on this shape is gone."""
    cores = os.cpu_count() or 1
    workers = max(2, min(4, cores))

    t0 = time.perf_counter()
    overlapped = benchmark.pedantic(
        lambda: run_sweep(_overlap_spec(), workers=workers),
        iterations=1, rounds=1,
    )
    overlapped_s = (time.perf_counter() - t0) * (1.0 + _HANDICAP)
    prebuilt, prebuilt_s = _timed_sweep(
        _overlap_spec, workers=workers, overlap_builds=False
    )
    unshared, unshared_s = _timed_sweep(
        _overlap_spec, workers=workers, share_graphs=False
    )

    # identical records across schedules and sharing modes
    fingerprints = [
        [(t.key, t.metrics) for t in res]
        for res in (overlapped, prebuilt, unshared)
    ]
    assert fingerprints[0] == fingerprints[1] == fingerprints[2]
    assert overlapped.build_overlap and not prebuilt.build_overlap
    assert overlapped.graph_builds == OVERLAP_GRAPHS == prebuilt.graph_builds
    assert overlapped.graph_reuses == prebuilt.graph_reuses
    assert unshared.graph_builds == 0

    vs_prebuilt = prebuilt_s / overlapped_s
    vs_unshared = unshared_s / overlapped_s
    trials = overlapped.num_trials
    rows = [
        ["prebuild-then-dispatch", trials, prebuilt.graph_builds,
         f"{prebuilt_s:.2f}", "1.0x"],
        ["rebuild-per-trial (share_graphs=False)", trials, 0,
         f"{unshared_s:.2f}", f"{prebuilt_s / unshared_s:.1f}x"],
        ["overlapped builds (this engine)", trials,
         overlapped.graph_builds, f"{overlapped_s:.2f}",
         f"{vs_prebuilt:.1f}x"],
    ]
    emit(
        render_table(
            "S6b — overlapped shared-graph builds: no more prebuild stall",
            ["execution schedule", "trials", "parent-owned builds",
             "wall s", "speedup"],
            rows,
            note=f"erdos_renyi(n={OVERLAP_N}) x {OVERLAP_GRAPHS} distinct "
            f"graphs x {len(OVERLAP_EPSILONS)} forests-ε cells, "
            f"{workers} workers; records byte-identical by assertion",
        ),
        "s6b_sweep_overlap.txt",
    )
    perf_record.add_metrics(
        "sweep_scale",
        overlap_vs_prebuilt_speedup=round(vs_prebuilt, 3),
        overlap_vs_unshared_speedup=round(vs_unshared, 3),
        overlap_wall_s=round(overlapped_s, 4),
        prebuilt_wall_s=round(prebuilt_s, 4),
        unshared_wall_s=round(unshared_s, 4),
        overlap_workers=workers,
        overlap_graph_build_s=round(overlapped.graph_build_s, 4),
    )
    # Acceptance needs real cores: on a single-CPU box the pool time-slices
    # and overlapping cannot beat a serial prebuild (the metrics are still
    # recorded for the CI gate, which runs on multi-core runners).
    if _HANDICAP == 0.0 and cores >= 2:
        assert vs_prebuilt >= 1.15, (
            f"overlapped builds only {vs_prebuilt:.2f}x vs sequential "
            f"prebuild on {OVERLAP_GRAPHS} distinct shared graphs"
        )
        assert vs_unshared >= 1.1, (
            f"overlapped share_graphs=True only {vs_unshared:.2f}x vs "
            "share_graphs=False — sharing must dominate on this shape"
        )


# -- the socket executor on loopback: wire overhead must not eat the win ---

SOCKET_WORKERS = 2


def test_socket_loopback_speedup(benchmark):
    """Acceptance: the socket backend with two loopback workers beats a
    serial run on the graph-build-dominated ablation shape — i.e. the
    wire protocol's pickle+base64 overhead and the coordinator's
    dispatch threads do not eat the parallelism they exist to buy.
    Records must be byte-identical, through the pickle transport (remote
    workers can never attach the coordinator's shm)."""
    from repro.experiments import SocketExecutor, spawn_local_workers

    cores = os.cpu_count() or 1
    serial, serial_s = _timed_sweep()

    ex = SocketExecutor(min_workers=SOCKET_WORKERS)
    procs = spawn_local_workers(ex.host, ex.port, SOCKET_WORKERS)
    try:
        ex.wait_for_workers(SOCKET_WORKERS, timeout=120)
        t0 = time.perf_counter()
        remote = benchmark.pedantic(
            lambda: run_sweep(_spec(), executor=ex), iterations=1, rounds=1
        )
        socket_s = (time.perf_counter() - t0) * (1.0 + _HANDICAP)
    finally:
        ex.close()
        for p in procs:
            p.terminate()
        for p in procs:
            try:
                p.wait(timeout=10)
            except Exception:
                p.kill()

    assert [(t.key, t.metrics) for t in remote] == [
        (t.key, t.metrics) for t in serial
    ]
    assert {t.graph_source for t in remote} == {"pickled"}
    assert remote.graph_builds == len(SEEDS)

    speedup = serial_s / socket_s
    trials = serial.num_trials
    rows = [
        ["serial (in-process)", trials, f"{serial_s:.2f}", "1.0x"],
        [f"socket loopback ({SOCKET_WORKERS} workers, pickle wire)",
         trials, f"{socket_s:.2f}", f"{speedup:.1f}x"],
    ]
    emit(
        render_table(
            "S6c — socket executor on loopback: distribution pays its way",
            ["execution path", "trials", "wall s", "speedup"],
            rows,
            note=f"erdos_renyi(n={N}) x {len(EPSILONS)} forests-ε cells x "
            f"{len(SEEDS)} seeds; coordinator + {SOCKET_WORKERS} "
            f"`repro worker` processes; records byte-identical by assertion",
        ),
        "s6c_sweep_socket.txt",
    )
    perf_record.add_metrics(
        "sweep_scale",
        socket_loopback_vs_serial_speedup=round(speedup, 3),
        socket_wall_s=round(socket_s, 4),
        socket_serial_wall_s=round(serial_s, 4),
        socket_requeued=ex.requeued,
        socket_disconnects=ex.disconnects,
    )
    # Acceptance needs real cores: a single-CPU box time-slices the two
    # workers and the wire overhead makes loopback a strict loss there
    # (metrics still recorded; the CI gate runs on multi-core runners and
    # marks the floor parallelism_dependent).
    if _HANDICAP == 0.0 and cores >= 2:
        assert speedup >= 1.15, (
            f"socket loopback with {SOCKET_WORKERS} workers only "
            f"{speedup:.2f}x vs serial on the build-dominated ablation"
        )
