"""S2 (supplementary) — CONGEST-style message-size accounting.

The paper works in the LOCAL model (unbounded messages), but its
algorithms are naturally frugal: every message is a color, a level, or a
small tuple.  This bench traces every message of each core algorithm and
reports the maximum payload — all logarithmic in n, i.e. the algorithms
run unchanged in CONGEST.
"""


from conftest import cached_forest_union, run_once
from repro.analysis import emit, render_table
from repro.core import (
    compute_hpartition,
    forests_decomposition,
    kuhn_defective_coloring,
    legal_coloring,
    linial_coloring,
    luby_mis,
    partial_orientation,
)
from repro.simulator import MessageTrace

N = 400
A = 8


def _trace(net, runner):
    trace = MessageTrace()
    original_run = net.run

    def run_traced(*args, **kwargs):
        kwargs.setdefault("trace", trace)
        return original_run(*args, **kwargs)

    net.run = run_traced
    try:
        runner()
    finally:
        net.run = original_run
    return trace


def test_message_sizes(benchmark):
    gen, net = cached_forest_union(N, A, seed=1800)
    algorithms = [
        ("H-partition", lambda: compute_hpartition(net, A)),
        ("forests decomposition", lambda: forests_decomposition(net, A)),
        ("Linial", lambda: linial_coloring(net)),
        ("Kuhn defective (p=2)", lambda: kuhn_defective_coloring(net, 2)),
        ("Partial-Orientation (t=2)", lambda: partial_orientation(net, A, t=2)),
        ("Legal-Coloring (p=4)", lambda: legal_coloring(net, A, p=4)),
        ("Luby MIS", lambda: luby_mis(net, seed=1)),
    ]
    rows = []
    for name, runner in algorithms:
        trace = _trace(net, runner)
        rows.append(
            [name, len(trace), trace.max_size,
             f"{trace.total_bytes / max(1, len(trace)):.1f}"]
        )
        assert trace.max_size <= 32  # O(log n) bits at n=400
    emit(
        render_table(
            f"S2 — message sizes across the stack (n={N}, a={A})",
            ["algorithm", "messages", "max bytes", "mean bytes"],
            rows,
            note="LOCAL-model algorithms, but every payload is O(log n) "
            "bits — they run unchanged in CONGEST",
        ),
        "s2_message_sizes.txt",
    )
    run_once(benchmark, lambda: _trace(net, lambda: compute_hpartition(net, A)))
