"""Shared helpers for the benchmark harness.

Every bench module regenerates one experiment from DESIGN.md §5: it runs
the algorithm(s), prints a paper-bound vs. measured table (also appended
under ``results/``), asserts the *shape* of the claim (who wins, how the
quantity scales), and reports wall time through pytest-benchmark.

Simulations are deterministic, so each benchmark executes its workload
once (``pedantic`` mode) — the interesting measurements are rounds and
colors, not nanoseconds.
"""

from __future__ import annotations

import functools
import os

import perf_record
import pytest

from repro import SynchronousNetwork
from repro.graphs import forest_union, low_arboricity_high_degree, planar_triangulation


def pytest_runtest_logreport(report):
    """Time every bench test into its module's ``BENCH_<name>.json``."""
    if report.when != "call":
        return
    base = os.path.basename(str(getattr(report, "fspath", "") or ""))
    if base.startswith("bench_") and base.endswith(".py"):
        perf_record.note_test(base[len("bench_") : -3], report.nodeid, report.duration)


def pytest_sessionfinish(session, exitstatus):
    """Write one machine-readable perf record per bench module."""
    perf_record.flush()


def pytest_addoption(parser):
    """Benchmark-wide overrides replacing the old hard-coded constants."""
    parser.addoption(
        "--trials", type=int, default=1,
        help="replicates (seeds) per benchmark configuration",
    )
    parser.addoption(
        "--seed", type=int, default=0,
        help="base seed added to every benchmark's per-config seeds",
    )


@pytest.fixture
def sweep_trials(request) -> int:
    """Replicates per configuration (``--trials``, default 1)."""
    return request.config.getoption("--trials", default=1)


@pytest.fixture
def sweep_base_seed(request) -> int:
    """Base seed offset for every configuration (``--seed``, default 0)."""
    return request.config.getoption("--seed", default=0)


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)


@functools.lru_cache(maxsize=64)
def cached_forest_union(n: int, a: int, seed: int = 0):
    """Deterministic forest-union instance + its network, cached across
    benches within a session."""
    gen = forest_union(n, a, seed=seed)
    return gen, SynchronousNetwork(gen.graph)


@functools.lru_cache(maxsize=16)
def cached_planar(n: int, seed: int = 0):
    gen = planar_triangulation(n, seed=seed)
    return gen, SynchronousNetwork(gen.graph)


@functools.lru_cache(maxsize=16)
def cached_sparse_high_degree(n: int, a: int, hubs: int, seed: int = 0):
    gen = low_arboricity_high_degree(n, a=a, num_hubs=hubs, seed=seed)
    return gen, SynchronousNetwork(gen.graph)
