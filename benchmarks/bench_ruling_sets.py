"""S3 (supplementary) — §1.4: ruling sets vs the paper's parallel recursion.

The network-decomposition line ([3], [25]) builds from ruling sets: fast
to compute, but they dominate only within O(log n) hops, and the
algorithms on top activate one region class at a time.  The paper's MIS
dominates within **one** hop (it is an MIS) by keeping every vertex active
through the recursion.  This bench puts the two side by side: rounds vs
strength of the guarantee.
"""


from conftest import cached_forest_union, run_once
from repro.analysis import emit, render_table
from repro.core import mis_arboricity, ruling_set, ruling_set_domination_radius
from repro.verify import check_mis

A = 8


def test_ruling_set_vs_mis(benchmark):
    rows = []
    for n in [256, 512, 1024]:
        gen, net = cached_forest_union(n, A, seed=1900 + n)
        rs = ruling_set(net)
        beta = ruling_set_domination_radius(gen.graph, rs.members)
        mis = mis_arboricity(net, A, mu=0.5)
        check_mis(gen.graph, mis.members)
        rows.append(
            [n, rs.size, rs.rounds, beta, mis.size, mis.rounds, 1]
        )
        assert beta <= rs.params["beta_bound"]
        assert rs.rounds < mis.rounds  # the ruling set is far cheaper...
        assert beta >= 1  # ...but its guarantee is weaker than the MIS's
    emit(
        render_table(
            f"S3 §1.4 — ruling set vs paper MIS (forest_union, a={A})",
            ["n", "|ruling set|", "rs rounds", "rs domination β",
             "|MIS|", "MIS rounds", "MIS domination"],
            rows,
            note="ruling sets are cheap but dominate within O(log n) hops; "
            "the paper pays polylog rounds for the 1-hop (MIS) guarantee",
        ),
        "s3_ruling_sets.txt",
    )
    gen, net = cached_forest_union(512, A, seed=2412)
    run_once(benchmark, lambda: ruling_set(net))
