"""E10 — Theorem 5.3: O(a·t)-coloring in O((a/t)^µ · log n) rounds.

Sweep t from 1 to a: rounds fall as t grows (smaller per-class arboricity)
while colors grow ~linearly with t — the tradeoff the theorem states,
improving on BE08's O((a/t)·log n + a) for all parameter values.
"""


from conftest import cached_forest_union, run_once
from repro.analysis import emit, render_table, theorem53_colors_bound
from repro.core import theorem53_tradeoff
from repro.verify import check_legal_coloring

N = 384
A = 16
MU = 0.5


def _measure(t):
    gen, net = cached_forest_union(N, A, seed=900)
    result = theorem53_tradeoff(net, A, t=t, mu=MU)
    check_legal_coloring(gen.graph, result.colors)
    return result


def test_theorem53_sweep_t(benchmark):
    """Sweep t in the non-degenerate regime (see E09's note): the O(t²)
    class space must stay below n for the decomposition to be coarse."""
    rows = []
    rounds = []
    degenerate_threshold = N // 2
    for t in [1, 2, 4]:
        result = _measure(t)
        bound = theorem53_colors_bound(A, t)
        rows.append(
            [t, result.params["alpha_per_class"], result.params["num_classes"],
             result.num_colors, f"{bound:.0f}",
             f"{result.num_colors / bound:.1f}", result.rounds]
        )
        rounds.append(result.rounds)
        assert result.params["num_classes"] < degenerate_threshold
    emit(
        render_table(
            "E10 Theorem 5.3 — O(a·t) colors in O((a/t)^mu log n) rounds "
            "(n=384, a=16, mu=0.5)",
            ["t", "alpha/class", "classes", "colors", "bound a·t",
             "colors/bound", "rounds"],
            rows,
            note="claim: rounds fall as t grows (smaller per-class "
            "arboricity); colors carry the polylog factor of the explicit "
            "families.  t >= 8 is degenerate at n=384 (O(t² polylog) class "
            "space exceeds n) and is excluded",
        ),
        "e10_at_tradeoff.txt",
    )
    # the time side of the tradeoff: largest t strictly cheaper than t=1
    assert rounds[-1] < rounds[0]
    run_once(benchmark, lambda: _measure(4))
