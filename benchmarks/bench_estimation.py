"""S1 (supplementary) — arboricity estimation by doubling.

The paper assumes the arboricity bound a is globally known.  This bench
quantifies the cost of dropping that assumption: doubling attempts cost
O(log a) failed H-partitions of O(log n) rounds each — the same order as
Corollary 4.6 itself.
"""


from conftest import cached_forest_union, run_once
from repro.analysis import emit, render_table
from repro.core import estimate_arboricity_bound, legal_coloring_auto, legal_coloring_corollary46
from repro.verify import check_legal_coloring

N = 400


def test_estimation_cost(benchmark):
    rows = []
    for a in [2, 4, 8, 16, 32]:
        gen, net = cached_forest_union(N, a, seed=1600 + a)
        bound, _hp, rounds = estimate_arboricity_bound(net)
        rows.append([a, bound, f"{bound / a:.2f}", rounds])
        assert bound <= 2 * a + 2
    emit(
        render_table(
            f"S1 — arboricity estimation by doubling (n={N})",
            ["true a (certified)", "estimated bound", "bound/a", "rounds"],
            rows,
            note="bound within 2x of the certificate; rounds = O(log a) "
            "attempts x O(log n) budget each",
        ),
        "s1_estimation.txt",
    )
    gen, net = cached_forest_union(N, 8, seed=1608)
    run_once(benchmark, lambda: estimate_arboricity_bound(net))


def test_auto_coloring_overhead(benchmark):
    """Coloring with unknown a costs the estimation rounds extra and at
    most a constant-factor more colors (the bound is within 2x)."""
    rows = []
    for a in [4, 8, 16]:
        gen, net = cached_forest_union(N, a, seed=1700 + a)
        auto = legal_coloring_auto(net, eta=0.5)
        known = legal_coloring_corollary46(net, a, eta=0.5)
        check_legal_coloring(gen.graph, auto.colors)
        rows.append(
            [a, auto.params["estimated_bound"], known.num_colors,
             auto.num_colors, known.rounds, auto.rounds]
        )
        assert auto.rounds >= known.rounds  # estimation is never free
    emit(
        render_table(
            f"S1b — auto coloring (unknown a) vs known a (n={N}, eta=0.5)",
            ["a", "estimated", "colors (known)", "colors (auto)",
             "rounds (known)", "rounds (auto)"],
            rows,
        ),
        "s1_estimation.txt",
    )
    gen, net = cached_forest_union(N, 8, seed=1708)
    run_once(benchmark, lambda: legal_coloring_auto(net, eta=0.5))
