"""E11 — §1.2: MIS on bounded-arboricity graphs in O(a + a^ε log n) rounds.

Compares the paper's deterministic pipeline against Luby's randomized
baseline, and sweeps n to confirm the deterministic round count grows
~log n at fixed a.
"""

import math

import pytest

from conftest import cached_forest_union, run_once
from repro.analysis import emit, mis_rounds_bound, render_table
from repro.core import luby_mis, mis_arboricity
from repro.verify import check_mis

A = 8
MU = 0.5


def _measure(n):
    gen, net = cached_forest_union(n, A, seed=1000 + n)
    det = mis_arboricity(net, A, mu=MU)
    check_mis(gen.graph, det.members)
    rnd = luby_mis(net, seed=1)
    check_mis(gen.graph, rnd.members)
    return det, rnd


def test_mis_deterministic_vs_luby(benchmark):
    rows = []
    det_rounds = []
    for n in [128, 256, 512, 1024]:
        det, rnd = _measure(n)
        bound = mis_rounds_bound(A, MU, n)
        rows.append(
            [n, det.size, det.rounds, f"{bound:.0f}", rnd.size, rnd.rounds]
        )
        det_rounds.append(det.rounds)
    emit(
        render_table(
            "E11 §1.2 — MIS: deterministic (a=8, mu=0.5) vs Luby",
            ["n", "det |MIS|", "det rounds", "bound a+a^mu·log n",
             "Luby |MIS|", "Luby rounds"],
            rows,
            note="claim: deterministic O(a + a^eps log n); Luby O(log n) whp "
            "remains faster (the randomized/deterministic gap the paper narrows)",
        ),
        "e11_mis.txt",
    )
    # determinstic rounds scale ~log n at fixed a: ratio bounded across 8x n
    ratios = [r / math.log2(n) for r, n in zip(det_rounds, [128, 256, 512, 1024])]
    assert max(ratios) / min(ratios) <= 3.0
    run_once(benchmark, lambda: _measure(512))


def test_mis_sweep_arboricity(benchmark):
    rows = []
    for a in [4, 8, 16]:
        gen, net = cached_forest_union(384, a, seed=1100 + a)
        det = mis_arboricity(net, a, mu=MU)
        check_mis(gen.graph, det.members)
        rows.append(
            [a, det.params["num_colors"], det.params["coloring_rounds"],
             det.params["sweep_rounds"], det.rounds]
        )
        # sweep cost = one round per color class: O(a) with our constants
        assert det.params["sweep_rounds"] <= det.params["num_colors"]
    emit(
        render_table(
            "E11b §1.2 — MIS round breakdown vs a (n=384)",
            ["a", "colors", "coloring rounds", "sweep rounds", "total"],
            rows,
            note="the O(a) additive term is the class sweep; the rest is the coloring",
        ),
        "e11_mis.txt",
    )
    gen, net = cached_forest_union(384, 8, seed=1108)
    run_once(benchmark, lambda: mis_arboricity(net, 8, mu=MU))
