"""E11 — §1.2: MIS on bounded-arboricity graphs in O(a + a^ε log n) rounds.

Compares the paper's deterministic pipeline against Luby's randomized
baseline, and sweeps n to confirm the deterministic round count grows
~log n at fixed a.

Ported to the :mod:`repro.experiments` sweep engine: the n-sweep × two
algorithms is one declarative spec; ``--trials``/``--seed`` (see conftest)
override replication and seeding.
"""

import math

import perf_record
from conftest import cached_forest_union, run_once
from repro.analysis import emit, mis_rounds_bound, render_table
from repro.core import mis_arboricity
from repro.experiments import ScenarioSpec, SweepSpec, run_sweep

A = 8
MU = 0.5
SWEEP_N = [128, 256, 512, 1024]


def _spec(trials: int, base_seed: int, sweep_n=SWEEP_N) -> SweepSpec:
    scenarios = []
    for n in sweep_n:
        # the historical instances used seed = 1000 + n; --seed shifts them
        seeds = [base_seed + 1000 + n + i for i in range(trials)]
        common = {"family": "forest_union", "family_params": {"n": n, "a": A}}
        scenarios.append(
            ScenarioSpec(algorithm="mis_arboricity",
                         algorithm_params={"a": A, "mu": MU},
                         seeds=seeds, **common)
        )
        scenarios.append(
            ScenarioSpec(algorithm="luby_mis", seeds=seeds, **common)
        )
    return SweepSpec("e11-mis", scenarios)


def test_mis_deterministic_vs_luby(benchmark, sweep_trials, sweep_base_seed):
    result = run_sweep(_spec(sweep_trials, sweep_base_seed))
    perf_record.add_sweep_metrics("mis", result)
    by_cell = {}
    for tr in result:
        n = tr.trial.family_params["n"]
        by_cell.setdefault((n, tr.trial.algorithm), []).append(tr)
    rows = []
    det_rounds = []
    for n in SWEEP_N:
        dets = by_cell[(n, "mis_arboricity")]
        rnds = by_cell[(n, "luby_mis")]
        for det, rnd in zip(dets, rnds, strict=True):
            assert det.metrics["verified"] and rnd.metrics["verified"]
            bound = mis_rounds_bound(A, MU, n)
            rows.append(
                [n, det.trial.seed, det.metrics["mis_size"],
                 det.metrics["rounds"], f"{bound:.0f}",
                 rnd.metrics["mis_size"], rnd.metrics["rounds"]]
            )
        # the log n scaling assertion uses the per-n median over replicates
        mid = sorted(d.metrics["rounds"] for d in dets)[len(dets) // 2]
        det_rounds.append(mid)
    emit(
        render_table(
            "E11 §1.2 — MIS: deterministic (a=8, mu=0.5) vs Luby",
            ["n", "seed", "det |MIS|", "det rounds", "bound a+a^mu·log n",
             "Luby |MIS|", "Luby rounds"],
            rows,
            note="claim: deterministic O(a + a^eps log n); Luby O(log n) whp "
            "remains faster (the randomized/deterministic gap the paper narrows)",
        ),
        "e11_mis.txt",
    )
    # determinstic rounds scale ~log n at fixed a: ratio bounded across 8x n
    ratios = [r / math.log2(n) for r, n in zip(det_rounds, SWEEP_N, strict=True)]
    assert max(ratios) / min(ratios) <= 3.0
    # timed region = the algorithm alone on a prebuilt network, as before
    # the sweep-engine port (keeps benchmark history comparable)
    _gen, net = cached_forest_union(512, A, seed=sweep_base_seed + 1512)
    run_once(benchmark, lambda: mis_arboricity(net, A, mu=MU))


def test_mis_sweep_arboricity(benchmark, sweep_trials, sweep_base_seed):
    spec = SweepSpec(
        "e11b-mis-arboricity",
        [
            ScenarioSpec(
                family="forest_union",
                family_params={"n": 384, "a": a},
                algorithm="mis_arboricity",
                algorithm_params={"a": a, "mu": MU},
                seeds=[sweep_base_seed + 1100 + a + i
                       for i in range(sweep_trials)],
            )
            for a in [4, 8, 16]
        ],
    )
    result = run_sweep(spec)
    rows = []
    for tr in result:
        a = tr.trial.family_params["a"]
        rows.append(
            [a, tr.metrics["num_colors"], tr.metrics["coloring_rounds"],
             tr.metrics["sweep_rounds"], tr.metrics["rounds"]]
        )
        # sweep cost = one round per color class: O(a) with our constants
        assert tr.metrics["sweep_rounds"] <= tr.metrics["num_colors"]
    emit(
        render_table(
            "E11b §1.2 — MIS round breakdown vs a (n=384)",
            ["a", "colors", "coloring rounds", "sweep rounds", "total"],
            rows,
            note="the O(a) additive term is the class sweep; the rest is the coloring",
        ),
        "e11_mis.txt",
    )
    _gen, net = cached_forest_union(384, 8, seed=sweep_base_seed + 1108)
    run_once(benchmark, lambda: mis_arboricity(net, 8, mu=MU))
