"""Ablation A2 — greedy vs Kuhn–Wattenhofer color reduction.

DESIGN.md §7(4): the Δ+1 pipeline (our substitute for [5]/[17]) reduces
Linial's O(Δ²) palette with KW's divide-and-conquer instead of the naive
class-by-class sweep.  This bench quantifies the round difference —
O(Δ log(m/Δ)) vs m − Δ − 1 — which is what keeps Complete-Orientation's
level coloring affordable.
"""


from conftest import run_once
from repro import SynchronousNetwork
from repro.analysis import emit, render_table
from repro.core import delta_plus_one_coloring
from repro.graphs import random_regular
from repro.verify import check_legal_coloring


def test_reduction_strategies(benchmark):
    rows = []
    for n, d in [(300, 8), (600, 12), (900, 16)]:
        gen = random_regular(n, d, seed=1500 + n)
        net = SynchronousNetwork(gen.graph)
        delta = gen.graph.max_degree
        kw = delta_plus_one_coloring(net, delta, reduction="kw")
        greedy = delta_plus_one_coloring(net, delta, reduction="greedy")
        check_legal_coloring(gen.graph, kw.colors)
        check_legal_coloring(gen.graph, greedy.colors)
        assert kw.num_colors <= delta + 1
        assert greedy.num_colors <= delta + 1
        rows.append(
            [f"n={n},Δ={delta}", kw.rounds, greedy.rounds,
             f"{greedy.rounds / max(1, kw.rounds):.1f}x"]
        )
        # KW must not lose; it wins clearly once Δ² >> Δ log Δ
        assert kw.rounds <= greedy.rounds
    emit(
        render_table(
            "A2 ablation — Δ+1 pipeline: KW vs greedy reduction rounds",
            ["instance", "KW rounds", "greedy rounds", "greedy/KW"],
            rows,
            note="KW reduces O(Δ²)→Δ+1 in O(Δ log Δ) rounds; greedy pays Θ(Δ²)",
        ),
        "a2_ablation_reduction.txt",
    )
    gen = random_regular(600, 12, seed=2100)
    net = SynchronousNetwork(gen.graph)
    run_once(
        benchmark,
        lambda: delta_plus_one_coloring(net, gen.graph.max_degree, reduction="kw"),
    )
