#!/usr/bin/env python
"""Gate a ``BENCH_*.json`` perf record against a baseline record.

Usage::

    python benchmarks/check_perf_regression.py CURRENT.json BASELINE.json \
        [--tolerance 0.15]

Compares every *ratio* metric (name ending in ``_speedup``) present in the
baseline's ``metrics`` against the current record and exits non-zero when
any regresses by more than the tolerance — i.e. when
``current < (1 - tolerance) * baseline``.  Ratio metrics are two
measurements taken in the same process on the same machine, so they are
comparable across machines; absolute wall times and throughputs are
reported for context but never gated.

The committed baselines under ``benchmarks/baselines/`` hold conservative
floors (below what healthy CI runners measure), so the CI gate trips on
real regressions rather than runner noise.  To see the gate trip on a
synthetic slowdown, compare a handicapped run against a fresh local
baseline::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_graph_core.py
    cp results/BENCH_graph_core.json /tmp/baseline.json
    REPRO_PERF_HANDICAP=0.25 PYTHONPATH=src python -m pytest -q \
        benchmarks/bench_graph_core.py
    python benchmarks/check_perf_regression.py \
        results/BENCH_graph_core.json /tmp/baseline.json  # exits 1
"""

from __future__ import annotations

import argparse
import json
import sys

GATED_SUFFIXES = ("_speedup",)
CONTEXT_KEYS = ("sweep_rounds_nodes_per_s", "wall_s", "cache_hit_rate")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional regression before failing (default 0.15, "
        "i.e. the gate trips before a regression reaches 20%%)",
    )
    args = parser.parse_args(argv)

    with open(args.current) as fh:
        current = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)

    cur_metrics = current.get("metrics", {})
    base_metrics = baseline.get("metrics", {})

    failures = []
    checked = 0
    for name, base_val in sorted(base_metrics.items()):
        if not name.endswith(GATED_SUFFIXES):
            continue
        if not isinstance(base_val, (int, float)) or base_val <= 0:
            continue
        cur_val = cur_metrics.get(name)
        floor = (1.0 - args.tolerance) * base_val
        if not isinstance(cur_val, (int, float)):
            failures.append(f"{name}: missing from the current record")
            continue
        checked += 1
        status = "OK " if cur_val >= floor else "FAIL"
        print(
            f"{status} {name}: current={cur_val:.3f} baseline={base_val:.3f} "
            f"floor={floor:.3f}"
        )
        if cur_val < floor:
            failures.append(
                f"{name}: {cur_val:.3f} < {floor:.3f} "
                f"(baseline {base_val:.3f} - {args.tolerance:.0%})"
            )
    for key in CONTEXT_KEYS:
        if key in cur_metrics:
            print(f"info {key}: {cur_metrics[key]}")

    if not checked and not failures:
        print("error: baseline contains no gated *_speedup metrics")
        return 2
    if failures:
        print(f"\nperf regression gate FAILED ({len(failures)}):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nperf regression gate passed ({checked} metric(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
