#!/usr/bin/env python
"""Gate a ``BENCH_*.json`` perf record against a baseline record.

Usage::

    python benchmarks/check_perf_regression.py CURRENT.json BASELINE.json \
        [--tolerance 0.15] [--only METRIC ...]

Compares every *ratio* metric (name ending in ``_speedup``) present in the
baseline's ``metrics`` against the current record and exits non-zero when
any regresses by more than the tolerance — i.e. when
``current < (1 - tolerance) * baseline``.  Ratio metrics are two
measurements taken in the same process on the same machine, so they are
comparable across machines; absolute wall times and throughputs are
reported for context but never gated.

Topology-aware skipping: a baseline may declare some of its gated metrics
``parallelism_dependent`` (a list of metric names) together with a
``topology.min_cores`` requirement.  When the current record was measured
on a box with fewer cores, those floors are *skipped* — visibly, with a
GitHub Actions warning annotation when running in CI — instead of tripping
on machine shape rather than regression (the ``overlap_vs_*`` speedups
are meaningless on a 2-worker box when the floor was calibrated on 4
cores).  Likewise ``memory_dependent`` metrics paired with
``topology.min_mem_gb`` skip on boxes without the RAM the floor was
calibrated against (the column-engine scale leg holds a million-node
event-engine run in memory).  Every BENCH record carries its host shape
in a ``topology`` block (see ``perf_record.topology``).

Absolute floors: a baseline may also declare ``floors`` (metric name →
minimum value) gated *without* tolerance — used for the telemetry
overhead gate, where the floor (0.97) already encodes the allowance.

``--only`` restricts gating to the named metrics (still honoring skip
rules) so CI can surface a specific gate as its own step.

The committed baselines under ``benchmarks/baselines/`` hold conservative
floors (below what healthy CI runners measure), so the CI gate trips on
real regressions rather than runner noise.  To see the gate trip on a
synthetic slowdown, compare a handicapped run against a fresh local
baseline::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_graph_core.py
    cp results/BENCH_graph_core.json /tmp/baseline.json
    REPRO_PERF_HANDICAP=0.25 PYTHONPATH=src python -m pytest -q \
        benchmarks/bench_graph_core.py
    python benchmarks/check_perf_regression.py \
        results/BENCH_graph_core.json /tmp/baseline.json  # exits 1
"""

from __future__ import annotations

import argparse
import json
import os
import sys

GATED_SUFFIXES = ("_speedup",)
CONTEXT_KEYS = ("sweep_rounds_nodes_per_s", "wall_s", "cache_hit_rate")


def _measured_cores(current: dict) -> int:
    """Cores of the box the current record was measured on."""
    topo = current.get("topology") or {}
    cores = topo.get("cpu_count")
    if isinstance(cores, int) and cores >= 1:
        return cores
    return os.cpu_count() or 1


def _required_cores(baseline: dict) -> int:
    """Core requirement for the baseline's parallelism-dependent floors."""
    topo = baseline.get("topology") or {}
    req = topo.get("min_cores", topo.get("cpu_count"))
    if isinstance(req, int) and req >= 1:
        return req
    return 1


def _measured_mem_gb(current: dict) -> float:
    """Physical memory of the box the current record was measured on."""
    topo = current.get("topology") or {}
    mem = topo.get("mem_gb")
    if isinstance(mem, (int, float)) and mem > 0:
        return float(mem)
    try:
        return os.sysconf("SC_PHYS_PAGES") * os.sysconf("SC_PAGE_SIZE") / 2**30
    except (ValueError, OSError, AttributeError):
        return 0.0


def _required_mem_gb(baseline: dict) -> float:
    """Memory requirement for the baseline's memory-dependent floors."""
    topo = baseline.get("topology") or {}
    req = topo.get("min_mem_gb")
    if isinstance(req, (int, float)) and req > 0:
        return float(req)
    return 0.0


def _announce_skip(name: str, measured, required, unit: str) -> None:
    msg = (
        f"perf gate: skipped {name} — measured on {measured} {unit}, "
        f"floor calibrated for >= {required}"
    )
    print(f"SKIP {name}: {measured} < {required} {unit}")
    if os.environ.get("GITHUB_ACTIONS"):
        # a visible annotation on the workflow run, not just a log line
        print(f"::warning title=perf gate skipped::{msg}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional regression before failing (default 0.15, "
        "i.e. the gate trips before a regression reaches 20%%)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="METRIC",
        help="gate only the named metric(s); repeatable",
    )
    args = parser.parse_args(argv)

    with open(args.current) as fh:
        current = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)

    cur_metrics = current.get("metrics", {})
    base_metrics = baseline.get("metrics", {})
    parallel_dependent = set(baseline.get("parallelism_dependent", []))
    memory_dependent = set(baseline.get("memory_dependent", []))
    floors = baseline.get("floors", {})
    measured = _measured_cores(current)
    required = _required_cores(baseline)
    measured_mem = _measured_mem_gb(current)
    required_mem = _required_mem_gb(baseline)
    only = set(args.only) if args.only else None

    def topology_skip(name: str) -> bool:
        if name in parallel_dependent and measured < required:
            _announce_skip(name, measured, required, "core(s)")
            return True
        if (
            name in memory_dependent
            and measured_mem
            and measured_mem < required_mem
        ):
            _announce_skip(name, measured_mem, required_mem, "GiB")
            return True
        return False

    failures = []
    checked = 0
    skipped = 0
    for name, base_val in sorted(base_metrics.items()):
        if not name.endswith(GATED_SUFFIXES):
            continue
        if only is not None and name not in only:
            continue
        if not isinstance(base_val, (int, float)) or base_val <= 0:
            continue
        if topology_skip(name):
            skipped += 1
            continue
        cur_val = cur_metrics.get(name)
        floor = (1.0 - args.tolerance) * base_val
        if not isinstance(cur_val, (int, float)):
            failures.append(f"{name}: missing from the current record")
            continue
        checked += 1
        status = "OK " if cur_val >= floor else "FAIL"
        print(
            f"{status} {name}: current={cur_val:.3f} baseline={base_val:.3f} "
            f"floor={floor:.3f}"
        )
        if cur_val < floor:
            failures.append(
                f"{name}: {cur_val:.3f} < {floor:.3f} "
                f"(baseline {base_val:.3f} - {args.tolerance:.0%})"
            )
    for name, floor in sorted(floors.items()):
        if only is not None and name not in only:
            continue
        if not isinstance(floor, (int, float)):
            continue
        if topology_skip(name):
            skipped += 1
            continue
        cur_val = cur_metrics.get(name)
        if not isinstance(cur_val, (int, float)):
            failures.append(f"{name}: missing from the current record")
            continue
        checked += 1
        status = "OK " if cur_val >= floor else "FAIL"
        print(
            f"{status} {name}: current={cur_val:.3f} "
            f"absolute floor={floor:.3f}"
        )
        if cur_val < floor:
            failures.append(f"{name}: {cur_val:.3f} < {floor:.3f} (absolute)")
    for key in CONTEXT_KEYS:
        if key in cur_metrics:
            print(f"info {key}: {cur_metrics[key]}")

    if not checked and not skipped and not failures:
        print("error: baseline contains no gated *_speedup metrics or floors")
        return 2
    if failures:
        print(f"\nperf regression gate FAILED ({len(failures)}):")
        for f in failures:
            print(f"  - {f}")
        return 1
    summary = f"perf regression gate passed ({checked} metric(s) checked"
    if skipped:
        summary += f", {skipped} skipped on topology"
    print(f"\n{summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
