"""The pre-CSR dict-of-tuples graph, preserved as the perf baseline.

This is a faithful copy of the ``Graph`` implementation that shipped before
the CSR rewrite: adjacency as a dict of sorted tuples, built edge-by-edge
through per-edge set mutation.  ``bench_graph_core.py`` builds the same
instances through both implementations to measure the construction and
end-to-end speedups, and to assert that the public id-based API (vertices /
edges / neighbors / degree) is byte-identical.  It intentionally duplicates
the old code rather than importing anything from ``repro.graphs`` — the
baseline must not accelerate when the library does.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.errors import InvalidParameterError
from repro.types import Edge, Vertex, canonical_edge


class LegacyGraph:
    """The legacy immutable graph: dict-of-sorted-tuples adjacency."""

    __slots__ = ("_vertices", "_adjacency", "_edges", "_vertex_set")

    def __init__(
        self,
        vertices: Iterable[Vertex],
        edges: Iterable[Tuple[Vertex, Vertex]],
    ):
        vset = set()
        for v in vertices:
            if not isinstance(v, int):
                raise InvalidParameterError(f"vertex ids must be ints, got {v!r}")
            vset.add(v)
        adjacency: Dict[Vertex, set] = {v: set() for v in vset}
        edge_set = set()
        for u, v in edges:
            if u == v:
                raise InvalidParameterError(f"self-loop at vertex {u} not allowed")
            if u not in adjacency or v not in adjacency:
                raise InvalidParameterError(
                    f"edge ({u}, {v}) references a vertex not in the vertex set"
                )
            e = canonical_edge(u, v)
            if e in edge_set:
                continue  # ignore duplicate edges: the graph is simple
            edge_set.add(e)
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._vertices: Tuple[Vertex, ...] = tuple(sorted(vset))
        self._vertex_set = frozenset(vset)
        self._adjacency: Dict[Vertex, Tuple[Vertex, ...]] = {
            v: tuple(sorted(nbrs)) for v, nbrs in adjacency.items()
        }
        self._edges: Tuple[Edge, ...] = tuple(sorted(edge_set))

    @property
    def vertices(self) -> Tuple[Vertex, ...]:
        return self._vertices

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return self._edges

    @property
    def n(self) -> int:
        return len(self._vertices)

    @property
    def m(self) -> int:
        return len(self._edges)

    def neighbors(self, v: Vertex) -> Tuple[Vertex, ...]:
        return self._adjacency[v]

    def degree(self, v: Vertex) -> int:
        return len(self._adjacency[v])

    @property
    def max_degree(self) -> int:
        if not self._vertices:
            return 0
        return max(len(nbrs) for nbrs in self._adjacency.values())

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return v in self._adjacency.get(u, ())

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._vertex_set

    def __contains__(self, v: Vertex) -> bool:
        return v in self._vertex_set

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertices)

    def __len__(self) -> int:
        return len(self._vertices)


class LegacySynchronousNetwork:
    """The pre-CSR simulator loop, preserved verbatim as the perf baseline.

    This is the seed implementation of :meth:`SynchronousNetwork.run`
    (event scheduler): id-keyed dicts for contexts/pending/awake state, a
    per-run visibility filter over ``graph.neighbors``, and per-run
    frozenset construction inside every :class:`NodeContext`.  Only the
    event engine is carried over — it is the default both before and after
    the rewrite, so end-to-end comparisons run event vs. event.
    """

    def __init__(self, graph):
        self.graph = graph
        self.scheduler = "event"

    def run(
        self,
        program_factory,
        *,
        global_params=None,
        participants=None,
        part_of=None,
        round_limit=None,
        count_bytes=False,
        trace=None,
        scheduler=None,
    ):
        import heapq

        from repro.errors import RoundLimitExceeded
        from repro.simulator.context import NodeContext
        from repro.simulator.message import payload_size
        from repro.simulator.network import (
            DEFAULT_ROUND_LIMIT_FACTOR,
            RunResult,
        )

        graph = self.graph
        if participants is None:
            active_set = set(graph.vertices)
        else:
            active_set = set(participants)
        if round_limit is None:
            round_limit = DEFAULT_ROUND_LIMIT_FACTOR * max(1, graph.n) + 1000

        gp = dict(global_params or {})
        gp.setdefault("n", graph.n)

        order = tuple(sorted(active_set))

        contexts = {}
        programs = {}
        for v in order:
            if part_of is not None:
                label = part_of.get(v)
                visible = tuple(
                    u
                    for u in graph.neighbors(v)
                    if u in active_set and part_of.get(u) == label
                )
            else:
                visible = tuple(u for u in graph.neighbors(v) if u in active_set)
            contexts[v] = NodeContext(v, visible, gp)
            programs[v] = program_factory()

        running = set(active_set)
        messages = 0
        message_bytes = 0
        max_message_bytes = 0
        pending = {}

        current_round = 0

        def dispatch(sender, ctx):
            nonlocal messages, message_bytes, max_message_bytes
            for dest, payload in ctx.drain_outbox():
                messages += 1
                if count_bytes:
                    size = payload_size(payload)
                    message_bytes += size
                    if size > max_message_bytes:
                        max_message_bytes = size
                if trace is not None:
                    trace.record(current_round, sender, dest, payload)
                pending.setdefault(dest, {})[sender] = payload

        awake = set(active_set)
        wake_round = {}
        wake_heap = []
        rank = {v: i for i, v in enumerate(order)}

        def note_schedule(v, ctx):
            idle, wake = ctx.consume_schedule()
            if ctx.halted:
                return
            if idle:
                awake.discard(v)
            else:
                awake.add(v)
            if wake is not None:
                wake_round[v] = wake
                heapq.heappush(wake_heap, (wake, rank[v]))

        for v in order:
            ctx = contexts[v]
            programs[v].on_start(ctx)
            dispatch(v, ctx)
            note_schedule(v, ctx)
            if ctx.halted:
                running.discard(v)
                awake.discard(v)

        rounds = 0
        while running:
            if awake or pending:
                next_round = rounds + 1
            else:
                next_round = None
                while wake_heap:
                    r, i = wake_heap[0]
                    v = order[i]
                    if v in running and wake_round.get(v) == r:
                        next_round = max(r, rounds + 1)
                        break
                    heapq.heappop(wake_heap)
                if next_round is None:
                    raise RoundLimitExceeded(round_limit, len(running))
            if next_round > round_limit:
                raise RoundLimitExceeded(round_limit, len(running))
            rounds = next_round
            current_round = rounds
            delivery = pending
            pending = {}
            cand = set(awake)
            for v in delivery:
                if v in running:
                    cand.add(v)
            while wake_heap and wake_heap[0][0] <= rounds:
                r, i = heapq.heappop(wake_heap)
                v = order[i]
                if v in running and wake_round.get(v) == r:
                    cand.add(v)
            if len(cand) * 4 < len(order):
                schedule = sorted(cand)
            else:
                schedule = (v for v in order if v in cand)
            for v in schedule:
                ctx = contexts[v]
                wake_round.pop(v, None)
                ctx.inbox = delivery.get(v, {})
                ctx.round_number = rounds
                programs[v].on_round(ctx)
                dispatch(v, ctx)
                note_schedule(v, ctx)
            for v in cand:
                if contexts[v].halted:
                    running.discard(v)
                    awake.discard(v)
                    wake_round.pop(v, None)

        outputs = {v: contexts[v].output for v in active_set}
        return RunResult(
            outputs=outputs,
            rounds=rounds,
            messages=messages,
            message_bytes=message_bytes,
            max_message_bytes=max_message_bytes,
        )
