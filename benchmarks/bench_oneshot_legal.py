"""E06 — Lemma 4.1: the one-shot O(a)-coloring in O(a^{2/3} log n) rounds.

A single Arbdefective-Coloring invocation with k = t = ⌈a^{1/3}⌉, then
parallel legal coloring of the parts.  Sweep a; colors must stay O(a) and
rounds must grow sublinearly in a (≈ a^{2/3}).
"""


from conftest import cached_forest_union, run_once
from repro.analysis import emit, fit_loglog_slope, render_table
from repro.core import oneshot_legal_coloring
from repro.verify import check_legal_coloring

N = 384
SWEEP_A = [8, 16, 27, 64]


def _measure(a):
    gen, net = cached_forest_union(N, a, seed=400 + a)
    result = oneshot_legal_coloring(net, a)
    check_legal_coloring(gen.graph, result.colors)
    return result


def test_lemma41_sweep_a(benchmark):
    rows = []
    colors = []
    for a in SWEEP_A:
        result = _measure(a)
        rows.append(
            [a, result.num_colors, f"{result.num_colors / a:.2f}", result.rounds]
        )
        colors.append(result.num_colors)
    emit(
        render_table(
            "E06 Lemma 4.1 — one-shot O(a)-coloring (n=384, k=t=⌈a^(1/3)⌉)",
            ["a", "colors", "colors/a", "rounds"],
            rows,
            note="claim: O(a) colors in O(a^{2/3} log n) rounds",
        ),
        "e06_oneshot.txt",
    )
    # colors scale ~linearly in a (slope ≈ 1 on log-log)
    slope = fit_loglog_slope([float(a) for a in SWEEP_A], [float(c) for c in colors])
    assert 0.5 <= slope <= 1.5
    # colors/a bounded
    assert all(c <= 25 * a for c, a in zip(colors, SWEEP_A, strict=True))
    run_once(benchmark, lambda: _measure(27))
