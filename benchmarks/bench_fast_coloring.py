"""E09 — Theorem 5.2: O(a²/g(a))-coloring in O(log g(a) · log n) rounds.

Sweep the defect parameter d (= f(a)): larger d means fewer colors than a²
by a bigger factor, at slightly more rounds per class coloring.
"""


from conftest import cached_forest_union, run_once
from repro.analysis import emit, render_table, theorem52_colors_bound
from repro.core import theorem52_fast_coloring
from repro.verify import check_legal_coloring

N = 384
A = 24
ETA = 0.25


def _measure(d):
    gen, net = cached_forest_union(N, A, seed=800)
    result = theorem52_fast_coloring(net, A, d=d, eta=ETA)
    check_legal_coloring(gen.graph, result.colors)
    return result


def test_theorem52_sweep_d(benchmark):
    """Sweep d in the non-degenerate regime.

    Arb-Kuhn's recoloring only helps when its O((a/d)²·polylog) fixpoint is
    below n; below that (tiny d at bench scale) the decomposition degenerates
    to singleton classes.  The theorem's asymptotic regime is
    n ≫ (a/d)²·polylog, so we sweep d large enough to be inside it and
    report the degeneracy threshold in the note.
    """
    rows = []
    colors = []
    for d in [6, 8, 12, 16]:
        result = _measure(d)
        g_value = float(result.params["g_value"])
        bound = theorem52_colors_bound(A, g_value)
        rows.append(
            [d, f"{g_value:.1f}", result.params["num_classes"],
             result.num_colors, f"{bound:.0f}", result.rounds]
        )
        colors.append(result.num_colors)
        assert result.num_colors < A * A  # strictly below the quadratic barrier
        # the decomposition is genuinely coarse, not one-class-per-vertex
        assert result.params["num_classes"] < N // 2
    emit(
        render_table(
            "E09 Theorem 5.2 — fast coloring (n=384, a=24, eta=0.25)",
            ["d=f(a)", "g(a)=d^{1-eta}", "classes", "colors", "bound a²/g", "rounds"],
            rows,
            note="claim: O(a²/g(a)) colors in O(log g(a) log n) rounds; "
            "d below ~a/4 is degenerate at n=384 (the O((a/d)²) class space "
            "exceeds n) and is excluded",
        ),
        "e09_fast_coloring.txt",
    )
    # more defect allowed → fewer total colors across the sweep endpoints
    assert colors[-1] <= colors[0]
    run_once(benchmark, lambda: _measure(8))
