"""E12 — §1.2's comparison narrative: the paper vs the prior state of the art.

The introduction's implicit table: for graphs of arboricity a,

  algorithm          colors      rounds
  ----------------   ---------   -----------------
  Linial [20]        O(Δ²)       O(log* n)
  BE08 [4]           O(a)        O(a log n)
  Luby (random)      Δ+1         O(log n) w.h.p.
  this paper (T4.3)  O(a)        O(a^µ log n)
  this paper (C4.6)  O(a^{1+η})  O(log a log n)

We regenerate the table on every standard family and assert the paper's
qualitative wins: same O(a) colors as BE08 at a fraction of the rounds,
and exponentially fewer colors than Linial at polylog rounds.
"""


from conftest import run_once
from repro import SynchronousNetwork
from repro.analysis import emit, render_table
from repro.core import (
    be08_coloring,
    legal_coloring_corollary46,
    legal_coloring_theorem43,
    linial_coloring,
    luby_coloring,
)
from repro.graphs import standard_families
from repro.verify import check_legal_coloring

N = 400
A = 16


def _contenders(net, a):
    return [
        ("Linial O(Δ²)", lambda: linial_coloring(net)),
        ("BE08 O(a)", lambda: be08_coloring(net, a)),
        ("Luby Δ+1 (rand)", lambda: luby_coloring(net, seed=1)),
        ("T4.3 O(a)", lambda: legal_coloring_theorem43(net, a, mu=0.5)),
        ("C4.6 O(a^1.5)", lambda: legal_coloring_corollary46(net, a, eta=0.5)),
    ]


def test_comparison_forest_union(benchmark):
    from conftest import cached_forest_union

    gen, net = cached_forest_union(N, A, seed=1200)
    rows = []
    measured = {}
    for name, fn in _contenders(net, A):
        result = fn()
        check_legal_coloring(gen.graph, result.colors)
        measured[name] = result
        guarantee = result.params.get(
            "final_color_space", result.params.get("palette", "-")
        )
        rows.append([name, result.num_colors, guarantee, result.rounds])
    emit(
        render_table(
            f"E12 §1.2 — state-of-the-art comparison (forest_union n={N}, a={A}, "
            f"Δ={gen.max_degree})",
            ["algorithm", "colors used", "palette guarantee", "rounds"],
            rows,
            note="paper's wins: T4.3 ≈ BE08 colors at far fewer rounds; far "
            "fewer colors than Linial's Θ(Δ²) guarantee at polylog rounds. "
            "(Linial may finish in 0 rounds when n is already below its "
            "fixpoint; its guarantee column is the binding quantity.) "
            "T4.3(µ=0.5) and C4.6(η=0.5) coincide here: both resolve to p=4.",
        ),
        "e12_comparison.txt",
    )
    # the paper's headline inequalities at this scale
    assert measured["T4.3 O(a)"].rounds < measured["BE08 O(a)"].rounds
    assert (
        measured["C4.6 O(a^1.5)"].num_colors
        < measured["Linial O(Δ²)"].params["final_color_space"]
    )
    run_once(benchmark, lambda: legal_coloring_theorem43(net, A, mu=0.5))


def test_comparison_across_families(benchmark):
    rows = []
    fams = standard_families(N, 6, seed=3)
    for fam_name, gen in fams.items():
        net = SynchronousNetwork(gen.graph)
        a = gen.arboricity_bound
        ours = legal_coloring_corollary46(net, a, eta=0.5)
        be08 = be08_coloring(net, a)
        check_legal_coloring(gen.graph, ours.colors)
        check_legal_coloring(gen.graph, be08.colors)
        rows.append(
            [fam_name, a, gen.max_degree, ours.num_colors, ours.rounds,
             be08.num_colors, be08.rounds]
        )
    emit(
        render_table(
            f"E12b — C4.6 vs BE08 across graph families (n={N})",
            ["family", "a", "Δ", "C4.6 colors", "C4.6 rounds",
             "BE08 colors", "BE08 rounds"],
            rows,
            note="small a: BE08's a·log n is affordable; the gap opens as a grows (see E12)",
        ),
        "e12_comparison.txt",
    )
    fam = fams["forest_union"]
    net = SynchronousNetwork(fam.graph)
    run_once(
        benchmark,
        lambda: legal_coloring_corollary46(net, fam.arboricity_bound, eta=0.5),
    )
