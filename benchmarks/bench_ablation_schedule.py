"""Ablation A1 — the defect budget schedule in the recoloring engine.

DESIGN.md §7(3): two policies for spending the defect budget across the
log*-many iterations.  "half-remaining" spends half the remaining budget
per step; "equal-split" (the library default) pre-divides it evenly.
Measured result: equal-split reaches a 2–3× smaller color fixpoint at the
cost of 1–2 extra iterations, because half-remaining exhausts the budget
early and leaves the fixpoint iteration with denominator ≈ 1.  This bench
is the evidence for the default.
"""


from conftest import run_once
from repro.analysis import emit, render_table
from repro.core import compute_recolor_schedule
from repro.core.recolor import schedule_final_colors

M0 = 10**6


def test_budget_policies(benchmark):
    rows = []
    wins = {"half-remaining": 0, "equal-split": 0}
    for delta, defect in [(16, 4), (32, 8), (64, 8), (64, 16), (128, 16)]:
        per_policy = {}
        for policy in ("half-remaining", "equal-split"):
            schedule = compute_recolor_schedule(
                M0, delta, defect, budget_policy=policy
            )
            per_policy[policy] = (
                schedule_final_colors(schedule, M0),
                len(schedule),
            )
        rows.append(
            [f"Δ={delta},d={defect}",
             per_policy["half-remaining"][0], per_policy["half-remaining"][1],
             per_policy["equal-split"][0], per_policy["equal-split"][1]]
        )
        better = min(per_policy, key=lambda p: per_policy[p][0])
        wins[better] += 1
    emit(
        render_table(
            "A1 ablation — defect budget schedule (M0 = 10^6)",
            ["params", "half-rem colors", "iters", "equal-split colors", "iters"],
            rows,
            note="equal-split (library default) reserves budget for the "
            "fixpoint iterations and wins on colors; half-remaining saves "
            "1-2 iterations",
        ),
        "a1_ablation_schedule.txt",
    )
    # the finding that set the default: equal-split wins on colors
    assert wins["equal-split"] >= 4
    run_once(
        benchmark,
        lambda: compute_recolor_schedule(M0, 64, 16, budget_policy="half-remaining"),
    )
