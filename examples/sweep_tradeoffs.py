#!/usr/bin/env python3
"""Multi-family sweep: the paper's tradeoff curves via repro.experiments.

Declares one sweep over four graph families × three algorithms × several
sizes and seeds, runs it on a multiprocessing pool, caches every trial in a
content-addressed on-disk store, and prints the percentile aggregation.
Run it twice: the second invocation is served (almost) entirely from the
cache and prints the identical report.

Run:  PYTHONPATH=src python examples/sweep_tradeoffs.py [cache_dir]
"""

import sys

from repro.experiments import (
    ResultCache,
    ScenarioSpec,
    SweepSpec,
    default_workers,
    report_table,
    run_sweep,
)


def build_spec() -> SweepSpec:
    """Four families × {coloring, forests, MIS} × two sizes, three seeds."""
    scenarios = []
    for n in (200, 400):
        families = [
            ("forest_union", {"n": n, "a": 4}),
            ("planar", {"n": n}),
            ("random_geometric", {"n": n, "radius": 0.07}),
            ("hubs", {"n": n, "a": 3, "num_hubs": 4}),
        ]
        algorithms = [
            ("cor46", {"eta": 0.5}),
            ("forests", {}),
            ("mis_arboricity", {"mu": 0.5}),
        ]
        for family, fparams in families:
            for algorithm, aparams in algorithms:
                scenarios.append(
                    ScenarioSpec(
                        family=family,
                        family_params=fparams,
                        algorithm=algorithm,
                        algorithm_params=aparams,
                        num_seeds=3,
                    )
                )
    return SweepSpec("tradeoff-tour", scenarios)


def main() -> None:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else ".repro-cache"
    spec = build_spec()
    print(f"sweep {spec.name!r}: {len(spec.trials())} trials, "
          f"{default_workers()} workers, cache at {cache_dir}/")

    result = run_sweep(
        spec,
        cache=ResultCache(cache_dir),
        workers=default_workers(),
        progress=print,
    )

    print()
    print(report_table(result))
    print()
    print(f"wall time {result.wall_s:.2f}s — cache: {result.cache_hits} "
          f"hit(s), {result.cache_misses} miss(es) "
          f"({100 * result.hit_rate:.0f}% hit rate)")
    if result.cache_misses:
        print("run me again: the same sweep will be served from the cache.")


if __name__ == "__main__":
    main()
