#!/usr/bin/env python3
"""A guided tour of the paper's decomposition machinery.

Walks one planar graph through every structural tool in the stack and
prints what each one produces:

  1. H-partition (Lemma 2.3) — O(log n) levels of degree O(a);
  2. forests decomposition (Lemma 2.2(2)) — O(a) oriented forests;
  3. Cole–Vishkin (1986) — 3-coloring of one of those forests;
  4. Partial-Orientation (Theorem 3.5, the paper's new tool) vs
     Complete-Orientation (Lemma 3.3) — the short-vs-long length tradeoff
     that makes the whole paper work;
  5. Arbdefective-Coloring (Corollary 3.6) — the graph split into parts of
     smaller arboricity, ready for recursion.

Run:  python examples/decomposition_tour.py
"""

from repro import SynchronousNetwork
from repro.core import (
    arbdefective_coloring,
    cole_vishkin_forest,
    complete_orientation,
    compute_hpartition,
    forests_decomposition,
    partial_orientation,
)
from repro.graphs import planar_triangulation
from repro.verify import (
    check_arbdefective_coloring,
    check_forests_decomposition,
    check_hpartition,
    orientation_length,
    orientation_max_deficit,
    orientation_max_out_degree,
)

A = 3  # planar triangulations have arboricity at most 3


def main() -> None:
    gen = planar_triangulation(n=500, seed=9)
    g = gen.graph
    net = SynchronousNetwork(g)
    print(f"planar triangulation: n={g.n}, m={g.m}, Δ={g.max_degree}, "
          f"arboricity ≤ {A}\n")

    # 1. H-partition -----------------------------------------------------
    hp = compute_hpartition(net, A)
    check_hpartition(g, hp)
    sizes = {i: len(vs) for i, vs in sorted(hp.levels().items())}
    print(f"1. H-partition: {hp.num_levels} levels in {hp.rounds} rounds, "
          f"degree bound {hp.degree_bound}")
    print(f"   level sizes: {sizes}")

    # 2. forests decomposition -------------------------------------------
    fd = forests_decomposition(net, A, hpartition=hp)
    check_forests_decomposition(g, fd)
    per_forest = [len(fd.forest_edges(f)) for f in range(fd.num_forests)]
    print(f"\n2. forests decomposition: {fd.num_forests} edge-disjoint "
          f"forests ({fd.rounds} rounds)")
    print(f"   edges per forest: {per_forest}")

    # 3. Cole-Vishkin on forest 0 ----------------------------------------
    parent = {v: None for v in g.vertices}
    for (u, v) in fd.forest_edges(0):
        head = fd.orientation.head(u, v)
        parent[u if head == v else v] = head
    cv = cole_vishkin_forest(net, parent)
    print(f"\n3. Cole-Vishkin: forest 0 colored with "
          f"{cv.num_colors} colors in {cv.rounds} rounds (log* n scale)")

    # 4. partial vs complete orientation ----------------------------------
    po = partial_orientation(net, A, t=2, hpartition=hp)
    co = complete_orientation(net, A, hpartition=hp)
    print("\n4. the paper's key tradeoff (Theorem 3.5 vs Lemma 3.3):")
    print(f"   partial : length {orientation_length(g, po):3d}, "
          f"deficit {orientation_max_deficit(g, po)}, "
          f"out-degree {orientation_max_out_degree(g, po)}, "
          f"{po.rounds} rounds")
    print(f"   complete: length {orientation_length(g, co):3d}, "
          f"deficit 0, "
          f"out-degree {orientation_max_out_degree(g, co)}, "
          f"{co.rounds} rounds")
    print("   (a small deficit buys an orientation computable exponentially "
          "faster — Simple-Arbdefective then waits only along short paths)")

    # 5. arbdefective coloring --------------------------------------------
    dec = arbdefective_coloring(net, A, k=2, t=2)
    check_arbdefective_coloring(
        g, dec.label, dec.arboricity_bound, dec.params["orientation"]
    )
    part_sizes = {c: len(vs) for c, vs in sorted(dec.parts().items())}
    print(f"\n5. arbdefective coloring (k=t=2): {dec.num_parts} parts of "
          f"arboricity ≤ {dec.arboricity_bound} in {dec.rounds} rounds")
    print(f"   part sizes: {part_sizes}")
    print("\nProcedure Legal-Coloring (Algorithm 2) recurses on exactly this "
          "decomposition — see examples/quickstart.py for the end result.")


if __name__ == "__main__":
    main()
