#!/usr/bin/env python3
"""Regenerate the paper's headline curves as ASCII figures.

Three curves, each an ASCII plot of measured data:

  F1. rounds vs n at fixed a — the "polylogarithmic time" claim
      (Corollary 4.6 against BE08's O(a log n));
  F2. rounds vs a at fixed n — where the exponential-in-a gap opens;
  F3. colors vs a — the paper keeps O(a^{1+η}) while Linial's guarantee
      is Θ(Δ²).

Run:  python examples/paper_figures.py        (≈ a minute of simulation)
"""

import math

from repro import SynchronousNetwork
from repro.core import be08_coloring, legal_coloring_corollary46, linial_coloring
from repro.graphs import forest_union
from repro.verify import check_legal_coloring


def ascii_plot(title, series, width=58, height=14):
    """Plot named (x, y) series as ASCII; one symbol per series."""
    symbols = "ox+*#"
    points = [(x, y) for _name, data in series for (x, y) in data]
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = 0, max(ys) * 1.05
    grid = [[" "] * width for _ in range(height)]
    for si, (_name, data) in enumerate(series):
        for (x, y) in data:
            col = int((x - x0) / max(1e-9, x1 - x0) * (width - 1))
            row = height - 1 - int((y - y0) / max(1e-9, y1 - y0) * (height - 1))
            grid[max(0, min(height - 1, row))][col] = symbols[si % len(symbols)]
    lines = [f"  {title}"]
    lines.append(f"  {y1:7.0f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append("          │" + "".join(row))
    lines.append(f"  {y0:7.0f} └" + "─" * width)
    lines.append(f"           {x0:<10g}{' ' * (width - 22)}{x1:>10g}")
    legend = "   ".join(
        f"{symbols[i % len(symbols)]} {name}" for i, (name, _d) in enumerate(series)
    )
    lines.append(f"           {legend}")
    return "\n".join(lines)


def figure_rounds_vs_n(a=8):
    ours, be08 = [], []
    for n in (128, 256, 512, 1024):
        gen = forest_union(n, a, seed=n)
        net = SynchronousNetwork(gen.graph)
        c1 = legal_coloring_corollary46(net, a, eta=0.5)
        c2 = be08_coloring(net, a)
        check_legal_coloring(gen.graph, c1.colors)
        ours.append((math.log2(n), c1.rounds))
        be08.append((math.log2(n), c2.rounds))
    print(ascii_plot(
        f"F1: rounds vs log2(n), a={a} — both ~linear in log n at fixed a",
        [("Cor 4.6 (paper)", ours), ("BE08", be08)],
    ))
    print()


def figure_rounds_vs_a(n=384):
    ours, be08 = [], []
    for a in (4, 8, 16, 32):
        gen = forest_union(n, a, seed=a)
        net = SynchronousNetwork(gen.graph)
        c1 = legal_coloring_corollary46(net, a, eta=0.5)
        c2 = be08_coloring(net, a)
        ours.append((a, c1.rounds))
        be08.append((a, c2.rounds))
    print(ascii_plot(
        f"F2: rounds vs a, n={n} — BE08 grows ~linearly in a, the paper ~log a",
        [("Cor 4.6 (paper)", ours), ("BE08", be08)],
    ))
    print()


def figure_colors_vs_a(n=384):
    ours, linial_guarantee = [], []
    for a in (4, 8, 16, 32):
        gen = forest_union(n, a, seed=a + 50)
        net = SynchronousNetwork(gen.graph)
        c1 = legal_coloring_corollary46(net, a, eta=0.5)
        lin = linial_coloring(net)
        ours.append((a, c1.num_colors))
        linial_guarantee.append((a, min(n, lin.params["final_color_space"])))
    print(ascii_plot(
        f"F3: colors vs a, n={n} — O(a^1.5) vs Linial's Θ(Δ²) guarantee "
        "(capped at n)",
        [("Cor 4.6 (paper)", ours), ("Linial guarantee", linial_guarantee)],
    ))
    print()


def main() -> None:
    print("regenerating the paper's headline curves (measured, not "
          "theoretical)\n")
    figure_rounds_vs_n()
    figure_rounds_vs_a()
    figure_colors_vs_a()
    print("numeric versions of all curves: pytest benchmarks/ "
          "--benchmark-only  (tables land in results/)")


if __name__ == "__main__":
    main()
