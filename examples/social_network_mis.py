#!/usr/bin/env python3
"""Independent moderator selection in a scale-free social network.

Task: pick a set of moderators such that no two moderators are directly
connected (independence — avoids power blocs) and everyone is adjacent to
at least one moderator (maximality — full coverage).  That set is exactly
a maximal independent set.

Scale-free networks have hubs of enormous degree but *tiny arboricity*
(a Barabási–Albert graph with attachment m has arboricity ≤ m regardless
of n), so the paper's MIS algorithm — O(a + a^ε log n) rounds — is
essentially degree-oblivious where classic degree-based algorithms pay
for the hubs.

Run:  python examples/social_network_mis.py
"""

from repro import SynchronousNetwork
from repro.core import luby_mis, mis_arboricity
from repro.graphs import preferential_attachment
from repro.verify import check_mis


def main() -> None:
    network = preferential_attachment(n=2000, m=3, seed=11)
    g = network.graph
    print(f"social network: n={g.n}, m={g.m}, max degree {g.max_degree} "
          f"(hubs!), arboricity ≤ {network.arboricity_bound}")

    net = SynchronousNetwork(g)

    # deterministic, per the paper §1.2
    det = mis_arboricity(net, a=network.arboricity_bound, mu=0.5)
    check_mis(g, det.members)
    print(f"\n[paper, deterministic]  {det.size} moderators in "
          f"{det.rounds} rounds "
          f"({det.params['coloring_rounds']} coloring + "
          f"{det.params['sweep_rounds']} sweep)")

    # randomized baseline
    rnd = luby_mis(net, seed=5)
    check_mis(g, rnd.members)
    print(f"[Luby, randomized]      {rnd.size} moderators in "
          f"{rnd.rounds} rounds")

    # coverage statistics
    covered_by = {v: 0 for v in g.vertices}
    for m_ in det.members:
        for u in g.neighbors(m_):
            covered_by[u] += 1
    non_members = [v for v in g.vertices if v not in det.members]
    avg_cov = sum(covered_by[v] for v in non_members) / len(non_members)
    hub = max(g.vertices, key=g.degree)
    print(f"\nevery non-moderator is adjacent to >= 1 moderator "
          f"(average {avg_cov:.1f})")
    print(f"the biggest hub (degree {g.degree(hub)}) is "
          f"{'a moderator' if hub in det.members else 'covered by a moderator'}")
    print("\nboth runs are reproducible: the deterministic one by "
          "construction, Luby's given its seed.")


if __name__ == "__main__":
    main()
