#!/usr/bin/env python3
"""Quickstart: color a bounded-arboricity graph in polylogarithmic time.

Builds a graph with certified arboricity 8, runs the paper's headline
algorithm (Corollary 4.6: O(a^{1+η}) colors in O(log a · log n) rounds),
verifies legality, and compares against the prior state of the art
(BE08's O(a log n)-round algorithm) and the randomized Luby baseline.

Run:  python examples/quickstart.py
"""

from repro import SynchronousNetwork, forest_union
from repro.core import be08_coloring, legal_coloring_corollary46, luby_coloring
from repro.verify import check_legal_coloring


def main() -> None:
    # A graph made of 8 random spanning forests: arboricity ≤ 8, certified
    # by construction.  Every vertex hosts a processor; they communicate
    # only with neighbours, in synchronous rounds.
    gen = forest_union(n=1000, a=8, seed=42)
    print(f"graph: n={gen.n}, m={gen.m}, arboricity ≤ {gen.arboricity_bound}, "
          f"Δ={gen.max_degree}")

    net = SynchronousNetwork(gen.graph)

    # The paper's algorithm: O(a^{1+η}) colors in O(log a · log n) rounds.
    ours = legal_coloring_corollary46(net, a=gen.arboricity_bound, eta=0.5)
    check_legal_coloring(gen.graph, ours.colors)
    print(f"\n[this paper, Cor 4.6]  {ours.num_colors} colors in "
          f"{ours.rounds} rounds")

    # Prior deterministic state of the art: same O(a) colors, O(a log n) rounds.
    be08 = be08_coloring(net, a=gen.arboricity_bound)
    check_legal_coloring(gen.graph, be08.colors)
    print(f"[BE08 baseline]        {be08.num_colors} colors in "
          f"{be08.rounds} rounds")

    # The randomized yardstick: Δ+1 colors in O(log n) rounds w.h.p.
    luby = luby_coloring(net, seed=7)
    check_legal_coloring(gen.graph, luby.colors)
    print(f"[Luby, randomized]     {luby.num_colors} colors in "
          f"{luby.rounds} rounds")

    speedup = be08.rounds / max(1, ours.rounds)
    print(f"\nthe paper's algorithm is {speedup:.1f}x faster than the prior "
          f"deterministic art on this instance, with a comparable palette —")
    print("and the gap grows exponentially with the arboricity (see "
          "benchmarks/bench_state_of_the_art.py).")


if __name__ == "__main__":
    main()
