#!/usr/bin/env python3
"""Coloring a network whose sparsity is *not* known in advance.

The paper's algorithms take the arboricity bound `a` as a globally known
parameter.  Real deployments rarely know it.  This example shows the
doubling estimator (`repro.core.estimation`): candidate bounds â = 1, 2,
4, ... are tried with a budgeted H-partition; underestimates stall — and a
stall is locally detectable — while the first adequate candidate succeeds.
The estimated bound then feeds Corollary 4.6 unchanged.

Run:  python examples/unknown_arboricity.py
"""

from repro import SynchronousNetwork
from repro.core import (
    estimate_arboricity_bound,
    legal_coloring_auto,
    legal_coloring_corollary46,
    try_hpartition,
)
from repro.graphs import disjoint_union, forest_union, planar_triangulation
from repro.verify import check_legal_coloring


def main() -> None:
    # a heterogeneous network: a dense district (arboricity 12) plus a
    # planar district (arboricity 3) — nobody told the nodes which is which
    gen = disjoint_union(
        [forest_union(400, 12, seed=21), planar_triangulation(400, seed=22)],
        name="mixed-city",
    )
    g = gen.graph
    net = SynchronousNetwork(g)
    print(f"network: n={g.n}, m={g.m}, true arboricity ≤ {gen.arboricity_bound} "
          "(unknown to the nodes)\n")

    # watch the doubling attempts one by one
    print("doubling attempts:")
    candidate = 1
    while True:
        hp, rounds = try_hpartition(net, candidate)
        status = "ok" if hp is not None else "stalled (â too small)"
        print(f"  â = {candidate:3d}: {status}  [{rounds} rounds]")
        if hp is not None:
            break
        candidate *= 2

    bound, _hp, est_rounds = estimate_arboricity_bound(net)
    print(f"\nestimated bound: {bound} "
          f"(true ≤ {gen.arboricity_bound}) in {est_rounds} rounds total")

    # end to end: estimate + color, vs coloring with the oracle bound
    auto = legal_coloring_auto(net, eta=0.5)
    check_legal_coloring(g, auto.colors)
    oracle = legal_coloring_corollary46(net, gen.arboricity_bound, eta=0.5)
    check_legal_coloring(g, oracle.colors)

    print(f"\n[auto]   {auto.num_colors} colors in {auto.rounds} rounds "
          f"({auto.params['estimation_rounds']} estimating + "
          f"{auto.params['coloring_rounds']} coloring)")
    print(f"[oracle] {oracle.num_colors} colors in {oracle.rounds} rounds")
    print("\nnot knowing the arboricity costs O(log a) failed H-partitions "
          "of O(log n) rounds each —\nthe same order as the coloring itself "
          "(see benchmarks/bench_estimation.py).")


if __name__ == "__main__":
    main()
