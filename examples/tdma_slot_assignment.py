#!/usr/bin/env python3
"""TDMA slot assignment for a wireless sensor network.

The paper's motivating application ([14] Hermann & Tixeuil): in a sensor
field, two nodes whose radios interfere must not transmit in the same TDMA
slot.  Modeling interference as a graph, a legal vertex coloring *is* a
collision-free slot assignment, and the number of colors is the frame
length — fewer colors means higher throughput per node.

Geometric radio networks are sparse in the arboricity sense (a random
unit-disk graph's arboricity is far below its maximum degree around hot
spots), which is exactly the regime where the paper's arboricity-based
algorithms beat degree-based ones.

Run:  python examples/tdma_slot_assignment.py
"""

import random

from repro import Graph, SynchronousNetwork
from repro.core import delta_plus_one_via_arboricity, legal_coloring_corollary46
from repro.graphs import arboricity_bounds
from repro.verify import check_legal_coloring


def unit_disk_graph(n: int, radius: float, seed: int) -> Graph:
    """Sensors dropped uniformly in the unit square; edges within range."""
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    edges = []
    for i in range(n):
        xi, yi = points[i]
        for j in range(i + 1, n):
            xj, yj = points[j]
            if (xi - xj) ** 2 + (yi - yj) ** 2 <= radius * radius:
                edges.append((i, j))
    return Graph(range(n), edges)


def simulate_frame(graph: Graph, slots: dict) -> int:
    """Simulate one TDMA frame: count collisions (must be zero)."""
    collisions = 0
    for (u, v) in graph.edges:
        if slots[u] == slots[v]:
            collisions += 1
    return collisions


def main() -> None:
    field = unit_disk_graph(n=600, radius=0.07, seed=3)
    lo, hi = arboricity_bounds(field)
    print(f"sensor field: n={field.n}, m={field.m}, Δ={field.max_degree}, "
          f"arboricity in [{lo}, {hi}]")

    net = SynchronousNetwork(field)

    # Slot assignment via the paper's coloring: O(a^{1+η}) slots computed in
    # polylog rounds — each round is one beacon interval in a real network.
    coloring = legal_coloring_corollary46(net, a=hi, eta=0.5)
    check_legal_coloring(field, coloring.colors)
    slots = coloring.normalized().colors
    frame = max(slots.values()) + 1
    print(f"\n[Cor 4.6 schedule]  frame length {frame} slots, computed in "
          f"{coloring.rounds} rounds")
    print(f"collisions in simulated frame: {simulate_frame(field, slots)}")

    # Tighter frame: reduce to Δ+1 slots via Corollary 4.7 (a ≪ Δ regime).
    tight = delta_plus_one_via_arboricity(net, a=hi, nu=0.5)
    check_legal_coloring(field, tight.colors)
    tight_slots = tight.normalized().colors
    tight_frame = max(tight_slots.values()) + 1
    print(f"\n[Cor 4.7 schedule]  frame length {tight_frame} slots "
          f"(Δ+1 = {field.max_degree + 1}), computed in {tight.rounds} rounds")
    print(f"collisions in simulated frame: {simulate_frame(field, tight_slots)}")

    per_node_throughput = 1.0 / tight_frame
    print(f"\neach sensor transmits every {tight_frame} slots "
          f"({per_node_throughput:.1%} duty cycle), guaranteed collision-free.")


if __name__ == "__main__":
    main()
