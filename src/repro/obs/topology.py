"""Host topology probe shared by sweep traces and BENCH records.

Perf numbers only compare across machines when the machine shape rides
along: ``overlap_vs_*`` speedups are meaningless on a single-core box.
Every BENCH record and every sweep trace therefore embeds this block,
and ``benchmarks/check_perf_regression.py`` uses it to skip
parallelism-dependent floors on mismatched topology.
"""

from __future__ import annotations

import os
from typing import Any, Dict


def topology() -> Dict[str, Any]:
    """Describe the host: cpu count, effective workers, shm availability."""
    info: Dict[str, Any] = {"cpu_count": os.cpu_count() or 1}
    try:
        from ..experiments.runner import default_workers

        info["effective_workers"] = default_workers()
    except Exception:
        info["effective_workers"] = 1
    try:
        from ..experiments.graphstore import shm_available

        info["shm_available"] = bool(shm_available())
    except Exception:
        info["shm_available"] = False
    return info
