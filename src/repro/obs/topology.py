"""Host topology probe shared by sweep traces and BENCH records.

Perf numbers only compare across machines when the machine shape rides
along: ``overlap_vs_*`` speedups are meaningless on a single-core box.
Every BENCH record and every sweep trace therefore embeds this block,
and ``benchmarks/check_perf_regression.py`` uses it to skip
parallelism-dependent floors on mismatched topology.
"""

from __future__ import annotations

import os
from typing import Any, Dict


def physical_memory_gb() -> float:
    """Total physical memory in GiB, or 0.0 when the probe is unavailable.

    Memory-bound floors (the column-engine scale bench holds a
    million-node event-engine run in RAM) are skipped on boxes below the
    baseline's ``min_mem_gb``, the same way parallelism-dependent floors
    skip on low core counts.
    """
    try:
        pages = os.sysconf("SC_PHYS_PAGES")
        page_size = os.sysconf("SC_PAGE_SIZE")
    except (ValueError, OSError, AttributeError):
        return 0.0
    if pages <= 0 or page_size <= 0:
        return 0.0
    return round(pages * page_size / 2**30, 2)


def topology() -> Dict[str, Any]:
    """Describe the host: cpu count, memory, workers, shm availability."""
    info: Dict[str, Any] = {"cpu_count": os.cpu_count() or 1}
    mem = physical_memory_gb()
    if mem:
        info["mem_gb"] = mem
    try:
        from ..experiments.runner import default_workers

        info["effective_workers"] = default_workers()
    except Exception:
        info["effective_workers"] = 1
    try:
        from ..experiments.graphstore import shm_available

        info["shm_available"] = bool(shm_available())
    except Exception:
        info["shm_available"] = False
    return info
