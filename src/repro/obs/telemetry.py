"""Pluggable telemetry sinks for the round simulator.

The paper's claims are round- and message-complexity bounds, so the
simulator exposes a first-class observation channel: pass a
:class:`Telemetry` sink to :meth:`SynchronousNetwork.run
<repro.simulator.network.SynchronousNetwork.run>` via ``telemetry=`` and
both engines (``dense`` and ``event``) feed it the same stream of
per-round counters.

Sink contract
-------------

A sink subclasses :class:`Telemetry` and overrides any of five hooks:

* ``on_run_start(n, scheduler)`` — once per run, before round 0;
* ``on_round(round_number, active, messages, message_bytes, woke,
  idled)`` — once per *executed* round, round 0 (``on_start``) included;
* ``on_fast_forward(from_round, to_round)`` — when the event engine
  jumps over empty rounds (the dense engine executes them and emits
  ``on_round`` with zero messages instead);
* ``on_message(round_number, sender, dest, payload)`` — per message,
  only when the sink sets ``wants_messages = True``;
* ``on_run_end(result)`` — once per run, with the final ``RunResult``.

Two class attributes opt into the expensive streams: ``wants_messages``
routes every dispatch through the slow path (like a
:class:`~repro.simulator.tracing.MessageTrace`), and ``wants_bytes``
forces payload-size estimation so ``message_bytes`` is populated.

Engine comparability: ``round_number``/``messages``/``message_bytes``
are identical across engines for the rounds both execute (the
equivalence suite pins this).  ``active``/``woke``/``idled`` are
*scheduling* diagnostics and engine-specific by design — the dense
engine activates every running node each round and never parks one, so
it reports ``woke == idled == 0``.

Overhead guarantee: with ``telemetry=None`` (the default) the run pays
one hoisted ``is not None`` check per round and nothing per message —
the disabled path is gated in CI against the frozen pre-instrumentation
scheduler (``benchmarks/legacy_network.py``) to stay within 3%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List


class Telemetry:
    """No-op base sink; subclass and override the hooks you need."""

    __slots__ = ()

    #: Set True to receive ``on_message`` for every dispatched message
    #: (routes dispatch through the simulator's slow path).
    wants_messages = False

    #: Set True to force payload-size estimation even when the caller did
    #: not pass ``count_bytes=True`` (so ``message_bytes`` is populated).
    wants_bytes = False

    def on_run_start(self, n: int, scheduler: str) -> None:
        """Called once before round 0; ``n`` is the participant count."""

    def on_round(
        self,
        round_number: int,
        active: int,
        messages: int,
        message_bytes: int,
        woke: int,
        idled: int,
    ) -> None:
        """Called after every executed round with that round's counters."""

    def on_fast_forward(self, from_round: int, to_round: int) -> None:
        """Called when the event engine skips the empty rounds strictly
        between ``from_round`` and ``to_round``."""

    def on_message(
        self, round_number: int, sender: Any, dest: Any, payload: Any
    ) -> None:
        """Per-message hook; only fired when ``wants_messages`` is True."""

    def on_run_end(self, result: Any) -> None:
        """Called once with the final :class:`RunResult`."""


@dataclass(frozen=True)
class RoundSample:
    """Counters for one executed round."""

    round_number: int
    active: int
    messages: int
    message_bytes: int
    woke: int
    idled: int


class RoundTelemetry(Telemetry):
    """Collects per-round counters into a list of :class:`RoundSample`.

    Samples accumulate across runs when the same sink is threaded through
    a composite algorithm (``runs`` counts them); round numbers restart
    per run.  ``count_bytes=True`` opts into payload sizing so the
    ``message_bytes`` column is populated.
    """

    def __init__(self, count_bytes: bool = False):
        self.wants_bytes = bool(count_bytes)
        self.samples: List[RoundSample] = []
        self.fast_forwarded = 0
        self.runs = 0
        self.n = 0
        self.scheduler = ""

    # Telemetry hooks ---------------------------------------------------
    def on_run_start(self, n: int, scheduler: str) -> None:
        self.runs += 1
        self.n = n
        self.scheduler = scheduler

    def on_round(
        self,
        round_number: int,
        active: int,
        messages: int,
        message_bytes: int,
        woke: int,
        idled: int,
    ) -> None:
        self.samples.append(
            RoundSample(round_number, active, messages, message_bytes, woke, idled)
        )

    def on_fast_forward(self, from_round: int, to_round: int) -> None:
        self.fast_forwarded += to_round - from_round - 1

    # Derived views -----------------------------------------------------
    @property
    def total_messages(self) -> int:
        return sum(s.messages for s in self.samples)

    @property
    def total_bytes(self) -> int:
        return sum(s.message_bytes for s in self.samples)

    @property
    def last_round(self) -> int:
        return max((s.round_number for s in self.samples), default=0)

    @property
    def peak_active(self) -> int:
        return max((s.active for s in self.samples), default=0)

    @property
    def wake_transitions(self) -> int:
        return sum(s.woke for s in self.samples)

    @property
    def idle_transitions(self) -> int:
        return sum(s.idled for s in self.samples)

    def active_node_rounds(self) -> int:
        """Total node activations — the simulator's unit of work."""
        return sum(s.active for s in self.samples)

    def message_rounds(self) -> Dict[int, int]:
        """Messages per round, rounds with traffic only.

        Empty rounds are executed by the dense engine but fast-forwarded
        by the event engine, so restricting to rounds with traffic makes
        this view engine-independent (within a single run).
        """
        out: Dict[int, int] = {}
        for s in self.samples:
            if s.messages:
                out[s.round_number] = out.get(s.round_number, 0) + s.messages
        return out

    def summary(self) -> Dict[str, Any]:
        """JSON-able CONGEST-style summary of everything collected."""
        return {
            "runs": self.runs,
            "n": self.n,
            "scheduler": self.scheduler,
            "rounds_executed": len(self.samples),
            "last_round": self.last_round,
            "fast_forwarded_rounds": self.fast_forwarded,
            "active_node_rounds": self.active_node_rounds(),
            "peak_active": self.peak_active,
            "messages": self.total_messages,
            "message_bytes": self.total_bytes,
            "max_round_messages": max(
                (s.messages for s in self.samples), default=0
            ),
            "wake_transitions": self.wake_transitions,
            "idle_transitions": self.idle_transitions,
        }
