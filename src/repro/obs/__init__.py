"""Observability: telemetry sinks, sweep tracing, and topology probes.

Three layers, one spine:

* :mod:`repro.obs.telemetry` — the pluggable per-round
  :class:`Telemetry` sink both simulator engines feed identically
  (off by default; the disabled path stays out of the hot loop);
* :mod:`repro.obs.trace` — structured JSONL trace spans for sweeps
  (``repro sweep --trace`` / ``repro report trace``);
* :mod:`repro.obs.topology` — the host-shape block embedded in BENCH
  records and sweep traces so perf gates can be topology-aware.
"""

from .telemetry import RoundSample, RoundTelemetry, Telemetry
from .topology import topology
from .trace import (
    TRACE_SCHEMA,
    TraceWriter,
    read_trace,
    render_trace_report,
    summarize_trace,
)

__all__ = [
    "Telemetry",
    "RoundTelemetry",
    "RoundSample",
    "TraceWriter",
    "TRACE_SCHEMA",
    "read_trace",
    "summarize_trace",
    "render_trace_report",
    "topology",
]
