"""Structured JSONL sweep tracing: writer, reader, and summarizer.

``repro sweep --trace <path>`` threads a :class:`TraceWriter` through
:func:`~repro.experiments.runner.run_sweep`; the sweep's single-writer
parent process emits one JSON object per line for every observable event:

* ``{"kind": "sweep", "event": "start"|"end", ...}`` — sweep boundaries,
  with trial counts, worker settings and the host :func:`topology
  <repro.obs.topology.topology>` block on ``start`` and the accounting
  totals on ``end``;
* ``{"kind": "cache", "event": "hit"|"miss", "trial": ..., "key": ...}``
  — one per unique trial probed against the :class:`ResultCache`;
* ``{"kind": "graphstore", "event": "build"|"publish"|"expect"|"adopt"|
  "mint"|"evict"|"close", "graph": ...}`` — GraphStore lifecycle;
* ``{"kind": "stage", "event": "span", "name": "build_graph"|
  "run_algorithm"|"verify"|"metrics", "dur_s": ..., "trial": ...,
  "pid": ..., "worker": ..., "executor": ...}`` — one span per executed
  stage of every fresh trial, tagged with the executor backend and the
  executor-assigned worker id where there is one (socket workers; pid
  otherwise).  Worker stage timings are re-emitted by the parent when
  the record is absorbed, preserving the single-writer invariant;
* ``{"kind": "trial", "event": "complete", ...}`` — one per fresh trial;
* ``{"kind": "pool", "event": "start", "size": ...}`` — pool dispatch.

Every line carries ``schema`` (currently 1) and ``t``, seconds since the
writer was opened.  The file is opened in append mode so successive
sweeps accumulate; :func:`summarize_trace` and ``repro report trace``
aggregate any number of sweeps per file.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List

from ..analysis.tables import render_table

#: Version stamp written on every trace line.
TRACE_SCHEMA = 1


class TraceWriter:
    """Append-only JSONL event writer (thread-safe, single process).

    Only the sweep's parent process writes; a lock serialises the two
    parent threads that can emit concurrently (the result-absorbing main
    thread and the pool's build-streaming generator thread).
    """

    def __init__(self, path: str):
        self.path = str(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self.emitted = 0

    def emit(self, kind: str, event: str, **fields: Any) -> None:
        """Write one event line; ``fields`` must be JSON-serializable."""
        rec = {
            "schema": TRACE_SCHEMA,
            "kind": kind,
            "event": event,
            "t": round(time.perf_counter() - self._t0, 6),
        }
        rec.update(fields)
        line = json.dumps(rec, separators=(",", ":"))
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()
            self.emitted += 1

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a trace file, skipping blank or corrupt lines."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if isinstance(rec, dict):
                events.append(rec)
    return events


def summarize_trace(path: str) -> Dict[str, Any]:
    """Aggregate a trace file into a nested summary dict.

    Returns ``{"events", "sweeps", "stages", "cache", "graphstore",
    "workers"}`` where ``stages`` maps stage name to count/total/mean
    seconds and ``workers`` maps a worker identity to trials completed
    and busy seconds (utilization = busy time / sweep wall time).  The
    identity is the executor-assigned worker id when spans carry one
    (socket workers: ``w1``, ``w2``, …) and the worker pid otherwise —
    pids from different hosts could collide, worker ids never do.
    """
    events = read_trace(path)
    sweeps: List[Dict[str, Any]] = []
    stages: Dict[str, Dict[str, float]] = {}
    cache = {"hit": 0, "miss": 0}
    graphstore: Dict[str, int] = {}
    workers: Dict[Any, Dict[str, float]] = {}
    for ev in events:
        kind = ev.get("kind")
        event = ev.get("event")
        if kind == "sweep":
            if event == "start":
                sweeps.append({"sweep": ev.get("sweep"), "start_t": ev.get("t")})
            elif event == "end" and sweeps:
                sweeps[-1].update(
                    {
                        k: v
                        for k, v in ev.items()
                        if k not in ("schema", "kind", "event", "t")
                    }
                )
        elif kind == "cache":
            if event in cache:
                cache[event] += 1
        elif kind == "graphstore":
            graphstore[event] = graphstore.get(event, 0) + 1
        elif kind == "stage":
            name = ev.get("name", "?")
            dur = float(ev.get("dur_s") or 0.0)
            s = stages.setdefault(name, {"count": 0, "total_s": 0.0})
            s["count"] += 1
            s["total_s"] += dur
            who = ev.get("worker") or ev.get("pid")
            if who is not None:
                w = workers.setdefault(who, {"trials": 0, "busy_s": 0.0})
                w["busy_s"] += dur
        elif kind == "trial" and event == "complete":
            who = ev.get("worker") or ev.get("pid")
            if who is not None:
                w = workers.setdefault(who, {"trials": 0, "busy_s": 0.0})
                w["trials"] += 1
    for s in stages.values():
        s["mean_s"] = s["total_s"] / s["count"] if s["count"] else 0.0
        s["total_s"] = round(s["total_s"], 6)
        s["mean_s"] = round(s["mean_s"], 6)
    for w in workers.values():
        w["busy_s"] = round(w["busy_s"], 6)
    return {
        "events": len(events),
        "sweeps": sweeps,
        "stages": stages,
        "cache": cache,
        "graphstore": graphstore,
        "workers": workers,
    }


def render_trace_report(path: str) -> str:
    """Render ``repro report trace``'s plain-text summary of a trace."""
    summary = summarize_trace(path)
    blocks: List[str] = []

    rows = []
    for sw in summary["sweeps"]:
        rows.append(
            [
                sw.get("sweep", "?"),
                sw.get("trials", "-"),
                sw.get("workers", "-"),
                sw.get("cache_hits", "-"),
                sw.get("cache_misses", "-"),
                sw.get("graph_builds", "-"),
                sw.get("graph_reuses", "-"),
                sw.get("wall_s", "-"),
            ]
        )
    blocks.append(
        render_table(
            f"trace: {os.path.basename(path)} ({summary['events']} events)",
            ["sweep", "trials", "workers", "hits", "misses", "builds",
             "reuses", "wall_s"],
            rows,
            note="cache: "
            f"{summary['cache']['hit']} hits / "
            f"{summary['cache']['miss']} misses",
        )
    )

    stage_rows = [
        [name, int(s["count"]), s["total_s"], s["mean_s"] * 1000.0]
        for name, s in sorted(summary["stages"].items())
    ]
    blocks.append(
        render_table(
            "stage spans",
            ["stage", "spans", "total_s", "mean_ms"],
            stage_rows,
        )
    )

    if summary["graphstore"]:
        gs_rows = [
            [event, count]
            for event, count in sorted(summary["graphstore"].items())
        ]
        blocks.append(
            render_table("graphstore events", ["event", "count"], gs_rows)
        )

    if summary["workers"]:
        wall = 0.0
        for sw in summary["sweeps"]:
            try:
                wall += float(sw.get("wall_s") or 0.0)
            except (TypeError, ValueError):
                pass
        w_rows = []
        for who, w in sorted(summary["workers"].items(), key=lambda kv: str(kv[0])):
            share = (w["busy_s"] / wall) if wall > 0 else 0.0
            w_rows.append(
                [who, int(w["trials"]), w["busy_s"], f"{share:.0%}"]
            )
        blocks.append(
            render_table(
                "worker utilization",
                ["worker", "trials", "busy_s", "of wall"],
                w_rows,
                note="busy time is the sum of stage spans per worker "
                "(executor worker id when present, else pid)",
            )
        )

    return "\n\n".join(blocks)
