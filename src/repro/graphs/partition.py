"""Vertex-partition utilities.

The paper's recursions constantly refine vertex partitions ("run in
parallel on every part, split each part further").  These helpers keep
that bookkeeping uniform: combining a caller's partition with a new
labeling, dense relabeling, and building induced part subgraphs for
verification.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from ..errors import InvalidParameterError
from ..types import Vertex
from .graph import Graph


def refine_partition(
    base: Optional[Mapping[Vertex, Hashable]],
    labels: Mapping[Vertex, Hashable],
) -> Dict[Vertex, Tuple[Hashable, Hashable]]:
    """Refine ``base`` with ``labels``: part(v) = (base(v), labels(v)).

    ``base`` may be ``None`` (no outer partition).  The result is keyed by
    the vertices of ``labels`` — the participants of the current phase.
    """
    return {
        v: ((base.get(v) if base is not None else None), lab)
        for v, lab in labels.items()
    }


def dense_relabel(labels: Mapping[Vertex, Hashable]) -> Dict[Vertex, int]:
    """Map arbitrary part labels to the compact range 0..k-1.

    Relabeling is deterministic: labels are ordered by their sorted repr,
    so two runs over the same input agree.
    """
    distinct = sorted({repr(lab) for lab in labels.values()})
    index = {r: i for i, r in enumerate(distinct)}
    return {v: index[repr(lab)] for v, lab in labels.items()}


def parts_of(labels: Mapping[Vertex, Hashable]) -> Dict[Hashable, List[Vertex]]:
    """Group vertices by part label."""
    out: Dict[Hashable, List[Vertex]] = {}
    for v, lab in labels.items():
        out.setdefault(lab, []).append(v)
    return out


def part_subgraphs(
    graph: Graph, labels: Mapping[Vertex, Hashable]
) -> Dict[Hashable, Graph]:
    """Induced subgraph of every part (centralized, for verification)."""
    return {
        lab: graph.induced_subgraph(vs) for lab, vs in parts_of(labels).items()
    }


def check_is_partition(
    vertices: Iterable[Vertex], labels: Mapping[Vertex, Hashable]
) -> None:
    """Raise unless every vertex carries a label."""
    missing = [v for v in vertices if v not in labels]
    if missing:
        raise InvalidParameterError(
            f"partition misses {len(missing)} vertices (e.g. {missing[:5]})"
        )


def cross_part_edges(
    graph: Graph, labels: Mapping[Vertex, Hashable]
) -> List[Tuple[Vertex, Vertex]]:
    """Edges whose endpoints lie in different parts."""
    return [
        (u, v)
        for (u, v) in graph.edges
        if labels.get(u) != labels.get(v)
    ]
