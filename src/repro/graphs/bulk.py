"""Numpy-native bulk graph generation for million-node workloads.

The generators in :mod:`repro.graphs.generators` build edges one Python
object at a time, which is fine up to ~10^5 vertices but dominates the wall
clock long before the column engine does any work at 10^6–10^7.  This module
provides the vectorised counterpart for the canonical arboricity-``a``
workload: :func:`forest_union_bulk` draws each forest as a random recursive
tree over a random permutation entirely inside numpy and hands the endpoint
arrays straight to :meth:`Graph.from_arrays` — no Python edge list ever
exists.

The construction certifies arboricity ≤ ``a`` exactly like
:func:`~repro.graphs.generators.forest_union` (a union of ``a`` forests);
the random streams differ (``numpy.random.Generator`` vs
:class:`random.Random`), so graphs are *not* sample-identical to the scalar
generator for the same seed — they are draws from the same family, which is
what the benchmarks need.

Pair with :meth:`Graph.to_csr_file` / :meth:`Graph.from_csr_file` to build a
graph once and memory-map it into later runs.
"""

from __future__ import annotations

from ..errors import InvalidParameterError
from .generators import GeneratedGraph
from .graph import Graph

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None


def forest_union_bulk(
    n: int, a: int, seed: int = 0, density: float = 1.0
) -> GeneratedGraph:
    """A union of ``a`` random spanning forests, built as numpy columns.

    Per forest: a random permutation of the ids and a random recursive tree
    over it (vertex ``i`` attaches to a uniform earlier vertex), the same
    construction as the scalar :func:`~repro.graphs.generators.forest_union`
    — so the certified bound (arboricity ≤ ``a``) carries over verbatim.
    ``density`` keeps a fraction of each forest's ``n − 1`` edges, capped at
    1.0: the scalar generator's oversampling regime exists to exercise
    duplicate handling, which the bulk path has no need to re-test at scale.

    Deterministic given ``seed`` (via ``numpy.random.default_rng``).
    Requires numpy; pure-Python installs should use ``forest_union``.
    """
    if _np is None:
        raise InvalidParameterError(
            "forest_union_bulk requires numpy; use forest_union instead"
        )
    if n < 2:
        raise InvalidParameterError("forest_union_bulk: n must be >= 2")
    if a < 1:
        raise InvalidParameterError("forest_union_bulk: a must be >= 1")
    if not (0.0 < density <= 1.0):
        raise InvalidParameterError(
            "forest_union_bulk: density must be in (0, 1]"
        )
    rng = _np.random.default_rng(seed)
    keep = max(1, min(n - 1, int(density * (n - 1))))
    us = _np.empty(a * keep, dtype=_np.int64)
    vs = _np.empty(a * keep, dtype=_np.int64)
    for f in range(a):
        perm = rng.permutation(n).astype(_np.int64, copy=False)
        # vertex i (in permuted order) attaches to a uniform j < i
        parents = rng.integers(0, _np.arange(1, n, dtype=_np.int64))
        u = perm[1:]
        v = perm[parents]
        if keep < n - 1:
            pick = rng.permutation(n - 1)[:keep]
            u = u[pick]
            v = v[pick]
        us[f * keep : (f + 1) * keep] = u
        vs[f * keep : (f + 1) * keep] = v
    g = Graph.from_arrays(n, us, vs)
    return GeneratedGraph(
        g,
        a,
        "forest_union_bulk",
        {"n": n, "a": a, "seed": seed, "density": density},
    )
