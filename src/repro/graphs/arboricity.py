"""Arboricity analysis: degeneracy, Nash–Williams bounds, pseudoarboricity.

The algorithms in this library take an arboricity *upper bound* ``a`` as
input; this module supplies the centralized machinery to obtain and check
such bounds:

* :func:`degeneracy` — the classic min-degree peeling.  A graph of
  degeneracy ``k`` has arboricity at most ``k`` (orient every edge towards
  the later vertex of the peeling order: acyclic with out-degree ≤ k, then
  Lemma 2.5), and conversely ``k ≤ 2a − 1``.
* :func:`nash_williams_lower_bound` — the density bound
  ``a ≥ max_H ⌈m_H / (n_H − 1)⌉`` evaluated on the whole graph and on every
  suffix of the degeneracy order (a strong family of witnesses in practice).
* :func:`pseudoarboricity` — the *exact* maximum density
  ``max_H ⌈m_H / n_H⌉`` via max-flow (Dinic), which sandwiches arboricity:
  ``p ≤ a ≤ p + 1``.
* :func:`arboricity_bounds` — the best certified interval from all of the
  above.

These are sequential (non-distributed) reference computations used by
generators, verifiers, and benchmarks — not by the distributed algorithms
themselves.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Tuple

from ..types import Orientation, Vertex, canonical_edge
from .graph import Graph


def _numpy():
    """The numpy module used by the graph core, or None (same gate)."""
    from . import graph as _graph_mod

    return _graph_mod._np


def degeneracy(graph: Graph) -> Tuple[int, List[Vertex]]:
    """Compute the degeneracy and a degeneracy ordering by min-degree peeling.

    Returns ``(k, order)`` where ``order`` lists the vertices in peeling
    order: every vertex has at most ``k`` neighbours *later* in the order.
    Runs in O(n + m) with bucketed degrees.
    """
    n = graph.n
    if n == 0:
        return 0, []
    # Index-space peeling over the CSR arrays: no id hashing in the loop.
    # For contiguous-id graphs indices are ids, so the peeling visits the
    # very same bucket contents as the legacy id-based implementation.
    off, nbr = graph.csr()
    deg = [off[i + 1] - off[i] for i in range(n)]
    max_deg = max(deg)
    buckets: List[set] = [set() for _ in range(max_deg + 1)]
    for i, d in enumerate(deg):
        buckets[d].add(i)
    order_idx: List[int] = []
    removed = bytearray(n)
    k = 0
    cursor = 0
    for _ in range(n):
        while cursor <= max_deg and not buckets[cursor]:
            cursor += 1
        # peeling may have decreased some degrees below the cursor
        if cursor > 0:
            back = cursor
            while back > 0 and not buckets[back - 1]:
                back -= 1
            while back < cursor and not buckets[back]:
                back += 1
            cursor = back
        i = buckets[cursor].pop()
        if cursor > k:
            k = cursor
        order_idx.append(i)
        removed[i] = 1
        for j in nbr[off[i] : off[i + 1]]:
            if removed[j]:
                continue
            d = deg[j]
            buckets[d].discard(j)
            deg[j] = d - 1
            buckets[d - 1].add(j)
            if d - 1 < cursor:
                cursor = d - 1
    if graph.ids_contiguous:
        return k, order_idx
    vertex_at = graph.vertex_at
    return k, [vertex_at(i) for i in order_idx]


def degeneracy_orientation(graph: Graph) -> Orientation:
    """Acyclic orientation with out-degree ≤ degeneracy (centralized reference).

    Each edge is oriented towards the endpoint *later* in the degeneracy
    order, so a vertex's out-edges all go to later vertices: acyclic, and by
    the degeneracy property each vertex has at most ``k`` of them.
    """
    _k, order = degeneracy(graph)
    pos = {v: i for i, v in enumerate(order)}
    direction = {}
    for (u, v) in graph.edges:
        head = v if pos[v] > pos[u] else u
        direction[canonical_edge(u, v)] = head
    return Orientation(direction=direction, algorithm="degeneracy-orientation")


def nash_williams_lower_bound(graph: Graph) -> int:
    """A certified lower bound on the arboricity via subgraph densities.

    Nash–Williams: ``a(G) = max_H ⌈m_H / (n_H − 1)⌉`` over subgraphs H with
    ``n_H ≥ 2``.  Maximising over *all* H is what :func:`pseudoarboricity`
    approximates; here we evaluate the bound on a useful family of witnesses:
    the whole graph and every suffix of the degeneracy order (the "cores").
    Any value returned is a true lower bound.
    """
    n = graph.n
    if n < 2:
        return 0
    best = math.ceil(graph.m / (n - 1))
    _k, order = degeneracy(graph)
    np = _numpy()
    if np is not None and graph.ids_contiguous:
        # Vectorized over the CSR arrays: one C pass over the batched
        # neighbour array instead of a Python loop per edge.
        off_mv, nbr_mv = graph.csr()
        off = np.frombuffer(off_mv, dtype=np.int64)
        nbr = np.frombuffer(nbr_mv, dtype=np.int64)
        pos = np.empty(n, dtype=np.int64)
        pos[np.asarray(order, dtype=np.int64)] = np.arange(n, dtype=np.int64)
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(off))
        ps, pn = pos[src], pos[nbr]
        mins = ps[ps < pn]  # each undirected edge counted exactly once
        suffix_m = np.bincount(mins, minlength=n)
        totals = suffix_m[::-1].cumsum()[::-1]  # edges inside order[i:]
        n_h = n - np.arange(n, dtype=np.int64)
        valid = n_h >= 2
        if bool(valid.any()):
            vals = -(-totals[valid] // (n_h[valid] - 1))  # ceil division
            best = max(best, int(vals.max()))
        return best
    pos_d = {v: i for i, v in enumerate(order)}
    # m_i = number of edges fully inside the suffix order[i:]
    suffix_m_l = [0] * (n + 1)
    for (u, v) in graph.edges:
        suffix_m_l[min(pos_d[u], pos_d[v])] += 1
    total = 0
    for i in range(n - 1, -1, -1):
        total += suffix_m_l[i]
        n_h = n - i
        if n_h >= 2:
            best = max(best, math.ceil(total / (n_h - 1)))
    return best


# ----------------------------------------------------------------------
# exact pseudoarboricity via max-flow (Dinic)
# ----------------------------------------------------------------------
class _Dinic:
    """A compact Dinic max-flow over an adjacency-list residual network."""

    def __init__(self, num_nodes: int):
        self.n = num_nodes
        self.head: List[List[int]] = [[] for _ in range(num_nodes)]
        self.to: List[int] = []
        self.cap: List[float] = []

    def add_edge(self, u: int, v: int, capacity: float) -> None:
        self.head[u].append(len(self.to))
        self.to.append(v)
        self.cap.append(capacity)
        self.head[v].append(len(self.to))
        self.to.append(u)
        self.cap.append(0.0)

    def max_flow(self, s: int, t: int) -> float:
        flow = 0.0
        while True:
            level = [-1] * self.n
            level[s] = 0
            q = deque([s])
            while q:
                u = q.popleft()
                for ei in self.head[u]:
                    v = self.to[ei]
                    if self.cap[ei] > 1e-12 and level[v] < 0:
                        level[v] = level[u] + 1
                        q.append(v)
            if level[t] < 0:
                return flow
            it = [0] * self.n

            def dfs(u: int, pushed: float) -> float:
                if u == t:
                    return pushed
                while it[u] < len(self.head[u]):
                    ei = self.head[u][it[u]]
                    v = self.to[ei]
                    if self.cap[ei] > 1e-12 and level[v] == level[u] + 1:
                        got = dfs(v, min(pushed, self.cap[ei]))
                        if got > 1e-12:
                            self.cap[ei] -= got
                            self.cap[ei ^ 1] += got
                            return got
                    it[u] += 1
                return 0.0

            while True:
                pushed = dfs(s, float("inf"))
                if pushed <= 1e-12:
                    break
                flow += pushed


def _orientable_with_outdegree(graph: Graph, k: int) -> bool:
    """Can every edge be oriented so that all out-degrees are ≤ k?

    By Hakimi's theorem this holds iff ``m_H ≤ k · n_H`` for every subgraph
    H, i.e. iff the pseudoarboricity is ≤ k.  Checked with one max-flow:
    source → edge nodes (cap 1) → endpoint vertices (cap ∞) → sink (cap k);
    feasible iff the flow saturates all m source edges.
    """
    m = graph.m
    if m == 0:
        return True
    n = graph.n
    # node ids: 0 = source, 1..m = edges, m+1..m+n = vertices, m+n+1 = sink
    vid = {v: m + 1 + i for i, v in enumerate(graph.vertices)}
    sink = m + n + 1
    net = _Dinic(m + n + 2)
    for i, (u, v) in enumerate(graph.edges):
        net.add_edge(0, 1 + i, 1.0)
        net.add_edge(1 + i, vid[u], 2.0)
        net.add_edge(1 + i, vid[v], 2.0)
    for v in graph.vertices:
        net.add_edge(vid[v], sink, float(k))
    return net.max_flow(0, sink) >= m - 1e-6


def pseudoarboricity(graph: Graph) -> int:
    """The exact pseudoarboricity ``p = max_H ⌈m_H / n_H⌉`` (max-flow search).

    Sandwiches the arboricity: ``p ≤ a(G) ≤ p + 1``.  Binary-searches the
    smallest ``k`` for which an out-degree-``k`` orientation exists.
    """
    if graph.m == 0:
        return 0
    lo = max(1, math.ceil(graph.m / graph.n))
    hi = max(lo, degeneracy(graph)[0])
    while lo < hi:
        mid = (lo + hi) // 2
        if _orientable_with_outdegree(graph, mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def arboricity_bounds(graph: Graph, exact_flow: bool = True) -> Tuple[int, int]:
    """Certified ``(lower, upper)`` bounds on the arboricity of ``graph``.

    ``upper`` comes from the degeneracy (Lemma 2.5); ``lower`` from
    Nash–Williams density witnesses; when ``exact_flow`` is set the
    pseudoarboricity tightens both sides to within 1.
    """
    if graph.m == 0:
        return 0, 0
    k, _ = degeneracy(graph)
    lower = nash_williams_lower_bound(graph)
    upper = max(1, k)
    if exact_flow:
        p = pseudoarboricity(graph)
        lower = max(lower, p)
        upper = min(upper, p + 1)
    return lower, min_upper(lower, upper)


def min_upper(lower: int, upper: int) -> int:
    """Clamp an upper bound to at least the lower bound (guards rounding)."""
    return max(lower, upper)


def is_forest(graph: Graph) -> bool:
    """True when the graph is acyclic (arboricity ≤ 1)."""
    parent: Dict[Vertex, Vertex] = {}

    def find(x: Vertex) -> Vertex:
        root = x
        while root in parent:
            root = parent[root]
        while x != root:
            parent[x], x = root, parent[x]
        return root

    for (u, v) in graph.edges:
        ru, rv = find(u), find(v)
        if ru == rv:
            return False
        parent[ru] = rv
    return True
