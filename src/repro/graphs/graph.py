"""A small immutable undirected-graph type used throughout the library.

The distributed algorithms in :mod:`repro.core` run on a
:class:`~repro.simulator.network.SynchronousNetwork`, which is built from a
:class:`Graph`.  We deliberately do not use :mod:`networkx` graphs internally:
the simulator's hot loop touches adjacency lists millions of times and the
plain-``dict``-of-``tuple`` representation here is several times faster, and a
frozen graph makes it impossible for an algorithm to accidentally mutate the
topology mid-simulation.  Conversion helpers to and from networkx are
provided for the generators and for user interop.

Vertices are integers with unique ids, matching the LOCAL model's assumption
of unique identities.  Ids need not be contiguous (induced subgraphs keep the
original ids), but :func:`repro.graphs.generators` always produce ``0..n-1``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from ..errors import InvalidParameterError
from ..types import Edge, Vertex, canonical_edge


class Graph:
    """An immutable, simple, undirected graph with integer vertex ids."""

    __slots__ = ("_vertices", "_adjacency", "_edges", "_vertex_set")

    def __init__(
        self,
        vertices: Iterable[Vertex],
        edges: Iterable[Tuple[Vertex, Vertex]],
    ):
        vset = set()
        for v in vertices:
            if not isinstance(v, int):
                raise InvalidParameterError(f"vertex ids must be ints, got {v!r}")
            vset.add(v)
        adjacency: Dict[Vertex, set] = {v: set() for v in vset}
        edge_set = set()
        for u, v in edges:
            if u == v:
                raise InvalidParameterError(f"self-loop at vertex {u} not allowed")
            if u not in adjacency or v not in adjacency:
                raise InvalidParameterError(
                    f"edge ({u}, {v}) references a vertex not in the vertex set"
                )
            e = canonical_edge(u, v)
            if e in edge_set:
                continue  # ignore duplicate edges: the graph is simple
            edge_set.add(e)
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._vertices: Tuple[Vertex, ...] = tuple(sorted(vset))
        self._vertex_set = frozenset(vset)
        self._adjacency: Dict[Vertex, Tuple[Vertex, ...]] = {
            v: tuple(sorted(nbrs)) for v, nbrs in adjacency.items()
        }
        self._edges: Tuple[Edge, ...] = tuple(sorted(edge_set))

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Tuple[Vertex, ...]:
        """All vertex ids, sorted ascending."""
        return self._vertices

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges in canonical ``(min, max)`` form, sorted."""
        return self._edges

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._vertices)

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def neighbors(self, v: Vertex) -> Tuple[Vertex, ...]:
        """The sorted neighbours of ``v``."""
        return self._adjacency[v]

    def degree(self, v: Vertex) -> int:
        """The degree of ``v``."""
        return len(self._adjacency[v])

    @property
    def max_degree(self) -> int:
        """Δ, the maximum degree (0 for the empty graph)."""
        if not self._vertices:
            return 0
        return max(len(nbrs) for nbrs in self._adjacency.values())

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True when ``(u, v)`` is an edge."""
        return v in self._adjacency.get(u, ())

    def has_vertex(self, v: Vertex) -> bool:
        """True when ``v`` is a vertex of the graph."""
        return v in self._vertex_set

    def __contains__(self, v: Vertex) -> bool:
        return v in self._vertex_set

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertices)

    def __len__(self) -> int:
        return len(self._vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._vertices == other._vertices and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._vertices, self._edges))

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """The subgraph induced by ``vertices`` (original ids are kept)."""
        keep = set(vertices)
        missing = keep - self._vertex_set
        if missing:
            raise InvalidParameterError(
                f"induced_subgraph: vertices {sorted(missing)[:5]} not in graph"
            )
        edges = [
            (u, v) for (u, v) in self._edges if u in keep and v in keep
        ]
        return Graph(keep, edges)

    def subgraph_of_edges(self, edges: Iterable[Tuple[Vertex, Vertex]]) -> "Graph":
        """The subgraph with the same vertex set but only the given edges."""
        es = list(edges)
        for u, v in es:
            if not self.has_edge(u, v):
                raise InvalidParameterError(
                    f"subgraph_of_edges: ({u}, {v}) is not an edge of the graph"
                )
        return Graph(self._vertices, es)

    def relabeled(self) -> Tuple["Graph", Dict[Vertex, Vertex]]:
        """Return a copy with vertices relabeled to ``0..n-1``.

        Returns the new graph and the mapping ``old_id -> new_id``.
        """
        mapping = {v: i for i, v in enumerate(self._vertices)}
        edges = [(mapping[u], mapping[v]) for (u, v) in self._edges]
        return Graph(range(self.n), edges), mapping

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(cls, nxg) -> "Graph":
        """Build a :class:`Graph` from a networkx graph with int node ids."""
        return cls(nxg.nodes(), nxg.edges())

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph`."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._vertices)
        g.add_edges_from(self._edges)
        return g

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[Vertex, Vertex]]) -> "Graph":
        """Build a graph whose vertex set is exactly the edge endpoints."""
        es = list(edges)
        vertices = {u for e in es for u in e}
        return cls(vertices, es)

    @classmethod
    def empty(cls, n: int) -> "Graph":
        """The edgeless graph on vertices ``0..n-1``."""
        return cls(range(n), [])
