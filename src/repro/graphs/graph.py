"""A small immutable undirected-graph type used throughout the library.

The distributed algorithms in :mod:`repro.core` run on a
:class:`~repro.simulator.network.SynchronousNetwork`, which is built from a
:class:`Graph`.  We deliberately do not use :mod:`networkx` graphs internally:
the simulator's hot loop touches adjacency lists millions of times, and a
frozen graph makes it impossible for an algorithm to accidentally mutate the
topology mid-simulation.  Conversion helpers to and from networkx are
provided for the generators and for user interop.

Storage is a compact CSR (compressed sparse row) layout:

* ``_offsets`` — an ``array('q')`` of length ``n + 1``; the neighbours of the
  vertex at *index* ``i`` occupy ``_nbr[_offsets[i]:_offsets[i + 1]]``;
* ``_nbr`` — an ``array('q')`` of length ``2m`` holding neighbour *indices*
  (positions in the sorted vertex tuple), sorted ascending within each row.

Vertices are integers with unique ids, matching the LOCAL model's assumption
of unique identities.  Ids need not be contiguous (induced subgraphs keep the
original ids), but :func:`repro.graphs.generators` always produce ``0..n-1``
— in that common case index == id and the id→index map is never built.

Two build paths produce bit-identical CSR arrays: a vectorised one (numpy,
used when available) and a pure-Python fallback (stdlib only, used on
installs without numpy or when ``REPRO_PURE_CSR`` is set).  Both encode each
undirected edge as the two directed codes ``u*n + v`` and ``v*n + u``, sort,
and drop adjacent duplicates — so duplicate input edges (in either
orientation) collapse, and the count of dropped duplicates is exposed as
:attr:`Graph.duplicate_edges_dropped`.

The id-based accessors (``vertices`` / ``edges`` / ``neighbors`` /
``degree``) are unchanged from the legacy dict-of-tuples implementation; the
*index* API (``neighbors_index`` / ``degree_index`` / ``csr`` / ...) is the
allocation-free fast path for the simulator and the centralized helpers.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left
from itertools import chain
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import InvalidParameterError
from ..types import Edge, Vertex

try:  # vectorised CSR build; the pure-Python path below is the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

if os.environ.get("REPRO_PURE_CSR"):
    _np = None

_EMPTY_Q = array("q")


# ----------------------------------------------------------------------
# CSR construction from directed edge codes (u*n + v, both directions)
# ----------------------------------------------------------------------
def _csr_from_codes_pure(codes: List[int], n: int) -> Tuple[array, array, int]:
    """Sort + dedup directed codes into (offsets, neighbors, dups) — stdlib."""
    codes.sort()
    deg = [0] * n
    nbr = array("q", bytes(8 * len(codes)))
    fill = 0
    prev = -1
    for c in codes:
        if c == prev:
            continue
        prev = c
        nbr[fill] = c % n
        fill += 1
        deg[c // n] += 1
    dropped = len(codes) - fill
    del nbr[fill:]
    offsets = array("q", bytes(8 * (n + 1)))
    total = 0
    for i, d in enumerate(deg):
        offsets[i] = total
        total += d
    offsets[n] = total
    return offsets, nbr, dropped // 2


def _csr_from_sorted_unique_np(uniq, n: int) -> Tuple[array, array]:
    """Turn sorted unique directed codes (int64 ndarray) into CSR arrays."""
    rows = uniq // n
    counts = _np.bincount(rows, minlength=n)
    off_np = _np.zeros(n + 1, dtype=_np.int64)
    _np.cumsum(counts, out=off_np[1:])
    nbr_np = uniq - rows * n
    offsets = array("q")
    offsets.frombytes(off_np.tobytes())
    nbr = array("q")
    nbr.frombytes(nbr_np.astype(_np.int64, copy=False).tobytes())
    return offsets, nbr


def _np_sort_unique(codes) -> Tuple["_np.ndarray", int]:
    """Sort + adjacent-dedup (much faster than ``np.unique``'s hash path)."""
    total = len(codes)
    codes.sort()
    mask = _np.empty(total, dtype=bool)
    mask[0] = True
    _np.not_equal(codes[1:], codes[:-1], out=mask[1:])
    uniq = codes[mask]
    return uniq, total - len(uniq)


def _csr_from_codes(codes: List[int], n: int) -> Tuple[array, array, int]:
    if _np is not None and codes:
        arr = _np.array(codes, dtype=_np.int64)
        uniq, dropped = _np_sort_unique(arr)
        offsets, nbr = _csr_from_sorted_unique_np(uniq, n)
        return offsets, nbr, dropped // 2
    return _csr_from_codes_pure(codes, n)


def _encode_pairs_pure(edges, n: int) -> List[int]:
    """Validate and encode index pairs as directed codes (stdlib path)."""
    codes: List[int] = []
    append = codes.append
    for e in edges:
        u, v = e
        if not (isinstance(u, int) and isinstance(v, int)):
            raise InvalidParameterError(
                f"edge ({u!r}, {v!r}) endpoints must be ints"
            )
        if u == v:
            raise InvalidParameterError(f"self-loop at vertex {u} not allowed")
        if not (0 <= u < n and 0 <= v < n):
            raise InvalidParameterError(
                f"edge ({u}, {v}) references a vertex not in the vertex set"
            )
        append(u * n + v)
        append(v * n + u)
    return codes


def _looks_like_int_pairs(edges) -> bool:
    """Sniff the head of the edge list: 2-sequences of real ints?

    A cheap early filter only — obviously non-conforming input skips the
    vectorised attempt entirely.  Full integrity is enforced after
    ingestion by an exact checksum comparison (see
    :func:`_csr_from_index_pairs`), so malformed edges *past* the sampled
    head are still routed to the strict pure path.
    """
    try:
        for e in edges[:8]:
            u, v = e
            if not (isinstance(u, int) and isinstance(v, int)):
                return False
    except (TypeError, ValueError):
        return False
    return True


def _csr_from_index_pairs(edges, n: int) -> Tuple[array, array, int]:
    """CSR arrays from an iterable of ``(u, v)`` index pairs in ``0..n-1``.

    The numpy path streams the whole edge list into a flat int64 array in C
    and validates it vectorised; any structural surprise (ragged rows,
    non-integer endpoints in the sampled head) falls back to the pure path,
    which raises the precise error.
    """
    if not isinstance(edges, (list, tuple)):
        edges = list(edges)
    if not edges:
        return array("q", bytes(8 * (n + 1))), array("q"), 0
    if _np is not None and _looks_like_int_pairs(edges):
        m = len(edges)
        try:
            flat = _np.fromiter(
                chain.from_iterable(edges), _np.int64, count=2 * m
            )
            # np.fromiter silently truncates non-integral floats and stops
            # at `count` on ragged rows; comparing the exact Python-side
            # sum of every element against the ingested array catches both
            # and falls back to the strict per-edge path.
            if sum(chain.from_iterable(edges)) != int(flat.sum()):
                flat = None
        except (TypeError, ValueError, OverflowError):
            flat = None
        if flat is not None:
            u = flat[0::2]
            v = flat[1::2]
            if (
                int(flat.min()) < 0
                or int(flat.max()) >= n
                or bool((u == v).any())
            ):
                _encode_pairs_pure(edges, n)  # raises the precise error
                raise InvalidParameterError("invalid edge list")  # unreachable
            codes = _np.concatenate((u * n + v, v * n + u))
            uniq, dropped = _np_sort_unique(codes)
            offsets, nbr = _csr_from_sorted_unique_np(uniq, n)
            return offsets, nbr, dropped // 2
    return _csr_from_codes_pure(_encode_pairs_pure(edges, n), n)


class Graph:
    """An immutable, simple, undirected graph with integer vertex ids."""

    __slots__ = (
        "_n",
        "_contig",
        "_verts",
        "_offsets",
        "_nbr",
        "_index",
        "_vset",
        "_mv",
        "_edges_cache",
        "_nbr_tuples",
        "_maxdeg",
        "_shm",
        "_mmap",
        "duplicate_edges_dropped",
    )

    def __init__(
        self,
        vertices: Iterable[Vertex],
        edges: Iterable[Tuple[Vertex, Vertex]],
    ):
        vset = set()
        for v in vertices:
            if not isinstance(v, int):
                raise InvalidParameterError(f"vertex ids must be ints, got {v!r}")
            vset.add(v)
        n = len(vset)
        verts = tuple(sorted(vset))
        contig = n == 0 or (verts[0] == 0 and verts[-1] == n - 1)
        if contig:
            offsets, nbr, dropped = _csr_from_index_pairs(edges, n)
            index: Optional[Dict[Vertex, int]] = None
        else:
            index = {v: i for i, v in enumerate(verts)}
            codes: List[int] = []
            append = codes.append
            get = index.get
            for u, v in edges:
                iu = get(u)
                iv = get(v)
                if iu is None or iv is None:
                    raise InvalidParameterError(
                        f"edge ({u}, {v}) references a vertex not in the "
                        "vertex set"
                    )
                if iu == iv:
                    raise InvalidParameterError(
                        f"self-loop at vertex {u} not allowed"
                    )
                append(iu * n + iv)
                append(iv * n + iu)
            offsets, nbr, dropped = _csr_from_codes(codes, n)
        self._init_csr(n, contig, verts if not contig else None, offsets, nbr, dropped)

    # ------------------------------------------------------------------
    def _init_csr(
        self,
        n: int,
        contig: bool,
        verts: Optional[Tuple[Vertex, ...]],
        offsets: array,
        nbr: array,
        dropped: int,
    ) -> None:
        self._n = n
        self._contig = contig
        self._verts = verts  # None for contiguous graphs until first use
        self._offsets = offsets
        self._nbr = nbr
        self._index = None
        self._vset = None
        self._mv = None
        self._edges_cache = None
        self._nbr_tuples = None
        self._maxdeg = None
        self._shm = None
        self._mmap = None
        self.duplicate_edges_dropped = dropped

    @classmethod
    def from_edge_count(
        cls, n: int, edges: Iterable[Tuple[Vertex, Vertex]]
    ) -> "Graph":
        """Bulk constructor: the graph on vertices ``0..n-1`` with ``edges``.

        This is the fast path the generators use: the whole edge list is
        turned into CSR arrays in one vectorised pass (two passes in the
        pure-Python fallback) with no per-edge set mutation.  Duplicate
        edges — in either orientation — are dropped and counted in
        :attr:`duplicate_edges_dropped`; self-loops and out-of-range
        endpoints raise :class:`~repro.errors.InvalidParameterError`.
        """
        if n < 0:
            raise InvalidParameterError(f"from_edge_count: n must be >= 0, got {n}")
        offsets, nbr, dropped = _csr_from_index_pairs(edges, n)
        g = cls.__new__(cls)
        g._init_csr(n, True, None, offsets, nbr, dropped)
        return g

    @classmethod
    def from_arrays(cls, n: int, u, v) -> "Graph":
        """Bulk constructor from parallel numpy endpoint arrays.

        ``u[k]–v[k]`` is the k-th undirected edge over vertices ``0..n-1``.
        The whole pipeline — validation, directed encoding, sort, dedup,
        CSR assembly — is vectorised, so million-edge graphs build without
        ever materialising Python edge objects.  Semantics match
        :meth:`from_edge_count`: duplicates (either orientation) are
        dropped and counted, self-loops and out-of-range endpoints raise.
        Requires numpy (the pure-Python installs use ``from_edge_count``).
        """
        if _np is None:
            raise InvalidParameterError(
                "Graph.from_arrays requires numpy; use from_edge_count"
            )
        if n < 0:
            raise InvalidParameterError(f"from_arrays: n must be >= 0, got {n}")
        u = _np.ascontiguousarray(u, dtype=_np.int64).ravel()
        v = _np.ascontiguousarray(v, dtype=_np.int64).ravel()
        if u.shape != v.shape:
            raise InvalidParameterError(
                f"from_arrays: endpoint arrays disagree ({len(u)} vs {len(v)})"
            )
        dropped = 0
        if len(u):
            lo = min(int(u.min()), int(v.min()))
            hi = max(int(u.max()), int(v.max()))
            if lo < 0 or hi >= n:
                raise InvalidParameterError(
                    f"from_arrays: endpoint {lo if lo < 0 else hi} outside "
                    f"[0, {n})"
                )
            loops = u == v
            if loops.any():
                w = int(u[_np.flatnonzero(loops)[0]])
                raise InvalidParameterError(
                    f"self-loop at vertex {w} not allowed"
                )
            codes = _np.concatenate((u * n + v, v * n + u))
            uniq, dups = _np_sort_unique(codes)
            dropped = dups // 2
            offsets, nbr = _csr_from_sorted_unique_np(uniq, n)
        else:
            offsets = array("q", bytes(8 * (n + 1)))
            nbr = array("q")
        g = cls.__new__(cls)
        g._init_csr(n, True, None, offsets, nbr, dropped)
        return g

    # ------------------------------------------------------------------
    # basic accessors (by original vertex id — the stable public API)
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Tuple[Vertex, ...]:
        """All vertex ids, sorted ascending."""
        verts = self._verts
        if verts is None:
            verts = self._verts = tuple(range(self._n))
        return verts

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges in canonical ``(min, max)`` form, sorted."""
        cache = self._edges_cache
        if cache is None:
            off = self._offsets
            nbr = self._nbr
            out: List[Edge] = []
            extend = out.extend
            if self._contig:
                for i in range(self._n):
                    lo = bisect_left(nbr, i + 1, off[i], off[i + 1])
                    hi = off[i + 1]
                    if lo < hi:
                        extend((i, j) for j in nbr[lo:hi])
            else:
                verts = self.vertices
                for i in range(self._n):
                    lo = bisect_left(nbr, i + 1, off[i], off[i + 1])
                    hi = off[i + 1]
                    if lo < hi:
                        vi = verts[i]
                        extend((vi, verts[j]) for j in nbr[lo:hi])
            cache = self._edges_cache = tuple(out)
        return cache

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._nbr) // 2

    def _slot(self, v: Vertex) -> int:
        """Index of vertex id ``v`` (raises ``KeyError`` for unknown ids)."""
        if self._contig:
            if 0 <= v < self._n:
                return v
            raise KeyError(v)
        index = self._index
        if index is None:
            index = self._index = {u: i for i, u in enumerate(self._verts)}
        return index[v]

    def neighbors(self, v: Vertex) -> Tuple[Vertex, ...]:
        """The sorted neighbours of ``v`` (a tuple of vertex ids)."""
        i = self._slot(v)
        cache = self._nbr_tuples
        if cache is None:
            cache = self._nbr_tuples = [None] * self._n
        t = cache[i]
        if t is None:
            row = self._nbr[self._offsets[i] : self._offsets[i + 1]]
            if self._contig:
                t = tuple(row)
            else:
                t = tuple(map(self._verts.__getitem__, row))
            cache[i] = t
        return t

    def degree(self, v: Vertex) -> int:
        """The degree of ``v`` (O(1) from the CSR offsets)."""
        i = self._slot(v)
        return self._offsets[i + 1] - self._offsets[i]

    @property
    def max_degree(self) -> int:
        """Δ, the maximum degree (0 for the empty graph)."""
        if self._maxdeg is None:
            off = self._offsets
            self._maxdeg = max(
                (off[i + 1] - off[i] for i in range(self._n)), default=0
            )
        return self._maxdeg

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True when ``(u, v)`` is an edge."""
        try:
            iu = self._slot(u)
            iv = self._slot(v)
        except KeyError:
            return False
        lo, hi = self._offsets[iu], self._offsets[iu + 1]
        k = bisect_left(self._nbr, iv, lo, hi)
        return k < hi and self._nbr[k] == iv

    def has_vertex(self, v: Vertex) -> bool:
        """True when ``v`` is a vertex of the graph."""
        if self._contig:
            return isinstance(v, int) and 0 <= v < self._n
        vset = self._vset
        if vset is None:
            vset = self._vset = frozenset(self._verts)
        return v in vset

    def __contains__(self, v: Vertex) -> bool:
        return self.has_vertex(v)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.vertices)

    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self._n != other._n or len(self._nbr) != len(other._nbr):
            return False
        return self.vertices == other.vertices and (
            self._offsets == other._offsets and self._nbr == other._nbr
        )

    def __hash__(self) -> int:
        return hash((self.vertices, self._nbr.tobytes()))

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"

    # ------------------------------------------------------------------
    # index API — the allocation-free fast path for hot loops
    # ------------------------------------------------------------------
    @property
    def ids_contiguous(self) -> bool:
        """True when vertex ids are exactly ``0..n-1`` (index == id)."""
        return self._contig

    def index_of(self, v: Vertex) -> int:
        """The index of vertex id ``v`` in the sorted vertex order."""
        return self._slot(v)

    def vertex_at(self, i: int) -> Vertex:
        """The vertex id at index ``i`` (inverse of :meth:`index_of`)."""
        if self._contig:
            if 0 <= i < self._n:
                return i
            raise IndexError(i)
        return self._verts[i]

    def degree_index(self, i: int) -> int:
        """Degree of the vertex at index ``i`` (O(1))."""
        return self._offsets[i + 1] - self._offsets[i]

    def _view(self) -> memoryview:
        mv = self._mv
        if mv is None:
            mv = self._mv = memoryview(self._nbr).toreadonly()
        return mv

    def neighbors_index(self, i: int) -> memoryview:
        """Neighbour *indices* of the vertex at index ``i``.

        Returns a read-only zero-copy slice of the CSR neighbour array
        (sorted ascending).  For contiguous-id graphs indices are ids.
        """
        return self._view()[self._offsets[i] : self._offsets[i + 1]]

    def csr(self) -> Tuple[memoryview, memoryview]:
        """The raw ``(offsets, neighbors)`` CSR arrays as read-only views.

        ``neighbors[offsets[i]:offsets[i+1]]`` are the neighbour indices of
        the vertex at index ``i``; translate with :meth:`vertex_at` when ids
        are non-contiguous.
        """
        return memoryview(self._offsets).toreadonly(), self._view()

    # ------------------------------------------------------------------
    # pickling (memoryviews are not picklable; drop derived caches)
    # ------------------------------------------------------------------
    def __getstate__(self):
        # a shared-memory-attached graph stores its CSR rows as memoryviews
        # into the segment; pickling materialises them so the unpickled copy
        # owns its arrays and outlives the segment
        offsets = self._offsets
        nbr = self._nbr
        if not isinstance(offsets, array):
            offsets = array("q", offsets)
        if not isinstance(nbr, array):
            nbr = array("q", nbr)
        return (
            self._n,
            self._contig,
            self._verts,
            offsets,
            nbr,
            self.duplicate_edges_dropped,
        )

    def __setstate__(self, state):
        n, contig, verts, offsets, nbr, dropped = state
        self._init_csr(n, contig, verts, offsets, nbr, dropped)

    # ------------------------------------------------------------------
    # shared-memory interchange (zero-copy sharing across processes)
    # ------------------------------------------------------------------
    # Segment layout, all int64 words:
    #   [magic, n, contig, len(nbr), duplicate_edges_dropped, len(verts)]
    #   offsets[n + 1]  nbr[len(nbr)]  verts[len(verts)]
    # ``verts`` is present only for non-contiguous-id graphs.

    _SHM_MAGIC = 0x43535247  # "CSRG"
    _SHM_HEADER_WORDS = 6

    def to_shm(self, name: Optional[str] = None):
        """Copy the CSR arrays into a new shared-memory segment.

        Returns the created ``multiprocessing.shared_memory.SharedMemory``;
        the caller owns its lifetime (``close()`` + ``unlink()`` when every
        attached reader is done — typically via
        :class:`repro.experiments.graphstore.GraphStore`).  Other processes
        attach with :meth:`from_shm` under the segment's ``.name``.
        """
        from multiprocessing import shared_memory

        verts = () if self._contig else self._verts
        header = array(
            "q",
            [
                self._SHM_MAGIC,
                self._n,
                1 if self._contig else 0,
                len(self._nbr),
                self.duplicate_edges_dropped,
                len(verts),
            ],
        )
        payload = (
            header.tobytes()
            + self._offsets.tobytes()
            + self._nbr.tobytes()
            + array("q", verts).tobytes()
        )
        shm = shared_memory.SharedMemory(
            create=True, size=len(payload), name=name
        )
        try:
            shm.buf[: len(payload)] = payload
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return shm

    @classmethod
    def from_shm(cls, name: str) -> "Graph":
        """Attach to a segment written by :meth:`to_shm` — zero-copy.

        The returned graph's CSR rows are read-only views straight into the
        shared segment (no copy is made); it keeps the attachment open for
        its own lifetime, so the creator's ``unlink()`` only reclaims the
        memory once every attached graph is garbage. Pickling an attached
        graph (or any operation that derives a new graph) materialises
        process-local arrays, so nothing escapes the segment's lifetime.
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        try:
            words = memoryview(shm.buf).cast("q").toreadonly()
        except TypeError:  # segment size is not a multiple of 8 bytes
            shm.close()
            raise InvalidParameterError(
                f"shared-memory segment {name!r} is not a Graph segment"
            ) from None
        if (
            len(words) < cls._SHM_HEADER_WORDS
            or words[0] != cls._SHM_MAGIC
        ):
            words.release()
            shm.close()
            raise InvalidParameterError(
                f"shared-memory segment {name!r} is not a Graph segment"
            )
        _magic, n, contig, n_nbr, dropped, n_verts = words[
            : cls._SHM_HEADER_WORDS
        ]
        base = cls._SHM_HEADER_WORDS
        offsets = words[base : base + n + 1]
        nbr = words[base + n + 1 : base + n + 1 + n_nbr]
        verts = None
        if not contig:
            vbase = base + n + 1 + n_nbr
            verts = tuple(words[vbase : vbase + n_verts])
        g = cls.__new__(cls)
        g._init_csr(int(n), bool(contig), verts, offsets, nbr, int(dropped))
        g._shm = shm  # keeps the attachment alive as long as the graph
        return g

    @property
    def shm_backed(self) -> bool:
        """True when this graph's CSR arrays live in a shared segment."""
        return self._shm is not None

    # ------------------------------------------------------------------
    # file-backed CSR (memory-mapped graphs larger than comfortable RAM)
    # ------------------------------------------------------------------
    # Same payload layout as the shared-memory segment, written to a file.

    def to_csr_file(self, path) -> None:
        """Write the CSR arrays to ``path`` in the segment layout.

        The file uses the exact byte layout of :meth:`to_shm`'s payload, so
        a graph round-trips bit-identically through either channel.  Load
        it back with :meth:`from_csr_file` — optionally memory-mapped, so
        multi-million-node graphs open without copying the adjacency into
        process memory.
        """
        verts = () if self._contig else self._verts
        header = array(
            "q",
            [
                self._SHM_MAGIC,
                self._n,
                1 if self._contig else 0,
                len(self._nbr),
                self.duplicate_edges_dropped,
                len(verts),
            ],
        )
        with open(path, "wb") as fh:
            fh.write(header.tobytes())
            fh.write(self._offsets.tobytes())
            fh.write(self._nbr.tobytes())
            fh.write(array("q", verts).tobytes())

    @classmethod
    def from_csr_file(cls, path, mmap: bool = True) -> "Graph":
        """Load a graph written by :meth:`to_csr_file`.

        With ``mmap=True`` (the default) the CSR rows are read-only views
        into a memory-mapped region of the file: pages are faulted in on
        demand and shared between processes mapping the same file, so a
        10^7-node graph "loads" in milliseconds and costs no private RSS
        beyond the pages actually touched.  With ``mmap=False`` the arrays
        are copied into process-local memory and the file is closed.
        Pickling a mapped graph materialises local copies (see
        :meth:`__getstate__`), so nothing escapes the mapping's lifetime.
        """
        import mmap as _mmap_mod

        fh = open(path, "rb")
        try:
            if mmap:
                mm = _mmap_mod.mmap(
                    fh.fileno(), 0, access=_mmap_mod.ACCESS_READ
                )
                buf = memoryview(mm)
            else:
                mm = None
                buf = memoryview(fh.read())
        except (ValueError, OSError):
            fh.close()
            raise InvalidParameterError(
                f"{path!r} is not a Graph CSR file"
            ) from None
        try:
            words = buf.cast("q").toreadonly()
        except TypeError:  # size is not a multiple of 8 bytes
            words = None
        if (
            words is None
            or len(words) < cls._SHM_HEADER_WORDS
            or words[0] != cls._SHM_MAGIC
        ):
            if words is not None:
                words.release()
            buf.release()
            if mm is not None:
                mm.close()
            fh.close()
            raise InvalidParameterError(f"{path!r} is not a Graph CSR file")
        _magic, n, contig, n_nbr, dropped, n_verts = words[
            : cls._SHM_HEADER_WORDS
        ]
        base = cls._SHM_HEADER_WORDS
        offsets = words[base : base + n + 1]
        nbr = words[base + n + 1 : base + n + 1 + n_nbr]
        verts = None
        if not contig:
            vbase = base + n + 1 + n_nbr
            verts = tuple(words[vbase : vbase + n_verts])
        if mm is None:  # copy mode: own the arrays, release the buffer
            offsets = array("q", offsets)
            nbr = array("q", nbr)
        g = cls.__new__(cls)
        g._init_csr(int(n), bool(contig), verts, offsets, nbr, int(dropped))
        if mm is not None:
            g._mmap = (mm, fh)  # rows are views into mm: keep both alive
        else:
            fh.close()
        return g

    @property
    def mmap_backed(self) -> bool:
        """True when this graph's CSR arrays are memory-mapped from a file."""
        return self._mmap is not None

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """The subgraph induced by ``vertices`` (original ids are kept).

        With numpy available this is one vectorized pass over the batched
        CSR neighbour array (mask, filter, remap); the fallback filters the
        edge list in Python.  Both produce identical graphs.
        """
        keep = set(vertices)
        missing = [v for v in keep if not self.has_vertex(v)]
        if missing:
            raise InvalidParameterError(
                f"induced_subgraph: vertices {sorted(missing)[:5]} not in graph"
            )
        if _np is not None and keep:
            n = self._n
            slot = self._slot
            keep_idx = _np.fromiter(
                (slot(v) for v in keep), _np.int64, count=len(keep)
            )
            keep_idx.sort()
            k = len(keep_idx)
            mask = _np.zeros(n, dtype=bool)
            mask[keep_idx] = True
            off = _np.frombuffer(self._offsets, dtype=_np.int64)
            nbr = _np.frombuffer(self._nbr, dtype=_np.int64)
            src = _np.repeat(_np.arange(n, dtype=_np.int64), _np.diff(off))
            sel = mask[src] & mask[nbr]
            remap = _np.full(n, -1, dtype=_np.int64)
            remap[keep_idx] = _np.arange(k, dtype=_np.int64)
            rows = remap[src[sel]]
            cols = remap[nbr[sel]]
            counts = _np.bincount(rows, minlength=k)
            off_np = _np.zeros(k + 1, dtype=_np.int64)
            _np.cumsum(counts, out=off_np[1:])
            offsets = array("q")
            offsets.frombytes(off_np.tobytes())
            sub_nbr = array("q")
            sub_nbr.frombytes(cols.tobytes())
            if self._contig:
                sub_ids = tuple(int(i) for i in keep_idx)
            else:
                verts = self.vertices
                sub_ids = tuple(verts[i] for i in keep_idx)
            contig = sub_ids[0] == 0 and sub_ids[-1] == k - 1
            g = Graph.__new__(Graph)
            g._init_csr(k, contig, None if contig else sub_ids, offsets, sub_nbr, 0)
            return g
        edges = [(u, v) for (u, v) in self.edges if u in keep and v in keep]
        return Graph(keep, edges)

    def subgraph_of_edges(self, edges: Iterable[Tuple[Vertex, Vertex]]) -> "Graph":
        """The subgraph with the same vertex set but only the given edges."""
        es = list(edges)
        for u, v in es:
            if not self.has_edge(u, v):
                raise InvalidParameterError(
                    f"subgraph_of_edges: ({u}, {v}) is not an edge of the graph"
                )
        return Graph(self.vertices, es)

    def relabeled(self) -> Tuple["Graph", Dict[Vertex, Vertex]]:
        """Return a copy with vertices relabeled to ``0..n-1``.

        Returns the new graph and the mapping ``old_id -> new_id``.  The CSR
        arrays are shared structurally (indices *are* the new ids), so this
        is O(n) and never re-sorts adjacency.
        """
        verts = self.vertices
        mapping = {v: i for i, v in enumerate(verts)}
        g = Graph.__new__(Graph)
        g._init_csr(
            self._n,
            True,
            None,
            self._offsets,
            self._nbr,
            self.duplicate_edges_dropped,
        )
        # the copy shares this graph's rows structurally; if they live in a
        # shared segment it must co-own the attachment to keep them mapped
        g._shm = self._shm
        return g, mapping

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(cls, nxg) -> "Graph":
        """Build a :class:`Graph` from a networkx graph with int node ids."""
        return cls(nxg.nodes(), nxg.edges())

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph`."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.vertices)
        g.add_edges_from(self.edges)
        return g

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[Vertex, Vertex]]) -> "Graph":
        """Build a graph whose vertex set is exactly the edge endpoints."""
        es = list(edges)
        vertices = {u for e in es for u in e}
        return cls(vertices, es)

    @classmethod
    def empty(cls, n: int) -> "Graph":
        """The edgeless graph on vertices ``0..n-1``."""
        return cls.from_edge_count(n, [])
