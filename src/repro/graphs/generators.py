"""Graph generators with *certified* arboricity bounds.

The paper's algorithms take the arboricity bound ``a`` as a globally known
parameter.  To benchmark them honestly we need input graphs whose arboricity
we actually know.  Every generator here returns a :class:`GeneratedGraph`
carrying a certified upper bound on the arboricity, justified by
construction:

* a union of ``a`` spanning forests has arboricity at most ``a``
  (Nash–Williams, by definition);
* a graph of degeneracy ``k`` has arboricity at most ``k`` (orient each edge
  towards the later vertex in the degeneracy order: acyclic, out-degree ≤ k,
  then Lemma 2.5 of the paper);
* a planar graph has ``m ≤ 3n − 6`` on every subgraph, hence arboricity ≤ 3.

Generators are deterministic given a ``seed``; all randomness flows through
an explicit :class:`random.Random` instance.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..errors import InvalidParameterError
from ..types import Edge, Vertex, canonical_edge
from .graph import Graph


@dataclass
class GeneratedGraph:
    """A graph plus the metadata that certifies its arboricity bound."""

    graph: Graph
    arboricity_bound: int
    name: str
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def m(self) -> int:
        return self.graph.m

    @property
    def max_degree(self) -> int:
        return self.graph.max_degree

    def __repr__(self) -> str:
        return (
            f"GeneratedGraph({self.name}, n={self.n}, m={self.m}, "
            f"a<={self.arboricity_bound})"
        )


# ----------------------------------------------------------------------
# deterministic structured graphs
# ----------------------------------------------------------------------
def path(n: int) -> GeneratedGraph:
    """The path on ``n`` vertices.  Arboricity 1."""
    if n < 1:
        raise InvalidParameterError("path: n must be >= 1")
    g = Graph.from_edge_count(n, [(i, i + 1) for i in range(n - 1)])
    return GeneratedGraph(g, 1, "path", {"n": n})


def ring(n: int) -> GeneratedGraph:
    """The cycle on ``n`` vertices.  Arboricity 2 (a cycle is not a forest)."""
    if n < 3:
        raise InvalidParameterError("ring: n must be >= 3")
    g = Graph.from_edge_count(n, [(i, (i + 1) % n) for i in range(n)])
    return GeneratedGraph(g, 2, "ring", {"n": n})


def star(n: int) -> GeneratedGraph:
    """The star with one hub and ``n - 1`` leaves.  Arboricity 1, Δ = n−1."""
    if n < 2:
        raise InvalidParameterError("star: n must be >= 2")
    g = Graph.from_edge_count(n, [(0, i) for i in range(1, n)])
    return GeneratedGraph(g, 1, "star", {"n": n})


def complete_graph(n: int) -> GeneratedGraph:
    """K_n.  Arboricity ⌈n/2⌉ (Nash–Williams)."""
    if n < 1:
        raise InvalidParameterError("complete_graph: n must be >= 1")
    g = Graph.from_edge_count(n, [(i, j) for i in range(n) for j in range(i + 1, n)])
    return GeneratedGraph(g, (n + 1) // 2, "complete", {"n": n})


def grid(rows: int, cols: int) -> GeneratedGraph:
    """The ``rows × cols`` grid.  Arboricity 2 (planar and bipartite)."""
    if rows < 1 or cols < 1:
        raise InvalidParameterError("grid: dimensions must be >= 1")
    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    g = Graph.from_edge_count(rows * cols, edges)
    bound = 2 if (rows > 1 and cols > 1) else 1
    return GeneratedGraph(g, bound, "grid", {"rows": rows, "cols": cols})


def hypercube(dim: int) -> GeneratedGraph:
    """The ``dim``-dimensional hypercube.  Arboricity ≤ ⌈(dim+1)/2⌉.

    Every subgraph of the hypercube on n' vertices has at most
    ``(dim/2)·n'`` edges, so Nash–Williams gives arboricity at most
    ``⌈dim/2⌉ + 1 ≤ ⌈(dim+1)/2⌉ + 1``; we use the safe bound
    ``dim`` when small, else the density bound.
    """
    if dim < 1:
        raise InvalidParameterError("hypercube: dim must be >= 1")
    n = 1 << dim
    edges = []
    for v in range(n):
        for b in range(dim):
            u = v ^ (1 << b)
            if u > v:
                edges.append((v, u))
    g = Graph.from_edge_count(n, edges)
    bound = min(dim, dim // 2 + 1)
    return GeneratedGraph(g, bound, "hypercube", {"dim": dim})


def binary_tree(depth: int) -> GeneratedGraph:
    """The complete binary tree of the given depth.  Arboricity 1."""
    if depth < 0:
        raise InvalidParameterError("binary_tree: depth must be >= 0")
    n = (1 << (depth + 1)) - 1
    edges = [(i, (i - 1) // 2) for i in range(1, n)]
    g = Graph.from_edge_count(n, edges)
    return GeneratedGraph(g, 1, "binary_tree", {"depth": depth})


# ----------------------------------------------------------------------
# random graphs with certified arboricity
# ----------------------------------------------------------------------
def random_tree(n: int, seed: int = 0) -> GeneratedGraph:
    """A uniformly random labeled tree (via a random Prüfer-like attachment).

    Each vertex ``i >= 1`` attaches to a uniform random earlier vertex, which
    yields a random recursive tree — not uniform over all labeled trees, but
    with the degree spread that matters for coloring benchmarks.
    Arboricity 1.
    """
    if n < 1:
        raise InvalidParameterError("random_tree: n must be >= 1")
    rng = random.Random(seed)
    edges = [(i, rng.randrange(i)) for i in range(1, n)]
    g = Graph.from_edge_count(n, edges)
    return GeneratedGraph(g, 1, "random_tree", {"n": n, "seed": seed})


def forest_union(n: int, a: int, seed: int = 0, density: float = 1.0) -> GeneratedGraph:
    """A union of ``a`` random spanning forests: arboricity ≤ ``a`` certified.

    This is the canonical arboricity-``a`` workload of the benchmarks: dense
    enough that the Nash–Williams lower bound is close to ``a`` (for
    ``density = 1`` the graph has ≈ ``a·(n−1)`` edges minus collisions), with
    no degree concentration.

    Parameters
    ----------
    density:
        Fraction of each forest's possible ``n − 1`` edges to keep, allowing
        sparser instances with the same certified bound.  Values in
        ``(1, 2]`` oversample: each forest re-emits some of its edges (also
        reversed), which exercises the duplicate-edge handling downstream —
        the resulting simple graph is identical to ``density = 1`` and the
        collisions are counted in ``graph.duplicate_edges_dropped``.
    """
    if n < 2:
        raise InvalidParameterError("forest_union: n must be >= 2")
    if a < 1:
        raise InvalidParameterError("forest_union: a must be >= 1")
    if not (0.0 < density <= 2.0):
        raise InvalidParameterError("forest_union: density must be in (0, 2]")
    rng = random.Random(seed)
    edges: List[Edge] = []
    keep = max(1, int(density * (n - 1)))
    for _f in range(a):
        # random recursive tree over a random permutation of the ids, so the
        # forests are structurally independent
        perm = list(range(n))
        rng.shuffle(perm)
        tree_edges = []
        for i in range(1, n):
            j = rng.randrange(i)
            tree_edges.append(canonical_edge(perm[i], perm[j]))
        rng.shuffle(tree_edges)
        edges.extend(tree_edges[:keep])
        for u, v in tree_edges[: max(0, keep - (n - 1))]:
            edges.append((v, u))  # oversampled: reversed duplicates
    g = Graph.from_edge_count(n, edges)
    return GeneratedGraph(
        g, a, "forest_union", {"n": n, "a": a, "seed": seed, "density": density}
    )


def random_regular(n: int, d: int, seed: int = 0) -> GeneratedGraph:
    """A random ``d``-regular(ish) graph via the configuration model.

    Multi-edges and self-loops from the pairing are discarded, so some
    vertices may have degree slightly below ``d``.  Arboricity is at most
    ``⌈(d + 1) / 2⌉`` by Nash–Williams (any subgraph has m' ≤ d·n'/2).
    """
    if n < 2 or d < 1 or d >= n:
        raise InvalidParameterError("random_regular: need n >= 2, 1 <= d < n")
    rng = random.Random(seed)
    stubs = [v for v in range(n) for _ in range(d)]
    rng.shuffle(stubs)
    edges: List[Edge] = []
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            edges.append((u, v))
    g = Graph.from_edge_count(n, edges)
    return GeneratedGraph(
        g, (d + 2) // 2, "random_regular", {"n": n, "d": d, "seed": seed}
    )


def erdos_renyi(n: int, p: float, seed: int = 0) -> GeneratedGraph:
    """G(n, p).  The certified arboricity bound is the measured degeneracy.

    For G(n, p) no a-priori bound is tight, so we compute the degeneracy of
    the sampled graph (arboricity ≤ degeneracy, Lemma 2.5).
    """
    if n < 1 or not (0.0 <= p <= 1.0):
        raise InvalidParameterError("erdos_renyi: need n >= 1 and 0 <= p <= 1")
    rng = random.Random(seed)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < p
    ]
    g = Graph.from_edge_count(n, edges)
    from .arboricity import degeneracy

    k, _order = degeneracy(g)
    return GeneratedGraph(
        g, max(1, k), "erdos_renyi", {"n": n, "p": p, "seed": seed}
    )


def random_geometric(n: int, radius: float, seed: int = 0) -> GeneratedGraph:
    """A random geometric graph: ``n`` uniform points in the unit square,
    an edge between every pair at Euclidean distance at most ``radius``.

    The natural model for wireless/sensor topologies (the TDMA workload):
    locally dense, globally sparse.  No a-priori arboricity bound is tight
    for arbitrary ``radius``, so — as for :func:`erdos_renyi` — the
    certified bound is the measured degeneracy of the sampled graph
    (arboricity ≤ degeneracy, Lemma 2.5).

    Neighbour search uses a bucket grid of cell width ``radius`` so
    generation is near-linear for the sparse radii sweeps use, instead of
    the quadratic all-pairs scan.
    """
    if n < 1:
        raise InvalidParameterError("random_geometric: n must be >= 1")
    if not (0.0 < radius <= math.sqrt(2.0)):
        raise InvalidParameterError(
            "random_geometric: radius must be in (0, sqrt(2)]"
        )
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    cell = radius
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for v, (x, y) in enumerate(points):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(v)
    r2 = radius * radius
    edges: List[Edge] = []
    for (cx, cy), members in buckets.items():
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                other = buckets.get((cx + dx, cy + dy))
                if other is None:
                    continue
                for v in members:
                    vx, vy = points[v]
                    for u in other:
                        if u <= v:
                            continue
                        ux, uy = points[u]
                        if (vx - ux) ** 2 + (vy - uy) ** 2 <= r2:
                            edges.append((v, u))
    g = Graph.from_edge_count(n, edges)
    from .arboricity import degeneracy

    k, _order = degeneracy(g)
    return GeneratedGraph(
        g,
        max(1, k),
        "random_geometric",
        {"n": n, "radius": radius, "seed": seed},
    )


def preferential_attachment(n: int, m: int, seed: int = 0) -> GeneratedGraph:
    """A Barabási–Albert graph: each new vertex attaches to ``m`` targets.

    Every vertex beyond the seed clique adds at most ``m`` edges to earlier
    vertices, so the insertion order witnesses degeneracy ≤ m + (m−1) inside
    the seed clique; the certified bound is ``m`` for the attachment phase
    plus the seed clique's arboricity, conservatively ``m``.
    Δ grows like √n, so these graphs exercise the a ≪ Δ regime of Cor 4.7.
    """
    if n < m + 1 or m < 1:
        raise InvalidParameterError("preferential_attachment: need n > m >= 1")
    rng = random.Random(seed)
    edges: List[Edge] = []
    # seed: star on m+1 vertices (arboricity 1, keeps the certificate simple)
    targets: List[Vertex] = []
    for i in range(1, m + 1):
        edges.append((0, i))
        targets.extend((0, i))
    for v in range(m + 1, n):
        chosen: Set[Vertex] = set()
        while len(chosen) < m:
            chosen.add(targets[rng.randrange(len(targets))])
        for u in chosen:
            edges.append((v, u))
            targets.extend((v, u))
    g = Graph.from_edge_count(n, edges)
    return GeneratedGraph(
        g, m, "preferential_attachment", {"n": n, "m": m, "seed": seed}
    )


def planar_triangulation(n: int, seed: int = 0) -> GeneratedGraph:
    """A random maximal-planar-ish graph via incremental triangulation.

    Start from a triangle; repeatedly pick a random existing triangular face
    and insert a new vertex connected to its three corners.  The result is a
    planar triangulation (Apollonian network), so arboricity ≤ 3; moreover
    it is 3-degenerate by construction.
    """
    if n < 3:
        raise InvalidParameterError("planar_triangulation: n must be >= 3")
    rng = random.Random(seed)
    edges: List[Edge] = [(0, 1), (0, 2), (1, 2)]
    faces: List[Tuple[int, int, int]] = [(0, 1, 2)]
    for v in range(3, n):
        i = rng.randrange(len(faces))
        a, b, c = faces[i]
        edges.append((v, a))
        edges.append((v, b))
        edges.append((v, c))
        faces[i] = (a, b, v)
        faces.append((a, c, v))
        faces.append((b, c, v))
    g = Graph.from_edge_count(n, edges)
    return GeneratedGraph(g, 3, "planar_triangulation", {"n": n, "seed": seed})


def low_arboricity_high_degree(
    n: int, a: int, num_hubs: int = 4, seed: int = 0
) -> GeneratedGraph:
    """A graph with arboricity ≤ ``a + num_hubs`` but Δ = Θ(n / num_hubs).

    This is the Corollary 4.7 workload (``a ≤ Δ^{1−ν}``): a forest union of
    arboricity ``a`` plus ``num_hubs`` hub vertices each adjacent to a large
    share of the vertices.  Each hub's edge star is a forest, so the total
    arboricity is at most ``a + num_hubs`` while the maximum degree is
    Θ(n / num_hubs).
    """
    if num_hubs < 1 or n < 2 * num_hubs:
        raise InvalidParameterError(
            "low_arboricity_high_degree: need num_hubs >= 1 and n >= 2*num_hubs"
        )
    base = forest_union(n, a, seed=seed)
    rng = random.Random(seed + 1)
    edges = list(base.graph.edges)
    hubs = rng.sample(range(n), num_hubs)
    others = [v for v in range(n) if v not in set(hubs)]
    share = len(others) // num_hubs
    for i, h in enumerate(hubs):
        for v in others[i * share : (i + 1) * share]:
            edges.append((h, v))
    g = Graph.from_edge_count(n, edges)
    return GeneratedGraph(
        g,
        a + num_hubs,
        "low_arboricity_high_degree",
        {"n": n, "a": a, "num_hubs": num_hubs, "seed": seed},
    )


def disjoint_union(parts: Sequence[GeneratedGraph], name: str = "union") -> GeneratedGraph:
    """Disjoint union of several generated graphs (ids are shifted).

    The arboricity of a disjoint union is the max over the parts.
    """
    if not parts:
        raise InvalidParameterError("disjoint_union: needs at least one part")
    offset = 0
    edges: List[Edge] = []
    for part in parts:
        remap = {v: v_i + offset for v_i, v in enumerate(part.graph.vertices)}
        edges.extend((remap[u], remap[v]) for (u, v) in part.graph.edges)
        offset += part.graph.n
    g = Graph.from_edge_count(offset, edges)
    return GeneratedGraph(
        g,
        max(p.arboricity_bound for p in parts),
        name,
        {"parts": [p.name for p in parts]},
    )


#: The benchmark families E12 sweeps over, keyed by a short name.
def standard_families(n: int, a: int, seed: int = 0) -> Dict[str, GeneratedGraph]:
    """The canonical family sweep used by the comparison benchmarks."""
    fams = {
        "forest_union": forest_union(n, a, seed=seed),
        "planar": planar_triangulation(n, seed=seed),
        "grid": grid(int(math.isqrt(n)), int(math.isqrt(n))),
        "random_regular": random_regular(n, min(2 * a, n - 1), seed=seed),
        "tree": random_tree(n, seed=seed),
    }
    return fams
