"""Maximal independent set algorithms.

The paper (§1.2) derives from its coloring results an MIS algorithm for
graphs of arboricity a running in O(a + a^ε·log n) rounds: compute an
O(a)-coloring (Theorem 4.3 / Corollary 4.4), then sweep the color classes —
in the round of class c, every still-undecided vertex of color c with no
neighbour already in the MIS joins it.  The sweep takes one round per color,
and the coloring has O(a) colors, giving the claimed bound.

:func:`luby_mis` is the classical randomized baseline [22, 1]: O(log n)
rounds with high probability, which the paper's deterministic algorithms
are measured against.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Set

from ..errors import RoundLimitExceeded
from ..simulator.context import NodeContext
from ..simulator.ledger import RoundLedger
from ..simulator.message import payload_size
from ..simulator.network import SynchronousNetwork
from ..simulator.program import NodeProgram
from ..types import ColorAssignment, MISResult, Vertex
from .legal import legal_coloring_theorem43

_JOINED = "joined-mis"


class _ColorClassMISProgram(NodeProgram):
    """Sweep color classes; join the MIS unless a neighbour already did.

    Until its class comes up a node only reacts to a neighbour's "joined"
    announcement, so it sleeps until a message arrives or round ``color``
    is reached — on a sweep with many classes almost the whole network is
    quiescent in any given round.
    """

    def __init__(self, color_of: Callable[[Vertex], int]):
        self._color_of = color_of

    def _sleep_until_my_class(self, ctx: NodeContext) -> None:
        ctx.wake_at(self._color)
        ctx.idle_until_message()

    def on_start(self, ctx: NodeContext) -> None:
        self._color = int(self._color_of(ctx.node))
        if self._color == 0:
            # class 0 is an independent set (the coloring is legal): all of
            # it joins immediately
            ctx.broadcast(_JOINED)
            ctx.halt(True)
            return
        self._sleep_until_my_class(ctx)

    def on_round(self, ctx: NodeContext) -> None:
        if any(payload == _JOINED for payload in ctx.inbox.values()):
            ctx.halt(False)
            return
        if ctx.round_number == self._color:
            ctx.broadcast(_JOINED)
            ctx.halt(True)
            return
        self._sleep_until_my_class(ctx)

    def column_kernel(self, col):
        """Vectorized sweep: only rounds where something happens execute.

        Round r processes (1) losers — undecided nodes adjacent to the
        previous round's joiners, which halt out (inbox beats own class,
        as in the scalar program) — and (2) winners — the surviving nodes
        of color class r, which join and broadcast to their full
        neighbourhood.  Quiet stretches between color classes are skipped,
        mirroring the event engine's fast-forward.
        """
        np = col.np
        color_of = self._color_of

        def run() -> None:
            n = col.n
            deg = col.degrees
            colors = np.fromiter(
                (int(color_of(v)) for v in range(n)), np.int64, count=n
            )
            joined = np.zeros(n, dtype=bool)
            undecided = np.ones(n, dtype=bool)
            jsize = payload_size(_JOINED) if col.count_bytes else 0

            announce = undecided & (colors == 0)
            m0 = int(deg[announce].sum())
            col.note_round(0, n, m0, m0 * jsize, jsize if m0 else 0)
            joined |= announce
            undecided &= ~announce

            rounds = 0
            while undecided.any():
                if announce.any():
                    # messages in flight: the very next round executes
                    r = rounds + 1
                else:
                    # all asleep: fast-forward to the earliest due wakeup
                    r = int(colors[undecided].min())
                if r > col.round_limit:
                    raise RoundLimitExceeded(
                        col.round_limit, int(np.count_nonzero(undecided))
                    )
                acted = 0
                if announce.any():
                    targets = col.neighbor_slices(announce)
                    hit = np.zeros(n, dtype=bool)
                    hit[targets] = True
                    losers = undecided & hit
                    acted += int(np.count_nonzero(losers))
                    undecided &= ~losers
                winners = undecided & (colors == r)
                msgs = int(deg[winners].sum())
                acted += int(np.count_nonzero(winners))
                joined |= winners
                undecided &= ~winners
                announce = winners
                col.note_round(r, acted, msgs, msgs * jsize, jsize if msgs else 0)
                rounds = r
            col.outputs = dict(enumerate(joined.tolist()))
            col.rounds = rounds

        return run


def mis_from_coloring(
    network: SynchronousNetwork,
    coloring: ColorAssignment,
    *,
    participants=None,
    part_of=None,
) -> MISResult:
    """Turn a legal coloring into an MIS, one round per color class.

    Linial's classical reduction direction: with C colors the sweep costs
    C−1 rounds (class 0 joins at round 0 for free).
    """
    normalized = coloring.normalized()
    result = network.run(
        lambda: _ColorClassMISProgram(lambda v: normalized.colors[v]),
        participants=participants,
        part_of=part_of,
        global_params={"num_colors": normalized.num_colors},
    )
    members = {v for v, joined in result.outputs.items() if joined}
    return MISResult(
        members=members,
        rounds=result.rounds,
        algorithm="mis-from-coloring",
        params={"num_colors": normalized.num_colors},
    )


def mis_arboricity(
    network: SynchronousNetwork,
    a: int,
    mu: float = 0.5,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> MISResult:
    """The paper's MIS for arboricity-a graphs: O(a + a^µ·log n) rounds.

    O(a)-coloring via Theorem 4.3, then the color-class sweep (O(a) more
    rounds since the coloring uses O(a) colors).
    """
    coloring = legal_coloring_theorem43(
        network, a, mu, epsilon, participants=participants, part_of=part_of
    )
    sweep = mis_from_coloring(
        network, coloring, participants=participants, part_of=part_of
    )
    ledger = RoundLedger()
    ledger.add("coloring_thm43", coloring.rounds)
    ledger.add("color_class_sweep", sweep.rounds)
    return MISResult(
        members=sweep.members,
        rounds=coloring.rounds + sweep.rounds,
        algorithm="mis-arboricity (§1.2)",
        params={
            "a": a,
            "mu": mu,
            "coloring_rounds": coloring.rounds,
            "sweep_rounds": sweep.rounds,
            "num_colors": coloring.num_colors,
        },
        ledger=ledger,
    )


class _LubyProgram(NodeProgram):
    """Luby's randomized MIS: local minima of fresh random priorities join.

    Each iteration takes three rounds:

    1. every active node broadcasts a fresh random priority;
    2. nodes that are a strict (priority, id)-minimum among their active
       neighbours broadcast "joined" and enter the MIS;
    3. nodes that heard "joined" broadcast "left" and give up; survivors
       drop the leavers from their active set and start the next iteration
       (or join, if no active neighbour remains).
    """

    _PRIO, _JOIN, _LEFT = "prio", "joined", "left"

    def __init__(self, seed: int):
        self._seed = seed
        self._rng: Optional[random.Random] = None
        self._active_neighbors: Set[Vertex] = set()
        self._priority = 0.0
        self._phase = 0  # cycles: 0 sent prio, 1 decided, 2 announced

    def _begin_iteration(self, ctx: NodeContext) -> None:
        if not self._active_neighbors:
            ctx.broadcast((self._JOIN,))
            ctx.halt(True)
            return
        self._priority = self._rng.random()
        ctx.broadcast((self._PRIO, self._priority))
        self._phase = 0

    def on_start(self, ctx: NodeContext) -> None:
        # Per-node generator seeded by (global seed, id): independent
        # streams, deterministic replay.
        self._rng = random.Random(self._seed * 1_000_003 + ctx.node)
        self._active_neighbors = set(ctx.neighbors)
        self._begin_iteration(ctx)

    def on_round(self, ctx: NodeContext) -> None:
        if self._phase == 0:
            live = {
                u: payload[1]
                for u, payload in ctx.inbox.items()
                if payload[0] == self._PRIO and u in self._active_neighbors
            }
            if all((self._priority, ctx.node) < (p, u) for u, p in live.items()):
                ctx.broadcast((self._JOIN,))
                ctx.halt(True)
                return
            self._phase = 1
        elif self._phase == 1:
            if any(payload[0] == self._JOIN for payload in ctx.inbox.values()):
                ctx.broadcast((self._LEFT,))
                ctx.halt(False)
                return
            self._phase = 2
        else:
            for sender, payload in ctx.inbox.items():
                if payload[0] == self._LEFT:
                    self._active_neighbors.discard(sender)
            self._begin_iteration(ctx)


def luby_mis(
    network: SynchronousNetwork,
    seed: int = 0,
    *,
    participants=None,
    part_of=None,
) -> MISResult:
    """Luby's randomized MIS [22]: O(log n) rounds with high probability.

    The randomized baseline the paper's deterministic algorithms compete
    with.  Deterministic given ``seed``.
    """
    result = network.run(
        lambda: _LubyProgram(seed),
        participants=participants,
        part_of=part_of,
        global_params={"seed": seed},
    )
    members = {v for v, joined in result.outputs.items() if joined}
    return MISResult(
        members=members,
        rounds=result.rounds,
        algorithm="luby-mis",
        params={"seed": seed},
    )


def greedy_mis_sequential(graph) -> Set[Vertex]:
    """Centralized greedy MIS by ascending id (verification reference).

    Works in index space over the CSR arrays (ascending index is ascending
    id, so the greedy choice is unchanged).
    """
    off, nbr = graph.csr()
    n = graph.n
    blocked = bytearray(n)
    members_idx = []
    for i in range(n):
        if not blocked[i]:
            members_idx.append(i)
            for j in nbr[off[i] : off[i + 1]]:
                blocked[j] = 1
    if graph.ids_contiguous:
        return set(members_idx)
    vertex_at = graph.vertex_at
    return {vertex_at(i) for i in members_idx}
