"""Acyclic orientations: the paper's Section 3 machinery.

* :func:`complete_orientation` — Procedure Complete-Orientation (Lemma
  3.3): H-partition, *legal* coloring of every level, then orient each edge
  towards the lexicographically larger (level, color).  Out-degree
  ⌊(2+ε)a⌋, length O(a log n).
* :func:`partial_orientation` — Procedure Partial-Orientation (Algorithm 1,
  Theorem 3.5): identical, but the levels are colored *defectively* (far
  faster), and edges joining same-level same-color vertices stay
  unoriented.  Out-degree ⌊(2+ε)a⌋, length O(t² log n), deficit ⌊a/t⌋,
  all in O(log n) rounds.  This is the paper's key new tool: trading a
  little deficit for an exponentially shorter orientation.
* :func:`complete_from_partial` — Lemma 3.1: any acyclic partial
  orientation extends to a complete acyclic one via a topological sort
  (centralized utility, used in the arboricity-certification argument).
* :func:`orientation_greedy_coloring` — Appendix A / the engine of Lemma
  2.2(1): along a complete acyclic orientation of out-degree k, every
  vertex waits for its parents and picks the smallest free color, giving a
  legal (k+1)-coloring in length+1 rounds.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import InvalidParameterError, SimulationError
from ..graphs.graph import Graph
from ..simulator.context import NodeContext
from ..simulator.network import SynchronousNetwork
from ..simulator.program import NodeProgram
from ..types import (
    ColorAssignment,
    HPartition,
    Orientation,
    Vertex,
    canonical_edge,
)
from .color_reduction import delta_plus_one_coloring
from .defective import kuhn_defective_coloring
from .hpartition import compute_hpartition


class _OrientationExchangeProgram(NodeProgram):
    """One-round exchange of (level, color); each node orients its edges.

    Output per node: dict ``neighbor -> head`` covering every incident edge
    the node could orient (both endpoints compute the same head because the
    rule is symmetric in the exchanged keys).
    """

    def __init__(self, key_of: Callable[[Vertex], Tuple[int, int]], partial: bool):
        self._key_of = key_of
        self._partial = partial

    def on_start(self, ctx: NodeContext) -> None:
        ctx.broadcast(self._key_of(ctx.node))

    def on_round(self, ctx: NodeContext) -> None:
        my_level, my_color = self._key_of(ctx.node)
        heads: Dict[Vertex, Vertex] = {}
        for u, (lvl, col) in ctx.inbox.items():
            if lvl != my_level:
                heads[u] = u if lvl > my_level else ctx.node
            elif col != my_color:
                heads[u] = u if col > my_color else ctx.node
            elif not self._partial:
                raise SimulationError(
                    f"complete orientation: neighbours {ctx.node} and {u} "
                    "share level and color — the level coloring is not legal"
                )
            # same level, same color, partial mode: leave unoriented
        ctx.halt(heads)


def _assemble_orientation(outputs: Mapping[Vertex, Dict[Vertex, Vertex]]) -> Dict:
    direction = {}
    for v, heads in outputs.items():
        for u, head in heads.items():
            direction[canonical_edge(v, u)] = head
    return direction


def complete_orientation(
    network: SynchronousNetwork,
    a: int,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
    hpartition: Optional[HPartition] = None,
) -> Orientation:
    """Procedure Complete-Orientation (Lemma 3.3).

    Produces a complete acyclic orientation with out-degree ≤ ⌊(2+ε)a⌋ and
    length O(a log n).  Round cost: O(log n) for the H-partition plus the
    per-level legal coloring (O(a log a + log* n) with our Δ+1 pipeline)
    plus one exchange round.
    """
    if hpartition is None:
        hpartition = compute_hpartition(
            network, a, epsilon, participants=participants, part_of=part_of
        )
    threshold = hpartition.degree_bound
    level_parts = {
        v: ((part_of.get(v) if part_of is not None else None), lvl)
        for v, lvl in hpartition.index.items()
    }
    level_coloring = delta_plus_one_coloring(
        network,
        threshold,
        participants=hpartition.index.keys(),
        part_of=level_parts,
    )
    key_of = lambda v: (hpartition.index[v], level_coloring.colors[v])
    result = network.run(
        lambda: _OrientationExchangeProgram(key_of, partial=False),
        participants=hpartition.index.keys(),
        part_of=part_of,
        global_params={"a": a, "epsilon": epsilon},
    )
    rounds = hpartition.rounds + level_coloring.rounds + result.rounds
    return Orientation(
        direction=_assemble_orientation(result.outputs),
        rounds=rounds,
        algorithm="complete-orientation",
        params={
            "a": a,
            "epsilon": epsilon,
            "out_degree_bound": threshold,
            "level_colors": level_coloring.params.get("degree_bound", threshold) + 1,
            "num_levels": hpartition.num_levels,
        },
    )


def partial_orientation(
    network: SynchronousNetwork,
    a: int,
    t: int,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
    hpartition: Optional[HPartition] = None,
) -> Orientation:
    """Procedure Partial-Orientation (Algorithm 1, Theorem 3.5).

    Produces an acyclic partial orientation with out-degree ≤ ⌊(2+ε)a⌋,
    deficit ≤ ⌊a/t⌋ and length O(t² log n), in O(log n) rounds.

    The defective coloring of every level uses Kuhn's parameter
    ``p = ⌈(2+ε)·t⌉`` so that the defect ⌊Δ_level/p⌋ ≤ ⌊a/t⌋ — the defect
    of the level coloring is exactly what becomes the orientation's
    deficit.
    """
    if t < 1:
        raise InvalidParameterError(f"partial_orientation: t must be >= 1, got {t}")
    if hpartition is None:
        hpartition = compute_hpartition(
            network, a, epsilon, participants=participants, part_of=part_of
        )
    threshold = hpartition.degree_bound
    p = max(1, math.ceil((2.0 + epsilon) * t))
    level_parts = {
        v: ((part_of.get(v) if part_of is not None else None), lvl)
        for v, lvl in hpartition.index.items()
    }
    level_coloring = kuhn_defective_coloring(
        network,
        p,
        max_degree=threshold,
        participants=hpartition.index.keys(),
        part_of=level_parts,
    )
    key_of = lambda v: (hpartition.index[v], level_coloring.colors[v])
    result = network.run(
        lambda: _OrientationExchangeProgram(key_of, partial=True),
        participants=hpartition.index.keys(),
        part_of=part_of,
        global_params={"a": a, "t": t, "epsilon": epsilon},
    )
    rounds = hpartition.rounds + level_coloring.rounds + result.rounds
    return Orientation(
        direction=_assemble_orientation(result.outputs),
        rounds=rounds,
        algorithm="partial-orientation",
        params={
            "a": a,
            "t": t,
            "epsilon": epsilon,
            "out_degree_bound": threshold,
            "deficit_bound": a // t,
            "level_color_space": level_coloring.params.get("final_color_space"),
            "num_levels": hpartition.num_levels,
        },
    )


def complete_from_partial(graph: Graph, orientation: Orientation) -> Orientation:
    """Extend an acyclic partial orientation to a complete acyclic one.

    Lemma 3.1: topologically sort the oriented sub-DAG and orient every
    unoriented edge towards the endpoint appearing *later*.  Centralized
    utility (the distributed algorithms never need the completion — only
    the arboricity argument does).
    """
    order = _topological_order(graph, orientation)
    pos = {v: i for i, v in enumerate(order)}
    direction = dict(orientation.direction)
    for (u, v) in graph.edges:
        e = canonical_edge(u, v)
        if e not in direction:
            direction[e] = v if pos[v] > pos[u] else u
    return Orientation(
        direction=direction,
        rounds=orientation.rounds,
        algorithm=orientation.algorithm + "+completed",
        params=dict(orientation.params),
    )


def _topological_order(graph: Graph, orientation: Orientation) -> List[Vertex]:
    """Kahn's algorithm on the oriented sub-DAG; raises on a cycle."""
    indeg = {v: 0 for v in graph.vertices}
    children: Dict[Vertex, List[Vertex]] = {v: [] for v in graph.vertices}
    for e, head in orientation.direction.items():
        u, v = e
        tail = u if head == v else v
        # tail -> head
        children[tail].append(head)
        indeg[head] += 1
    frontier = sorted(v for v, d in indeg.items() if d == 0)
    order: List[Vertex] = []
    import heapq

    heap = list(frontier)
    heapq.heapify(heap)
    while heap:
        v = heapq.heappop(heap)
        order.append(v)
        for u in children[v]:
            indeg[u] -= 1
            if indeg[u] == 0:
                heapq.heappush(heap, u)
    if len(order) != graph.n:
        raise SimulationError("orientation contains a directed cycle")
    return order


class _OrientationGreedyProgram(NodeProgram):
    """Wait for all parents, then take the smallest color they don't use.

    Requires a *complete* acyclic orientation: legality holds because every
    edge has a parent/child relation and the child always avoids the
    parent's color.  Appendix A's (ℓ+1)-coloring is the variant where a
    vertex simply takes the round number as its color; picking the smallest
    free color instead needs only out_degree+1 colors (Lemma 2.2(1)).
    """

    def __init__(self, parents_of: Callable[[Vertex], Sequence[Vertex]], palette: int):
        self._parents_of = parents_of
        self._palette = palette
        self._parent_colors: Dict[Vertex, int] = {}
        self._parents: frozenset = frozenset()

    def _decide(self, ctx: NodeContext) -> None:
        used = set(self._parent_colors.values())
        color = next((c for c in range(self._palette) if c not in used), None)
        if color is None:
            raise SimulationError(
                f"node {ctx.node}: palette of size {self._palette} exhausted "
                f"by {len(self._parents)} parents — out-degree bound violated"
            )
        ctx.broadcast(color)
        ctx.halt(color)

    def on_start(self, ctx: NodeContext) -> None:
        self._parents = frozenset(self._parents_of(ctx.node))
        unknown = self._parents - set(ctx.neighbors)
        if unknown:
            raise SimulationError(
                f"node {ctx.node}: parents {sorted(unknown)} are not visible "
                "neighbours"
            )
        if not self._parents:
            self._decide(ctx)
            return
        # Nothing to do until a parent announces its color.
        ctx.idle_until_message()

    def on_round(self, ctx: NodeContext) -> None:
        for sender, payload in ctx.inbox.items():
            if sender in self._parents:
                self._parent_colors[sender] = payload
        if len(self._parent_colors) == len(self._parents):
            self._decide(ctx)
        else:
            ctx.idle_until_message()


def orientation_greedy_coloring(
    network: SynchronousNetwork,
    orientation: Orientation,
    out_degree_bound: int,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Legal (k+1)-coloring along a complete acyclic orientation of
    out-degree ≤ k, in ≤ length+1 rounds (Appendix A / Lemma 2.2(1))."""
    if out_degree_bound < 0:
        raise InvalidParameterError("out_degree_bound must be >= 0")
    graph = network.graph
    active = set(participants) if participants is not None else None

    def parents_of(v: Vertex) -> List[Vertex]:
        if part_of is not None:
            label = part_of.get(v)
            nbrs = [
                u
                for u in graph.neighbors(v)
                if (active is None or u in active) and part_of.get(u) == label
            ]
        elif active is not None:
            nbrs = [u for u in graph.neighbors(v) if u in active]
        else:
            # unrestricted run: the graph's cached neighbour tuple, no copy
            nbrs = graph.neighbors(v)
        return orientation.parents_of(v, nbrs)

    result = network.run(
        lambda: _OrientationGreedyProgram(parents_of, out_degree_bound + 1),
        participants=participants,
        part_of=part_of,
        global_params={"palette": out_degree_bound + 1},
    )
    return ColorAssignment(
        colors=dict(result.outputs),
        rounds=result.rounds,
        algorithm="orientation-greedy",
        params={"out_degree_bound": out_degree_bound},
    )
