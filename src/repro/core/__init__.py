"""The paper's algorithms and the substrates they build on.

Organised bottom-up:

* recoloring engine (:mod:`repro.core.recolor`) → Linial
  (:mod:`repro.core.linial`), Kuhn defective (:mod:`repro.core.defective`);
* H-partition (:mod:`repro.core.hpartition`) → forests decomposition
  (:mod:`repro.core.forests`), orientations
  (:mod:`repro.core.orientation`);
* arbdefective colorings (:mod:`repro.core.arbdefective`) →
  Procedure Legal-Coloring (:mod:`repro.core.legal`) and Arb-Kuhn
  (:mod:`repro.core.arb_kuhn`);
* MIS (:mod:`repro.core.mis`), Cole–Vishkin
  (:mod:`repro.core.cole_vishkin`), color reductions
  (:mod:`repro.core.color_reduction`), baselines
  (:mod:`repro.core.baselines`).
"""

from .arb_kuhn import arb_kuhn_decomposition, theorem52_fast_coloring, theorem53_tradeoff
from .arbdefective import arbdefective_coloring, simple_arbdefective
from .baselines import be08_coloring, luby_coloring, sequential_greedy_coloring
from .cole_vishkin import cole_vishkin_forest, cv_iterations_needed
from .color_reduction import (
    delta_plus_one_coloring,
    greedy_reduction,
    kuhn_wattenhofer_reduction,
)
from .defective import kuhn_defective_coloring
from .estimation import (
    estimate_arboricity_bound,
    legal_coloring_auto,
    try_hpartition,
)
from .forests import forests_decomposition, hpartition_orientation
from .hpartition import compute_hpartition, degree_threshold, expected_num_levels
from .legal import (
    color_parts_legally,
    delta_plus_one_via_arboricity,
    legal_coloring,
    legal_coloring_corollary44,
    legal_coloring_corollary46,
    legal_coloring_theorem43,
    legal_coloring_tradeoff45,
    oneshot_legal_coloring,
)
from .linial import linial_coloring
from .mis import greedy_mis_sequential, luby_mis, mis_arboricity, mis_from_coloring
from .orientation import (
    complete_from_partial,
    complete_orientation,
    orientation_greedy_coloring,
    partial_orientation,
)
from .ruling_sets import ruling_set, ruling_set_domination_radius
from .trees import forest_mis, forest_parent_map, root_forest_by_bfs
from .recolor import RecolorProgram, RecolorStep, compute_recolor_schedule, run_recoloring

__all__ = [
    "compute_hpartition",
    "degree_threshold",
    "expected_num_levels",
    "forests_decomposition",
    "hpartition_orientation",
    "complete_orientation",
    "partial_orientation",
    "complete_from_partial",
    "orientation_greedy_coloring",
    "simple_arbdefective",
    "arbdefective_coloring",
    "legal_coloring",
    "oneshot_legal_coloring",
    "legal_coloring_theorem43",
    "legal_coloring_corollary44",
    "legal_coloring_tradeoff45",
    "legal_coloring_corollary46",
    "delta_plus_one_via_arboricity",
    "color_parts_legally",
    "arb_kuhn_decomposition",
    "theorem52_fast_coloring",
    "theorem53_tradeoff",
    "linial_coloring",
    "kuhn_defective_coloring",
    "delta_plus_one_coloring",
    "greedy_reduction",
    "kuhn_wattenhofer_reduction",
    "cole_vishkin_forest",
    "cv_iterations_needed",
    "mis_from_coloring",
    "mis_arboricity",
    "luby_mis",
    "greedy_mis_sequential",
    "be08_coloring",
    "luby_coloring",
    "sequential_greedy_coloring",
    "estimate_arboricity_bound",
    "legal_coloring_auto",
    "try_hpartition",
    "forest_mis",
    "forest_parent_map",
    "root_forest_by_bfs",
    "ruling_set",
    "ruling_set_domination_radius",
    "compute_recolor_schedule",
    "run_recoloring",
    "RecolorProgram",
    "RecolorStep",
]
