"""Forest specialists: rooting helpers, O(log* n) forest MIS.

Trees and forests are where the O(log* n) machinery (Cole–Vishkin [8])
applies directly; this module packages the pieces the examples and the
forests-decomposition pipeline keep needing:

* :func:`forest_parent_map` — extract the parent pointers of one forest of
  a :class:`~repro.types.ForestsDecomposition` (local knowledge: every
  vertex knows its parent per forest by construction).
* :func:`root_forest_by_bfs` — root an arbitrary forest-shaped graph at
  its smallest-id vertices (centralized preprocessing helper; a
  distributed rooting costs Θ(diameter), which is why the paper's
  pipeline only ever uses orientations it *constructed*, never re-roots).
* :func:`forest_mis` — MIS of a rooted forest in O(log* n) rounds:
  Cole–Vishkin 3-coloring followed by a 3-round color-class sweep.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..simulator.network import SynchronousNetwork
from ..types import ForestsDecomposition, MISResult, Vertex
from .cole_vishkin import cole_vishkin_forest
from .mis import mis_from_coloring


def forest_parent_map(
    graph: Graph, fd: ForestsDecomposition, forest: int
) -> Dict[Vertex, Optional[Vertex]]:
    """Parent pointers of one forest of a decomposition (None at roots)."""
    if not (0 <= forest < max(1, fd.num_forests)):
        raise InvalidParameterError(
            f"forest index {forest} outside [0, {fd.num_forests})"
        )
    parent: Dict[Vertex, Optional[Vertex]] = {v: None for v in graph.vertices}
    for (u, v) in fd.forest_edges(forest):
        head = fd.orientation.head(u, v)
        tail = u if head == v else v
        parent[tail] = head
    return parent


def root_forest_by_bfs(graph: Graph) -> Dict[Vertex, Optional[Vertex]]:
    """Root every tree of a forest-shaped graph at its smallest-id vertex.

    Centralized preprocessing (BFS); raises if the graph contains a cycle,
    because a parent map of a non-forest would silently mis-color.
    """
    n = graph.n
    off, nbr = graph.csr()
    vertex_at = graph.vertex_at
    visited = bytearray(n)
    parent_idx = [-1] * n  # -1 = root of its tree
    for root in range(n):
        if visited[root]:
            continue
        visited[root] = 1
        frontier = [root]
        while frontier:
            i = frontier.pop()
            pi = parent_idx[i]
            for j in nbr[off[i] : off[i + 1]]:
                if not visited[j]:
                    visited[j] = 1
                    parent_idx[j] = i
                    frontier.append(j)
                elif pi != j:
                    raise InvalidParameterError(
                        "graph is not a forest: extra edge "
                        f"({vertex_at(i)}, {vertex_at(j)})"
                    )
    return {
        vertex_at(i): (None if p < 0 else vertex_at(p))
        for i, p in enumerate(parent_idx)
    }


def forest_mis(
    network: SynchronousNetwork,
    parent_of: Mapping[Vertex, Optional[Vertex]],
    *,
    participants=None,
    part_of=None,
) -> MISResult:
    """MIS of a rooted forest in O(log* n) rounds.

    Cole–Vishkin gives a 3-coloring in O(log* n) rounds; the color-class
    sweep then needs only 2 more rounds (3 classes).  This is the classic
    demonstration that symmetry breaking on trees is exponentially easier
    than on general graphs.

    Note: the result is an MIS of the *forest* defined by ``parent_of``;
    edges of the underlying network outside the forest are ignored.
    """
    coloring = cole_vishkin_forest(
        network, parent_of, participants=participants, part_of=part_of
    )
    forest_edges = {
        v: p for v, p in parent_of.items() if p is not None
    }
    # Restrict the sweep's visibility to forest edges by running it on the
    # forest as a labeled subnetwork is unnecessary: the sweep's blocking
    # rule only fires between same-colored... — colors differ across forest
    # edges, but NON-forest neighbours could wrongly block. Run the sweep
    # on a network view of the forest instead.
    forest_graph = Graph(
        network.graph.vertices,
        [(v, p) for v, p in forest_edges.items()],
    )
    forest_net = SynchronousNetwork(forest_graph)
    sweep = mis_from_coloring(
        forest_net, coloring, participants=participants, part_of=part_of
    )
    return MISResult(
        members=sweep.members,
        rounds=coloring.rounds + sweep.rounds,
        algorithm="forest-mis (CV + sweep)",
        params={
            "coloring_rounds": coloring.rounds,
            "sweep_rounds": sweep.rounds,
        },
    )
