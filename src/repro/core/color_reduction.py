"""Color reduction: from many colors down to Δ+1.

Two classic distributed reductions, used as the final stage of several
pipelines in this library:

* :func:`greedy_reduction` — process color classes one per round from the
  top of the palette down; each processed vertex picks the smallest free
  color below the target.  Reduces ``m`` colors to ``target ≥ Δ+1`` in
  ``m − target`` rounds.
* :func:`kuhn_wattenhofer_reduction` — the divide-and-conquer reduction of
  Kuhn & Wattenhofer (PODC'06 [18]): split the palette into blocks of size
  ``2(Δ+1)``, reduce every block to ``Δ+1`` colors in parallel (the blocks
  are vertex-disjoint), halving the palette per sweep.  Reduces ``m`` to
  ``Δ+1`` in O(Δ log(m/Δ)) rounds.

:func:`delta_plus_one_coloring` chains Linial's O(Δ²)-coloring with the KW
reduction to color a (sub)graph with Δ+1 colors in O(Δ log Δ + log* n)
rounds.  The paper invokes the O(Δ + log* n) algorithms of [5]/[17] here;
the extra log factor is immaterial for every claim we reproduce (see
DESIGN.md §4) and this pipeline is dramatically simpler.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping

from ..errors import InvalidParameterError, SimulationError
from ..simulator.context import NodeContext
from ..simulator.network import SynchronousNetwork
from ..simulator.program import NodeProgram
from ..types import ColorAssignment, Vertex
from .recolor import run_recoloring


class _GreedyReductionProgram(NodeProgram):
    """Reduce a legal m-coloring to ``target`` colors, one class per round.

    Classes ``m−1, m−2, ..., target`` are processed in rounds ``1, 2, ...``;
    a vertex whose class comes up picks the smallest color in
    ``[0, target)`` unused by its neighbours' current colors.  Legality of
    the input guarantees no two neighbours are processed in the same round.
    """

    def __init__(self, color_of: Callable[[Vertex], int], m: int, target: int):
        self._color_of = color_of
        self._m = m
        self._target = target
        self._color = 0
        self._neighbor_colors: Dict[Vertex, int] = {}

    def _sleep_until_my_class(self, ctx: NodeContext) -> None:
        # Between neighbour announcements (message wake-ups) nothing changes
        # until this vertex's own class is processed at round m - color.
        ctx.wake_at(self._m - self._color)
        ctx.idle_until_message()

    def on_start(self, ctx: NodeContext) -> None:
        self._color = int(self._color_of(ctx.node))
        if self._color >= self._m:
            raise SimulationError(
                f"node {ctx.node}: input color {self._color} >= m={self._m}"
            )
        ctx.broadcast(self._color)
        if self._color < self._target:
            # This vertex keeps its color; neighbours got it just now and it
            # never needs to hear back, so it may halt immediately.
            ctx.halt(self._color)
            return
        self._sleep_until_my_class(ctx)

    def on_round(self, ctx: NodeContext) -> None:
        for sender, payload in ctx.inbox.items():
            self._neighbor_colors[sender] = payload
        processed_class = self._m - ctx.round_number
        if self._color != processed_class:
            self._sleep_until_my_class(ctx)
            return
        used = set(self._neighbor_colors.values())
        free = next(
            (c for c in range(self._target) if c not in used), None
        )
        if free is None:
            raise SimulationError(
                f"node {ctx.node}: no free color below target "
                f"{self._target} (visible degree too high)"
            )
        self._color = free
        ctx.broadcast(self._color)
        ctx.halt(self._color)


def greedy_reduction(
    network: SynchronousNetwork,
    colors: Mapping[Vertex, int],
    num_colors: int,
    target: int,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Reduce a legal ``num_colors``-coloring to ``target`` colors greedily.

    ``target`` must exceed the maximum degree of the (visible) graph, or a
    processed vertex may find no free color, which raises a
    :class:`~repro.errors.SimulationError`.
    Costs ``max(0, num_colors − target)`` rounds.
    """
    if target < 1:
        raise InvalidParameterError("greedy_reduction: target must be >= 1")
    result = network.run(
        lambda: _GreedyReductionProgram(lambda v: colors[v], num_colors, target),
        participants=participants,
        part_of=part_of,
        global_params={"m": num_colors, "target": target},
    )
    return ColorAssignment(
        colors=dict(result.outputs),
        rounds=result.rounds,
        algorithm="greedy-reduction",
        params={"m": num_colors, "target": target},
    )


def kuhn_wattenhofer_reduction(
    network: SynchronousNetwork,
    colors: Mapping[Vertex, int],
    num_colors: int,
    degree_bound: int,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Reduce a legal coloring to ``degree_bound + 1`` colors (KW [18]).

    Repeatedly partitions the palette into blocks of size
    ``2·(degree_bound+1)``; the blocks induce vertex-disjoint subgraphs, so
    each block's greedy reduction runs in parallel; a sweep halves the
    palette at the cost of ``degree_bound + 1`` rounds.  Total
    O(Δ log(m/Δ)) rounds.
    """
    if degree_bound < 0:
        raise InvalidParameterError("kuhn_wattenhofer: degree_bound must be >= 0")
    target = degree_bound + 1
    block_size = 2 * target
    current: Dict[Vertex, int] = {
        v: int(c)
        for v, c in colors.items()
        if participants is None or v in set(participants)
    }
    m = num_colors
    total_rounds = 0
    while m > block_size:
        num_blocks = math.ceil(m / block_size)
        block = {v: c // block_size for v, c in current.items()}
        local = {v: c % block_size for v, c in current.items()}
        combined_parts: Dict[Vertex, object] = {
            v: ((part_of.get(v) if part_of is not None else None), block[v])
            for v in current
        }
        step = greedy_reduction(
            network,
            local,
            block_size,
            target,
            participants=current.keys(),
            part_of=combined_parts,
        )
        total_rounds += step.rounds
        current = {
            v: block[v] * target + step.colors[v] for v in current
        }
        m = num_blocks * target
    final = greedy_reduction(
        network,
        current,
        m,
        target,
        participants=current.keys(),
        part_of=part_of,
    )
    total_rounds += final.rounds
    return ColorAssignment(
        colors=final.colors,
        rounds=total_rounds,
        algorithm="kuhn-wattenhofer-reduction",
        params={"m": num_colors, "degree_bound": degree_bound},
    )


def delta_plus_one_coloring(
    network: SynchronousNetwork,
    degree_bound: int,
    *,
    participants=None,
    part_of=None,
    reduction: str = "kw",
) -> ColorAssignment:
    """Legal (Δ+1)-coloring of a (sub)graph of maximum degree ≤ Δ.

    Pipeline: Linial's O(Δ²)-coloring in O(log* n) rounds, then color
    reduction to Δ+1 (``reduction="kw"`` for Kuhn–Wattenhofer,
    ``"greedy"`` for the slower class-by-class reduction — an ablation
    knob).  This is the library's substitute for the O(Δ + log* n)
    algorithms of [5]/[17]; see DESIGN.md §4.
    """
    if reduction not in ("kw", "greedy"):
        raise InvalidParameterError(f"unknown reduction {reduction!r}")
    linial = run_recoloring(
        network,
        conflict_degree=degree_bound,
        defect_target=0,
        participants=participants,
        part_of=part_of,
        algorithm_name="linial",
    )
    m = int(linial.params["final_color_space"])
    if reduction == "kw":
        reduced = kuhn_wattenhofer_reduction(
            network,
            linial.colors,
            m,
            degree_bound,
            participants=participants,
            part_of=part_of,
        )
    else:
        reduced = greedy_reduction(
            network,
            linial.colors,
            m,
            degree_bound + 1,
            participants=participants,
            part_of=part_of,
        )
    return ColorAssignment(
        colors=reduced.colors,
        rounds=linial.rounds + reduced.rounds,
        algorithm="delta-plus-one",
        params={
            "degree_bound": degree_bound,
            "linial_rounds": linial.rounds,
            "reduction_rounds": reduced.rounds,
            "reduction": reduction,
        },
    )
