"""Baseline coloring algorithms the paper compares against.

* :func:`be08_coloring` — Lemma 2.2(1), the previous state of the art for
  O(a)-coloring [4]: complete orientation + greedy along it, giving
  ⌊(2+ε)a⌋+1 colors in O(a log n) rounds.  The paper's Theorem 4.3 beats
  its running time exponentially in a.
* :func:`luby_coloring` — the randomized (Δ+1)-coloring in O(log n) rounds
  w.h.p. (the [22]/[1]/[15] line of work the introduction cites as the
  randomized yardstick).
* :func:`sequential_greedy_coloring` — the centralized greedy reference
  (≤ Δ+1 colors, *n* rounds if executed distributively by ids — the "very
  easy" algorithm of the introduction).  Used by tests as an oracle.

Linial's O(Δ²) baseline lives in :mod:`repro.core.linial`.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Set

from ..errors import InvalidParameterError
from ..graphs.graph import Graph
from ..simulator.context import NodeContext
from ..simulator.network import SynchronousNetwork
from ..simulator.program import NodeProgram
from ..types import ColorAssignment, Vertex
from .orientation import complete_orientation, orientation_greedy_coloring


def be08_coloring(
    network: SynchronousNetwork,
    a: int,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Lemma 2.2(1): a legal (⌊(2+ε)a⌋+1)-coloring in O(a log n) rounds.

    The pre-paper state of the art from [4]: Complete-Orientation (length
    O(a log n)) followed by greedy coloring along it.  The greedy pass —
    waiting for parents down directed paths of length Θ(a log n) — is
    exactly the bottleneck the paper's partial orientations remove.
    """
    orientation = complete_orientation(
        network, a, epsilon, participants=participants, part_of=part_of
    )
    out_bound = int(orientation.params["out_degree_bound"])
    greedy = orientation_greedy_coloring(
        network,
        orientation,
        out_bound,
        participants=participants,
        part_of=part_of,
    )
    return ColorAssignment(
        colors=greedy.colors,
        rounds=orientation.rounds + greedy.rounds,
        algorithm="be08-coloring (Lemma 2.2(1))",
        params={
            "a": a,
            "epsilon": epsilon,
            "palette": out_bound + 1,
            "orientation_rounds": orientation.rounds,
            "greedy_rounds": greedy.rounds,
        },
    )


class _LubyColoringProgram(NodeProgram):
    """Randomized (Δ+1)-coloring: try a random free color; keep it if no
    conflicting neighbour tried the same one this round."""

    def __init__(self, seed: int, palette: int):
        self._seed = seed
        self._palette = palette
        self._rng: Optional[random.Random] = None
        self._taken: Set[int] = set()
        self._attempt: Optional[int] = None

    def _try(self, ctx: NodeContext) -> None:
        free = [c for c in range(self._palette) if c not in self._taken]
        if not free:
            raise InvalidParameterError(
                f"node {ctx.node}: palette {self._palette} exhausted — "
                "it must exceed the maximum degree"
            )
        self._attempt = free[self._rng.randrange(len(free))]
        ctx.broadcast(("try", self._attempt))

    def on_start(self, ctx: NodeContext) -> None:
        self._rng = random.Random(self._seed * 1_000_003 + ctx.node)
        self._try(ctx)

    def on_round(self, ctx: NodeContext) -> None:
        conflict = False
        for payload in ctx.inbox.values():
            kind, value = payload
            if kind == "final":
                self._taken.add(value)
                if value == self._attempt:
                    conflict = True
            elif kind == "try" and value == self._attempt:
                conflict = True
        if not conflict:
            ctx.broadcast(("final", self._attempt))
            ctx.halt(self._attempt)
            return
        self._try(ctx)


def luby_coloring(
    network: SynchronousNetwork,
    max_degree: Optional[int] = None,
    seed: int = 0,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Randomized (Δ+1)-coloring in O(log n) rounds w.h.p.

    Every round each undecided vertex proposes a uniformly random color
    from its remaining palette; proposals that collide with a neighbour's
    proposal or final color are retried.  Deterministic given ``seed``.
    """
    if max_degree is None:
        max_degree = network.graph.max_degree
    palette = max_degree + 1
    result = network.run(
        lambda: _LubyColoringProgram(seed, palette),
        participants=participants,
        part_of=part_of,
        global_params={"palette": palette, "seed": seed},
    )
    return ColorAssignment(
        colors=dict(result.outputs),
        rounds=result.rounds,
        algorithm="luby-coloring",
        params={"palette": palette, "seed": seed},
    )


def sequential_greedy_coloring(graph: Graph) -> ColorAssignment:
    """Centralized greedy by ascending id (test oracle; ≤ Δ+1 colors)."""
    colors: Dict[Vertex, int] = {}
    for v in graph.vertices:
        used = {colors[u] for u in graph.neighbors(v) if u in colors}
        colors[v] = next(c for c in range(len(used) + 1) if c not in used)
    return ColorAssignment(
        colors=colors, rounds=0, algorithm="sequential-greedy", params={}
    )
