"""Distributed arboricity estimation: running the stack when a is unknown.

The paper (like BE08) assumes the arboricity bound ``a`` is globally
known.  When it is not, the standard remedy is *doubling*: attempt the
H-partition with the candidate bound â = 1, 2, 4, ...; a candidate at
least the true arboricity makes the peeling finish within its O(log n)
level budget, while an underestimate stalls — and a stall is *locally
detectable* (the peeling exceeded the budget without everyone leaving).

Cost analysis: a failed attempt costs its level budget O(log n) rounds;
there are O(log a) attempts; so estimation costs O(log a · log n) rounds —
the same order as Corollary 4.6 itself, i.e. not-knowing-a is asymptotically
free for the paper's headline algorithm.

:func:`estimate_arboricity_bound` returns the first successful candidate
(a certified upper bound within a factor (2+ε)·2 of the true arboricity);
:func:`legal_coloring_auto` chains it with Procedure Legal-Coloring.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import InvalidParameterError
from ..simulator.context import NodeContext
from ..simulator.network import SynchronousNetwork
from ..simulator.program import NodeProgram
from ..types import ColorAssignment, HPartition
from .hpartition import degree_threshold, expected_num_levels
from .legal import legal_coloring_corollary46


class _BoundedPeelProgram(NodeProgram):
    """H-partition peeling that gives up after a fixed level budget.

    Halts with its level on success, or with ``None`` when the budget ran
    out while the node was still active — the local signature of an
    underestimated arboricity bound.
    """

    def __init__(self, threshold: int, level_budget: int):
        self._threshold = threshold
        self._budget = level_budget
        self._active_neighbors: set = set()

    def on_start(self, ctx: NodeContext) -> None:
        self._active_neighbors = set(ctx.neighbors)

    def on_round(self, ctx: NodeContext) -> None:
        for sender, payload in ctx.inbox.items():
            if payload == "leaving":
                self._active_neighbors.discard(sender)
        if len(self._active_neighbors) <= self._threshold:
            ctx.broadcast("leaving")
            ctx.halt(ctx.round_number)
        elif ctx.round_number >= self._budget:
            ctx.halt(None)  # stall detected locally


def try_hpartition(
    network: SynchronousNetwork,
    candidate: int,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> Tuple[Optional[HPartition], int]:
    """Attempt an H-partition with arboricity candidate â.

    Returns ``(hpartition, rounds)`` on success or ``(None, rounds)`` when
    the peeling stalled within its level budget — i.e. â is too small.
    """
    if candidate < 1:
        raise InvalidParameterError("candidate arboricity must be >= 1")
    threshold = degree_threshold(candidate, epsilon)
    n = network.graph.n
    budget = expected_num_levels(max(2, n), epsilon) + 2
    result = network.run(
        lambda: _BoundedPeelProgram(threshold, budget),
        participants=participants,
        part_of=part_of,
        round_limit=budget + 2,
        global_params={"candidate": candidate, "epsilon": epsilon},
    )
    if any(level is None for level in result.outputs.values()):
        return None, result.rounds
    index = {v: int(level) for v, level in result.outputs.items()}
    hp = HPartition(
        index=index,
        degree_bound=threshold,
        rounds=result.rounds,
        params={"a": candidate, "epsilon": epsilon, "estimated": True},
    )
    return hp, result.rounds


def estimate_arboricity_bound(
    network: SynchronousNetwork,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> Tuple[int, HPartition, int]:
    """Estimate an arboricity upper bound by doubling (â = 1, 2, 4, ...).

    Returns ``(bound, hpartition, total_rounds)``.  The returned bound
    satisfies: the H-partition with threshold ⌊(2+ε)·bound⌋ succeeded, so
    every algorithm in this library can run with it; and bound < 2·a + 2
    for the true arboricity a (the previous candidate bound/2 failed, and
    candidates ≥ a always succeed because the average degree argument of
    Lemma 2.3 applies).
    """
    total_rounds = 0
    candidate = 1
    while candidate <= max(1, network.graph.n):
        hp, rounds = try_hpartition(
            network, candidate, epsilon,
            participants=participants, part_of=part_of,
        )
        total_rounds += rounds
        if hp is not None:
            return candidate, hp, total_rounds
        candidate *= 2
    raise InvalidParameterError(
        "arboricity estimation failed to converge"
    )  # pragma: no cover - candidates reach n, which always succeeds


def legal_coloring_auto(
    network: SynchronousNetwork,
    eta: float = 0.5,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Color a graph of *unknown* arboricity: estimate, then Corollary 4.6.

    Total cost O(log a · log n) rounds — the estimation phase is the same
    order as the coloring itself, so not knowing a is asymptotically free.
    """
    bound, _hp, est_rounds = estimate_arboricity_bound(
        network, epsilon, participants=participants, part_of=part_of
    )
    coloring = legal_coloring_corollary46(
        network, bound, eta=eta, epsilon=epsilon,
        participants=participants, part_of=part_of,
    )
    return ColorAssignment(
        colors=coloring.colors,
        rounds=est_rounds + coloring.rounds,
        algorithm="legal-coloring-auto (doubling + Corollary 4.6)",
        params={
            "estimated_bound": bound,
            "estimation_rounds": est_rounds,
            "coloring_rounds": coloring.rounds,
            "eta": eta,
        },
    )
