"""H-partition of a bounded-arboricity graph (Lemma 2.3, from BE08 [4]).

An *H-partition* splits V into levels ``H_1, ..., H_ℓ`` with ℓ = O(log n)
such that every vertex in ``H_i`` has at most ``⌊(2+ε)·a⌋`` neighbours in
``H_i ∪ H_{i+1} ∪ ... ∪ H_ℓ``.  It is the paper's bridge from bounded
arboricity to bounded degree: each level induces a subgraph of maximum
degree O(a), and it also yields the low-out-degree acyclic orientations of
Section 3.

The distributed peeling: in round i, every still-active vertex whose number
of active neighbours is at most the threshold ``A = ⌊(2+ε)·a⌋`` joins
``H_i``, announces its departure, and halts.  Because a graph of arboricity
``a`` has average degree < 2a, at least an ε/(2+ε) fraction of the active
vertices leaves in every round, so ℓ ≤ log_{(2+ε)/2}(n) + 1.

One round of the simulator corresponds exactly to one peeling iteration.
"""

from __future__ import annotations

import math
from typing import Dict

from ..errors import InvalidParameterError, RoundLimitExceeded, SimulationError
from ..simulator.context import NodeContext
from ..simulator.message import payload_size
from ..simulator.network import SynchronousNetwork
from ..simulator.program import NodeProgram
from ..types import HPartition, Vertex

#: message announcing that a vertex has joined the current level and left
_LEAVING = "leaving"


class HPartitionProgram(NodeProgram):
    """Per-node peeling: join the first level where active degree ≤ A."""

    def __init__(self, threshold: int):
        self._threshold = threshold
        self._active_count = 0

    def on_start(self, ctx: NodeContext) -> None:
        # A departed neighbour announces _LEAVING exactly once (it halts in
        # the same activation), so a plain count of active neighbours is
        # enough — no materialized neighbour set.
        self._active_count = ctx.degree
        # Round 0 sends nothing: every vertex initially assumes all its
        # neighbours are active, which is true.  The active degree only
        # drops when a departure announcement arrives, so the node sleeps
        # between messages — except that a vertex already at or below the
        # threshold leaves in round 1 unprompted.
        if self._active_count <= self._threshold:
            ctx.wake_at(1)
        ctx.idle_until_message()

    def on_round(self, ctx: NodeContext) -> None:
        for payload in ctx.inbox.values():
            if payload == _LEAVING:
                self._active_count -= 1
        if self._active_count <= self._threshold:
            ctx.broadcast(_LEAVING)
            ctx.halt(ctx.round_number)  # H-index = peeling iteration (1-based)
        else:
            ctx.idle_until_message()

    def column_kernel(self, col):
        """Whole-graph peel as numpy columns: one array pass per level.

        Per round: every active node whose active degree is at or below
        the threshold leaves, broadcasting to its *full* neighbourhood
        (departed neighbours still receive-and-drop, exactly like the
        scalar engines count it); survivors' active degrees drop by the
        number of leaving neighbours.
        """
        np = col.np
        threshold = self._threshold

        def run() -> None:
            n = col.n
            deg = col.degrees
            active = np.ones(n, dtype=bool)
            active_deg = deg.copy()
            out = np.zeros(n, dtype=np.int64)
            leaving_size = payload_size(_LEAVING) if col.count_bytes else 0
            col.note_round(0, n, 0)
            remaining = n
            r = 0
            while remaining:
                r += 1
                if r > col.round_limit:
                    raise RoundLimitExceeded(col.round_limit, remaining)
                leave = active & (active_deg <= threshold)
                n_leave = int(np.count_nonzero(leave))
                if n_leave == 0:
                    # Every remaining node sleeps with no wakeup and no
                    # message in flight — the event engine's eager stall.
                    raise RoundLimitExceeded(col.round_limit, remaining)
                msgs = int(deg[leave].sum())
                col.note_round(
                    r,
                    n_leave,
                    msgs,
                    msgs * leaving_size,
                    leaving_size if msgs else 0,
                )
                out[leave] = r
                active &= ~leave
                remaining -= n_leave
                if remaining:
                    targets = col.neighbor_slices(leave)
                    if len(targets):
                        active_deg = active_deg - np.bincount(
                            targets, minlength=n
                        )
            col.outputs = dict(enumerate(out.tolist()))
            col.rounds = r

        return run


def degree_threshold(a: int, epsilon: float) -> int:
    """The H-partition degree bound A = ⌊(2+ε)·a⌋."""
    if a < 1:
        raise InvalidParameterError(f"arboricity bound must be >= 1, got {a}")
    if epsilon <= 0:
        raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
    return int((2.0 + epsilon) * a)


def expected_num_levels(n: int, epsilon: float) -> int:
    """Upper bound on ℓ from the geometric-decay argument (for round caps)."""
    if n <= 1:
        return 1
    shrink = (2.0 + epsilon) / 2.0
    return int(math.ceil(math.log(n) / math.log(shrink))) + 2


def compute_hpartition(
    network: SynchronousNetwork,
    a: int,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> HPartition:
    """Compute an H-partition with degree bound ⌊(2+ε)·a⌋ (Lemma 2.3).

    Runs in ℓ = O(log n) rounds.  If ``a`` underestimates the true
    arboricity the peeling can stall; this surfaces as a
    :class:`~repro.errors.SimulationError` naming the likely cause rather
    than an opaque round-limit crash.

    ``participants``/``part_of`` restrict the computation to induced
    subgraphs, as everywhere in this library.
    """
    threshold = degree_threshold(a, epsilon)
    n = network.graph.n
    # Generous cap: the bound is ~log n levels, but tiny epsilon inflates the
    # constant, so include slack plus an absolute floor.
    cap = 10 * expected_num_levels(max(2, n), epsilon) + 20
    try:
        result = network.run(
            lambda: HPartitionProgram(threshold),
            participants=participants,
            part_of=part_of,
            round_limit=cap + n,  # the peel provably needs <= n rounds
            global_params={"a": a, "epsilon": epsilon, "threshold": threshold},
        )
    except RoundLimitExceeded as exc:
        raise SimulationError(
            f"H-partition did not terminate within {exc.limit} rounds; the "
            f"arboricity bound a={a} is probably below the true arboricity"
        ) from exc
    index: Dict[Vertex, int] = {v: int(level) for v, level in result.outputs.items()}
    return HPartition(
        index=index,
        degree_bound=threshold,
        rounds=result.rounds,
        params={"a": a, "epsilon": epsilon},
    )
