"""Forests decomposition (Lemma 2.2(2), from BE08 [4]).

Given an H-partition, orient every edge towards the endpoint with the
lexicographically larger ``(H-index, id)`` pair.  This orientation is
acyclic and has out-degree at most the H-partition's degree bound
``A = ⌊(2+ε)·a⌋`` (all out-edges go to neighbours at the same or higher
level, of which there are at most A).  Each vertex then labels its outgoing
edges ``0 .. out_degree−1``; the edges with label ``f`` form forest ``f``,
because every vertex has at most one parent per label and the global
orientation is acyclic.  This realises an ``O(a)``-forests decomposition in
O(log n) rounds, and also Lemma 2.4 (acyclic complete orientation with
out-degree O(a)).

Distributed protocol after the H-partition: one round to exchange H-indices
(each vertex then knows the orientation of its incident edges locally), one
round for tails to announce the forest label of each out-edge to its head.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..simulator.context import NodeContext
from ..simulator.ledger import RoundLedger
from ..simulator.message import payload_size
from ..simulator.network import SynchronousNetwork
from ..simulator.program import NodeProgram
from ..types import (
    ForestsDecomposition,
    HPartition,
    Orientation,
    Vertex,
    canonical_edge,
)
from .hpartition import compute_hpartition


class _ForestLabelProgram(NodeProgram):
    """Exchange H-indices, then label out-edges with forest indices.

    Round 1: learn neighbours' levels, fix out-edge labels, tell each head
    its label.  Round 2: record the labels of in-edges (so *both* endpoints
    know the forest of every incident edge, as the paper requires) and halt.

    Output per node: ``(level, out_labels, in_labels)`` where ``out_labels``
    maps each out-neighbour to the forest label of that edge and
    ``in_labels`` the same for in-edges.
    """

    def __init__(self, level_of: Dict[Vertex, int]):
        self._level_of = level_of
        self._labels: Dict[Vertex, int] = {}

    def on_start(self, ctx: NodeContext) -> None:
        ctx.broadcast(self._level_of[ctx.node])

    def on_round(self, ctx: NodeContext) -> None:
        if ctx.round_number == 1:
            my_key = (self._level_of[ctx.node], ctx.node)
            out_neighbors = sorted(
                u for u, lvl in ctx.inbox.items() if (lvl, u) > my_key
            )
            self._labels = {u: f for f, u in enumerate(out_neighbors)}
            for u, f in self._labels.items():
                ctx.send(u, ("forest", f))
            return
        in_labels = {
            sender: payload[1]
            for sender, payload in ctx.inbox.items()
            if isinstance(payload, tuple) and payload[0] == "forest"
        }
        ctx.halt((self._level_of[ctx.node], self._labels, in_labels))

    def column_kernel(self, col):
        """Vectorized orientation + labeling: two array passes, no rounds loop.

        The (level, id)-lexicographic orientation is one comparison over
        the CSR-expanded edge list; forest labels are each out-edge's rank
        within its row (rows are sorted ascending, matching the scalar
        program's ``sorted`` + ``enumerate``).
        """
        np = col.np
        level_of = self._level_of

        def run() -> None:
            n = col.n
            if n == 0:
                col.note_round(0, 0, 0)
                return
            nbr = col.neighbors
            deg = col.degrees
            levels = np.fromiter(
                (level_of[v] for v in range(n)), np.int64, count=n
            )
            m2 = len(nbr)  # directed entries: 2m level messages in round 0
            if col.count_bytes and m2:
                sizes = col.int_payload_sizes(levels)
                b0 = int((deg * sizes).sum())
                has_nbrs = deg > 0
                mx0 = int(sizes[has_nbrs].max())
            else:
                b0 = mx0 = 0
            col.note_round(0, n, m2, b0, mx0)

            src = col.row_sources()
            lv_n, lv_s = levels[nbr], levels[src]
            out_mask = (lv_n > lv_s) | ((lv_n == lv_s) & (nbr > src))
            sel = np.flatnonzero(out_mask)
            tails = src[sel]
            heads = nbr[sel]
            counts = np.bincount(tails, minlength=n)
            starts = np.cumsum(counts) - counts
            # Rank of each out-edge within its (ascending-sorted) row ==
            # the scalar program's enumerate over sorted out-neighbours.
            labels = np.arange(len(sel), dtype=np.int64) - starts[tails]

            msgs1 = len(sel)  # one ("forest", f) per out-edge
            if col.count_bytes and msgs1:
                tag_overhead = payload_size(("forest", 0)) - payload_size(0)
                fsizes = col.int_payload_sizes(labels) + tag_overhead
                b1 = int(fsizes.sum())
                mx1 = int(fsizes.max())
            else:
                b1 = mx1 = 0
            col.note_round(1, n, msgs1, b1, mx1)
            col.note_round(2, n, 0)

            out_labels = [{} for _ in range(n)]
            in_labels = [{} for _ in range(n)]
            for t, h, f in zip(
                tails.tolist(), heads.tolist(), labels.tolist(),
                strict=True,
            ):
                out_labels[t][h] = f
                in_labels[h][t] = f
            lv = levels.tolist()
            col.outputs = {
                v: (lv[v], out_labels[v], in_labels[v]) for v in range(n)
            }
            col.rounds = 2

        return run


def hpartition_orientation(
    graph, hpartition: HPartition
) -> Orientation:
    """The acyclic (level, id)-lexicographic orientation induced by an
    H-partition (centralized assembly of locally-determined directions)."""
    direction = {}
    idx = hpartition.index
    for (u, v) in graph.edges:
        if u not in idx or v not in idx:
            continue
        head = v if (idx[v], v) > (idx[u], u) else u
        direction[canonical_edge(u, v)] = head
    return Orientation(
        direction=direction,
        algorithm="hpartition-orientation",
        params={"degree_bound": hpartition.degree_bound},
    )


def forests_decomposition(
    network: SynchronousNetwork,
    a: int,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
    hpartition: Optional[HPartition] = None,
) -> ForestsDecomposition:
    """Decompose (a subgraph of) the network into ≤ ⌊(2+ε)a⌋ oriented forests.

    Lemma 2.2(2): O(a) forests in O(log n) rounds.  An existing H-partition
    may be supplied to avoid recomputing it.
    """
    if hpartition is None:
        hpartition = compute_hpartition(
            network, a, epsilon, participants=participants, part_of=part_of
        )
    result = network.run(
        lambda: _ForestLabelProgram(hpartition.index),
        participants=participants,
        part_of=part_of,
        global_params={"a": a, "epsilon": epsilon},
    )
    forest_of: Dict[Tuple[int, int], int] = {}
    direction = {}
    num_forests = 0
    for v, out in result.outputs.items():
        _level, labels, _in_labels = out
        for head, f in labels.items():
            e = canonical_edge(v, head)
            forest_of[e] = f
            direction[e] = head
            num_forests = max(num_forests, f + 1)
    orientation = Orientation(
        direction=direction,
        rounds=hpartition.rounds + result.rounds,
        algorithm="forests-decomposition-orientation",
        params={"a": a, "epsilon": epsilon},
    )
    ledger = RoundLedger()
    ledger.add("hpartition", hpartition.rounds)
    ledger.add_run("forest_labeling", result)
    return ForestsDecomposition(
        forest_of=forest_of,
        orientation=orientation,
        num_forests=num_forests,
        rounds=hpartition.rounds + result.rounds,
        params={"a": a, "epsilon": epsilon, "degree_bound": hpartition.degree_bound},
        ledger=ledger,
    )
