"""Cole–Vishkin deterministic coin tossing: 3-coloring rooted forests [8].

The oldest tool in the area (and the engine behind the O(log* n) running
times everywhere): given a rooted forest — every vertex knows its parent —
iteratively shrink an n-coloring by comparing one's color with the
parent's bit representation.  Each iteration maps a b-bit color to
``2k + bit_k`` where k is the lowest bit position in which the vertex
differs from its parent; parent/child colors stay distinct, and the
palette collapses to {0,...,5} after log* n + O(1) iterations.

The 6→3 stage alternates *shift-down* rounds (every vertex adopts its
parent's color, so all siblings agree; roots rotate their color) with
*class removal* rounds (vertices of the processed class pick a free color
in {0,1,2} — free because after a shift-down the parent contributes one
forbidden color and all children share a single one).  Removing classes
5, 4, 3 takes six rounds.

Used in this library as a substrate algorithm on the forests produced by
:mod:`repro.core.forests`, in tests (trees are the cleanest fixture), and
in the forest-decomposition example.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Set

from ..errors import SimulationError
from ..simulator.context import NodeContext
from ..simulator.network import SynchronousNetwork
from ..simulator.program import NodeProgram
from ..types import ColorAssignment, Vertex


def cv_iterations_needed(n: int) -> int:
    """Iterations to shrink an n-coloring to {0..5} (computable globally).

    Follows the bit-length recurrence b → bitlen(2b − 1) from n down to the
    3-bit fixed point — exactly the computation every node performs
    locally from the globally-known n.
    """
    if n <= 1:
        return 1
    bits = max(3, (max(2, n) - 1).bit_length())
    iterations = 1  # final iteration lands the 3-bit colors inside {0..5}
    while bits > 3:
        bits = max(3, (2 * bits - 1).bit_length())
        iterations += 1
    return iterations


def _cv_step(color: int, parent_color: int, node: Vertex) -> int:
    """One Cole–Vishkin iteration at a single vertex."""
    diff = color ^ parent_color
    if diff == 0:
        raise SimulationError(
            f"Cole-Vishkin invariant broken at node {node}: "
            f"color {color} equals the parent's"
        )
    k = (diff & -diff).bit_length() - 1  # lowest differing bit index
    return 2 * k + ((color >> k) & 1)


class _ColeVishkinProgram(NodeProgram):
    """CV iterations, then (shift-down, remove class c) for c = 5, 4, 3.

    Message format is always ``(color, you_are_my_parent)``, so receivers
    learn both current colors and which neighbours are their children (the
    flag is True exactly on the child→parent direction of forest edges).
    Colors of non-forest neighbours are received but ignored.
    """

    def __init__(
        self,
        parent_of: Callable[[Vertex], Optional[Vertex]],
        iterations: int,
    ):
        self._parent_of = parent_of
        self._iterations = iterations
        self._color = 0
        self._parent: Optional[Vertex] = None
        self._children: Set[Vertex] = set()
        self._latest: Dict[Vertex, int] = {}

    # -- helpers -------------------------------------------------------
    def _announce(self, ctx: NodeContext) -> None:
        for u in ctx.neighbors:
            ctx.send(u, (self._color, u == self._parent))

    def _parent_color(self) -> int:
        if self._parent is None:
            return self._color ^ 1  # roots simulate a parent differing in bit 0
        return self._latest[self._parent]

    def _absorb(self, ctx: NodeContext) -> None:
        for sender, (color, names_me_parent) in ctx.inbox.items():
            self._latest[sender] = color
            if names_me_parent:
                self._children.add(sender)

    # -- protocol ------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> None:
        self._parent = self._parent_of(ctx.node)
        if self._parent is not None and self._parent not in ctx.neighbors:
            raise SimulationError(
                f"node {ctx.node}: parent {self._parent} is not a neighbour"
            )
        self._color = ctx.node
        self._announce(ctx)

    def on_round(self, ctx: NodeContext) -> None:
        self._absorb(ctx)
        r = ctx.round_number
        base = self._iterations
        if r <= base:
            self._color = _cv_step(self._color, self._parent_color(), ctx.node)
            self._announce(ctx)
            if r == base and self._color >= 6:
                raise SimulationError(
                    f"node {ctx.node}: color {self._color} >= 6 after "
                    f"{base} CV iterations"
                )
            return
        stage = r - base  # 1..6: shift, rm5, shift, rm4, shift, rm3
        if stage in (1, 3, 5):
            if self._parent is not None:
                self._color = self._parent_color()
            else:
                # Roots rotate *within {0,1,2}* so the shift never
                # reintroduces a class that a removal round already cleared;
                # any value ≠ the old color keeps parent/child legality
                # (children adopt the old color).
                self._color = next(c for c in range(3) if c != self._color)
            self._announce(ctx)
        else:
            processed = 5 - (stage - 2) // 2
            if self._color == processed:
                forbidden = set()
                if self._parent is not None:
                    forbidden.add(self._parent_color())
                forbidden.update(
                    self._latest[c] for c in self._children if c in self._latest
                )
                self._color = next(c for c in range(3) if c not in forbidden)
                self._announce(ctx)
            if processed == 3:
                ctx.halt(self._color)


def cole_vishkin_forest(
    network: SynchronousNetwork,
    parent_of: Mapping[Vertex, Optional[Vertex]],
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """3-color a rooted forest in O(log* n) rounds (Cole–Vishkin).

    ``parent_of`` maps every participating vertex to its forest parent
    (``None`` for roots).  Edges of the underlying network that are not
    parent/child links are ignored by the protocol, so this colors the
    *forest*, not the whole graph.
    """
    iterations = cv_iterations_needed(network.graph.n)
    result = network.run(
        lambda: _ColeVishkinProgram(lambda v: parent_of.get(v), iterations),
        participants=participants,
        part_of=part_of,
        global_params={"iterations": iterations},
    )
    return ColorAssignment(
        colors=dict(result.outputs),
        rounds=result.rounds,
        algorithm="cole-vishkin",
        params={"iterations": iterations},
    )
