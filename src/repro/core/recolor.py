"""The generic iterated-recoloring engine (Procedure Arb-Recolor and kin).

One engine powers three of the paper's building blocks:

* **Linial's O(Δ²)-coloring** [20] — zero defect allowed, conflicts counted
  against *all* neighbours;
* **Kuhn's ⌊Δ/p⌋-defective O(p²)-coloring** (Lemma 2.1, [17]) — positive
  defect budget, conflicts against all neighbours;
* **Algorithm Arb-Kuhn** (Section 5) — positive defect budget, conflicts
  counted against the node's *parents* under a fixed low-out-degree
  orientation, yielding an arbdefective coloring.

Each iteration is one synchronous round: every node knows its neighbours'
current colors (broadcast in the previous round), picks a point ``α`` of the
function family for which at most ``d`` conflicting neighbours agree with it
(Lemma 5.1 guarantees such a point exists), and adopts the new color
``⟨α, ϕ_χ(α)⟩``.  The color space shrinks from ``M`` to ``q² < M`` per
iteration, reaching its fixpoint after O(log* M) iterations.

The *defect budget schedule* decides how much of the target defect each
iteration may consume.  Two policies are implemented:

* ``"equal-split"`` (default): pre-divide the budget evenly over the
  estimated log*-many iterations, so the *final* iterations — which
  determine the fixpoint color count — retain real budget;
* ``"half-remaining"``: spend half the remaining budget per iteration.

The ablation ``benchmarks/bench_ablation_schedule.py`` measures both:
equal-split reaches a 2–3× smaller color fixpoint at the cost of one or
two extra iterations, because half-remaining exhausts the budget early
and leaves the fixpoint iteration with denominator ≈ 1.  Hence the
default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import InvalidParameterError, SimulationError
from ..families.polynomial import PolynomialFamily, select_family
from ..simulator.context import NodeContext
from ..simulator.network import SynchronousNetwork
from ..simulator.program import NodeProgram
from ..types import ColorAssignment, Vertex


@dataclass(frozen=True)
class RecolorStep:
    """One iteration of the engine: family + defect budget for the step."""

    family: PolynomialFamily
    defect_prev: int
    defect_new: int
    colors_in: int

    @property
    def colors_out(self) -> int:
        """Color-space size after the step (q²)."""
        return self.family.num_pairs


def compute_recolor_schedule(
    initial_colors: int,
    conflict_degree: int,
    defect_target: int,
    *,
    budget_policy: str = "equal-split",
    max_steps: int = 64,
) -> List[RecolorStep]:
    """Plan the iterations of the recoloring engine.

    Every node computes this schedule locally from globally-known parameters
    (initial color count M₀, conflict degree, defect target), so all nodes
    agree on the family used in each round without communication.

    The loop stops at the *fixpoint*: the first step whose output color
    space would not be strictly smaller than its input.  For
    ``defect_target = 0`` this reproduces Linial's iteration (fixpoint
    O(Δ²)); for ``defect_target = Δ/p`` it reproduces Kuhn's (fixpoint
    O(p²·polylog)).

    Parameters
    ----------
    budget_policy:
        ``"equal-split"`` (default) pre-divides the defect budget evenly
        over an estimated log*-many steps; ``"half-remaining"`` spends
        half the remaining budget per step.  See the module docstring and
        the A1 ablation bench for why equal-split is the default.
    """
    if initial_colors < 1:
        raise InvalidParameterError("schedule: initial_colors must be >= 1")
    if defect_target < 0:
        raise InvalidParameterError("schedule: defect_target must be >= 0")
    if budget_policy not in ("half-remaining", "equal-split"):
        raise InvalidParameterError(f"unknown budget policy {budget_policy!r}")

    # equal-split needs an estimate of the number of steps; log* M₀ + 3 is a
    # safe overestimate computed from globals only.
    est_steps = 3
    x = initial_colors
    while x > 2:
        x = max(2, x.bit_length())
        est_steps += 1

    steps: List[RecolorStep] = []
    colors = initial_colors
    d_used = 0
    while len(steps) < max_steps:
        remaining = defect_target - d_used
        if remaining <= 0:
            d_new = d_used
        elif budget_policy == "half-remaining":
            d_new = d_used + (remaining + 1) // 2
        else:  # equal-split
            d_new = min(defect_target, d_used + max(1, defect_target // est_steps))
        family = select_family(colors, conflict_degree, d_used, d_new)
        if family.num_pairs >= colors:
            # Try committing the entire remaining budget before giving up.
            if d_new < defect_target:
                family = select_family(colors, conflict_degree, d_used, defect_target)
                if family.num_pairs < colors:
                    steps.append(
                        RecolorStep(family, d_used, defect_target, colors)
                    )
                    colors = family.num_pairs
                    d_used = defect_target
                    continue
            break
        steps.append(RecolorStep(family, d_used, d_new, colors))
        colors = family.num_pairs
        d_used = d_new
    return steps


def schedule_final_colors(schedule: Sequence[RecolorStep], initial_colors: int) -> int:
    """Color-space size after running the whole schedule."""
    return schedule[-1].colors_out if schedule else initial_colors


class RecolorProgram(NodeProgram):
    """Node program executing a precomputed recoloring schedule.

    Parameters
    ----------
    schedule:
        The iterations, as returned by :func:`compute_recolor_schedule`.
        Identical at every node (computed from global parameters).
    initial_color_of:
        Callable giving each node its starting color in ``[0, M₀)``.  The
        default is the node id — the paper's "trivial legal n-coloring that
        uses each vertex Id as its color".
    conflict_set_of:
        Optional callable ``node -> collection of neighbour ids`` whose
        colors count as conflicts (the node's *parents* for Arb-Kuhn).
        ``None`` means all visible neighbours (Linial / Kuhn defective).
    """

    def __init__(
        self,
        schedule: Sequence[RecolorStep],
        initial_color_of: Optional[Callable[[Vertex], int]] = None,
        conflict_set_of: Optional[Callable[[Vertex], Sequence[Vertex]]] = None,
    ):
        self._schedule = schedule
        self._initial_color_of = initial_color_of
        self._conflict_set_of = conflict_set_of
        self._color: int = 0
        self._step_index = 0
        self._conflicts: Optional[FrozenSet[Vertex]] = None

    # ------------------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> None:
        if self._initial_color_of is None:
            self._color = ctx.node
        else:
            self._color = int(self._initial_color_of(ctx.node))
        if self._conflict_set_of is not None:
            self._conflicts = frozenset(self._conflict_set_of(ctx.node))
        if not self._schedule:
            ctx.halt(self._color)
            return
        ctx.broadcast(self._color)

    def on_round(self, ctx: NodeContext) -> None:
        step = self._schedule[self._step_index]
        family = step.family
        if self._color >= step.colors_in:
            raise SimulationError(
                f"node {ctx.node}: color {self._color} outside the expected "
                f"space [0, {step.colors_in}) at step {self._step_index}"
            )
        neighbor_colors = [
            payload
            for sender, payload in ctx.inbox.items()
            if self._conflicts is None or sender in self._conflicts
        ]
        self._color = _recolor_once(
            family, self._color, neighbor_colors, step.defect_new, ctx.node
        )
        self._step_index += 1
        ctx.broadcast(self._color)
        if self._step_index >= len(self._schedule):
            ctx.halt(self._color)

    def column_kernel(self, col):
        """Vectorized iterated recoloring (Linial / Kuhn defective).

        Only the all-neighbours conflict configuration vectorizes; a
        restricted ``conflict_set_of`` (Arb-Kuhn's parents) declines the
        kernel and runs on the event engine.  Per step: base-q coefficient
        columns of every node's color, then ascending-α passes — one
        Horner evaluation over all nodes plus a CSR-segmented agreement
        count per α — fixing each node at its first point within the
        defect budget, exactly :func:`_recolor_once`'s scan order.
        """
        if self._conflict_set_of is not None:
            return None
        np = col.np
        schedule = self._schedule
        initial_color_of = self._initial_color_of

        def run() -> None:
            n = col.n
            deg = col.degrees
            nbr = col.neighbors
            if initial_color_of is None:
                colors = np.arange(n, dtype=np.int64)
            else:
                colors = np.fromiter(
                    (int(initial_color_of(v)) for v in range(n)),
                    np.int64,
                    count=n,
                )
            if not schedule or n == 0:
                col.note_round(0, n, 0)
                col.outputs = dict(enumerate(colors.tolist()))
                return
            m2 = len(nbr)

            def broadcast_stats(vals):
                if col.count_bytes and m2:
                    sizes = col.int_payload_sizes(vals)
                    has_nbrs = deg > 0
                    return int((deg * sizes).sum()), int(sizes[has_nbrs].max())
                return 0, 0

            b, mx = broadcast_stats(colors)
            col.note_round(0, n, m2, b, mx)
            src = col.row_sources()
            for step_index, step in enumerate(schedule):
                family = step.family
                q = family.q
                bad = colors >= step.colors_in
                if bad.any():
                    v = int(np.flatnonzero(bad)[0])
                    raise SimulationError(
                        f"node {v}: color {int(colors[v])} outside the "
                        f"expected space [0, {step.colors_in}) at step "
                        f"{step_index}"
                    )
                digits = []
                x = colors.copy()
                for _ in range(family.degree + 1):
                    digits.append(x % q)
                    x //= q
                unfixed = np.ones(n, dtype=bool)
                new_colors = np.zeros(n, dtype=np.int64)
                for alpha in range(q):
                    vals = np.zeros(n, dtype=np.int64)
                    for coeff in reversed(digits):
                        vals = (vals * alpha + coeff) % q
                    agree = vals[nbr] == vals[src]
                    agreements = np.bincount(src[agree], minlength=n)
                    ok = unfixed & (agreements <= step.defect_new)
                    if ok.any():
                        new_colors[ok] = alpha * q + vals[ok]
                        unfixed &= ~ok
                        if not unfixed.any():
                            break
                if unfixed.any():
                    v = int(np.flatnonzero(unfixed)[0])
                    raise SimulationError(
                        f"node {v}: no valid recoloring point exists "
                        f"(family q={q}, degree={family.degree}, defect "
                        f"budget {step.defect_new}, {int(deg[v])} "
                        "conflicts) — family selection bug"
                    )
                colors = new_colors
                b, mx = broadcast_stats(colors)
                col.note_round(step_index + 1, n, m2, b, mx)
            col.outputs = dict(enumerate(colors.tolist()))
            col.rounds = len(schedule)

        return run


def _recolor_once(
    family: PolynomialFamily,
    own_color: int,
    conflict_colors: Sequence[int],
    allowed_defect: int,
    node: Vertex,
) -> int:
    """One application of Procedure Arb-Recolor at a single node.

    Finds the smallest point ``α`` at which at most ``allowed_defect``
    conflicting colors' polynomials agree with the node's own polynomial,
    and returns the encoded pair ⟨α, ϕ(α)⟩.  Lemma 5.1 guarantees such an
    ``α`` exists whenever the family was selected by
    :func:`~repro.families.polynomial.select_family` — a failure here is a
    bug, reported loudly.
    """
    q = family.q
    degree = family.degree
    own_digits = _digits(own_color, q, degree)
    other_digits = [
        _digits(c, q, degree) for c in conflict_colors
    ]
    for alpha in range(q):
        own_val = _horner(own_digits, alpha, q)
        agreements = 0
        ok = True
        for digs in other_digits:
            if _horner(digs, alpha, q) == own_val:
                agreements += 1
                if agreements > allowed_defect:
                    ok = False
                    break
        if ok:
            return family.encode_pair(alpha, own_val)
    raise SimulationError(
        f"node {node}: no valid recoloring point exists (family q={q}, "
        f"degree={degree}, defect budget {allowed_defect}, "
        f"{len(conflict_colors)} conflicts) — family selection bug"
    )


def _digits(x: int, q: int, degree: int) -> Tuple[int, ...]:
    """Base-q digits of x, least significant first, padded to degree+1."""
    out = []
    for _ in range(degree + 1):
        out.append(x % q)
        x //= q
    return tuple(out)


def _horner(digits: Tuple[int, ...], alpha: int, q: int) -> int:
    """Evaluate the polynomial with the given coefficient digits at alpha."""
    acc = 0
    for coeff in reversed(digits):
        acc = (acc * alpha + coeff) % q
    return acc


def run_recoloring(
    network: SynchronousNetwork,
    *,
    conflict_degree: int,
    defect_target: int,
    initial_colors: Optional[int] = None,
    initial_color_of: Optional[Callable[[Vertex], int]] = None,
    conflict_set_of: Optional[Callable[[Vertex], Sequence[Vertex]]] = None,
    participants=None,
    part_of=None,
    budget_policy: str = "equal-split",
    algorithm_name: str = "recolor",
) -> ColorAssignment:
    """Run the full iterated recoloring on (a subgraph of) a network.

    Returns a :class:`~repro.types.ColorAssignment` whose ``rounds`` is the
    number of communication rounds consumed (O(log* n)).
    """
    if initial_colors is None:
        initial_colors = max(network.graph.vertices, default=0) + 1
    schedule = compute_recolor_schedule(
        initial_colors,
        conflict_degree,
        defect_target,
        budget_policy=budget_policy,
    )
    result = network.run(
        lambda: RecolorProgram(schedule, initial_color_of, conflict_set_of),
        participants=participants,
        part_of=part_of,
        global_params={
            "conflict_degree": conflict_degree,
            "defect_target": defect_target,
        },
    )
    return ColorAssignment(
        colors=dict(result.outputs),
        rounds=result.rounds,
        algorithm=algorithm_name,
        params={
            "conflict_degree": conflict_degree,
            "defect_target": defect_target,
            "initial_colors": initial_colors,
            "final_color_space": schedule_final_colors(schedule, initial_colors),
            "iterations": len(schedule),
        },
    )
