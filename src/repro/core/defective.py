"""Kuhn's defective coloring (Lemma 2.1, SPAA'09 [17]).

An ``m``-defective ``p``-coloring allows each vertex up to ``m`` same-colored
neighbours; each color class then induces a subgraph of maximum degree ≤ m.
Lemma 2.1: a ⌊Δ/p⌋-defective O(p²)-coloring is computable in O(log* n)
rounds.  The paper uses it inside Procedure Partial-Orientation (Algorithm
1, line 3) to color every H-level quickly — defectively, but with a defect
small enough to become the orientation's *deficit*.

Implemented with the generic recoloring engine: conflicts counted against
all neighbours, defect budget ⌊Δ/p⌋ spent over the O(log* n) iterations.
With the explicit polynomial families the color count is O(p²·polylog p)
rather than O(p²) — see DESIGN.md §4.
"""

from __future__ import annotations

from typing import Optional

from ..errors import InvalidParameterError
from ..simulator.network import SynchronousNetwork
from ..types import ColorAssignment
from .recolor import run_recoloring


def kuhn_defective_coloring(
    network: SynchronousNetwork,
    p: int,
    max_degree: Optional[int] = None,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Compute a ⌊Δ/p⌋-defective O(p²)-coloring in O(log* n) rounds.

    Parameters
    ----------
    p:
        The trade-off knob: larger p means smaller defect but more colors.
    max_degree:
        Degree bound Δ of the visible graph (defaults to the true one).
    """
    if p < 1:
        raise InvalidParameterError(f"kuhn_defective_coloring: p must be >= 1, got {p}")
    if max_degree is None:
        max_degree = network.graph.max_degree
    defect = max_degree // p
    result = run_recoloring(
        network,
        conflict_degree=max_degree,
        defect_target=defect,
        participants=participants,
        part_of=part_of,
        algorithm_name="kuhn-defective",
    )
    result.params["p"] = p
    result.params["defect_bound"] = defect
    return result
