"""Procedure Legal-Coloring (Algorithm 2) and its parameterisations.

The paper's main results, Section 4.  The recursion: while the current
arboricity bound α exceeds p, run Procedure Arbdefective-Coloring with
k = t = p *in parallel on every current part*, refining the vertex
partition into p× more parts of ~(3+ε)/p× smaller arboricity; when α ≤ p,
legally color every part with its own palette of ⌊(2+ε)α⌋+1 colors
(Lemma 2.2(1): complete orientation + greedy along it).

Parameterisations reproduced here:

* :func:`oneshot_legal_coloring` — Lemma 4.1: a single Arbdefective-
  Coloring invocation with k = t = ⌈a^{1/3}⌉; O(a) colors in
  O(a^{2/3} log n) rounds.
* :func:`legal_coloring` — the general Algorithm 2 with explicit p.
* :func:`legal_coloring_theorem43` — p = ⌈a^{µ/2}⌉: O(a) colors in
  O(a^µ log n) rounds.
* :func:`legal_coloring_tradeoff45` — p = ⌈f(a)^{1/2}⌉ for a slowly
  growing f: a^{1+o(1)} colors in O(f(a) log a log n) rounds.
* :func:`legal_coloring_corollary46` — p = 2^{⌈1/η⌉}: O(a^{1+η}) colors
  in O(log a log n) rounds.
* :func:`delta_plus_one_via_arboricity` — Corollary 4.7: for graphs with
  a ≤ Δ^{1−ν}, an o(Δ)-coloring via Corollary 4.6 followed by a greedy
  reduction to Δ+1 colors.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from ..errors import InvalidParameterError
from ..simulator.network import SynchronousNetwork
from ..types import ColorAssignment, Vertex
from .arbdefective import arbdefective_coloring
from .color_reduction import greedy_reduction
from .orientation import complete_orientation, orientation_greedy_coloring


def _combined_parts(
    labels: Mapping[Vertex, int], part_of: Optional[Mapping[Vertex, object]]
) -> Dict[Vertex, object]:
    """Refine the caller's partition with our own labels."""
    return {
        v: ((part_of.get(v) if part_of is not None else None), lab)
        for v, lab in labels.items()
    }


def color_parts_legally(
    network: SynchronousNetwork,
    labels: Mapping[Vertex, int],
    alpha: int,
    epsilon: float = 0.5,
    *,
    part_of=None,
) -> ColorAssignment:
    """Color every part legally with a disjoint palette (Alg. 2, lines 17-20).

    Every part has arboricity ≤ alpha; each is colored with
    A = ⌊(2+ε)·alpha⌋+1 colors via complete orientation + greedy (Lemma
    2.2(1)), all parts in parallel.  Vertex ``v`` gets the final color
    ``label(v)·A + ψ(v)``.
    """
    alpha = max(1, alpha)
    parts = _combined_parts(labels, part_of)
    participants = list(labels.keys())
    orientation = complete_orientation(
        network, alpha, epsilon, participants=participants, part_of=parts
    )
    out_bound = int(orientation.params["out_degree_bound"])
    local = orientation_greedy_coloring(
        network,
        orientation,
        out_bound,
        participants=participants,
        part_of=parts,
    )
    palette = out_bound + 1
    colors = {v: labels[v] * palette + local.colors[v] for v in labels}
    return ColorAssignment(
        colors=colors,
        rounds=orientation.rounds + local.rounds,
        algorithm="color-parts-legally",
        params={"alpha": alpha, "palette_per_part": palette},
    )


def oneshot_legal_coloring(
    network: SynchronousNetwork,
    a: int,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Lemma 4.1: O(a)-coloring in O(a^{2/3} log n) time, one invocation.

    Arbdefective-Coloring with k = t = ⌈a^{1/3}⌉ splits the graph into
    ⌈a^{1/3}⌉ parts of arboricity ≤ (3+ε)a^{2/3}; coloring the parts in
    parallel with disjoint palettes yields O(a) colors overall.
    """
    if a < 1:
        raise InvalidParameterError(f"oneshot_legal_coloring: a must be >= 1")
    k = max(1, math.ceil(a ** (1.0 / 3.0)))
    decomposition = arbdefective_coloring(
        network, a, k=k, t=k, epsilon=epsilon,
        participants=participants, part_of=part_of,
    )
    final = color_parts_legally(
        network,
        decomposition.label,
        decomposition.arboricity_bound,
        epsilon,
        part_of=part_of,
    )
    return ColorAssignment(
        colors=final.colors,
        rounds=decomposition.rounds + final.rounds,
        algorithm="oneshot-legal (Lemma 4.1)",
        params={
            "a": a,
            "k": k,
            "epsilon": epsilon,
            "arbdefective_rounds": decomposition.rounds,
            "final_rounds": final.rounds,
        },
    )


def legal_coloring(
    network: SynchronousNetwork,
    a: int,
    p: int,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Procedure Legal-Coloring (Algorithm 2).

    Recursively decomposes the graph with Arbdefective-Coloring
    (k = t = p) until every part has arboricity ≤ p, then colors all parts
    in parallel with disjoint palettes.  See the module docstring for the
    parameterisations and their guarantees.
    """
    if a < 1:
        raise InvalidParameterError(f"legal_coloring: a must be >= 1, got {a}")
    if p < 2:
        raise InvalidParameterError(f"legal_coloring: p must be >= 2, got {p}")
    graph = network.graph
    if participants is None:
        participants = list(graph.vertices)
    labels: Dict[Vertex, int] = {v: 0 for v in participants}
    alpha = a
    total_rounds = 0
    iterations = 0
    while alpha > p:
        parts = _combined_parts(labels, part_of)
        decomposition = arbdefective_coloring(
            network, alpha, k=p, t=p, epsilon=epsilon,
            participants=participants, part_of=parts,
        )
        total_rounds += decomposition.rounds
        labels = {v: labels[v] * p + decomposition.label[v] for v in labels}
        iterations += 1
        if decomposition.arboricity_bound >= alpha:
            # p too small to make progress ((3+ε)/p ≥ 1); stop refining —
            # the final stage still produces a legal coloring, only with
            # more colors per part.
            alpha = decomposition.arboricity_bound
            break
        alpha = max(1, decomposition.arboricity_bound)
    final = color_parts_legally(
        network, labels, alpha, epsilon, part_of=part_of
    )
    total_rounds += final.rounds
    return ColorAssignment(
        colors=final.colors,
        rounds=total_rounds,
        algorithm="legal-coloring (Algorithm 2)",
        params={
            "a": a,
            "p": p,
            "epsilon": epsilon,
            "iterations": iterations,
            "final_alpha": alpha,
            "palette_per_part": final.params["palette_per_part"],
        },
    )


def legal_coloring_theorem43(
    network: SynchronousNetwork,
    a: int,
    mu: float,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Theorem 4.3: O(a) colors in O(a^µ log n) rounds, p = ⌈a^{µ/2}⌉."""
    if not (0.0 < mu <= 2.0):
        raise InvalidParameterError(f"theorem43: mu must be in (0, 2], got {mu}")
    # The paper assumes a is large enough that p ≥ 16; at bench scale we
    # clamp to the smallest p for which an iteration still shrinks the
    # arboricity (p > 3 + ε).
    p = max(4, math.ceil(a ** (mu / 2.0)))
    result = legal_coloring(
        network, a, p, epsilon, participants=participants, part_of=part_of
    )
    result.algorithm = "legal-coloring (Theorem 4.3)"
    result.params["mu"] = mu
    return result


def legal_coloring_corollary44(
    network: SynchronousNetwork,
    a: int,
    mu: float,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Corollary 4.4: O(a) colors in O(a^µ + log^{1+µ} n) rounds.

    For graphs of *superlogarithmic* arboricity the paper sharpens Theorem
    4.3 by using the larger parameter p = ⌊a^{µ/2} / log n⌋, which makes
    the while-loop constant-depth while the final per-part coloring costs
    only O(p log n) = O(a^µ) rounds.  When a is not superlogarithmic (the
    computed p would be < 4) this degrades gracefully to Theorem 4.3's
    parameterisation, matching the corollary's two-regime statement.
    """
    if not (0.0 < mu <= 2.0):
        raise InvalidParameterError(f"corollary44: mu must be in (0, 2], got {mu}")
    n = max(2, network.graph.n)
    log_n = max(1.0, math.log2(n))
    p_super = int(a ** (mu / 2.0) / log_n)
    if p_super >= 4:
        p = p_super
        regime = "superlogarithmic"
    else:
        p = max(4, math.ceil(a ** (mu / 2.0)))
        regime = "theorem-4.3-fallback"
    result = legal_coloring(
        network, a, p, epsilon, participants=participants, part_of=part_of
    )
    result.algorithm = "legal-coloring (Corollary 4.4)"
    result.params["mu"] = mu
    result.params["regime"] = regime
    return result


def legal_coloring_tradeoff45(
    network: SynchronousNetwork,
    a: int,
    f_value: int,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Theorem 4.5: a^{1+o(1)} colors in O(f(a)·log a·log n) rounds.

    ``f_value`` is the (caller-evaluated) value of the slowly-growing
    function f(a) = ω(1); the procedure uses p = ⌈√f(a)⌉.
    """
    if f_value < 4:
        f_value = 4
    # clamp as in Theorem 4.3: the recursion shrinks only for p > 3 + ε
    p = max(4, math.ceil(math.sqrt(f_value)))
    result = legal_coloring(
        network, a, p, epsilon, participants=participants, part_of=part_of
    )
    result.algorithm = "legal-coloring (Theorem 4.5)"
    result.params["f_value"] = f_value
    return result


def legal_coloring_corollary46(
    network: SynchronousNetwork,
    a: int,
    eta: float,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Corollary 4.6: O(a^{1+η}) colors in O(log a·log n) rounds.

    Uses the constant parameter p = 2^{⌈1/η⌉}, so the recursion runs for
    O(log a / log p) iterations, each costing O(p² log n) rounds.
    """
    if eta <= 0:
        raise InvalidParameterError(f"corollary46: eta must be > 0, got {eta}")
    exponent = min(16, math.ceil(1.0 / eta))
    p = max(4, 2 ** exponent)
    result = legal_coloring(
        network, a, p, epsilon, participants=participants, part_of=part_of
    )
    result.algorithm = "legal-coloring (Corollary 4.6)"
    result.params["eta"] = eta
    return result


def delta_plus_one_via_arboricity(
    network: SynchronousNetwork,
    a: int,
    nu: float = 0.25,
    epsilon: float = 0.5,
    *,
    max_degree: Optional[int] = None,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Corollary 4.7: (Δ+1)-coloring when a ≤ Δ^{1−ν}, in polylog time.

    Computes an O(a^{1+ν})-coloring (Corollary 4.6 with η = ν); because
    a^{1+ν} ≤ Δ^{1−ν²} = o(Δ), a final greedy class-by-class reduction
    (o(Δ) additional rounds) brings it down to exactly Δ+1 colors.
    """
    if max_degree is None:
        max_degree = network.graph.max_degree
    base = legal_coloring_corollary46(
        network, a, eta=nu, epsilon=epsilon,
        participants=participants, part_of=part_of,
    )
    normalized = base.normalized()
    m = normalized.num_colors
    target = max_degree + 1
    if m <= target:
        result = ColorAssignment(
            colors=normalized.colors,
            rounds=base.rounds,
            algorithm="delta-plus-one-via-arboricity (Corollary 4.7)",
            params={"a": a, "nu": nu, "pre_reduction_colors": m},
        )
        return result
    reduced = greedy_reduction(
        network,
        normalized.colors,
        m,
        target,
        participants=participants,
        part_of=part_of,
    )
    return ColorAssignment(
        colors=reduced.colors,
        rounds=base.rounds + reduced.rounds,
        algorithm="delta-plus-one-via-arboricity (Corollary 4.7)",
        params={
            "a": a,
            "nu": nu,
            "max_degree": max_degree,
            "pre_reduction_colors": m,
        },
    )
