"""Arbdefective colorings (Section 3): the paper's new concept.

An *r-arbdefective k-coloring* uses k colors such that every color class
induces a subgraph of **arboricity** at most r (Definition 2.1) — the
arboricity analogue of defective coloring, and the reason the paper's
recursion works: unlike defective coloring, the product (number of parts) ×
(arboricity per part) stays O(a).

* :func:`simple_arbdefective` — Procedure Simple-Arbdefective (Theorem
  3.2): along an acyclic (partial) orientation of out-degree ≤ m and
  deficit ≤ τ, every vertex waits for its parents and picks the color of
  ``[k]`` least used among them; the Pigeonhole principle bounds the
  same-colored parents by ⌊m/k⌋, so each class has an acyclic orientation
  of out-degree ≤ τ + ⌊m/k⌋ after completing the unoriented edges (Lemmas
  3.1 + 2.5).  Runs in length(σ)+1 rounds.
* :func:`arbdefective_coloring` — Procedure Arbdefective-Coloring
  (Corollary 3.6): Partial-Orientation(t) then Simple-Arbdefective(k),
  giving an ⌊a/t + (2+ε)a/k⌋-arbdefective k-coloring in O(t² log n)
  rounds.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..errors import InvalidParameterError
from ..simulator.context import NodeContext
from ..simulator.network import SynchronousNetwork
from ..simulator.program import NodeProgram
from ..types import Decomposition, Orientation, Vertex
from .orientation import partial_orientation


class _SimpleArbdefectiveProgram(NodeProgram):
    """Wait for all parents; pick the color least used among them."""

    def __init__(self, parents_of: Callable[[Vertex], Sequence[Vertex]], k: int):
        self._parents_of = parents_of
        self._k = k
        self._parents: frozenset = frozenset()
        self._parent_colors: Dict[Vertex, int] = {}

    def _decide(self, ctx: NodeContext) -> None:
        counts = [0] * self._k
        for c in self._parent_colors.values():
            counts[c] += 1
        color = min(range(self._k), key=lambda c: (counts[c], c))
        ctx.broadcast(color)
        ctx.halt(color)

    def on_start(self, ctx: NodeContext) -> None:
        self._parents = frozenset(self._parents_of(ctx.node))
        if not self._parents:
            self._decide(ctx)

    def on_round(self, ctx: NodeContext) -> None:
        for sender, payload in ctx.inbox.items():
            if sender in self._parents:
                self._parent_colors[sender] = payload
        if len(self._parent_colors) == len(self._parents):
            self._decide(ctx)


def simple_arbdefective(
    network: SynchronousNetwork,
    orientation: Orientation,
    k: int,
    *,
    out_degree_bound: int,
    deficit_bound: int = 0,
    participants=None,
    part_of=None,
) -> Decomposition:
    """Procedure Simple-Arbdefective (Theorem 3.2).

    Given an acyclic (partial) orientation of length ℓ, out-degree ≤ m and
    deficit ≤ τ, produces a (τ + ⌊m/k⌋)-arbdefective k-coloring in O(ℓ)
    rounds.
    """
    if k < 1:
        raise InvalidParameterError(f"simple_arbdefective: k must be >= 1, got {k}")
    graph = network.graph
    active = set(participants) if participants is not None else None

    def parents_of(v: Vertex) -> List[Vertex]:
        if part_of is not None:
            label = part_of.get(v)
            nbrs = [
                u
                for u in graph.neighbors(v)
                if (active is None or u in active) and part_of.get(u) == label
            ]
        elif active is not None:
            nbrs = [u for u in graph.neighbors(v) if u in active]
        else:
            # unrestricted run: the graph's cached neighbour tuple, no copy
            nbrs = graph.neighbors(v)
        return orientation.parents_of(v, nbrs)

    result = network.run(
        lambda: _SimpleArbdefectiveProgram(parents_of, k),
        participants=participants,
        part_of=part_of,
        global_params={"k": k},
    )
    bound = deficit_bound + out_degree_bound // k
    return Decomposition(
        label=dict(result.outputs),
        arboricity_bound=bound,
        rounds=result.rounds,
        params={
            "k": k,
            "out_degree_bound": out_degree_bound,
            "deficit_bound": deficit_bound,
            "orientation": orientation,
        },
    )


def arbdefective_coloring(
    network: SynchronousNetwork,
    a: int,
    k: int,
    t: int,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> Decomposition:
    """Procedure Arbdefective-Coloring (Corollary 3.6).

    Computes an ⌊a/t + (2+ε)·a/k⌋-arbdefective k-coloring of (a subgraph
    of) the network in O(t² log n) rounds: a Partial-Orientation with
    parameter t followed by Simple-Arbdefective with parameter k.

    The returned :class:`~repro.types.Decomposition` stores the partial
    orientation in ``params["orientation"]`` — it certifies the arboricity
    bound of every color class (restrict and complete it: out-degree ≤
    deficit + ⌊out_degree/k⌋, then Lemma 2.5).
    """
    if a < 1:
        raise InvalidParameterError(f"arbdefective_coloring: a must be >= 1, got {a}")
    orientation = partial_orientation(
        network, a, t, epsilon, participants=participants, part_of=part_of
    )
    out_bound = int(orientation.params["out_degree_bound"])
    deficit = int(orientation.params["deficit_bound"])
    decomposition = simple_arbdefective(
        network,
        orientation,
        k,
        out_degree_bound=out_bound,
        deficit_bound=deficit,
        participants=participants,
        part_of=part_of,
    )
    total_rounds = orientation.rounds + decomposition.rounds
    return Decomposition(
        label=decomposition.label,
        arboricity_bound=decomposition.arboricity_bound,
        rounds=total_rounds,
        params={
            "a": a,
            "k": k,
            "t": t,
            "epsilon": epsilon,
            "out_degree_bound": out_bound,
            "deficit_bound": deficit,
            "orientation": orientation,
        },
    )
