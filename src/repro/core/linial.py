"""Linial's O(Δ²)-coloring in O(log* n) rounds (FOCS'87 [19, 20]).

The historical baseline the paper improves on: a legal coloring with O(Δ²)
colors — the quadratic barrier Linial asked whether one can beat in
polylogarithmic time, and which the paper's Sections 4–5 do beat.

Implemented as the zero-defect instance of the generic recoloring engine
(:mod:`repro.core.recolor`) with conflicts counted against all neighbours:
each iteration maps the current M-coloring through a degree-D polynomial
family over GF(q) with q > D·Δ, shrinking M to q² until the fixpoint
q = O(Δ) is reached after O(log* n) iterations.
"""

from __future__ import annotations

from typing import Optional

from ..simulator.network import SynchronousNetwork
from ..types import ColorAssignment
from .recolor import run_recoloring


def linial_coloring(
    network: SynchronousNetwork,
    max_degree: Optional[int] = None,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Compute a legal O(Δ²)-coloring in O(log* n) rounds.

    ``max_degree`` defaults to the true maximum degree of the graph (a
    globally-known parameter in the paper's model).  When running on a
    subgraph (``participants``/``part_of``), pass the degree bound of the
    *visible* graph.
    """
    if max_degree is None:
        max_degree = network.graph.max_degree
    return run_recoloring(
        network,
        conflict_degree=max_degree,
        defect_target=0,
        participants=participants,
        part_of=part_of,
        algorithm_name="linial",
    )
