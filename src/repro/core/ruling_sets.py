"""Deterministic ruling sets (Awerbuch–Goldberg–Luby–Plotkin [3]).

An *(α, β)-ruling set* is a vertex set U with pairwise distance ≥ α whose
β-neighbourhoods cover V.  Ruling sets are the engine of the
network-decomposition line of work ([3], [21], [25]) that the paper's
§1.4 contrasts itself against: those algorithms activate only a fraction
of the network at a time, which is exactly the inefficiency the paper's
parallel recursion avoids.  We implement the classic bit-by-bit
construction so the comparison is runnable, and because ruling sets
remain broadly useful machinery.

The algorithm (for α = 2): process the b = ⌈log₂ n⌉ id bits from least to
most significant.  At level i every vertex belongs to the group of its
ids' bits above i; the groups with bit i = 0 and bit i = 1 merge.  Rulers
of the 0-side announce themselves (one round); a 1-side ruler survives
unless a same-group 0-side ruler is adjacent.  Inductively every merged
group holds an independent ruling set, and a vertex's distance to its
group's set grows by at most α−1 per level, giving a
(2, O(log n))-ruling set in O(log n) rounds.
"""

from __future__ import annotations

from typing import Set

from ..simulator.context import NodeContext
from ..simulator.network import SynchronousNetwork
from ..simulator.program import NodeProgram
from ..types import MISResult, Vertex


class _RulingSetProgram(NodeProgram):
    """Bit-by-bit (2, 2·bits)-ruling set.

    Protocol per level (1 round each): rulers whose current bit is 0
    broadcast ``(level, group-prefix)``; a ruler with bit 1 abdicates when
    it hears a same-prefix announcement from a neighbour.  All vertices
    start as rulers of their singleton groups.
    """

    def __init__(self, bits: int):
        self._bits = bits
        self._is_ruler = True

    def _prefix_above(self, ctx: NodeContext, level: int) -> int:
        """The id bits strictly above ``level`` (the merged-group key)."""
        return ctx.node >> (level + 1)

    def on_start(self, ctx: NodeContext) -> None:
        if self._bits == 0:
            ctx.halt(True)
            return
        self._announce(ctx, level=0)
        self._sleep(ctx, after_level=0)

    def _announce(self, ctx: NodeContext, level: int) -> None:
        bit = (ctx.node >> level) & 1
        if self._is_ruler and bit == 0:
            ctx.broadcast((level, self._prefix_above(ctx, level)))

    def _sleep(self, ctx: NodeContext, after_level: int) -> None:
        """Sleep until the next level at which this node acts unprompted.

        Unprompted action happens only at a level where the node announces
        (it is a ruler and the level's bit is 0) and at level ``bits`` (the
        halt); abdications in between are message-triggered, so the
        scheduler's wake-on-message covers them.
        """
        wake = self._bits
        if self._is_ruler:
            for level in range(after_level + 1, self._bits):
                if (ctx.node >> level) & 1 == 0:
                    wake = level
                    break
        ctx.wake_at(wake)  # round number == level number throughout
        ctx.idle_until_message()

    def on_round(self, ctx: NodeContext) -> None:
        level = ctx.round_number - 1  # the level whose announcements arrived
        bit = (ctx.node >> level) & 1
        if self._is_ruler and bit == 1:
            my_group = self._prefix_above(ctx, level)
            for payload in ctx.inbox.values():
                if payload == (level, my_group):
                    self._is_ruler = False
                    break
        next_level = level + 1
        if next_level >= self._bits:
            ctx.halt(self._is_ruler)
            return
        self._announce(ctx, level=next_level)
        self._sleep(ctx, after_level=next_level)


def ruling_set(
    network: SynchronousNetwork,
    *,
    participants=None,
    part_of=None,
) -> MISResult:
    """Compute a (2, O(log n))-ruling set in O(log n) rounds.

    Returns the set as an :class:`~repro.types.MISResult` (it is an
    independent set; it *dominates within O(log n) hops* rather than one,
    so it is not an MIS — use :func:`repro.core.mis.mis_arboricity` for
    that).
    """
    ids = network.graph.vertices
    max_id = max(ids, default=0)
    bits = max(1, int(max_id).bit_length())
    result = network.run(
        lambda: _RulingSetProgram(bits),
        participants=participants,
        part_of=part_of,
        global_params={"bits": bits},
    )
    members = {v for v, ruler in result.outputs.items() if ruler}
    return MISResult(
        members=members,
        rounds=result.rounds,
        algorithm="aglp-ruling-set",
        params={"bits": bits, "alpha": 2, "beta_bound": 2 * bits},
    )


def ruling_set_domination_radius(graph, members: Set[Vertex]) -> int:
    """Measured β: the max distance from any vertex to the ruling set.

    Centralized BFS from all members (verification helper).  Returns a
    value > n when some vertex is unreachable from every member (e.g. a
    component without rulers — which the construction never produces).
    """
    if not members:
        return graph.n + 1
    from collections import deque

    n = graph.n
    off, nbr = graph.csr()
    index_of = graph.index_of
    dist = [-1] * n
    queue = deque()
    for v in members:
        i = index_of(v)
        dist[i] = 0
        queue.append(i)
    reached = len(queue)
    while queue:
        i = queue.popleft()
        d = dist[i] + 1
        for j in nbr[off[i] : off[i + 1]]:
            if dist[j] < 0:
                dist[j] = d
                reached += 1
                queue.append(j)
    if reached < n:
        return n + 1
    return max(dist, default=0)
