"""Section 5: Algorithm Arb-Kuhn and the fast-coloring tradeoffs.

Arb-Kuhn extends Kuhn's defective-coloring algorithm to bounded-arboricity
graphs: fix an acyclic complete orientation σ of out-degree
A = ⌊(2+ε)a⌋ (from the H-partition, O(log n) rounds), then run the
iterated recoloring of Procedure Arb-Recolor with conflicts counted only
against *parents* under σ.  After O(log* n) iterations every vertex has at
most d same-colored parents, so each color class — with σ restricted to it
— has an acyclic orientation of out-degree ≤ d, hence arboricity ≤ d
(Lemma 2.5): a d-arbdefective O((A/d)²)-coloring in O(log n) rounds total.

On top of it:

* :func:`theorem52_fast_coloring` — Theorem 5.2: an O(a²/g(a))-coloring in
  O(log g(a) · log n) rounds, by decomposing with defect d = f(a) and
  coloring every class with Corollary 4.6 in parallel.
* :func:`theorem53_tradeoff` — Theorem 5.3: an O(a·t)-coloring in
  O((a/t)^µ · log n) rounds, by decomposing with defect a/t and coloring
  every class with Theorem 4.3 (Procedure Legal-Coloring) in parallel.
"""

from __future__ import annotations

import math
from typing import List

from ..errors import InvalidParameterError
from ..simulator.network import SynchronousNetwork
from ..types import ColorAssignment, Decomposition, Vertex
from .forests import hpartition_orientation
from .hpartition import compute_hpartition
from .legal import legal_coloring_corollary46, legal_coloring_theorem43
from .recolor import run_recoloring


class _LevelExchangeRounds:
    """The one extra round nodes spend learning neighbours' H-indices.

    The (level, id) orientation is locally computable once every node knows
    its neighbours' levels; we account for that single exchange round
    explicitly instead of burying it.
    """

    ROUNDS = 1


def arb_kuhn_decomposition(
    network: SynchronousNetwork,
    a: int,
    defect: int,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> Decomposition:
    """Algorithm Arb-Kuhn: a ``defect``-arbdefective O((a/defect)²·polylog)-
    coloring in O(log n) rounds.

    ``defect`` is the arboricity allowed per color class (the paper's d;
    d = a/t yields the a/t-arbdefective O(t²)-coloring of Section 5).
    """
    if a < 1:
        raise InvalidParameterError(f"arb_kuhn: a must be >= 1, got {a}")
    if defect < 0:
        raise InvalidParameterError(f"arb_kuhn: defect must be >= 0, got {defect}")
    graph = network.graph
    hp = compute_hpartition(
        network, a, epsilon, participants=participants, part_of=part_of
    )
    orientation = hpartition_orientation(graph, hp)
    out_bound = hp.degree_bound
    active = set(participants) if participants is not None else None

    def parents_of(v: Vertex) -> List[Vertex]:
        if part_of is not None:
            label = part_of.get(v)
            nbrs = [
                u
                for u in graph.neighbors(v)
                if (active is None or u in active) and part_of.get(u) == label
            ]
        elif active is not None:
            nbrs = [u for u in graph.neighbors(v) if u in active]
        else:
            # unrestricted run: the graph's cached neighbour tuple, no copy
            nbrs = graph.neighbors(v)
        return orientation.parents_of(v, nbrs)

    recolored = run_recoloring(
        network,
        conflict_degree=out_bound,
        defect_target=defect,
        conflict_set_of=parents_of,
        participants=participants,
        part_of=part_of,
        algorithm_name="arb-kuhn",
    )
    total_rounds = hp.rounds + _LevelExchangeRounds.ROUNDS + recolored.rounds
    return Decomposition(
        label=dict(recolored.colors),
        arboricity_bound=defect,
        rounds=total_rounds,
        params={
            "a": a,
            "defect": defect,
            "epsilon": epsilon,
            "out_degree_bound": out_bound,
            "color_space": recolored.params["final_color_space"],
            "orientation": orientation,
        },
    )


def theorem52_fast_coloring(
    network: SynchronousNetwork,
    a: int,
    d: int,
    eta: float = 0.25,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Theorem 5.2: O(a²/g(a)) colors in O(log g(a) · log n) rounds.

    ``d`` plays the role of f(a) = ω(1): Arb-Kuhn decomposes the graph into
    O((a/d)²) classes of arboricity ≤ d; every class is colored with
    O(d^{1+η}) colors in O(log d · log n) rounds (Corollary 4.6) using a
    disjoint palette, for O(a²/d^{1−η}) colors overall, i.e.
    g(a) = d^{1−η}.
    """
    if d < 1:
        raise InvalidParameterError(f"theorem52: d must be >= 1, got {d}")
    decomposition = arb_kuhn_decomposition(
        network, a, defect=d, epsilon=epsilon,
        participants=participants, part_of=part_of,
    )
    labels = decomposition.label
    parts = {
        v: ((part_of.get(v) if part_of is not None else None), lab)
        for v, lab in labels.items()
    }
    per_part = legal_coloring_corollary46(
        network,
        max(1, d),
        eta=eta,
        epsilon=epsilon,
        participants=list(labels.keys()),
        part_of=parts,
    )
    # Per-part colorings already use values label·palette+ψ only when the
    # caller separates palettes; here we separate them explicitly.
    palette = max(per_part.colors.values()) + 1 if per_part.colors else 1
    colors = {v: labels[v] * palette + per_part.colors[v] for v in labels}
    return ColorAssignment(
        colors=colors,
        rounds=decomposition.rounds + per_part.rounds,
        algorithm="fast-coloring (Theorem 5.2)",
        params={
            "a": a,
            "d": d,
            "eta": eta,
            "g_value": d ** (1.0 - eta),
            "num_classes": decomposition.num_parts,
            "class_color_space": decomposition.params["color_space"],
        },
    )


def theorem53_tradeoff(
    network: SynchronousNetwork,
    a: int,
    t: int,
    mu: float = 0.5,
    epsilon: float = 0.5,
    *,
    participants=None,
    part_of=None,
) -> ColorAssignment:
    """Theorem 5.3: O(a·t) colors in O((a/t)^µ · log n) rounds.

    Arb-Kuhn with defect ⌈a/t⌉ splits the graph into O(t²) classes of
    arboricity ≤ a/t; Procedure Legal-Coloring (Theorem 4.3) colors every
    class with O(a/t) colors in O((a/t)^µ log n) rounds in parallel.
    """
    if t < 1 or t > a:
        raise InvalidParameterError(f"theorem53: need 1 <= t <= a, got t={t}, a={a}")
    alpha = max(1, math.ceil(a / t))
    decomposition = arb_kuhn_decomposition(
        network, a, defect=alpha, epsilon=epsilon,
        participants=participants, part_of=part_of,
    )
    labels = decomposition.label
    parts = {
        v: ((part_of.get(v) if part_of is not None else None), lab)
        for v, lab in labels.items()
    }
    per_part = legal_coloring_theorem43(
        network,
        alpha,
        mu=mu,
        epsilon=epsilon,
        participants=list(labels.keys()),
        part_of=parts,
    )
    palette = max(per_part.colors.values()) + 1 if per_part.colors else 1
    colors = {v: labels[v] * palette + per_part.colors[v] for v in labels}
    return ColorAssignment(
        colors=colors,
        rounds=decomposition.rounds + per_part.rounds,
        algorithm="tradeoff-coloring (Theorem 5.3)",
        params={
            "a": a,
            "t": t,
            "mu": mu,
            "alpha_per_class": alpha,
            "num_classes": decomposition.num_parts,
        },
    )
