"""Command-line interface: ``python -m repro``.

Lets a user run any algorithm of the library on any generated graph family
without writing code::

    python -m repro color --family forest_union --n 500 --a 8 --algorithm cor46
    python -m repro mis --family preferential --n 1000 --a 3
    python -m repro decompose --family planar --n 400
    python -m repro families
    python -m repro sweep --report
    python -m repro sweep --spec my_sweep.json --workers 8
    python -m repro sweep --workers 4 --trace sweep-trace.jsonl
    python -m repro sweep --executor socket --spawn-workers 4
    python -m repro worker --connect 127.0.0.1:7000
    python -m repro report trace sweep-trace.jsonl
    python -m repro check src benchmarks examples --format json
    python -m repro check --list-rules

Output is a small plain-text report: the instance, the result (colors /
set size / decomposition stats), the round count, and the verification
verdict.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, Optional

from . import SynchronousNetwork
from .analysis import render_table
from .core import (
    arbdefective_coloring,
    be08_coloring,
    compute_hpartition,
    forests_decomposition,
    legal_coloring_auto,
    legal_coloring_corollary46,
    legal_coloring_theorem43,
    linial_coloring,
    luby_coloring,
    luby_mis,
    mis_arboricity,
    oneshot_legal_coloring,
    theorem52_fast_coloring,
    theorem53_tradeoff,
)
from .graphs import (
    GeneratedGraph,
    forest_union,
    grid,
    hypercube,
    low_arboricity_high_degree,
    planar_triangulation,
    preferential_attachment,
    random_geometric,
    random_regular,
    random_tree,
    ring,
)
from .verify import (
    check_forests_decomposition,
    check_hpartition,
    check_legal_coloring,
    check_mis,
)

#: family name -> builder(n, a, seed)
FAMILIES: Dict[str, Callable[[int, int, int], GeneratedGraph]] = {
    "forest_union": lambda n, a, seed: forest_union(n, a, seed=seed),
    "planar": lambda n, a, seed: planar_triangulation(n, seed=seed),
    "grid": lambda n, a, seed: grid(max(2, int(n**0.5)), max(2, int(n**0.5))),
    "tree": lambda n, a, seed: random_tree(n, seed=seed),
    "ring": lambda n, a, seed: ring(max(3, n)),
    "regular": lambda n, a, seed: random_regular(n, max(2, 2 * a), seed=seed),
    "preferential": lambda n, a, seed: preferential_attachment(n, max(1, a), seed=seed),
    "hubs": lambda n, a, seed: low_arboricity_high_degree(n, a, seed=seed),
    "hypercube": lambda n, a, seed: hypercube(max(2, (n - 1).bit_length())),
    # same name as the repro.experiments registry so sweep specs and the
    # classic commands agree on family vocabulary
    "random_geometric": lambda n, a, seed: random_geometric(n, 0.08, seed=seed),
}

COLORING_ALGORITHMS = {
    "cor46": ("Corollary 4.6: O(a^1.5) colors, O(log a log n) rounds",
              lambda net, a, seed: legal_coloring_corollary46(net, a, eta=0.5)),
    "thm43": ("Theorem 4.3: O(a) colors, O(a^0.5 log n) rounds",
              lambda net, a, seed: legal_coloring_theorem43(net, a, mu=1.0)),
    "oneshot": ("Lemma 4.1: O(a) colors, O(a^(2/3) log n) rounds",
                lambda net, a, seed: oneshot_legal_coloring(net, a)),
    "thm52": ("Theorem 5.2: O(a²/g) colors, near-log n rounds",
              lambda net, a, seed: theorem52_fast_coloring(net, a, d=max(1, a // 2))),
    "thm53": ("Theorem 5.3: O(a·t) colors, O((a/t)^µ log n) rounds",
              lambda net, a, seed: theorem53_tradeoff(net, a, t=max(1, a // 4))),
    "be08": ("BE08 baseline: O(a) colors, O(a log n) rounds",
             lambda net, a, seed: be08_coloring(net, a)),
    "linial": ("Linial baseline: O(Δ²) colors, O(log* n) rounds",
               lambda net, a, seed: linial_coloring(net)),
    "luby": ("randomized baseline: Δ+1 colors, O(log n) rounds w.h.p.",
             lambda net, a, seed: luby_coloring(net, seed=seed)),
    "auto": ("unknown arboricity: doubling + Corollary 4.6",
             lambda net, a, seed: legal_coloring_auto(net)),
}

MIS_ALGORITHMS = {
    "arboricity": ("the paper §1.2: O(a + a^µ log n) rounds",
                   lambda net, a, seed: mis_arboricity(net, a)),
    "luby": ("Luby's randomized MIS: O(log n) rounds w.h.p.",
             lambda net, a, seed: luby_mis(net, seed=seed)),
}


def _build_instance(args) -> GeneratedGraph:
    if args.family not in FAMILIES:
        raise SystemExit(
            f"unknown family {args.family!r}; run `python -m repro families`"
        )
    return FAMILIES[args.family](args.n, args.a, args.seed)


def _cmd_families(_args) -> int:
    rows = [[name] for name in sorted(FAMILIES)]
    print(render_table("graph families", ["name"], rows,
                       note="use with --family; --a is the arboricity knob "
                       "where the family has one"))
    return 0


def _cmd_color(args) -> int:
    if args.algorithm not in COLORING_ALGORITHMS:
        raise SystemExit(
            f"unknown algorithm {args.algorithm!r}; choose from "
            f"{sorted(COLORING_ALGORITHMS)}"
        )
    gen = _build_instance(args)
    net = SynchronousNetwork(gen.graph)
    description, runner = COLORING_ALGORITHMS[args.algorithm]
    result = runner(net, gen.arboricity_bound, args.seed)
    check_legal_coloring(gen.graph, result.colors)
    print(render_table(
        f"color / {args.algorithm}",
        ["n", "m", "Δ", "a≤", "colors", "rounds", "verified"],
        [[gen.n, gen.m, gen.max_degree, gen.arboricity_bound,
          result.num_colors, result.rounds, "legal ✓"]],
        note=description,
    ))
    return 0


def _cmd_mis(args) -> int:
    if args.algorithm not in MIS_ALGORITHMS:
        raise SystemExit(
            f"unknown algorithm {args.algorithm!r}; choose from "
            f"{sorted(MIS_ALGORITHMS)}"
        )
    gen = _build_instance(args)
    net = SynchronousNetwork(gen.graph)
    description, runner = MIS_ALGORITHMS[args.algorithm]
    result = runner(net, gen.arboricity_bound, args.seed)
    check_mis(gen.graph, result.members)
    print(render_table(
        f"mis / {args.algorithm}",
        ["n", "m", "Δ", "a≤", "|MIS|", "rounds", "verified"],
        [[gen.n, gen.m, gen.max_degree, gen.arboricity_bound,
          result.size, result.rounds, "independent+maximal ✓"]],
        note=description,
    ))
    return 0


def _cmd_decompose(args) -> int:
    gen = _build_instance(args)
    net = SynchronousNetwork(gen.graph)
    a = gen.arboricity_bound
    hp = compute_hpartition(net, a)
    check_hpartition(gen.graph, hp)
    fd = forests_decomposition(net, a, hpartition=hp)
    check_forests_decomposition(gen.graph, fd)
    k = max(2, args.k)
    dec = arbdefective_coloring(net, a, k=k, t=k)
    print(render_table(
        "decompose",
        ["structure", "result", "rounds"],
        [
            ["H-partition", f"{hp.num_levels} levels, degree ≤ {hp.degree_bound}",
             hp.rounds],
            ["forests", f"{fd.num_forests} edge-disjoint oriented forests",
             fd.rounds],
            [f"arbdefective (k=t={k})",
             f"{dec.num_parts} parts of arboricity ≤ {dec.arboricity_bound}",
             dec.rounds],
        ],
        note=f"instance: {gen.name}, n={gen.n}, m={gen.m}, a≤{a}",
    ))
    return 0


#: default on-disk cache location; override with --cache-dir or env var
DEFAULT_CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def _default_sweep_spec(n: int, num_seeds: int):
    """The built-in demo sweep: three families × three algorithm kinds."""
    from .experiments import SweepSpec, grid_scenarios

    scenarios = grid_scenarios(
        families=[
            {"name": "forest_union", "n": n, "a": 4},
            {"name": "planar", "n": n},
            {"name": "random_geometric", "n": n, "radius": 0.08},
        ],
        algorithms=[
            {"name": "cor46"},
            {"name": "forests"},
            {"name": "mis_arboricity"},
        ],
        num_seeds=num_seeds,
    )
    return SweepSpec("builtin-demo", scenarios)


def _cmd_sweep(args) -> int:
    from .errors import ExecutorError, InvalidParameterError
    from .experiments import (
        ResultCache,
        SocketExecutor,
        SweepSpec,
        default_workers,
        parse_address,
        report_table,
        run_sweep,
        spawn_local_workers,
        stage_timing_table,
    )

    if args.spec:
        try:
            spec = SweepSpec.from_file(args.spec)
        except OSError as exc:
            raise SystemExit(f"cannot read sweep spec: {exc}") from None
        except ValueError as exc:
            raise SystemExit(f"invalid sweep spec {args.spec!r}: {exc}") from None
    else:
        spec = _default_sweep_spec(args.n, args.seeds)

    from .experiments import ALGORITHMS, FAMILIES

    if args.scheduler:
        from .simulator import engine_names

        if args.scheduler not in engine_names():
            raise SystemExit(
                f"unknown scheduler {args.scheduler!r}; "
                f"registered engines: {', '.join(engine_names())}"
            )
        for sc in spec.scenarios:
            sc.scheduler = args.scheduler

    for sc in spec.scenarios:
        if sc.family not in FAMILIES:
            raise SystemExit(
                f"unknown graph family {sc.family!r} in sweep spec; "
                f"known: {sorted(FAMILIES)}"
            )
        if sc.algorithm not in ALGORITHMS:
            raise SystemExit(
                f"unknown algorithm {sc.algorithm!r} in sweep spec; "
                f"known: {sorted(ALGORITHMS)}"
            )

    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.environ.get(
            DEFAULT_CACHE_DIR_ENV, os.path.join(os.getcwd(), ".repro-cache")
        )
        cache = ResultCache(cache_dir)

    executor = None if args.executor == "auto" else args.executor
    coordinator = None
    spawned = []
    try:
        workers = args.workers if args.workers is not None else default_workers()
        if args.executor == "socket":
            # the coordinator outlives run_sweep (workers stay attached
            # across the sweep), so the CLI owns and closes it
            host, port = parse_address(args.listen)
            coordinator = SocketExecutor(
                host=host,
                port=port,
                min_workers=max(args.min_workers, args.spawn_workers, 1),
            )
            print(
                f"sweep: socket executor listening on {coordinator.address} "
                f"(attach workers with `repro worker --connect "
                f"{coordinator.address}`)"
            )
            if args.spawn_workers:
                spawned = spawn_local_workers(
                    coordinator.host, coordinator.port, args.spawn_workers
                )
            coordinator.wait_for_workers()
            print(
                f"sweep: {coordinator.worker_count()} worker(s) attached"
            )
            executor = coordinator
        result = run_sweep(
            spec,
            cache=cache,
            workers=workers,
            progress=print,
            use_shm=False if args.no_shm else None,
            overlap_builds=not args.no_overlap,
            trace=args.trace,
            executor=executor,
        )
    except (ExecutorError, InvalidParameterError) as exc:
        raise SystemExit(str(exc)) from None
    finally:
        if coordinator is not None:
            coordinator.close()
        for proc in spawned:
            proc.terminate()
        for proc in spawned:
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()

    if args.stage_timings:
        print(stage_timing_table(result))
    if args.report:
        print(report_table(result))
    elif not args.stage_timings:
        rows = [
            [tr.trial.family, tr.trial.algorithm, tr.trial.seed,
             tr.metrics.get("n", "-"), tr.metrics.get("rounds", "-"),
             "hit" if tr.cached else "miss"]
            for tr in result
        ]
        print(render_table(
            f"sweep — {spec.name}",
            ["family", "algorithm", "seed", "n", "rounds", "cache"],
            rows,
            note="pass --report for percentile aggregation per (family, algorithm)",
        ))
    hit_pct = 100.0 * result.hit_rate
    summary = (
        f"sweep: {result.num_trials} trial(s) in {result.wall_s:.2f}s with "
        f"{workers} worker(s); cache: {result.cache_hits} hit(s), "
        f"{result.cache_misses} miss(es) ({hit_pct:.0f}% hit rate)"
    )
    if cache is not None and cache.corrupt_lines:
        # the store tolerated malformed JSONL lines (crash mid-append,
        # disk damage) — say so instead of silently recomputing those keys
        summary += (
            f"; {cache.corrupt_lines} corrupt cache line(s) tolerated"
        )
    print(summary)
    if result.graph_builds:
        mode = (
            "overlapped with execution"
            if result.build_overlap
            else "built before dispatch"
        )
        print(
            f"sweep: graph store: {result.graph_builds} build(s) ({mode}, "
            f"{result.graph_build_s:.2f}s build wall), "
            f"{result.graph_reuses} reuse(s)"
        )
    if args.trace:
        print(
            f"sweep: trace appended to {args.trace} "
            f"(summarize with `repro report trace {args.trace}`)"
        )
    return 0


def _cmd_worker(args) -> int:
    from .experiments import parse_address, run_worker

    host, port = parse_address(args.connect)
    return run_worker(host, port, say=print)


def _cmd_check(args) -> int:
    from .analysis.check import RULES, check_paths, rule_ids
    from .analysis.check.runner import (
        render_github,
        render_human,
        render_json,
    )

    if args.list_rules:
        rows = [
            [rid, RULES[rid].severity, RULES[rid].summary]
            for rid in rule_ids()
        ]
        print(render_table(
            "repro check — rule catalog",
            ["rule", "severity", "summary"],
            rows,
            note="suppress inline with `# repro: allow[rule-id] reason`",
        ))
        return 0

    if args.rule:
        unknown = sorted(set(args.rule) - set(rule_ids()))
        if unknown:
            raise SystemExit(
                f"unknown rule(s) {', '.join(unknown)}; "
                f"registered rules: {', '.join(rule_ids())}"
            )
    paths = args.paths or ["src", "benchmarks", "examples"]
    try:
        result = check_paths(paths, rule_ids=args.rule or None)
    except FileNotFoundError as exc:
        raise SystemExit(f"cannot check {exc}: no such file or directory") from None
    renderer = {
        "human": render_human,
        "json": render_json,
        "github": render_github,
    }[args.format]
    print(renderer(result))
    return 0 if result.ok else 1


def _cmd_report(args) -> int:
    from .obs import render_trace_report

    if args.kind == "trace":
        try:
            print(render_trace_report(args.path))
        except OSError as exc:
            raise SystemExit(f"cannot read trace: {exc}") from None
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Barenboim-Elkin PODC'10 reproduction: distributed "
        "coloring on a LOCAL-model simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_instance_args(p):
        p.add_argument("--family", default="forest_union")
        p.add_argument("--n", type=int, default=400)
        p.add_argument("--a", type=int, default=8,
                       help="arboricity knob for families that take one")
        p.add_argument("--seed", type=int, default=0)

    p_color = sub.add_parser("color", help="run a coloring algorithm")
    add_instance_args(p_color)
    p_color.add_argument(
        "--algorithm", default="cor46",
        help=f"one of {sorted(COLORING_ALGORITHMS)}",
    )
    p_color.set_defaults(func=_cmd_color)

    p_mis = sub.add_parser("mis", help="run an MIS algorithm")
    add_instance_args(p_mis)
    p_mis.add_argument(
        "--algorithm", default="arboricity",
        help=f"one of {sorted(MIS_ALGORITHMS)}",
    )
    p_mis.set_defaults(func=_cmd_mis)

    p_dec = sub.add_parser("decompose", help="show the decomposition stack")
    add_instance_args(p_dec)
    p_dec.add_argument("--k", type=int, default=2,
                       help="arbdefective split parameter (k = t)")
    p_dec.set_defaults(func=_cmd_decompose)

    p_fam = sub.add_parser("families", help="list graph families")
    p_fam.set_defaults(func=_cmd_families)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a multi-family, multi-algorithm sweep (parallel, cached)",
    )
    p_sweep.add_argument(
        "--spec", default=None,
        help="JSON sweep spec file (default: the built-in demo sweep)",
    )
    p_sweep.add_argument("--n", type=int, default=200,
                         help="instance size for the built-in sweep")
    p_sweep.add_argument("--seeds", type=int, default=2,
                         help="replicates per scenario for the built-in sweep")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="pool size (default: min(cores, cap) with the "
                         "cap of 8 overridable via $REPRO_WORKERS; 1 = serial)")
    p_sweep.add_argument("--cache-dir", default=None,
                         help="result cache directory "
                         f"(default: $REPRO_CACHE_DIR or ./.repro-cache)")
    p_sweep.add_argument("--scheduler", default="", metavar="ENGINE",
                         help="run every scenario on this simulator engine "
                         "(overrides any per-scenario setting; see the "
                         "engine registry for names)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="recompute everything; do not read or write the cache")
    p_sweep.add_argument("--report", action="store_true",
                         help="print the percentile aggregation instead of per-trial rows")
    p_sweep.add_argument("--stage-timings", action="store_true",
                         help="print mean per-stage wall times "
                         "(build_graph/run_algorithm/verify/metrics) per group")
    p_sweep.add_argument("--no-shm", action="store_true",
                         help="disable shared-memory graph publishing for "
                         "parallel runs (pickle fallback; $REPRO_NO_SHM=1 "
                         "does the same)")
    p_sweep.add_argument("--no-overlap", action="store_true",
                         help="build shared graphs in the parent before "
                         "dispatch instead of overlapping builds with pool "
                         "execution (the pre-overlap engine's shape, kept "
                         "for A/B timing; records are identical either way)")
    p_sweep.add_argument("--trace", default=None, metavar="PATH",
                         help="append structured JSONL trace spans (stages, "
                         "GraphStore lifecycle, cache hits/misses, pool "
                         "dispatch) to PATH; summarize with "
                         "`repro report trace PATH`")
    p_sweep.add_argument("--executor",
                         choices=["auto", "serial", "pool", "socket"],
                         default="auto",
                         help="execution backend: auto (serial for "
                         "--workers 1, a local pool otherwise), serial, "
                         "pool, or socket (become a coordinator; workers "
                         "attach with `repro worker --connect`)")
    p_sweep.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                         help="socket executor listen address; port 0 picks "
                         "a free port (printed at startup). Bind only to "
                         "loopback or trusted private interfaces — the "
                         "protocol carries pickles")
    p_sweep.add_argument("--min-workers", type=int, default=1,
                         help="socket executor: wait for this many attached "
                         "workers before dispatching")
    p_sweep.add_argument("--spawn-workers", type=int, default=0, metavar="N",
                         help="socket executor: also start N loopback "
                         "`repro worker` subprocesses (single-host "
                         "scale-out without a second terminal)")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_worker = sub.add_parser(
        "worker",
        help="attach this process to a sweep coordinator "
        "(`repro sweep --executor socket`) and serve trials",
    )
    p_worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="coordinator address printed by "
                          "`repro sweep --executor socket`")
    p_worker.set_defaults(func=_cmd_worker)

    p_check = sub.add_parser(
        "check",
        help="statically check CONGEST/engine/concurrency contracts "
        "(node programs, column kernels, executors, cache keys)",
    )
    p_check.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyze "
        "(default: src benchmarks examples)",
    )
    p_check.add_argument(
        "--format", choices=["human", "json", "github"], default="human",
        help="output format: human (default), json (machine-readable, "
        "surfaces suppressions), github (workflow annotations)",
    )
    p_check.add_argument(
        "--rule", action="append", default=[], metavar="RULE-ID",
        help="run only this rule (repeatable; default: every rule)",
    )
    p_check.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    p_check.set_defaults(func=_cmd_check)

    p_report = sub.add_parser(
        "report", help="summarize observability artifacts"
    )
    p_report.add_argument("kind", choices=["trace"],
                          help="artifact type (currently: trace)")
    p_report.add_argument("path", help="path to a sweep trace JSONL file")
    p_report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
