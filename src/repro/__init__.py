"""repro — a reproduction of Barenboim & Elkin (PODC 2010),
*Deterministic Distributed Vertex Coloring in Polylogarithmic Time*.

The package has four layers:

* :mod:`repro.simulator` — the LOCAL-model synchronous round simulator;
* :mod:`repro.graphs` — the graph substrate and generators with certified
  arboricity;
* :mod:`repro.core` — the paper's algorithms (Legal-Coloring, Arb-Kuhn,
  arbdefective colorings, partial orientations, ...) and every substrate
  they depend on (H-partitions, forests decompositions, Linial, Kuhn,
  Cole–Vishkin, color reductions, baselines);
* :mod:`repro.verify` — checkers for every stated guarantee.

Quickstart::

    from repro import SynchronousNetwork, forest_union
    from repro.core import legal_coloring_corollary46
    from repro.verify import check_legal_coloring

    g = forest_union(n=512, a=8, seed=1)
    net = SynchronousNetwork(g.graph)
    coloring = legal_coloring_corollary46(net, a=g.arboricity_bound, eta=0.5)
    check_legal_coloring(g.graph, coloring.colors)
    print(coloring.num_colors, "colors in", coloring.rounds, "rounds")
"""

from .errors import (
    InvalidParameterError,
    ReproError,
    RoundLimitExceeded,
    SimulationError,
    VerificationError,
)
from .graphs import (
    GeneratedGraph,
    Graph,
    forest_union,
    forest_union_bulk,
    planar_triangulation,
    random_regular,
    random_tree,
)
from .simulator import (
    Engine,
    NodeContext,
    NodeProgram,
    RoundLedger,
    SynchronousNetwork,
    engine_names,
    get_engine,
    register_engine,
)
from .types import (
    ColorAssignment,
    Decomposition,
    ForestsDecomposition,
    HPartition,
    MISResult,
    Orientation,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Graph",
    "GeneratedGraph",
    "SynchronousNetwork",
    "NodeProgram",
    "NodeContext",
    "RoundLedger",
    "ColorAssignment",
    "Orientation",
    "HPartition",
    "ForestsDecomposition",
    "Decomposition",
    "MISResult",
    "ReproError",
    "SimulationError",
    "RoundLimitExceeded",
    "InvalidParameterError",
    "VerificationError",
    "forest_union",
    "forest_union_bulk",
    "random_tree",
    "random_regular",
    "planar_triangulation",
    "Engine",
    "register_engine",
    "engine_names",
    "get_engine",
    "ScenarioSpec",
    "SweepSpec",
    "run_sweep",
]

# The sweep layer imports this package (its workers resolve algorithms and
# the network by name), so re-exporting it eagerly would be a cycle.  PEP 562
# lazy attributes break it: ``repro.run_sweep`` resolves on first touch.
_EXPERIMENT_EXPORTS = {
    "ScenarioSpec": "spec",
    "SweepSpec": "spec",
    "run_sweep": "runner",
}


def __getattr__(name: str):
    mod = _EXPERIMENT_EXPORTS.get(name)
    if mod is not None:
        from importlib import import_module

        return getattr(import_module(f".experiments.{mod}", __name__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
