"""The staged sweep runner: cache probe, shared graph builds, streaming
fan-out, streaming persistence.

Execution plan for one sweep:

1. expand the :class:`~repro.experiments.spec.SweepSpec` into trials;
2. probe the :class:`~repro.experiments.cache.ResultCache` for each trial's
   content key — hits are served instantly;
3. build every *shared* graph instance once in the parent via the
   :class:`~repro.experiments.graphstore.GraphStore` (trials of an ablation
   sweep that vary only algorithm parameters share one build) and publish
   the builds to the workers — zero-copy over ``multiprocessing.shared_memory``
   when available, pickled into the payload otherwise; graphs only one
   trial uses are built by the worker running that trial, so unshared
   construction keeps the pool's parallelism;
4. fan the remaining trials out over one persistent ``multiprocessing``
   pool with ``imap_unordered``, so results stream back as they complete
   instead of arriving in one blocking batch;
5. persist every fresh record **as it arrives** (single writer — the
   parent; the workers never touch the cache), so a crashed or interrupted
   sweep resumes from every trial that finished, and return everything in
   spec order.

Determinism: trial seeds are fixed by the spec, algorithm randomness is
derived from the trial key, the shared graph a worker attaches is
byte-identical to the one a rebuild would produce, and results are
reordered to spec order after the unordered parallel collection — so a
sweep's aggregate output is byte-identical whether it ran serial, parallel,
via shared memory, via the pickle fallback, or entirely from cache.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import InvalidParameterError
from .cache import ResultCache
from .graphstore import GraphStore
from .registry import execute_payload
from .spec import SweepSpec, TrialSpec

__all__ = ["TrialResult", "SweepResult", "run_sweep", "default_workers"]

#: environment override for the default worker cap (see default_workers)
WORKERS_ENV = "REPRO_WORKERS"


@dataclass
class TrialResult:
    """One trial's outcome: its spec, verified metrics, and provenance."""

    trial: TrialSpec
    metrics: Dict[str, object]
    cached: bool
    elapsed_s: float = 0.0
    #: per-stage wall times (build_graph/run_algorithm/verify/metrics);
    #: empty for records written before the staged engine
    stages: Dict[str, float] = field(default_factory=dict)
    #: where the graph came from: built (by the executor) / store (handed
    #: over in-process) / shm / pickled / "" (pre-staged record)
    graph_source: str = ""

    @property
    def key(self) -> str:
        return self.trial.key()


@dataclass
class SweepResult:
    """All trial results of a sweep plus cache and build accounting."""

    name: str
    results: List[TrialResult] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0
    #: unique graphs built by the GraphStore for this run
    graph_builds: int = 0
    #: trials that reused a graph another trial already built
    graph_reuses: int = 0

    @property
    def num_trials(self) -> int:
        return len(self.results)

    @property
    def hit_rate(self) -> float:
        """Fraction of *unique* trial keys served from the cache.

        ``cache_hits``/``cache_misses`` count unique keys, not trial
        occurrences: a sweep listing the same trial twice computes (or
        fetches) it once, so it contributes once here.  0.0 when empty.
        """
        unique = self.cache_hits + self.cache_misses
        return self.cache_hits / unique if unique else 0.0

    def __iter__(self):
        return iter(self.results)


def default_workers() -> int:
    """Worker count when the caller does not pin one: all cores, capped.

    The cap defaults to 8 and is overridable via ``REPRO_WORKERS`` (useful
    on many-core machines where the sweep should use more of the box, or in
    CI where it should use less).
    """
    cap = 8
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            cap = int(env)
        except ValueError:
            raise InvalidParameterError(
                f"{WORKERS_ENV} must be an integer >= 1, got {env!r}"
            ) from None
        if cap < 1:
            raise InvalidParameterError(
                f"{WORKERS_ENV} must be an integer >= 1, got {env!r}"
            )
    return max(1, min(os.cpu_count() or 1, cap))


def run_sweep(
    spec: SweepSpec,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    use_shm: Optional[bool] = None,
    share_graphs: bool = True,
) -> SweepResult:
    """Run every trial of ``spec``, reusing ``cache`` when given.

    Parameters
    ----------
    workers:
        Pool size for cache misses.  ``1`` runs in-process (no pool at
        all — the mode tests and benchmarks use); ``n > 1`` streams trials
        through one persistent ``multiprocessing.Pool``.  Anything below 1
        is an error — never a silent fall-through to serial.
    progress:
        Optional callback receiving one human-readable line per event
        (used by the CLI for ``-v``-style output).
    use_shm:
        Force shared-memory graph publishing on (``True``) or off
        (``False`` — the pickle fallback); default auto-detects and honours
        ``REPRO_NO_SHM``.  Irrelevant for serial runs, which hand the graph
        object straight to the executor.
    share_graphs:
        ``False`` disables the GraphStore entirely: every trial rebuilds
        its graph from the family registry, like the pre-staged engine.
        Kept as the comparison baseline for ``bench_sweep_scale``.
    """
    if not isinstance(workers, int) or workers < 1:
        raise InvalidParameterError(
            f"run_sweep: workers must be an integer >= 1, got {workers!r}"
        )
    t0 = time.perf_counter()
    trials = spec.trials()
    say = progress or (lambda _msg: None)

    records: Dict[str, dict] = {}
    cached_keys = set()
    pending: List[TrialSpec] = []
    pending_keys = set()
    for trial in trials:
        key = trial.key()
        rec = cache.get(key) if cache is not None else None
        if rec is not None:
            records[key] = rec
            cached_keys.add(key)
        elif key not in pending_keys:
            pending.append(trial)
            pending_keys.add(key)

    graph_builds = 0
    graph_reuses = 0
    if pending:
        say(f"{spec.name}: computing {len(pending)} trial(s), "
            f"{len(cached_keys)} cached")
        pool_mode = workers > 1 and len(pending) > 1
        store = GraphStore(use_shm=use_shm) if share_graphs else None
        # In pool mode only graphs that more than one trial consumes are
        # worth pre-building in the parent (that is the sharing win); a
        # single-use graph is built by the worker running its trial, so
        # unshared builds stay as parallel as the trials themselves.
        # (Shared graphs are still built sequentially in the parent before
        # dispatch — with many distinct shared graphs and a large pool,
        # ``share_graphs=False`` can win; overlapping shared builds with
        # execution is an open item.)
        remaining: Dict[str, int] = {}
        if store is not None:
            for t in pending:
                gkey = t.graph_key()
                remaining[gkey] = remaining.get(gkey, 0) + 1
        shared_keys = {k for k, c in remaining.items() if c > 1}

        def make_payload(t: TrialSpec) -> dict:
            """Build one trial's payload, evicting graphs no trial still
            ahead of this one needs (long sweeps hold only their future)."""
            gkey = t.graph_key()
            if store is None or (pool_mode and gkey not in shared_keys):
                graph = None
            else:
                graph = store.payload_graph(t, for_pool=pool_mode)
            payload = {"trial": t.to_dict(), "graph": graph}
            if store is not None and not pool_mode and graph is not None:
                payload["graph_source"] = "store"
            if store is not None:
                remaining[gkey] -= 1
                if remaining[gkey] == 0:
                    store.discard(gkey)
            return payload

        try:
            done = 0

            def absorb(rec: dict) -> None:
                nonlocal done
                records[rec["key"]] = rec
                # streaming persistence: one atomic append per completed
                # trial, so an interrupted sweep keeps everything finished
                if cache is not None:
                    cache.put(rec)
                done += 1
                if progress is not None:  # label/format only when watched
                    progress(f"{spec.name}: [{done}/{len(pending)}] "
                             f"{TrialSpec.from_dict(rec['trial']).label()} "
                             f"({rec['elapsed_s']:.2f}s)")

            if pool_mode:
                payloads = [make_payload(t) for t in pending]
                if store is not None:
                    transport = " via shared memory" if store.use_shm else ""
                    say(f"{spec.name}: {store.builds} shared graph(s) "
                        f"built, {store.reuses} reuse(s){transport}")
                with multiprocessing.Pool(min(workers, len(pending))) as pool:
                    for rec in pool.imap_unordered(
                        execute_payload, payloads, chunksize=1
                    ):
                        absorb(rec)
            else:
                # serial: payloads are made one at a time, so at most the
                # shared graphs still ahead of the sweep are alive at once
                for t in pending:
                    absorb(execute_payload(make_payload(t)))
            if store is not None:
                graph_builds = store.builds
                graph_reuses = store.reuses
        finally:
            if store is not None:
                store.close()
    else:
        say(f"{spec.name}: all {len(trials)} trial(s) served from cache")

    results = []
    for trial in trials:
        rec = records[trial.key()]
        results.append(
            TrialResult(
                trial=trial,
                metrics=dict(rec["metrics"]),
                cached=trial.key() in cached_keys,
                elapsed_s=float(rec.get("elapsed_s", 0.0)),
                stages=dict(rec.get("stages", {})),
                graph_source=str(
                    rec.get("provenance", {}).get("graph_source", "")
                ),
            )
        )
    # Hit/miss accounting is per unique key: a duplicated trial is computed
    # once, so counting each occurrence would overstate the misses and skew
    # the hit rate.
    return SweepResult(
        name=spec.name,
        results=results,
        cache_hits=len(cached_keys),
        cache_misses=len(pending),
        wall_s=time.perf_counter() - t0,
        graph_builds=graph_builds,
        graph_reuses=graph_reuses,
    )
