"""The parallel sweep runner: cache lookup, fan-out, collection.

Execution plan for one sweep:

1. expand the :class:`~repro.experiments.spec.SweepSpec` into trials;
2. probe the :class:`~repro.experiments.cache.ResultCache` for each trial's
   content key — hits are served instantly;
3. fan the remaining trials out over a ``multiprocessing`` pool (the trial
   entry point :func:`repro.experiments.registry.execute_trial` takes and
   returns plain dicts, so pickling is trivial);
4. persist every fresh record from the parent process (single writer — the
   workers never touch the cache) and return everything in spec order.

Determinism: trial seeds are fixed by the spec, algorithm randomness is
derived from the trial key, and results are reordered to spec order after
the unordered parallel collection — so a sweep's aggregate output is
byte-identical whether it ran serial, parallel, or entirely from cache.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .cache import ResultCache
from .registry import execute_trial
from .spec import SweepSpec, TrialSpec

__all__ = ["TrialResult", "SweepResult", "run_sweep", "default_workers"]


@dataclass
class TrialResult:
    """One trial's outcome: its spec, verified metrics, and provenance."""

    trial: TrialSpec
    metrics: Dict[str, object]
    cached: bool
    elapsed_s: float = 0.0

    @property
    def key(self) -> str:
        return self.trial.key()


@dataclass
class SweepResult:
    """All trial results of a sweep plus cache accounting."""

    name: str
    results: List[TrialResult] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0

    @property
    def num_trials(self) -> int:
        return len(self.results)

    @property
    def hit_rate(self) -> float:
        """Fraction of *unique* trial keys served from the cache.

        ``cache_hits``/``cache_misses`` count unique keys, not trial
        occurrences: a sweep listing the same trial twice computes (or
        fetches) it once, so it contributes once here.  0.0 when empty.
        """
        unique = self.cache_hits + self.cache_misses
        return self.cache_hits / unique if unique else 0.0

    def __iter__(self):
        return iter(self.results)


def default_workers() -> int:
    """Worker count when the caller does not pin one: all cores, capped."""
    return max(1, min(os.cpu_count() or 1, 8))


def run_sweep(
    spec: SweepSpec,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run every trial of ``spec``, reusing ``cache`` when given.

    Parameters
    ----------
    workers:
        Pool size for cache misses.  ``1`` runs in-process (no pool at
        all — the mode tests and benchmarks use); ``n > 1`` uses a
        ``multiprocessing.Pool``.
    progress:
        Optional callback receiving one human-readable line per event
        (used by the CLI for ``-v``-style output).
    """
    t0 = time.perf_counter()
    trials = spec.trials()
    say = progress or (lambda _msg: None)

    records: Dict[str, dict] = {}
    cached_keys = set()
    pending: List[TrialSpec] = []
    pending_keys = set()
    for trial in trials:
        key = trial.key()
        rec = cache.get(key) if cache is not None else None
        if rec is not None:
            records[key] = rec
            cached_keys.add(key)
        elif key not in pending_keys:
            pending.append(trial)
            pending_keys.add(key)

    if pending:
        say(f"{spec.name}: computing {len(pending)} trial(s), "
            f"{len(cached_keys)} cached")
        payloads = [t.to_dict() for t in pending]
        if workers > 1 and len(pending) > 1:
            with multiprocessing.Pool(min(workers, len(pending))) as pool:
                fresh = pool.map(execute_trial, payloads, chunksize=1)
        else:
            fresh = [execute_trial(p) for p in payloads]
        for rec in fresh:
            records[rec["key"]] = rec
            if cache is not None:
                cache.put(rec)
    else:
        say(f"{spec.name}: all {len(trials)} trial(s) served from cache")

    results = []
    for trial in trials:
        rec = records[trial.key()]
        results.append(
            TrialResult(
                trial=trial,
                metrics=dict(rec["metrics"]),
                cached=trial.key() in cached_keys,
                elapsed_s=float(rec.get("elapsed_s", 0.0)),
            )
        )
    # Hit/miss accounting is per unique key: a duplicated trial is computed
    # once, so counting each occurrence would overstate the misses and skew
    # the hit rate.
    return SweepResult(
        name=spec.name,
        results=results,
        cache_hits=len(cached_keys),
        cache_misses=len(pending),
        wall_s=time.perf_counter() - t0,
    )
