"""The staged sweep runner: cache probe, overlapped shared-graph builds,
streaming fan-out, streaming persistence.

Execution plan for one sweep:

1. expand the :class:`~repro.experiments.spec.SweepSpec` into trials;
2. probe the :class:`~repro.experiments.cache.ResultCache` once per unique
   trial key — hits are served instantly, and a trial the spec lists twice
   is probed (and computed) once;
3. schedule every *shared* graph instance (trials of an ablation sweep that
   vary only algorithm parameters share one build) through the
   :class:`~repro.experiments.graphstore.GraphStore`.  In pool mode the
   builds are **dispatched into the same pool as the trials**: a worker
   builds the graph and publishes it back — a shared-memory segment under a
   parent-chosen name, or the pickled instance — and the parent adopts the
   result and releases that graph's trials the moment it lands.  Graphs
   only one trial uses are built by the worker running that trial, so
   unshared construction keeps the pool's parallelism;
4. fan the work out through an :class:`~.executors.base.Executor` — the
   transport seam this module schedules *onto*, never into.  The default
   is :class:`~.executors.local.LocalPoolExecutor` (one persistent
   ``multiprocessing`` pool, ``imap_unordered``) for ``workers > 1`` and
   :class:`~.executors.local.SerialExecutor` otherwise;
   :class:`~.executors.socket.SocketExecutor` fans the same payloads out
   to workers on other hosts.  Every backend is fed by the same **lazy
   generator**: build payloads first, then unshared trials, then each
   sharing trial as its graph becomes ready.  Nothing materialises the
   whole sweep up front, so at any moment the parent holds only the
   graphs whose trials are still ahead of it.  Backends that cannot share
   the parent's memory (``supports_shm`` False — remote workers) flip the
   GraphStore onto the pickle transport automatically;
5. persist every fresh record **as it arrives** (single writer — the
   parent; the workers never touch the cache), so a crashed or interrupted
   sweep resumes from every trial that finished, and return everything in
   spec order.

Determinism: trial seeds are fixed by the spec, algorithm randomness is
derived from the trial key, the shared graph a worker attaches is
byte-identical to the one a rebuild would produce, and results are
reordered to spec order after the unordered parallel collection — so a
sweep's aggregate output is byte-identical whether it ran serial, parallel,
via shared memory, via the pickle fallback, over sockets to another host,
with builds overlapped or prebuilt, or entirely from cache.
"""

from __future__ import annotations

import os
import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from ..errors import InvalidParameterError
from .cache import ResultCache
from .executors import (
    Executor,
    LocalPoolExecutor,
    SerialExecutor,
    make_executor,
)
from .graphstore import GraphStore
from .registry import BUILD_KIND
from .spec import SweepSpec, TrialSpec, graph_multiplicity

__all__ = ["TrialResult", "SweepResult", "run_sweep", "default_workers"]

#: environment override for the default worker cap (see default_workers)
WORKERS_ENV = "REPRO_WORKERS"


@dataclass
class TrialResult:
    """One trial's outcome: its spec, verified metrics, and provenance."""

    trial: TrialSpec
    metrics: Dict[str, object]
    cached: bool
    elapsed_s: float = 0.0
    #: per-stage wall times (build_graph/run_algorithm/verify/metrics);
    #: empty for records written before the staged engine
    stages: Dict[str, float] = field(default_factory=dict)
    #: where the graph came from: built (by the executor) / store (handed
    #: over in-process) / shm / pickled / "" (pre-staged record)
    graph_source: str = ""
    #: serialized RoundLedger phase breakdown for composite algorithms
    #: (list of PhaseRecord dicts; empty when the algorithm reports none).
    #: Deterministic — unlike stages/graph_source — but kept outside
    #: metrics; rehydrate with ``RoundLedger.from_dicts``.
    phases: List[Dict[str, object]] = field(default_factory=list)

    @property
    def key(self) -> str:
        return self.trial.key()


@dataclass
class SweepResult:
    """All trial results of a sweep plus cache and build accounting."""

    name: str
    results: List[TrialResult] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0
    #: unique graphs built through the GraphStore for this run (in the
    #: parent or adopted from a worker — the accounting is transport-
    #: independent)
    graph_builds: int = 0
    #: trials that reused a graph another consumer already materialised
    graph_reuses: int = 0
    #: name of the execution backend that ran the pending trials
    #: ("serial"/"pool"/"socket"; "" when everything came from cache)
    executor: str = ""
    #: wall seconds spent inside the family builders for shared graphs,
    #: wherever they ran (parent or workers)
    graph_build_s: float = 0.0
    #: True when shared-graph builds were dispatched into the pool and
    #: overlapped with trial execution (vs. prebuilt in the parent)
    build_overlap: bool = False

    @property
    def num_trials(self) -> int:
        return len(self.results)

    @property
    def hit_rate(self) -> float:
        """Fraction of *unique* trial keys served from the cache.

        ``cache_hits``/``cache_misses`` count unique keys, not trial
        occurrences: a sweep listing the same trial twice computes (or
        fetches) it once, so it contributes once here.  0.0 when empty.
        """
        unique = self.cache_hits + self.cache_misses
        return self.cache_hits / unique if unique else 0.0

    def __iter__(self):
        return iter(self.results)


def default_workers() -> int:
    """Worker count when the caller does not pin one: all cores, capped.

    The cap defaults to 8 and is overridable via ``REPRO_WORKERS`` (useful
    on many-core machines where the sweep should use more of the box, or in
    CI where it should use less).
    """
    cap = 8
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            cap = int(env)
        except ValueError:
            raise InvalidParameterError(
                f"{WORKERS_ENV} must be an integer >= 1, got {env!r}"
            ) from None
        if cap < 1:
            raise InvalidParameterError(
                f"{WORKERS_ENV} must be an integer >= 1, got {env!r}"
            )
    return max(1, min(os.cpu_count() or 1, cap))


def _segment_name(nonce: str, index: int) -> str:
    """A short, collision-safe shared-memory segment name.

    Parent-chosen *before* the build is dispatched, so the parent can
    reclaim the segment even when the worker's result never arrives.
    Kept short because some platforms cap POSIX shm names at ~30 chars.
    """
    return f"rg{os.getpid():x}-{nonce}-{index:x}"


def _resolve_executor(
    executor: Union[None, str, Executor],
    workers: int,
    pending_count: int,
) -> "tuple[Executor, bool]":
    """Turn ``run_sweep``'s ``executor`` argument into a live backend.

    Returns ``(backend, owned)`` — ``owned`` backends were constructed
    here and are closed by the runner; caller-supplied instances stay
    open (a socket coordinator's worker fleet outlives one sweep).

    ``None`` keeps the engine's historical behaviour exactly: in-process
    serial execution unless both ``workers > 1`` and more than one trial
    is pending, in which case one local pool sized ``min(workers,
    pending)``.
    """
    if executor is None:
        if workers > 1 and pending_count > 1:
            return LocalPoolExecutor(min(workers, pending_count)), True
        return SerialExecutor(), True
    if isinstance(executor, str):
        return make_executor(executor, workers=max(workers, 1)), True
    if isinstance(executor, Executor):
        return executor, False
    raise InvalidParameterError(
        f"run_sweep: executor must be None, a name, or an Executor "
        f"instance, got {type(executor).__name__}"
    )


def _run_in_process(
    pending: List[TrialSpec],
    store: Optional[GraphStore],
    executor: Executor,
    absorb: Callable[[dict], None],
) -> None:
    """In-process scheduling: graphs handed over by reference, one payload
    at a time, evicting each graph with its last pending trial.

    The payload stream is lazy, so with the serial backend each graph is
    materialised only when its trial is next — peak memory is one graph
    plus whatever sharing trials still lie ahead, same as ever.
    """
    remaining = graph_multiplicity(pending) if store is not None else {}

    def stream():
        for t in pending:
            payload = {"trial": t.to_dict(), "graph": None}
            if store is not None:
                gkey = t.graph_key()
                payload["graph"] = store.get(t)
                payload["graph_source"] = "store"
                remaining[gkey] -= 1
                if remaining[gkey] == 0:
                    store.discard(gkey)
            yield payload

    for rec in executor.submit(stream()):
        absorb(rec)


def _run_distributed(
    pending: List[TrialSpec],
    store: Optional[GraphStore],
    executor: Executor,
    absorb: Callable[[dict], None],
    say: Callable[[str], None],
    name: str,
    overlap_builds: bool,
    tracer=None,
) -> bool:
    """Distributed scheduling: overlapped builds + lazily streamed trials,
    fanned out through any non-in-process executor (local pool or socket).

    Returns True when shared builds actually overlapped execution.
    """
    multiplicity = graph_multiplicity(pending) if store is not None else {}
    sharing: Dict[str, List[TrialSpec]] = {}
    solo: List[TrialSpec] = []
    for t in pending:
        gkey = t.graph_key()
        if store is not None and multiplicity.get(gkey, 0) > 1:
            sharing.setdefault(gkey, []).append(t)
        else:
            solo.append(t)
    build_order = list(sharing)
    overlap = overlap_builds and bool(build_order)

    transport = ""
    if store is not None and build_order:
        transport = " via shared memory" if store.use_shm else " via pickled payloads"
    if overlap:
        target = (
            "the pool" if executor.locality == "local"
            else f"{executor.name} workers"
        )
        say(f"{name}: {len(build_order)} shared graph build(s) dispatched "
            f"to {target}{transport}")
    elif build_order:
        # legacy shape (kept as the A/B baseline): every shared graph is
        # built in the parent before the first trial is dispatched
        for gkey in build_order:
            rep = sharing[gkey][0]
            if store.use_shm:
                store.publish(rep)
            else:
                store.ensure_built(rep)
        say(f"{name}: {len(build_order)} shared graph(s) prebuilt in the "
            f"parent{transport}")

    seg_names: Dict[str, str] = {}
    if overlap and store.use_shm:
        nonce = uuid.uuid4().hex[:6]
        for i, gkey in enumerate(build_order):
            seg_names[gkey] = _segment_name(nonce, i)
            store.expect_segment(gkey, seg_names[gkey])

    #: graph keys whose graphs the parent holds, ready to mint payloads
    ready: "queue.Queue[str]" = queue.Queue()
    abort = threading.Event()
    if not overlap:
        for gkey in build_order:
            ready.put(gkey)

    parallelism = executor.parallelism()
    if tracer is not None:
        tracer.emit(
            "pool",
            "start",
            size=min(parallelism, len(pending)),
            executor=executor.name,
            overlap=overlap,
            shared_graphs=len(build_order),
            solo_trials=len(solo),
        )
    # backpressure: at most this many builds dispatched beyond the ones
    # whose trials have been streamed.  Enough to keep every worker busy,
    # but a fast backend can never pile more than ``window + 1``
    # undispatched graphs into the parent (the no-shm memory bound the
    # lazy stream exists for) — without it, tiny builds returning faster
    # than trials dispatch would accumulate every shared graph at once.
    window = parallelism + 2

    def _build_payload(gkey):
        return {
            "kind": BUILD_KIND,
            "trial": sharing[gkey][0].to_dict(),
            "shm_name": seg_names.get(gkey),
        }

    def stream():
        """The lazy payload feed ``imap_unordered`` consumes.

        A priming window of builds goes out first so the executor starts
        them immediately; unshared trials fill the remaining workers while
        builds are in flight; each sharing trial is yielded the moment its
        graph is ready — and its graph's in-process copy is dropped with
        its last payload, with one more build dispatched in its place.
        Runs on the executor's dispatcher thread (the pool's task-handler
        thread, or the socket coordinator's dispatch loop).
        """
        dispatched = 0
        if overlap:
            while dispatched < min(window, len(build_order)):
                yield _build_payload(build_order[dispatched])
                dispatched += 1
        for t in solo:
            yield {"trial": t.to_dict(), "graph": None}
        served = 0
        while served < len(build_order):
            # never block without a timeout: pool teardown joins this
            # generator's thread, so an abandoned wait would deadlock the
            # exception path
            if abort.is_set():
                return
            try:
                gkey = ready.get(timeout=0.05)
            except queue.Empty:
                continue
            served += 1
            for t in sharing[gkey]:
                yield {"trial": t.to_dict(), "graph": store.mint(gkey)}
            store.discard(gkey)
            if overlap and dispatched < len(build_order):
                yield _build_payload(build_order[dispatched])
                dispatched += 1

    it = executor.submit(stream())
    try:
        for rec in it:
            if rec.get("kind") == BUILD_KIND:
                gkey = rec["graph_key"]
                if rec.get("shm_name"):
                    store.adopt_segment(
                        gkey,
                        rec["shm_name"],
                        name=rec["name"],
                        arboricity_bound=rec["arboricity_bound"],
                        params=rec["params"],
                        build_s=rec["build_s"],
                    )
                else:
                    store.adopt_graph(gkey, rec["graph"], build_s=rec["build_s"])
                ready.put(gkey)
            else:
                absorb(rec)
    finally:
        # unblock the dispatcher thread *before* closing the iterator:
        # backend teardown (Pool.__exit__, the socket dispatch loop) joins
        # the thread consuming ``stream()``, so an abandoned ``ready``
        # wait would deadlock the exception path
        abort.set()
        it.close()
    return overlap


def run_sweep(
    spec: SweepSpec,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    use_shm: Optional[bool] = None,
    share_graphs: bool = True,
    overlap_builds: bool = True,
    trace=None,
    executor: Union[None, str, Executor] = None,
) -> SweepResult:
    """Run every trial of ``spec``, reusing ``cache`` when given.

    Parameters
    ----------
    workers:
        Pool size for cache misses.  ``1`` runs in-process (no pool at
        all — the mode tests and benchmarks use); ``n > 1`` streams trials
        through one persistent ``multiprocessing.Pool``.  Anything below 1
        is an error — never a silent fall-through to serial.  Ignored when
        ``executor`` names or supplies a non-pool backend.
    progress:
        Optional callback receiving one human-readable line per event
        (used by the CLI for ``-v``-style output).
    use_shm:
        Force shared-memory graph publishing on (``True``) or off
        (``False`` — the pickle fallback); default auto-detects and honours
        ``REPRO_NO_SHM``.  Irrelevant for serial runs, which hand the graph
        object straight to the executor.
    share_graphs:
        ``False`` disables the GraphStore entirely: every trial rebuilds
        its graph from the family registry, like the pre-staged engine.
        Kept as the comparison baseline for ``bench_sweep_scale``.
    overlap_builds:
        ``False`` restores the pre-overlap pool behaviour: shared graphs
        are built sequentially in the parent before any trial is
        dispatched.  Kept as the A/B baseline for ``bench_sweep_scale``
        and the CLI's ``--no-overlap``; records are byte-identical either
        way.  Irrelevant for serial runs.
    trace:
        Optional JSONL trace destination: a path (opened in append mode)
        or an open :class:`~repro.obs.trace.TraceWriter`.  The parent —
        the sweep's single writer — emits structured spans for every
        stage, GraphStore lifecycle event, cache probe, and pool
        dispatch; see :mod:`repro.obs.trace` for the schema and
        ``repro report trace`` for the summarizer.  ``None`` (default)
        emits nothing.
    executor:
        The execution backend for cache misses.  ``None`` (default) keeps
        the engine's historical behaviour: serial in-process execution,
        or one local ``multiprocessing`` pool when ``workers > 1`` and
        more than one trial is pending.  A name from
        :data:`~.executors.EXECUTOR_NAMES` constructs (and closes) that
        backend; a live :class:`~.executors.base.Executor` instance is
        used as-is and left open, so one socket coordinator's worker
        fleet can serve many sweeps.  Backends without ``supports_shm``
        (remote workers) force the GraphStore onto the pickle transport.
        Records are byte-identical whichever backend runs the trials.
    """
    if not isinstance(workers, int) or workers < 1:
        raise InvalidParameterError(
            f"run_sweep: workers must be an integer >= 1, got {workers!r}"
        )
    tracer = None
    own_tracer = False
    if trace is not None:
        from ..obs.trace import TraceWriter

        if isinstance(trace, TraceWriter):
            tracer = trace
        else:
            tracer = TraceWriter(os.fspath(trace))
            own_tracer = True
    try:
        return _run_sweep_traced(
            spec, cache, workers, progress, use_shm, share_graphs,
            overlap_builds, tracer, executor,
        )
    finally:
        if own_tracer:
            tracer.close()


def _run_sweep_traced(
    spec: SweepSpec,
    cache: Optional[ResultCache],
    workers: int,
    progress: Optional[Callable[[str], None]],
    use_shm: Optional[bool],
    share_graphs: bool,
    overlap_builds: bool,
    tracer,
    executor: Union[None, str, Executor] = None,
) -> SweepResult:
    t0 = time.perf_counter()
    trials = spec.trials()
    say = progress or (lambda _msg: None)

    if tracer is not None:
        from ..obs.topology import topology

        requested = (
            executor if isinstance(executor, str)
            else executor.name if isinstance(executor, Executor)
            else "auto"
        )
        tracer.emit(
            "sweep",
            "start",
            sweep=spec.name,
            trials=len(trials),
            workers=workers,
            executor=requested,
            share_graphs=share_graphs,
            overlap_builds=overlap_builds,
            topology=topology(),
        )

    if share_graphs and len(trials) > 1 and spec.graph_multiplicity() <= 1:
        # scenario-derived seeds fold the algorithm cell into the graph
        # seed, so e.g. num_seeds ablations never share a graph: the
        # GraphStore would add bookkeeping without any build reuse
        say(f"{spec.name}: warning: share_graphs=True but no two trials "
            f"share a graph (every trial derives a distinct graph seed) — "
            f"graph sharing will not save any builds")

    records: Dict[str, dict] = {}
    cached_keys = set()
    pending: List[TrialSpec] = []
    # one cache probe per *unique* key: duplicate occurrences of a trial
    # must not inflate the cache object's hit/miss counters (SweepResult
    # counts unique keys, and cache.stats() must agree with it)
    probed = set()
    for trial in trials:
        key = trial.key()
        if key in probed:
            continue
        probed.add(key)
        rec = cache.get(key) if cache is not None else None
        if tracer is not None:
            tracer.emit(
                "cache",
                "hit" if rec is not None else "miss",
                key=key[:12],
                trial=trial.label(),
            )
        if rec is not None:
            records[key] = rec
            cached_keys.add(key)
        else:
            pending.append(trial)

    graph_builds = 0
    graph_reuses = 0
    graph_build_s = 0.0
    build_overlap = False
    executor_name = ""
    if pending:
        say(f"{spec.name}: computing {len(pending)} trial(s), "
            f"{len(cached_keys)} cached")
        backend, owned = _resolve_executor(executor, workers, len(pending))
        executor_name = backend.name
        on_event = None
        if tracer is not None:
            # The store lives in the parent (workers only attach), so its
            # lifecycle events keep the single-writer invariant for free.
            def on_event(event: str, **fields) -> None:
                tracer.emit("graphstore", event, **fields)

        # remote workers can never attach this host's shm segments: any
        # backend without shm support pins the store to pickle transport
        effective_use_shm = False if not backend.supports_shm else use_shm
        store = (
            GraphStore(use_shm=effective_use_shm, on_event=on_event)
            if share_graphs
            else None
        )

        done = 0

        def absorb(rec: dict) -> None:
            nonlocal done
            records[rec["key"]] = rec
            # streaming persistence: one atomic append per completed
            # trial, so an interrupted sweep keeps everything finished
            if cache is not None:
                cache.put(rec)
            if tracer is not None:
                # Worker-side stage timings are re-emitted here, in the
                # parent, so the trace file keeps a single writer.
                label = TrialSpec.from_dict(rec["trial"]).label()
                prov = rec.get("provenance", {})
                pid = prov.get("pid")
                worker = prov.get("worker")
                for stage, dur in rec.get("stages", {}).items():
                    tracer.emit(
                        "stage", "span", name=stage, dur_s=dur,
                        trial=label, pid=pid, worker=worker,
                        executor=backend.name,
                    )
                tracer.emit(
                    "trial",
                    "complete",
                    trial=label,
                    key=rec["key"][:12],
                    elapsed_s=rec.get("elapsed_s"),
                    graph_source=prov.get("graph_source", ""),
                    pid=pid,
                    worker=worker,
                    executor=backend.name,
                )
            done += 1
            if progress is not None:  # label/format only when watched
                progress(f"{spec.name}: [{done}/{len(pending)}] "
                         f"{TrialSpec.from_dict(rec['trial']).label()} "
                         f"({rec['elapsed_s']:.2f}s)")

        try:
            if backend.locality == "in-process":
                _run_in_process(pending, store, backend, absorb)
            else:
                build_overlap = _run_distributed(
                    pending, store, backend, absorb, say, spec.name,
                    overlap_builds, tracer,
                )
            if store is not None:
                graph_builds = store.builds
                graph_reuses = store.reuses
                graph_build_s = store.build_s
        finally:
            if store is not None:
                store.close()
            if owned:
                backend.close()
    else:
        say(f"{spec.name}: all {len(trials)} trial(s) served from cache")

    results = []
    for trial in trials:
        rec = records[trial.key()]
        results.append(
            TrialResult(
                trial=trial,
                metrics=dict(rec["metrics"]),
                cached=trial.key() in cached_keys,
                elapsed_s=float(rec.get("elapsed_s", 0.0)),
                stages=dict(rec.get("stages", {})),
                graph_source=str(
                    rec.get("provenance", {}).get("graph_source", "")
                ),
                phases=[dict(p) for p in rec.get("phases", [])],
            )
        )
    # Hit/miss accounting is per unique key: a duplicated trial is computed
    # once, so counting each occurrence would overstate the misses and skew
    # the hit rate.
    sweep_result = SweepResult(
        name=spec.name,
        results=results,
        cache_hits=len(cached_keys),
        cache_misses=len(pending),
        wall_s=time.perf_counter() - t0,
        graph_builds=graph_builds,
        graph_reuses=graph_reuses,
        graph_build_s=round(graph_build_s, 6),
        build_overlap=build_overlap,
        executor=executor_name,
    )
    if tracer is not None:
        tracer.emit(
            "sweep",
            "end",
            sweep=spec.name,
            trials=sweep_result.num_trials,
            workers=workers,
            executor=executor_name,
            cache_hits=sweep_result.cache_hits,
            cache_misses=sweep_result.cache_misses,
            graph_builds=sweep_result.graph_builds,
            graph_reuses=sweep_result.graph_reuses,
            graph_build_s=sweep_result.graph_build_s,
            build_overlap=sweep_result.build_overlap,
            wall_s=round(sweep_result.wall_s, 6),
        )
    return sweep_result
