"""Content-addressed on-disk result cache for sweep trials.

Layout: the cache directory holds 256 append-only JSONL shards named by the
first two hex digits of the trial key (``ab.jsonl``), one record per line::

    {"key": "<sha256>", "trial": {...}, "metrics": {...}, "elapsed_s": ...}

Properties this buys:

* **content-addressed** — the key is the SHA-256 of the trial's canonical
  encoding (see :meth:`repro.experiments.spec.TrialSpec.key`), so a record
  is valid for *any* sweep that contains the same trial, and changing any
  code-relevant parameter changes the key;
* **atomic appends** — each record is written with a single ``os.write`` on
  an ``O_APPEND`` descriptor, so concurrent writers interleave whole lines
  (POSIX guarantees this for small appends) and a crash can at worst leave
  one truncated final line;
* **resumable** — loading tolerates (and reports) truncated/corrupt lines,
  so an interrupted sweep resumes from every trial that completed;
* **last-writer-wins** — duplicate keys are allowed in the log; the latest
  line shadows earlier ones, which makes re-running after a ``SPEC_VERSION``
  bump or forced recompute a plain append, never a rewrite.

A compacted shard (:meth:`ResultCache.compact`) rewrites each file with one
line per key via the classic write-temp-then-``os.replace`` dance, which is
atomic on POSIX.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Dict, Iterator, Optional, Tuple

try:
    import fcntl
except ImportError:  # non-POSIX: appends stay atomic, compaction unguarded
    fcntl = None

__all__ = ["ResultCache"]

_SHARD_SUFFIX = ".jsonl"
_LOCK_NAME = ".lock"


class ResultCache:
    """Dictionary-shaped view over the JSONL shard files.

    The whole store is loaded into memory on first use (records are small —
    metrics, not raw outputs), so ``get`` is a dict lookup and ``put`` is a
    dict insert plus one atomic append.
    """

    def __init__(self, path: str):
        self.path = path
        self._records: Optional[Dict[str, dict]] = None
        self.hits = 0
        self.misses = 0
        self.corrupt_lines = 0

    # -- loading -------------------------------------------------------
    @staticmethod
    def _read_shard(path: str) -> Tuple[Dict[str, dict], int, int]:
        """Tolerantly parse one JSONL shard, merging last-writer-wins.

        Returns ``(records, non_empty_lines, corrupt_lines)``; truncated or
        malformed lines are skipped and counted, never fatal.
        """
        records: Dict[str, dict] = {}
        raw = 0
        corrupt = 0
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                raw += 1
                try:
                    rec = json.loads(line)
                    records[rec["key"]] = rec
                except (json.JSONDecodeError, KeyError, TypeError):
                    corrupt += 1
        return records, raw, corrupt

    def _load(self) -> Dict[str, dict]:
        if self._records is not None:
            return self._records
        records: Dict[str, dict] = {}
        if os.path.isdir(self.path):
            for name in sorted(os.listdir(self.path)):
                if not name.endswith(_SHARD_SUFFIX):
                    continue
                shard, _raw, corrupt = self._read_shard(
                    os.path.join(self.path, name)
                )
                records.update(shard)
                self.corrupt_lines += corrupt
        self._records = records
        return records

    def __len__(self) -> int:
        return len(self._load())

    def __contains__(self, key: str) -> bool:
        return key in self._load()

    def keys(self) -> Iterator[str]:
        return iter(self._load().keys())

    # -- read/write ----------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """Look up a trial record, counting the hit/miss."""
        rec = self._load().get(key)
        if rec is None:
            self.misses += 1
        else:
            self.hits += 1
        return rec

    def put(self, record: dict) -> None:
        """Persist one trial record (must carry its ``key``)."""
        key = record["key"]
        self._load()[key] = record
        os.makedirs(self.path, exist_ok=True)
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with self._store_lock(shared=True):
            fd = os.open(
                self._shard_path(key),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            try:
                # os.write may write fewer bytes than asked (signals, full
                # disk); loop so a record is never half-appended silently
                view = memoryview(line)
                while view:
                    written = os.write(fd, view)
                    view = view[written:]
            finally:
                os.close(fd)

    def _shard_path(self, key: str) -> str:
        return os.path.join(self.path, key[:2] + _SHARD_SUFFIX)

    @contextlib.contextmanager
    def _store_lock(self, shared: bool):
        """Advisory reader/writer lock on the whole store.

        Appends take it shared (they are already atomic with respect to one
        another); :meth:`compact` takes it exclusive so no append can land
        between a shard's re-read and the ``os.replace`` that rewrites it —
        the one window where an append could still be lost.  Purely
        advisory: only cache instances coordinate, and where ``fcntl`` is
        unavailable the lock degrades to a no-op.
        """
        if fcntl is None:
            yield
            return
        fd = os.open(
            os.path.join(self.path, _LOCK_NAME), os.O_RDWR | os.O_CREAT, 0o644
        )
        try:
            fcntl.flock(fd, fcntl.LOCK_SH if shared else fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing drops the flock

    # -- maintenance ---------------------------------------------------
    def refresh(self) -> int:
        """Drop the in-memory view and re-read the shards from disk.

        For monitors watching a sweep another process is streaming into the
        store (the runner persists each record as its trial completes):
        ``refresh()`` picks up whatever landed since the last load.  Returns
        the number of records now visible.  ``corrupt_lines`` is reset to
        the re-read's count (it describes the store's current state, not a
        running total across polls).
        """
        self._records = None
        self.corrupt_lines = 0
        return len(self._load())

    def compact(self) -> int:
        """Rewrite every shard with one line per key; returns lines dropped.

        Uses write-to-temp + ``os.replace`` so readers never observe a
        partially written shard.

        Each shard is **re-read from disk** immediately before its rewrite
        (merging last-writer-wins, exactly like loading does) rather than
        rewritten from this process's in-memory view: appends are atomic,
        so other writers may have added records after this process loaded,
        and a memory-view rewrite would silently discard them.  The disk
        log is a superset of the in-memory view (every ``put`` appends
        before it returns), so the merged re-read loses nothing and the
        in-memory view is refreshed with whatever newer records it finds.
        The whole pass holds the store's exclusive advisory lock, which
        appends take shared — so no append can land between a shard's
        re-read and its replacement.
        """
        records = self._load()
        dropped = 0
        if not os.path.isdir(self.path):
            return 0
        with self._store_lock(shared=False):
            for name in sorted(os.listdir(self.path)):
                if not name.endswith(_SHARD_SUFFIX):
                    continue
                final = os.path.join(self.path, name)
                # corrupt lines are part of `dropped`, and already counted
                # in corrupt_lines by the load — don't double-count them
                shard, raw_lines, _corrupt = self._read_shard(final)
                dropped += raw_lines - len(shard)
                records.update(shard)
                tmp = final + ".tmp"
                with open(tmp, "w", encoding="utf-8") as fh:
                    for key in sorted(shard):
                        fh.write(json.dumps(shard[key], sort_keys=True) + "\n")
                os.replace(tmp, final)
        return dropped

    def stats(self) -> Tuple[int, int, int]:
        """(hits, misses, corrupt_lines) for this cache object.

        Hits and misses count probes since the object was created;
        ``corrupt_lines`` is the number of malformed JSONL lines the last
        load tolerated (skipped, never fatal) — surfaced so a store taking
        silent damage (partial writes from a crash mid-append, disk
        trouble) is visible in the sweep summary instead of only as
        mysteriously missing cache hits.
        """
        return self.hits, self.misses, self.corrupt_lines
