"""Named registries of graph families and algorithm runners, plus the
staged, picklable trial entry points the parallel runner fans out.

Everything a worker process needs is resolved *by name* inside
:func:`execute_trial`, so the only objects that cross the process boundary
are plain dicts plus (optionally) a shared-memory graph reference — trials
go out as ``TrialSpec.to_dict()`` payloads and results come back as
JSON-serialisable records.  That keeps the ``multiprocessing`` plumbing
trivial and the cache format identical to the wire format.

A trial is executed as four explicit **stages**, mirroring the staged
structure of the paper's own pipeline (decompose once, consume many times):

``build_graph``
    materialise (or attach) the graph instance — skipped work when the
    :class:`~repro.experiments.graphstore.GraphStore` already built it;
``run_algorithm``
    the algorithm proper, on a fresh :class:`~repro.SynchronousNetwork`;
``verify``
    the matching :mod:`repro.verify` checker — a cached record is always a
    *checked* result;
``metrics``
    flatten the verified result into the JSON-serialisable metrics dict.

Each stage's wall time is recorded in the result record under ``stages``,
and ``provenance`` says where the graph came from (``built`` / ``store`` /
``shm`` / ``pickled``) and which process ran the trial.  Both live *outside*
``metrics``: metrics are deterministic functions of the trial spec and must
be byte-identical across serial, parallel, shm, and no-shm execution.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from .. import SynchronousNetwork
from ..core import (
    be08_coloring,
    delta_plus_one_via_arboricity,
    forests_decomposition,
    legal_coloring_corollary46,
    legal_coloring_theorem43,
    linial_coloring,
    luby_coloring,
    luby_mis,
    mis_arboricity,
    oneshot_legal_coloring,
    theorem52_fast_coloring,
    theorem53_tradeoff,
)
from ..errors import InvalidParameterError
from ..graphs import (
    GeneratedGraph,
    erdos_renyi,
    forest_union,
    grid,
    hypercube,
    low_arboricity_high_degree,
    planar_triangulation,
    preferential_attachment,
    random_geometric,
    random_regular,
    random_tree,
    ring,
)
from ..verify import check_forests_decomposition, check_legal_coloring, check_mis
from .spec import TrialSpec, derive_seed

# ----------------------------------------------------------------------
# graph family registry: name -> builder(seed, **family_params)
# ----------------------------------------------------------------------


def _fam_forest_union(seed: int, n: int = 400, a: int = 8, density: float = 1.0):
    return forest_union(n, a, seed=seed, density=density)


def _fam_planar(seed: int, n: int = 400):
    return planar_triangulation(n, seed=seed)


def _fam_tree(seed: int, n: int = 400):
    return random_tree(n, seed=seed)


def _fam_grid(seed: int, rows: int = 20, cols: int = 20):
    return grid(rows, cols)


def _fam_ring(seed: int, n: int = 400):
    return ring(n)


def _fam_hypercube(seed: int, dim: int = 8):
    return hypercube(dim)


def _fam_regular(seed: int, n: int = 400, d: int = 8):
    return random_regular(n, d, seed=seed)


def _fam_preferential(seed: int, n: int = 400, m: int = 3):
    return preferential_attachment(n, m, seed=seed)


def _fam_hubs(seed: int, n: int = 400, a: int = 3, num_hubs: int = 4):
    return low_arboricity_high_degree(n, a, num_hubs=num_hubs, seed=seed)


def _fam_erdos_renyi(seed: int, n: int = 400, p: float = 0.02):
    return erdos_renyi(n, p, seed=seed)


def _fam_geometric(seed: int, n: int = 400, radius: float = 0.08):
    return random_geometric(n, radius, seed=seed)


FAMILIES: Dict[str, Callable[..., GeneratedGraph]] = {
    "forest_union": _fam_forest_union,
    "planar": _fam_planar,
    "tree": _fam_tree,
    "grid": _fam_grid,
    "ring": _fam_ring,
    "hypercube": _fam_hypercube,
    "regular": _fam_regular,
    "preferential": _fam_preferential,
    "hubs": _fam_hubs,
    "erdos_renyi": _fam_erdos_renyi,
    "random_geometric": _fam_geometric,
}


def build_instance(trial: TrialSpec) -> GeneratedGraph:
    """Materialise the graph instance of a trial from the family registry."""
    if trial.family not in FAMILIES:
        raise InvalidParameterError(
            f"unknown graph family {trial.family!r}; "
            f"known: {sorted(FAMILIES)}"
        )
    builder = FAMILIES[trial.family]
    try:
        return builder(trial.seed, **trial.family_params)
    except TypeError as exc:
        raise InvalidParameterError(
            f"bad params for family {trial.family!r}: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# algorithm registry: name -> AlgorithmSpec(kind, run, extra_metrics)
# ----------------------------------------------------------------------
# ``run(net, gen, seed, params)`` returns the algorithm's own result object;
# verification and metric extraction are separate stages dispatched on
# ``kind`` (see _verify_result / _result_metrics below).


def _bound(gen: GeneratedGraph, params: Dict[str, Any]) -> int:
    """The arboricity bound an algorithm should use: an explicit ``a`` in
    the params wins, else the instance's certified bound."""
    return int(params.get("a", gen.arboricity_bound))


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registry entry: how to run, check, and report an algorithm.

    ``kind`` selects the verifier and the metric layout (``coloring`` /
    ``decomposition`` / ``mis``); ``extra_metrics`` names result params
    lifted into the metrics dict when the result reports them (honoured
    for every kind).
    """

    kind: str
    run: Callable[..., Any]
    extra_metrics: Tuple[str, ...] = ()


#: result params every coloring entry lifts into its metrics
_COLORING_EXTRAS = ("pre_reduction_colors", "final_color_space")


def _coloring(run: Callable[..., Any]) -> AlgorithmSpec:
    return AlgorithmSpec("coloring", run, extra_metrics=_COLORING_EXTRAS)


def _run_cor46(net, gen, seed, params):
    return legal_coloring_corollary46(
        net, _bound(gen, params), eta=float(params.get("eta", 0.5))
    )


def _run_thm43(net, gen, seed, params):
    return legal_coloring_theorem43(
        net, _bound(gen, params), mu=float(params.get("mu", 1.0))
    )


def _run_oneshot(net, gen, seed, params):
    return oneshot_legal_coloring(net, _bound(gen, params))


def _run_thm52(net, gen, seed, params):
    a = _bound(gen, params)
    return theorem52_fast_coloring(net, a, d=int(params.get("d", max(1, a // 2))))


def _run_thm53(net, gen, seed, params):
    a = _bound(gen, params)
    return theorem53_tradeoff(net, a, t=int(params.get("t", max(1, a // 4))))


def _run_be08(net, gen, seed, params):
    return be08_coloring(net, _bound(gen, params))


def _run_linial(net, gen, seed, params):
    return linial_coloring(net)


def _run_luby_coloring(net, gen, seed, params):
    return luby_coloring(net, seed=seed)


def _run_delta_plus_one(net, gen, seed, params):
    return delta_plus_one_via_arboricity(
        net, _bound(gen, params), nu=float(params.get("nu", 0.5))
    )


def _run_forests(net, gen, seed, params):
    return forests_decomposition(
        net, _bound(gen, params), epsilon=float(params.get("epsilon", 0.5))
    )


def _run_mis_arboricity(net, gen, seed, params):
    return mis_arboricity(net, _bound(gen, params), mu=float(params.get("mu", 0.5)))


def _run_luby_mis(net, gen, seed, params):
    return luby_mis(net, seed=seed)


ALGORITHMS: Dict[str, AlgorithmSpec] = {
    "cor46": _coloring(_run_cor46),
    "thm43": _coloring(_run_thm43),
    "oneshot": _coloring(_run_oneshot),
    "thm52": _coloring(_run_thm52),
    "thm53": _coloring(_run_thm53),
    "be08": _coloring(_run_be08),
    "linial": _coloring(_run_linial),
    "luby_coloring": _coloring(_run_luby_coloring),
    "delta_plus_one": _coloring(_run_delta_plus_one),
    "forests": AlgorithmSpec("decomposition", _run_forests),
    "mis_arboricity": AlgorithmSpec(
        "mis", _run_mis_arboricity,
        extra_metrics=("num_colors", "coloring_rounds", "sweep_rounds"),
    ),
    "luby_mis": AlgorithmSpec("mis", _run_luby_mis),
}


def _verify_result(kind: str, graph, result) -> None:
    """The ``verify`` stage: run the matching checker (raises on failure)."""
    if kind == "coloring":
        check_legal_coloring(graph, result.colors)
    elif kind == "decomposition":
        check_forests_decomposition(graph, result)
    elif kind == "mis":
        check_mis(graph, result.members)
    else:  # pragma: no cover - registry invariant
        raise InvalidParameterError(f"unknown algorithm kind {kind!r}")


def _result_metrics(
    spec: AlgorithmSpec, gen: GeneratedGraph, result
) -> Dict[str, Any]:
    """The ``metrics`` stage: flatten a verified result into a JSON dict."""
    out: Dict[str, Any] = {"kind": spec.kind}
    if spec.kind == "coloring":
        out["colors"] = result.num_colors
    elif spec.kind == "decomposition":
        out["num_forests"] = result.num_forests
    else:  # mis
        out["mis_size"] = result.size
    out["rounds"] = result.rounds
    out["verified"] = True
    params = getattr(result, "params", {})
    for k in spec.extra_metrics:
        if k in params:
            out[k] = params[k]
    out.setdefault("n", gen.n)
    out.setdefault("m", gen.m)
    out.setdefault("max_degree", gen.max_degree)
    out.setdefault("arboricity_bound", gen.arboricity_bound)
    return out


# ----------------------------------------------------------------------
# trial entry points (top-level, hence picklable by multiprocessing)
# ----------------------------------------------------------------------
#: stage names, in execution order, as they appear in records
STAGES = ("build_graph", "run_algorithm", "verify", "metrics")

#: payload/record marker for build-only pool work (no algorithm, no cache
#: record — the result hands a built graph back to the parent)
BUILD_KIND = "graph_build"


def payload_label(payload: Dict[str, Any]) -> str:
    """Human-readable identifier of any executor payload.

    Executors report failures in terms of payloads (a disconnected
    worker's in-flight work, a retry budget running out), and "payload
    17" helps nobody — this renders the underlying trial's label, with a
    ``build:`` prefix for build-only payloads.
    """
    try:
        label = TrialSpec.from_dict(payload["trial"]).label()
    except (KeyError, TypeError, ValueError):
        return "<malformed payload>"
    if payload.get("kind") == BUILD_KIND:
        return f"build:{label}"
    return label


def execute_build(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool entry point for a build-only payload.

    The overlapped scheduler dispatches shared-graph construction into the
    same pool that runs trials.  The worker builds the instance and hands
    it back one of two ways:

    * ``payload["shm_name"]`` set: publish the CSR arrays into a shared
      segment under that parent-chosen name (the parent adopts it with
      :meth:`~.graphstore.GraphStore.adopt_segment`; pre-naming means the
      parent can reclaim the segment even if this result never arrives)
      and return only the metadata;
    * no ``shm_name``: return the built
      :class:`~repro.graphs.generators.GeneratedGraph` in the result (the
      pickle fallback — the pool's transport does the pickling).

    Build results are *not* trial records: they carry no metrics and are
    never cached.
    """
    trial = TrialSpec.from_dict(payload["trial"])
    t0 = time.perf_counter()
    gen = build_instance(trial)
    build_s = time.perf_counter() - t0
    record: Dict[str, Any] = {
        "kind": BUILD_KIND,
        "graph_key": trial.graph_key(),
        "name": gen.name,
        "arboricity_bound": gen.arboricity_bound,
        "params": dict(gen.params),
        "build_s": round(build_s, 6),
        "pid": os.getpid(),
    }
    shm_name = payload.get("shm_name")
    if shm_name:
        seg = gen.graph.to_shm(name=shm_name)
        # the segment (not this worker's mapping) is the copy of record;
        # the parent owns unlinking
        seg.close()
        record["shm_name"] = shm_name
    else:
        record["graph"] = gen
    return record


def execute_trial(
    trial_dict: Dict[str, Any],
    gen: Optional[GeneratedGraph] = None,
    graph_source: str = "built",
) -> Dict[str, Any]:
    """Run one trial's four stages and return its cacheable record.

    The record is ``{"key", "trial", "metrics", "elapsed_s", "stages",
    "provenance"}`` plus ``phases`` (the serialized
    :class:`~repro.simulator.ledger.RoundLedger` breakdown) when the
    algorithm reports one; ``metrics`` always includes the instance's size
    statistics so aggregation never has to rebuild the graph.  Wall times
    (``elapsed_s``, the per-stage ``stages`` dict) and ``provenance`` are
    kept outside ``metrics`` because they are machine- and transport-
    dependent and must not affect aggregate reports.

    When ``gen`` is given the ``build_graph`` stage only accounts the
    attach/hand-off (the :class:`~.graphstore.GraphStore` already built the
    instance) and ``graph_source`` records where it came from.
    """
    trial = TrialSpec.from_dict(trial_dict)
    spec = ALGORITHMS.get(trial.algorithm)
    if spec is None:
        raise InvalidParameterError(
            f"unknown algorithm {trial.algorithm!r}; known: {sorted(ALGORITHMS)}"
        )
    stages: Dict[str, float] = {}
    t0 = time.perf_counter()
    if gen is None:
        gen = build_instance(trial)
        graph_source = "built"
    net = SynchronousNetwork(gen.graph, scheduler=trial.scheduler or "event")
    stages["build_graph"] = time.perf_counter() - t0
    # Algorithm randomness is decorrelated from the structural seed so that
    # e.g. Luby's coin flips are not the same stream that wired the graph.
    alg_seed = derive_seed(trial.key(), "alg")
    t0 = time.perf_counter()
    result = spec.run(net, gen, alg_seed, dict(trial.algorithm_params))
    stages["run_algorithm"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    _verify_result(spec.kind, gen.graph, result)
    stages["verify"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    metrics = _result_metrics(spec, gen, result)
    stages["metrics"] = time.perf_counter() - t0
    # elapsed_s is the sum of the *recorded* (rounded) stage times, so the
    # two fields in a record are always exactly consistent
    recorded = {name: round(stages[name], 6) for name in STAGES}
    record = {
        "key": trial.key(),
        "trial": trial.to_dict(),
        "metrics": metrics,
        "elapsed_s": round(sum(recorded.values()), 6),
        "stages": recorded,
        "provenance": {
            "graph_source": graph_source,
            "pid": os.getpid(),
            "scheduler": net.scheduler,
        },
    }
    # Composite algorithms attach a RoundLedger; serialize the phase
    # breakdown next to metrics, never inside (phases are deterministic,
    # but the metrics dict is the pinned cross-path comparison surface).
    ledger = getattr(result, "ledger", None)
    if ledger is not None and getattr(ledger, "phases", None):
        record["phases"] = ledger.to_dicts()
    return record


def execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool entry point: a trial dict plus an optional pre-built graph.

    ``payload["kind"] == BUILD_KIND`` marks build-only work (see
    :func:`execute_build`).  Otherwise ``payload["graph"]`` is ``None``
    (build here), a :class:`~.graphstore.ShmGraphRef` (attach zero-copy),
    or a pickled :class:`~repro.graphs.generators.GeneratedGraph` (the
    no-shm fallback).
    """
    from .graphstore import resolve_graph

    if payload.get("kind") == BUILD_KIND:
        return execute_build(payload)
    gen, source = resolve_graph(payload.get("graph"))
    # serial runs hand the object over in-process; the payload says so
    # (resolve_graph alone cannot tell an unpickled copy from the original)
    source = payload.get("graph_source", source)
    return execute_trial(payload["trial"], gen=gen, graph_source=source)
