"""Named registries of graph families and algorithm runners, plus the
picklable trial entry point the parallel runner fans out.

Everything a worker process needs is resolved *by name* inside
:func:`execute_trial`, so the only objects that cross the process boundary
are plain dicts — trials go out as ``TrialSpec.to_dict()`` payloads and
results come back as JSON-serialisable records.  That keeps the
``multiprocessing`` plumbing trivial and the cache format identical to the
wire format.

Algorithm runners verify their own output (via :mod:`repro.verify`) before
reporting metrics, so a cached record is always a *checked* result.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict

from .. import SynchronousNetwork
from ..core import (
    be08_coloring,
    delta_plus_one_via_arboricity,
    forests_decomposition,
    legal_coloring_corollary46,
    legal_coloring_theorem43,
    linial_coloring,
    luby_coloring,
    luby_mis,
    mis_arboricity,
    oneshot_legal_coloring,
    theorem52_fast_coloring,
    theorem53_tradeoff,
)
from ..errors import InvalidParameterError
from ..graphs import (
    GeneratedGraph,
    erdos_renyi,
    forest_union,
    grid,
    hypercube,
    low_arboricity_high_degree,
    planar_triangulation,
    preferential_attachment,
    random_geometric,
    random_regular,
    random_tree,
    ring,
)
from ..verify import check_forests_decomposition, check_legal_coloring, check_mis
from .spec import TrialSpec, derive_seed

# ----------------------------------------------------------------------
# graph family registry: name -> builder(seed, **family_params)
# ----------------------------------------------------------------------


def _fam_forest_union(seed: int, n: int = 400, a: int = 8, density: float = 1.0):
    return forest_union(n, a, seed=seed, density=density)


def _fam_planar(seed: int, n: int = 400):
    return planar_triangulation(n, seed=seed)


def _fam_tree(seed: int, n: int = 400):
    return random_tree(n, seed=seed)


def _fam_grid(seed: int, rows: int = 20, cols: int = 20):
    return grid(rows, cols)


def _fam_ring(seed: int, n: int = 400):
    return ring(n)


def _fam_hypercube(seed: int, dim: int = 8):
    return hypercube(dim)


def _fam_regular(seed: int, n: int = 400, d: int = 8):
    return random_regular(n, d, seed=seed)


def _fam_preferential(seed: int, n: int = 400, m: int = 3):
    return preferential_attachment(n, m, seed=seed)


def _fam_hubs(seed: int, n: int = 400, a: int = 3, num_hubs: int = 4):
    return low_arboricity_high_degree(n, a, num_hubs=num_hubs, seed=seed)


def _fam_erdos_renyi(seed: int, n: int = 400, p: float = 0.02):
    return erdos_renyi(n, p, seed=seed)


def _fam_geometric(seed: int, n: int = 400, radius: float = 0.08):
    return random_geometric(n, radius, seed=seed)


FAMILIES: Dict[str, Callable[..., GeneratedGraph]] = {
    "forest_union": _fam_forest_union,
    "planar": _fam_planar,
    "tree": _fam_tree,
    "grid": _fam_grid,
    "ring": _fam_ring,
    "hypercube": _fam_hypercube,
    "regular": _fam_regular,
    "preferential": _fam_preferential,
    "hubs": _fam_hubs,
    "erdos_renyi": _fam_erdos_renyi,
    "random_geometric": _fam_geometric,
}


def build_instance(trial: TrialSpec) -> GeneratedGraph:
    """Materialise the graph instance of a trial from the family registry."""
    if trial.family not in FAMILIES:
        raise InvalidParameterError(
            f"unknown graph family {trial.family!r}; "
            f"known: {sorted(FAMILIES)}"
        )
    builder = FAMILIES[trial.family]
    try:
        return builder(trial.seed, **trial.family_params)
    except TypeError as exc:
        raise InvalidParameterError(
            f"bad params for family {trial.family!r}: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# algorithm registry: name -> runner(net, gen, seed, params) -> metrics
# ----------------------------------------------------------------------
# Metrics are flat JSON-serialisable dicts.  Every runner verifies its output
# with the matching repro.verify checker before returning.


def _bound(gen: GeneratedGraph, params: Dict[str, Any]) -> int:
    """The arboricity bound an algorithm should use: an explicit ``a`` in
    the params wins, else the instance's certified bound."""
    return int(params.get("a", gen.arboricity_bound))


def _coloring_metrics(gen: GeneratedGraph, result) -> Dict[str, Any]:
    check_legal_coloring(gen.graph, result.colors)
    out: Dict[str, Any] = {
        "kind": "coloring",
        "colors": result.num_colors,
        "rounds": result.rounds,
        "verified": True,
    }
    for k in ("pre_reduction_colors", "final_color_space"):
        if k in result.params:
            out[k] = result.params[k]
    return out


def _alg_cor46(net, gen, seed, params):
    a = _bound(gen, params)
    res = legal_coloring_corollary46(net, a, eta=float(params.get("eta", 0.5)))
    return _coloring_metrics(gen, res)


def _alg_thm43(net, gen, seed, params):
    a = _bound(gen, params)
    res = legal_coloring_theorem43(net, a, mu=float(params.get("mu", 1.0)))
    return _coloring_metrics(gen, res)


def _alg_oneshot(net, gen, seed, params):
    res = oneshot_legal_coloring(net, _bound(gen, params))
    return _coloring_metrics(gen, res)


def _alg_thm52(net, gen, seed, params):
    a = _bound(gen, params)
    res = theorem52_fast_coloring(net, a, d=int(params.get("d", max(1, a // 2))))
    return _coloring_metrics(gen, res)


def _alg_thm53(net, gen, seed, params):
    a = _bound(gen, params)
    res = theorem53_tradeoff(net, a, t=int(params.get("t", max(1, a // 4))))
    return _coloring_metrics(gen, res)


def _alg_be08(net, gen, seed, params):
    res = be08_coloring(net, _bound(gen, params))
    return _coloring_metrics(gen, res)


def _alg_linial(net, gen, seed, params):
    res = linial_coloring(net)
    return _coloring_metrics(gen, res)


def _alg_luby_coloring(net, gen, seed, params):
    res = luby_coloring(net, seed=seed)
    return _coloring_metrics(gen, res)


def _alg_delta_plus_one(net, gen, seed, params):
    a = _bound(gen, params)
    res = delta_plus_one_via_arboricity(net, a, nu=float(params.get("nu", 0.5)))
    return _coloring_metrics(gen, res)


def _alg_forests(net, gen, seed, params):
    a = _bound(gen, params)
    fd = forests_decomposition(net, a, epsilon=float(params.get("epsilon", 0.5)))
    check_forests_decomposition(gen.graph, fd)
    return {
        "kind": "decomposition",
        "num_forests": fd.num_forests,
        "rounds": fd.rounds,
        "verified": True,
    }


def _alg_mis_arboricity(net, gen, seed, params):
    a = _bound(gen, params)
    res = mis_arboricity(net, a, mu=float(params.get("mu", 0.5)))
    check_mis(gen.graph, res.members)
    out = {
        "kind": "mis",
        "mis_size": res.size,
        "rounds": res.rounds,
        "verified": True,
    }
    for k in ("num_colors", "coloring_rounds", "sweep_rounds"):
        if k in res.params:
            out[k] = res.params[k]
    return out


def _alg_luby_mis(net, gen, seed, params):
    res = luby_mis(net, seed=seed)
    check_mis(gen.graph, res.members)
    return {
        "kind": "mis",
        "mis_size": res.size,
        "rounds": res.rounds,
        "verified": True,
    }


ALGORITHMS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "cor46": _alg_cor46,
    "thm43": _alg_thm43,
    "oneshot": _alg_oneshot,
    "thm52": _alg_thm52,
    "thm53": _alg_thm53,
    "be08": _alg_be08,
    "linial": _alg_linial,
    "luby_coloring": _alg_luby_coloring,
    "delta_plus_one": _alg_delta_plus_one,
    "forests": _alg_forests,
    "mis_arboricity": _alg_mis_arboricity,
    "luby_mis": _alg_luby_mis,
}


# ----------------------------------------------------------------------
# trial entry point (top-level, hence picklable by multiprocessing)
# ----------------------------------------------------------------------
def execute_trial(trial_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Run one trial from its dict encoding and return its cacheable record.

    The record is ``{"key", "trial", "metrics", "elapsed_s"}``; ``metrics``
    always includes the instance's size statistics so aggregation never has
    to rebuild the graph.  ``elapsed_s`` is kept outside ``metrics`` because
    wall time is machine-dependent and must not affect aggregate reports.
    """
    trial = TrialSpec.from_dict(trial_dict)
    if trial.algorithm not in ALGORITHMS:
        raise InvalidParameterError(
            f"unknown algorithm {trial.algorithm!r}; known: {sorted(ALGORITHMS)}"
        )
    gen = build_instance(trial)
    net = SynchronousNetwork(gen.graph)
    # Algorithm randomness is decorrelated from the structural seed so that
    # e.g. Luby's coin flips are not the same stream that wired the graph.
    alg_seed = derive_seed(trial.key(), "alg")
    start = time.perf_counter()
    metrics = ALGORITHMS[trial.algorithm](net, gen, alg_seed, dict(trial.algorithm_params))
    elapsed = time.perf_counter() - start
    metrics.setdefault("n", gen.n)
    metrics.setdefault("m", gen.m)
    metrics.setdefault("max_degree", gen.max_degree)
    metrics.setdefault("arboricity_bound", gen.arboricity_bound)
    return {
        "key": trial.key(),
        "trial": trial.to_dict(),
        "metrics": metrics,
        "elapsed_s": elapsed,
    }
