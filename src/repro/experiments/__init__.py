"""Sweep engine: declarative experiment specs, a parallel trial runner, a
content-addressed result cache, and aggregation into report tables.

The paper's contribution is a family of tradeoff *curves*, so the repo's
real workload is sweeps — every algorithm × graph family × size × seed.
This package turns those from 19 bespoke benchmark loops into data:

>>> from repro.experiments import ScenarioSpec, SweepSpec, run_sweep
>>> spec = SweepSpec("demo", [
...     ScenarioSpec(family="forest_union", family_params={"n": 64, "a": 2},
...                  algorithm="cor46", num_seeds=2),
... ])
>>> result = run_sweep(spec)
>>> result.num_trials
2

See :mod:`repro.experiments.spec` for the spec format,
:mod:`repro.experiments.cache` for the on-disk cache guarantees, and
``repro sweep --help`` for the CLI surface.
"""

from .aggregate import (
    GroupSummary,
    percentile,
    report_table,
    stage_timing_table,
    summarize,
)
from .cache import ResultCache
from .executors import (
    EXECUTOR_NAMES,
    Executor,
    LocalPoolExecutor,
    SerialExecutor,
    SocketExecutor,
    make_executor,
    parse_address,
    run_worker,
    spawn_local_workers,
)
from .graphstore import GraphStore, ShmGraphRef, shm_available
from .registry import (
    ALGORITHMS,
    BUILD_KIND,
    FAMILIES,
    STAGES,
    AlgorithmSpec,
    build_instance,
    execute_build,
    execute_payload,
    execute_trial,
)
from .runner import SweepResult, TrialResult, default_workers, run_sweep
from .spec import (
    SPEC_VERSION,
    ScenarioSpec,
    SweepSpec,
    TrialSpec,
    canonical_json,
    derive_seed,
    graph_multiplicity,
    grid_scenarios,
)

__all__ = [
    "SPEC_VERSION",
    "TrialSpec",
    "ScenarioSpec",
    "SweepSpec",
    "grid_scenarios",
    "canonical_json",
    "derive_seed",
    "graph_multiplicity",
    "FAMILIES",
    "ALGORITHMS",
    "AlgorithmSpec",
    "STAGES",
    "BUILD_KIND",
    "build_instance",
    "execute_trial",
    "execute_build",
    "execute_payload",
    "GraphStore",
    "ShmGraphRef",
    "shm_available",
    "ResultCache",
    "run_sweep",
    "SweepResult",
    "TrialResult",
    "default_workers",
    "Executor",
    "EXECUTOR_NAMES",
    "SerialExecutor",
    "LocalPoolExecutor",
    "SocketExecutor",
    "make_executor",
    "parse_address",
    "run_worker",
    "spawn_local_workers",
    "percentile",
    "summarize",
    "report_table",
    "stage_timing_table",
    "GroupSummary",
]
