"""In-process and local-pool execution backends.

:class:`SerialExecutor` runs every payload on the calling thread — the
engine's reference backend, and the one ``workers=1`` sweeps use.
:class:`LocalPoolExecutor` is the re-homed ``multiprocessing.Pool`` fan-out
the runner used to own inline: one persistent pool, ``imap_unordered``
streaming over the runner's lazy payload generator, chunk size 1 so a slow
trial never holds completed neighbours hostage.  Records are byte-identical
between the two (and to every other backend) because the payload entry
point — :func:`~repro.experiments.registry.execute_payload` — is the same
function everywhere.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Iterable, Iterator

from ...errors import InvalidParameterError
from ..registry import execute_payload
from .base import Executor

__all__ = ["SerialExecutor", "LocalPoolExecutor"]


class SerialExecutor(Executor):
    """Run payloads one at a time on the calling thread.

    ``submit`` is a plain generator, so each payload is pulled — and its
    graph handed over / evicted by the runner's stream — only when the
    previous record has been absorbed: peak memory matches the old inline
    serial loop exactly.
    """

    name = "serial"
    supports_shm = True  # same process: shm is moot but never wrong
    locality = "in-process"

    def submit(
        self, payloads: Iterable[Dict[str, object]]
    ) -> Iterator[Dict[str, object]]:
        for payload in payloads:
            yield execute_payload(payload)


class LocalPoolExecutor(Executor):
    """One persistent ``multiprocessing.Pool`` on this host.

    The pool lives exactly as long as one ``submit`` call: created when
    the runner starts iterating, torn down (``Pool.__exit__`` terminates)
    when the result stream is exhausted *or closed* — the runner closes
    the stream on any error after unblocking the payload generator, which
    preserves the old inline engine's no-deadlock teardown ordering.
    """

    name = "pool"
    supports_shm = True  # same host: workers attach published segments
    locality = "local"

    def __init__(self, workers: int):
        if not isinstance(workers, int) or workers < 1:
            raise InvalidParameterError(
                f"LocalPoolExecutor: workers must be an integer >= 1, "
                f"got {workers!r}"
            )
        self.workers = workers

    def parallelism(self) -> int:
        return self.workers

    def submit(
        self, payloads: Iterable[Dict[str, object]]
    ) -> Iterator[Dict[str, object]]:
        with multiprocessing.Pool(self.workers) as pool:
            yield from pool.imap_unordered(
                execute_payload, payloads, chunksize=1
            )
