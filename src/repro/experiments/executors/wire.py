"""Length-prefixed JSON wire protocol for the socket executor.

Every message is one frame: a 4-byte big-endian length followed by a
UTF-8 JSON body.  JSON keeps the protocol debuggable (``nc`` + eyeballs)
and matches the cache/record format, which is already JSON — trial
payloads and result records cross the wire byte-for-byte as the runner
and :func:`~repro.experiments.registry.execute_payload` see them.

The one non-JSON value that must cross is a built graph: trial payloads
carry a :class:`~repro.graphs.generators.GeneratedGraph` on the pickle
transport (remote workers can never attach the parent's shared-memory
segments), and build results carry one back.  Those are encoded as a
tagged object ``{"__pickle__": "<base64>"}`` — the codec walks
containers, passes JSON scalars through untouched, and pickles anything
else.  (``msgpack`` would carry the bytes natively, but it is not a
baked-in dependency; base64 over JSON costs ~33% on the graph frames and
nothing on everything else.)

Pickle over a socket executes arbitrary bytecode on unpickling, so the
protocol is for **trusted clusters only** — the same trust boundary
``multiprocessing`` itself assumes.  Bind coordinators to loopback or
private interfaces.

Frames are capped at 1 GiB: a corrupt or hostile length prefix fails
fast instead of allocating unbounded memory.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
from typing import Any, Dict

__all__ = ["send_msg", "recv_msg", "encode_value", "decode_value", "MAX_FRAME"]

#: refuse frames beyond this many bytes (corrupt prefix / abuse guard)
MAX_FRAME = 1 << 30

_LEN = struct.Struct(">I")
#: tag key marking a base64-pickled value inside the JSON body
_PICKLE_TAG = "__pickle__"


def encode_value(value: Any) -> Any:
    """JSON-safe encoding: containers walked, non-JSON leaves pickled."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        if _PICKLE_TAG in value:  # literal dict that would collide: pickle it
            return _pickled(value)
        return {str(k): encode_value(v) for k, v in value.items()}
    return _pickled(value)


def _pickled(value: Any) -> Dict[str, str]:
    data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return {_PICKLE_TAG: base64.b64encode(data).decode("ascii")}


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if set(value) == {_PICKLE_TAG}:
            return pickle.loads(base64.b64decode(value[_PICKLE_TAG]))
        return {k: decode_value(v) for k, v in value.items()}
    return value


def send_msg(sock: socket.socket, obj: Dict[str, Any]) -> None:
    """Send one message as a single length-prefixed JSON frame."""
    body = json.dumps(encode_value(obj), separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ValueError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    sock.sendall(_LEN.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> Dict[str, Any]:
    """Receive one frame; raises ``ConnectionError`` on EOF/short read."""
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > MAX_FRAME:
        raise ConnectionError(
            f"frame length {length} exceeds MAX_FRAME — corrupt stream?"
        )
    body = _recv_exact(sock, length)
    obj = decode_value(json.loads(body.decode("utf-8")))
    if not isinstance(obj, dict):
        raise ConnectionError("malformed frame: body is not an object")
    return obj
