"""The ``Executor`` protocol: the seam between sweep scheduling and
payload transport.

:func:`~repro.experiments.runner.run_sweep` owns *what* runs (cache
probes, shared-graph build scheduling, streaming persistence, accounting);
an executor owns *where* it runs.  The contract is deliberately tiny:

``submit(payloads) -> iterator of records``
    Consume a **lazy** iterable of payload dicts (the runner's stream
    generator yields build payloads and trials as their graphs become
    ready) and yield result records **unordered, as they complete**.  A
    backend must keep pulling payloads while results are outstanding —
    the runner's stream unblocks on results it has absorbed (a build
    payload's result releases that graph's trials), so a backend that
    drains the iterable only after collecting results would deadlock.
    Payload and record shapes are exactly the ones
    :func:`~repro.experiments.registry.execute_payload` consumes and
    returns — executors never interpret them beyond routing.

``supports_shm``
    True when this backend's workers share the parent's memory namespace,
    i.e. they can attach shared-memory segments the parent's
    :class:`~repro.experiments.graphstore.GraphStore` publishes.  Remote
    backends set this False and the store falls back to the pickle
    transport (built graphs ride inside payloads) automatically.

``locality``
    ``"in-process"`` (payloads run on the calling thread — the runner
    uses its serial scheduling: graphs handed over by reference, no build
    payloads), ``"local"`` (other processes on this host), or
    ``"remote"`` (other hosts).  Anything but ``"in-process"`` gets the
    distributed scheduling: shared-graph builds dispatched as payloads,
    backpressure-windowed streaming.

``parallelism()``
    The backend's current concurrency — sizes the runner's build
    backpressure window.

``close()``
    Release the backend's resources (terminate pools, close sockets).
    ``run_sweep`` closes executors it constructed itself; instances the
    caller passed in stay open (a socket coordinator's worker fleet
    outlives one sweep).

Failure semantics are backend-specific but bounded: in-process and local
pools propagate worker exceptions; the socket backend requeues payloads
that were in flight on a disconnected worker (bounded retries, then
:class:`~repro.errors.ExecutorError`).  Whatever the backend, a record is
yielded at most once per payload — the runner's single-writer cache
append sees no duplicates and loses nothing that completed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator

__all__ = ["Executor"]


class Executor:
    """Base class / protocol for sweep execution backends."""

    #: registry name ("serial" / "pool" / "socket"); also stamped on
    #: trace spans so a trace says which backend ran each stage
    name: str = "base"
    #: workers can attach parent-published shared-memory segments
    supports_shm: bool = False
    #: "in-process" | "local" | "remote" — selects the scheduling shape
    locality: str = "in-process"

    def parallelism(self) -> int:
        """Current concurrency; sizes the build backpressure window."""
        return 1

    def submit(
        self, payloads: Iterable[Dict[str, object]]
    ) -> Iterator[Dict[str, object]]:
        """Lazily consume ``payloads``, yield result records unordered."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources; idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
