"""Multi-host socket execution backend: coordinator + attachable workers.

The parent becomes a **coordinator**: it listens on a TCP port, remote
``repro worker --connect HOST:PORT`` processes attach, and the sweep's
payload stream is dispatched over the wire (see :mod:`.wire` for the
length-prefixed JSON protocol) with per-worker backpressure.  Results
merge into one unordered stream, exactly like a local pool's
``imap_unordered`` — the runner cannot tell the difference, and keeps
its single-writer streaming cache appends.

Scheduling and failure semantics:

* **backpressure** — at most ``window`` payloads are in flight per worker
  (default 2: one running, one queued behind it), so a fast coordinator
  never buries a slow worker and a graph payload is pickled onto the wire
  only when a worker is nearly ready for it;
* **dispatch** — least-loaded alive worker first, so heterogeneous hosts
  self-balance;
* **disconnect** — a worker that drops (killed, crashed, network cut) has
  its in-flight payloads **requeued** ahead of fresh work.  Each payload
  carries a retry budget (``max_retries``, default 2 re-dispatches);
  exhausting it raises :class:`~repro.errors.ExecutorError` in the parent
  rather than silently dropping a trial.  Because a payload is requeued
  only when its result never arrived, every record reaches the runner at
  most once — a mid-sweep kill costs retries, never a lost or duplicated
  cache record;
* **no workers** — dispatch waits ``reconnect_timeout`` seconds for a
  worker to (re)attach before giving up with a clear error; trials that
  already completed are persisted, so the re-run resumes from them;
* **payload exceptions** — a payload that *raises* on a worker is a
  deterministic failure, not an infrastructure one: it is reported back
  (with the remote traceback) and raised in the parent, never retried —
  the same semantics a local pool gives.

Workers never attach shared memory (``supports_shm = False``), so the
GraphStore automatically serves shared graphs over the pickle transport:
build payloads are dispatched to workers like any other payload, the
built graph rides back pickled, and the parent re-pickles it into each
sharing trial's payload.

The wire protocol carries pickles, so run coordinators on loopback or
trusted private networks only (the same trust model ``multiprocessing``
assumes between parent and workers).
"""

from __future__ import annotations

import collections
import os
import socket as socketlib
import subprocess
import sys
import threading
import time
import traceback
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from ...errors import ExecutorError
from ..registry import execute_payload, payload_label
from .base import Executor
from .wire import recv_msg, send_msg

__all__ = [
    "SocketExecutor",
    "run_worker",
    "spawn_local_workers",
    "parse_address",
]

#: handshake / control timeouts (seconds)
_HANDSHAKE_TIMEOUT = 10.0
_ACCEPT_POLL = 0.25
_WAIT_POLL = 0.05


def parse_address(text: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``PORT``) into ``(host, port)``."""
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = default_host, text
    try:
        return (host or default_host), int(port)
    except ValueError:
        raise ExecutorError(
            f"invalid address {text!r}: expected HOST:PORT"
        ) from None


class _Task:
    """One payload's dispatch state: the payload and its attempt count."""

    __slots__ = ("payload", "attempts")

    def __init__(self, payload: Dict[str, object]):
        self.payload = payload
        self.attempts = 0


class _Worker:
    """Coordinator-side record of one attached worker connection."""

    __slots__ = (
        "wid", "sock", "pid", "host", "inflight", "alive", "send_lock",
        "thread", "served",
    )

    def __init__(self, wid: str, sock: socketlib.socket, pid, host):
        self.wid = wid
        self.sock = sock
        self.pid = pid
        self.host = host
        self.inflight: Dict[int, _Task] = {}
        self.alive = True
        self.send_lock = threading.Lock()
        self.thread: Optional[threading.Thread] = None
        self.served = 0


class SocketExecutor(Executor):
    """Coordinator backend; workers attach with ``repro worker --connect``.

    Parameters
    ----------
    host, port:
        Listen address.  Port ``0`` picks a free port (read it back from
        ``self.port``) — the loopback tests and the CI smoke leg use that.
    min_workers:
        The concurrency the coordinator *plans* for: sizes the runner's
        build backpressure window before any worker attaches, and is the
        default count :meth:`wait_for_workers` blocks on.
    window:
        In-flight payload cap per worker.
    max_retries:
        Re-dispatches a payload may consume across worker disconnects
        before the sweep fails.
    reconnect_timeout:
        Seconds dispatch tolerates zero attached workers (at start or
        after losing the last one) before raising.
    on_event:
        Optional ``(event, **fields)`` callback for lifecycle events
        (``listen`` / ``attach`` / ``detach`` / ``requeue``), fired from
        coordinator threads; the CLI wires it to progress output.
    """

    name = "socket"
    supports_shm = False  # remote workers always take the pickle transport
    locality = "remote"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        min_workers: int = 1,
        window: int = 2,
        max_retries: int = 2,
        reconnect_timeout: float = 60.0,
        on_event=None,
    ):
        if min_workers < 1:
            raise ExecutorError("SocketExecutor: min_workers must be >= 1")
        if window < 1:
            raise ExecutorError("SocketExecutor: window must be >= 1")
        self.min_workers = int(min_workers)
        self.window = int(window)
        self.max_retries = int(max_retries)
        self.reconnect_timeout = float(reconnect_timeout)
        self._on_event = on_event

        self._cond = threading.Condition()
        self._workers: Dict[str, _Worker] = {}
        self._retry: Deque[_Task] = collections.deque()
        self._results: "collections.deque[Tuple[str, object]]" = (
            collections.deque()
        )
        self._outstanding = 0
        self._seq = 0
        self._next_wid = 1
        self._closed = False
        self._abort = False
        self._dispatch_done = True
        self._dispatch_error: Optional[BaseException] = None
        self._submit_active = False
        self._no_worker_since: Optional[float] = time.monotonic()

        #: lifetime counters (tests and the CLI read these)
        self.requeued = 0
        self.disconnects = 0

        self._listener = socketlib.socket(
            socketlib.AF_INET, socketlib.SOCK_STREAM
        )
        self._listener.setsockopt(
            socketlib.SOL_SOCKET, socketlib.SO_REUSEADDR, 1
        )
        self._listener.bind((host, port))
        self._listener.listen()
        self._listener.settimeout(_ACCEPT_POLL)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="socket-executor-accept", daemon=True
        )
        self._accept_thread.start()
        self._note("listen", host=self.host, port=self.port)

    # -- small helpers ---------------------------------------------------
    def _note(self, event: str, **fields) -> None:
        if self._on_event is not None:
            self._on_event(event, **fields)

    def _alive_workers(self) -> List[_Worker]:
        return [w for w in self._workers.values() if w.alive]

    def worker_count(self) -> int:
        with self._cond:
            return len(self._alive_workers())

    def parallelism(self) -> int:
        return max(self.min_workers, self.worker_count(), 1)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def wait_for_workers(
        self, count: Optional[int] = None, timeout: float = 60.0
    ) -> int:
        """Block until ``count`` (default ``min_workers``) workers attach."""
        want = count if count is not None else self.min_workers
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self._alive_workers()) < want:
                if self._closed:
                    raise ExecutorError("socket executor is closed")
                if time.monotonic() > deadline:
                    raise ExecutorError(
                        f"only {len(self._alive_workers())} of {want} "
                        f"worker(s) attached within {timeout:.0f}s — start "
                        f"workers with `repro worker --connect "
                        f"{self.address}`"
                    )
                self._cond.wait(_WAIT_POLL)
            return len(self._alive_workers())

    # -- worker attachment ----------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _addr = self._listener.accept()
            except socketlib.timeout:
                continue
            except OSError:
                return  # listener closed
            try:
                sock.settimeout(_HANDSHAKE_TIMEOUT)
                hello = recv_msg(sock)
                if hello.get("type") != "hello":
                    raise ConnectionError("expected a hello frame")
                with self._cond:
                    wid = f"w{self._next_wid}"
                    self._next_wid += 1
                send_msg(sock, {"type": "welcome", "worker_id": wid})
                sock.settimeout(None)
            except (ConnectionError, OSError, ValueError):
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            worker = _Worker(wid, sock, hello.get("pid"), hello.get("host"))
            worker.thread = threading.Thread(
                target=self._recv_loop,
                args=(worker,),
                name=f"socket-executor-{wid}",
                daemon=True,
            )
            with self._cond:
                self._workers[wid] = worker
                self._no_worker_since = None
                self._cond.notify_all()
            worker.thread.start()
            self._note(
                "attach", worker=wid, pid=worker.pid, host=worker.host
            )

    def _worker_lost(self, worker: _Worker) -> None:
        """Mark a worker dead and requeue (or fail) its in-flight payloads."""
        with self._cond:
            if not worker.alive:
                return
            worker.alive = False
            tasks = list(worker.inflight.values())
            worker.inflight.clear()
            if not self._closed:
                # detaches during close() are orderly shutdown, not faults
                self.disconnects += 1
            for task in tasks:
                task.attempts += 1
                if task.attempts > self.max_retries:
                    self._outstanding -= 1
                    self._results.append((
                        "error",
                        ExecutorError(
                            f"payload {payload_label(task.payload)} was in "
                            f"flight on worker {worker.wid} when it "
                            f"disconnected, and its retry budget "
                            f"({self.max_retries} re-dispatch(es)) is "
                            f"exhausted"
                        ),
                    ))
                else:
                    self.requeued += 1
                    self._retry.append(task)
            if not self._alive_workers():
                self._no_worker_since = time.monotonic()
            self._cond.notify_all()
        try:
            worker.sock.close()
        except OSError:
            pass
        self._note("detach", worker=worker.wid, requeued=len(tasks))

    def _recv_loop(self, worker: _Worker) -> None:
        try:
            while True:
                msg = recv_msg(worker.sock)
                mtype = msg.get("type")
                if mtype == "result":
                    with self._cond:
                        task = worker.inflight.pop(msg.get("task_id"), None)
                        if task is not None:
                            worker.served += 1
                            self._outstanding -= 1
                            rec = msg["record"]
                            prov = rec.get("provenance")
                            if isinstance(prov, dict):
                                prov["worker"] = worker.wid
                            else:
                                # build results carry no provenance; tag
                                # them top-level (they are never cached)
                                rec.setdefault("worker", worker.wid)
                            self._results.append(("ok", rec))
                            self._cond.notify_all()
                elif mtype == "error":
                    remote = msg.get("traceback") or msg.get("error", "?")
                    with self._cond:
                        task = worker.inflight.pop(msg.get("task_id"), None)
                        if task is not None:
                            self._outstanding -= 1
                        label = (
                            payload_label(task.payload)
                            if task is not None
                            else "?"
                        )
                        self._results.append((
                            "error",
                            ExecutorError(
                                f"payload {label} raised on worker "
                                f"{worker.wid}:\n{remote}"
                            ),
                        ))
                        self._cond.notify_all()
        except (ConnectionError, OSError):
            pass
        finally:
            self._worker_lost(worker)

    # -- dispatch ---------------------------------------------------------
    def _acquire_slot(self, task: _Task) -> Tuple[_Worker, int]:
        """Block until a worker has a free slot; register the task on it."""
        while True:
            with self._cond:
                if self._abort or self._closed:
                    raise ExecutorError("socket executor is shutting down")
                alive = self._alive_workers()
                free = [w for w in alive if len(w.inflight) < self.window]
                if free:
                    worker = min(free, key=lambda w: (len(w.inflight), w.wid))
                    task_id = self._seq
                    self._seq += 1
                    worker.inflight[task_id] = task
                    return worker, task_id
                if not alive:
                    since = self._no_worker_since
                    if (
                        since is not None
                        and time.monotonic() - since > self.reconnect_timeout
                    ):
                        raise ExecutorError(
                            f"no workers attached for "
                            f"{self.reconnect_timeout:.0f}s — start workers "
                            f"with `repro worker --connect {self.address}`"
                        )
                self._cond.wait(_WAIT_POLL)

    def _dispatch(self, task: _Task) -> None:
        worker, task_id = self._acquire_slot(task)
        try:
            with worker.send_lock:
                send_msg(
                    worker.sock,
                    {"type": "task", "task_id": task_id, "payload": task.payload},
                )
        except (OSError, ValueError):
            # the receiver thread will usually notice first; either way the
            # task is still registered in worker.inflight, so _worker_lost
            # requeues it under the same bounded-retry accounting
            self._worker_lost(worker)

    def _dispatch_loop(self, payloads: Iterable[Dict[str, object]]) -> None:
        src = iter(payloads)
        src_done = False
        try:
            while not self._abort and not self._closed:
                task: Optional[_Task] = None
                with self._cond:
                    if self._retry:
                        task = self._retry.popleft()
                if task is None:
                    if src_done:
                        with self._cond:
                            if self._outstanding == 0 and not self._retry:
                                return
                            self._cond.wait(_WAIT_POLL)
                        continue
                    try:
                        payload = next(src)
                    except StopIteration:
                        src_done = True
                        continue
                    task = _Task(payload)
                    with self._cond:
                        self._outstanding += 1
                self._dispatch(task)
        except BaseException as exc:
            with self._cond:
                self._dispatch_error = exc
                self._cond.notify_all()
        finally:
            with self._cond:
                self._dispatch_done = True
                self._cond.notify_all()

    # -- the Executor contract --------------------------------------------
    def submit(
        self, payloads: Iterable[Dict[str, object]]
    ) -> Iterator[Dict[str, object]]:
        with self._cond:
            if self._closed:
                raise ExecutorError("socket executor is closed")
            if self._submit_active:
                raise ExecutorError(
                    "SocketExecutor.submit: a submission is already active"
                )
            self._submit_active = True
            self._abort = False
            self._dispatch_done = False
            self._dispatch_error = None
            self._outstanding = 0
            self._retry.clear()
            self._results.clear()
        dispatcher = threading.Thread(
            target=self._dispatch_loop,
            args=(payloads,),
            name="socket-executor-dispatch",
            daemon=True,
        )
        dispatcher.start()
        try:
            while True:
                with self._cond:
                    if self._dispatch_error is not None:
                        raise self._dispatch_error
                    item = (
                        self._results.popleft() if self._results else None
                    )
                    if item is None:
                        if self._dispatch_done and self._outstanding == 0:
                            return
                        self._cond.wait(_WAIT_POLL)
                        continue
                kind, value = item
                if kind == "ok":
                    yield value  # type: ignore[misc]
                else:
                    raise value  # type: ignore[misc]
        finally:
            with self._cond:
                self._abort = True
                self._cond.notify_all()
            dispatcher.join(timeout=10.0)
            with self._cond:
                self._submit_active = False

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            self._cond.notify_all()
        try:
            self._listener.close()
        except OSError:
            pass
        for worker in workers:
            try:
                with worker.send_lock:
                    send_msg(worker.sock, {"type": "shutdown"})
            except (OSError, ValueError):
                pass
            try:
                worker.sock.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# the worker side: ``repro worker --connect HOST:PORT``
# ----------------------------------------------------------------------


def run_worker(
    host: str,
    port: int,
    say=print,
    connect_timeout: float = 30.0,
) -> int:
    """Attach to a coordinator and serve payloads until it goes away.

    The loop is deliberately dumb: receive a task frame, run
    :func:`~repro.experiments.registry.execute_payload` (the exact entry
    point every other backend uses), send the record back.  A payload
    that raises is reported with its traceback instead of killing the
    worker.  EOF or a broken connection means the coordinator finished
    (or died) — either way the worker's job is done and it exits 0.
    """
    try:
        sock = socketlib.create_connection((host, port), timeout=connect_timeout)
    except OSError as exc:
        say(f"worker: cannot reach coordinator at {host}:{port}: {exc}")
        return 1
    served = 0
    try:
        sock.settimeout(_HANDSHAKE_TIMEOUT)
        send_msg(
            sock,
            {
                "type": "hello",
                "pid": os.getpid(),
                "host": socketlib.gethostname(),
            },
        )
        welcome = recv_msg(sock)
        wid = welcome.get("worker_id", "?")
        sock.settimeout(None)
        say(f"worker {wid}: attached to {host}:{port} (pid {os.getpid()})")
        while True:
            msg = recv_msg(sock)
            mtype = msg.get("type")
            if mtype == "shutdown":
                break
            if mtype != "task":
                continue
            try:
                record = execute_payload(msg["payload"])
            except Exception as exc:
                send_msg(
                    sock,
                    {
                        "type": "error",
                        "task_id": msg.get("task_id"),
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                    },
                )
                continue
            send_msg(
                sock,
                {
                    "type": "result",
                    "task_id": msg.get("task_id"),
                    "record": record,
                },
            )
            served += 1
    except (ConnectionError, OSError):
        pass  # coordinator gone: normal end of service
    finally:
        try:
            sock.close()
        except OSError:
            pass
    say(f"worker: served {served} payload(s), coordinator detached")
    return 0


def spawn_local_workers(
    host: str, port: int, count: int
) -> List[subprocess.Popen]:
    """Start ``count`` loopback ``repro worker`` subprocesses.

    Convenience for single-host use of the socket backend (CI smoke legs,
    the fault-injection tests, quick local scale-out): each child runs
    ``python -m repro worker --connect host:port`` with ``PYTHONPATH``
    arranged so the child imports this very checkout.  The caller owns the
    handles — terminate them when the sweep is done (workers also exit on
    their own when the coordinator closes).
    """
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [pkg_root, env.get("PYTHONPATH", "")])
    )
    procs = []
    for _ in range(count):
        procs.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "worker",
                    "--connect",
                    f"{host}:{port}",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
        )
    return procs
