"""Sweep execution backends behind the :class:`~.base.Executor` protocol.

The runner schedules (cache probes, shared-graph builds, backpressure,
streaming persistence); an executor transports payloads to compute and
records back.  Three backends ship:

* :class:`SerialExecutor` — in-process, one payload at a time (the
  reference backend; ``workers=1`` sweeps use it);
* :class:`LocalPoolExecutor` — one ``multiprocessing.Pool`` on this host
  (the default for ``workers > 1``; supports the shared-memory graph
  transport);
* :class:`SocketExecutor` — a coordinator remote ``repro worker
  --connect HOST:PORT`` processes attach to over a length-prefixed JSON
  protocol, with per-worker backpressure and bounded-retry requeue on
  disconnect (remote workers always take the pickle graph transport).

All backends run payloads through the same entry point
(:func:`repro.experiments.registry.execute_payload`), so records are
byte-identical whichever backend produced them — pinned by
``tests/test_sweep_equivalence.py``.
"""

from __future__ import annotations

from ...errors import ExecutorError, InvalidParameterError
from .base import Executor
from .local import LocalPoolExecutor, SerialExecutor
from .socket import (
    SocketExecutor,
    parse_address,
    run_worker,
    spawn_local_workers,
)

__all__ = [
    "Executor",
    "ExecutorError",
    "SerialExecutor",
    "LocalPoolExecutor",
    "SocketExecutor",
    "run_worker",
    "spawn_local_workers",
    "parse_address",
    "make_executor",
    "EXECUTOR_NAMES",
]

#: names ``run_sweep(executor=...)`` and ``repro sweep --executor`` accept
EXECUTOR_NAMES = ("serial", "pool", "socket")


def make_executor(name: str, workers: int = 1, **options) -> Executor:
    """Construct a backend by registry name.

    ``workers`` sizes the local pool (ignored by the others); ``options``
    are forwarded to :class:`SocketExecutor` for ``name="socket"``.
    """
    if name == "serial":
        return SerialExecutor()
    if name in ("pool", "local"):
        return LocalPoolExecutor(workers)
    if name == "socket":
        return SocketExecutor(**options)
    raise InvalidParameterError(
        f"unknown executor {name!r}; known: {sorted(EXECUTOR_NAMES)}"
    )
