"""Declarative scenario specifications for the sweep engine.

A *sweep* is the repo's real workload: run every algorithm across many graph
families, sizes, seeds, and parameters, and aggregate the resulting tradeoff
curves.  Instead of 19 bespoke benchmark loops, a sweep is described as data:

* a :class:`ScenarioSpec` names one (family, family_params, algorithm,
  algorithm_params) cell and the seeds to replicate it over;
* a :class:`SweepSpec` is a named list of scenarios, expressible in code or
  as JSON (``SweepSpec.from_json`` / ``to_json``);
* each scenario expands into :class:`TrialSpec` atoms — the unit of
  execution, caching, and parallelism.

Every trial has a stable **content-addressed key**: the SHA-256 of the
canonical JSON encoding of the trial plus a spec-format version.  The key is
what the on-disk cache is indexed by, so two sweeps that share cells share
work, and renaming a sweep never invalidates its trials.

Seeding is deterministic end to end.  A scenario may list explicit seeds or
just a replicate count; in the latter case per-trial seeds are *derived* from
the scenario's content hash (:func:`derive_seed`), so adding a scenario to a
sweep never shifts the seeds of its neighbours.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import InvalidParameterError

#: Bump when the meaning of a trial's encoding changes (invalidates caches).
SPEC_VERSION = 1


def canonical_json(obj: object) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def derive_seed(*parts: object) -> int:
    """A stable 31-bit seed derived from arbitrary labelled parts.

    Used to give every trial an independent, reproducible random seed
    without any global counter: the same parts always yield the same seed,
    and unrelated parts yield (cryptographically) unrelated seeds.
    """
    h = hashlib.sha256(":".join(str(p) for p in parts).encode("utf-8"))
    return int.from_bytes(h.digest()[:4], "big") & 0x7FFFFFFF


@dataclass
class TrialSpec:
    """One atomic experiment: a graph instance and one algorithm run on it.

    ``family_params`` parameterise the generator (excluding the seed, which
    is the trial's own ``seed``); ``algorithm_params`` parameterise the
    algorithm.  Both must be JSON-serialisable.
    """

    family: str
    algorithm: str
    seed: int = 0
    family_params: Dict[str, object] = field(default_factory=dict)
    algorithm_params: Dict[str, object] = field(default_factory=dict)
    #: simulator engine for the trial's network ("" = the default engine);
    #: omitted from the encoding when empty so legacy cache keys are stable
    scheduler: str = ""

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "family": self.family,
            "family_params": dict(self.family_params),
            "algorithm": self.algorithm,
            "algorithm_params": dict(self.algorithm_params),
            "seed": self.seed,
        }
        if self.scheduler:
            d["scheduler"] = self.scheduler
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "TrialSpec":
        return cls(
            family=str(d["family"]),
            algorithm=str(d["algorithm"]),
            seed=int(d.get("seed", 0)),
            family_params=dict(d.get("family_params", {})),
            algorithm_params=dict(d.get("algorithm_params", {})),
            scheduler=str(d.get("scheduler", "")),
        )

    def key(self) -> str:
        """Content-addressed cache key for this trial."""
        payload = canonical_json({"v": SPEC_VERSION, "trial": self.to_dict()})
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def graph_key(self) -> str:
        """Content-addressed key of the trial's graph *instance*.

        Covers exactly the inputs the family builder sees — ``(family,
        family_params, seed)`` — and nothing algorithm-side, so every trial
        of an ablation sweep that varies only algorithm parameters maps to
        the same graph key.  This is what
        :class:`repro.experiments.graphstore.GraphStore` dedups builds by.
        """
        payload = canonical_json(
            {
                "v": SPEC_VERSION,
                "family": self.family,
                "family_params": dict(self.family_params),
                "seed": self.seed,
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable identifier for tables and logs."""
        fp = ",".join(f"{k}={v}" for k, v in sorted(self.family_params.items()))
        return f"{self.family}({fp})/{self.algorithm}#{self.seed}"


@dataclass
class ScenarioSpec:
    """One sweep cell replicated over several seeds.

    Either list ``seeds`` explicitly, or give ``num_seeds`` and let the
    engine derive them from the scenario content (see :func:`derive_seed`).
    """

    family: str
    algorithm: str
    family_params: Dict[str, object] = field(default_factory=dict)
    algorithm_params: Dict[str, object] = field(default_factory=dict)
    seeds: Optional[List[int]] = None
    num_seeds: int = 1
    #: simulator engine for every trial of the cell ("" = the default);
    #: a set value flows into each trial's cache key, so engine A/B cells
    #: of the same workload are cached independently
    scheduler: str = ""

    def resolved_seeds(self) -> List[int]:
        if self.seeds is not None:
            return [int(s) for s in self.seeds]
        if self.num_seeds < 1:
            raise InvalidParameterError("ScenarioSpec: num_seeds must be >= 1")
        stem = canonical_json(
            {
                "family": self.family,
                "family_params": self.family_params,
                "algorithm": self.algorithm,
                "algorithm_params": self.algorithm_params,
            }
        )
        return [derive_seed(stem, i) for i in range(self.num_seeds)]

    def trials(self) -> List[TrialSpec]:
        return [
            TrialSpec(
                family=self.family,
                algorithm=self.algorithm,
                seed=s,
                family_params=dict(self.family_params),
                algorithm_params=dict(self.algorithm_params),
                scheduler=self.scheduler,
            )
            for s in self.resolved_seeds()
        ]

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "family": self.family,
            "family_params": dict(self.family_params),
            "algorithm": self.algorithm,
            "algorithm_params": dict(self.algorithm_params),
        }
        if self.seeds is not None:
            d["seeds"] = list(self.seeds)
        else:
            d["num_seeds"] = self.num_seeds
        if self.scheduler:
            d["scheduler"] = self.scheduler
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ScenarioSpec":
        return cls(
            family=str(d["family"]),
            algorithm=str(d["algorithm"]),
            family_params=dict(d.get("family_params", {})),
            algorithm_params=dict(d.get("algorithm_params", {})),
            seeds=[int(s) for s in d["seeds"]] if "seeds" in d else None,
            num_seeds=int(d.get("num_seeds", 1)),
            scheduler=str(d.get("scheduler", "")),
        )


@dataclass
class SweepSpec:
    """A named collection of scenarios — the unit the CLI and cache work on."""

    name: str
    scenarios: List[ScenarioSpec] = field(default_factory=list)

    def trials(self) -> List[TrialSpec]:
        """All trials of the sweep, in deterministic scenario order."""
        out: List[TrialSpec] = []
        for sc in self.scenarios:
            out.extend(sc.trials())
        return out

    def graph_multiplicity(self) -> int:
        """The largest number of trials consuming any one graph instance.

        ``1`` means no graph is shared — scenario-derived seeds fold the
        algorithm cell into the graph seed, so e.g. ``num_seeds``
        ablations never share — and ``share_graphs`` can save nothing.
        ``0`` for an empty sweep.
        """
        counts = graph_multiplicity(self.trials())
        return max(counts.values()) if counts else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "scenarios": [sc.to_dict() for sc in self.scenarios],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "SweepSpec":
        return cls(
            name=str(d.get("name", "sweep")),
            scenarios=[ScenarioSpec.from_dict(s) for s in d.get("scenarios", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


def graph_multiplicity(trials: Iterable["TrialSpec"]) -> Dict[str, int]:
    """How many of ``trials`` consume each graph instance.

    Maps :meth:`TrialSpec.graph_key` to its trial count, in first-seen
    order.  Keys with multiplicity > 1 are the *shared* graphs — the ones
    the runner builds once (overlapped with pool execution) instead of once
    per trial, and the ones ``--stage-timings`` reports build overlap for.
    """
    counts: Dict[str, int] = {}
    for t in trials:
        gkey = t.graph_key()
        counts[gkey] = counts.get(gkey, 0) + 1
    return counts


def grid_scenarios(
    families: Sequence[Dict[str, object]],
    algorithms: Sequence[Dict[str, object]],
    num_seeds: int = 1,
    seeds: Optional[List[int]] = None,
) -> List[ScenarioSpec]:
    """Cartesian product helper: every family entry × every algorithm entry.

    Each entry is ``{"name": ..., **params}``; the name keys the registry and
    the remaining keys become the params dict.
    """
    out: List[ScenarioSpec] = []
    for fam in families:
        fam = dict(fam)
        fname = str(fam.pop("name"))
        for alg in algorithms:
            alg = dict(alg)
            aname = str(alg.pop("name"))
            out.append(
                ScenarioSpec(
                    family=fname,
                    algorithm=aname,
                    family_params=fam,
                    algorithm_params=alg,
                    seeds=list(seeds) if seeds is not None else None,
                    num_seeds=num_seeds,
                )
            )
    return out
