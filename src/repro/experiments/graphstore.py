"""Content-addressed store of built graph instances, shared across workers.

Barenboim–Elkin's pipeline is staged: one graph (and its decomposition)
feeds many downstream algorithm runs.  The sweep engine mirrors that shape:
an ablation sweep varies algorithm parameters over the *same* graphs, so
rebuilding each instance per trial wastes most of the wall clock.  The
:class:`GraphStore` dedups graph construction by
:meth:`repro.experiments.spec.TrialSpec.graph_key` — i.e. the
``(family, family_params, seed)`` content the builder actually sees — and
hands each unique instance to the trial executors three ways, fastest
available first:

* **shared memory** (``workers > 1``): the CSR arrays are published once
  per unique graph via :meth:`repro.graphs.graph.Graph.to_shm` and every
  worker attaches zero-copy with :meth:`~repro.graphs.graph.Graph.from_shm`
  (a per-process attach cache keeps one attachment per segment);
* **pickle fallback** (``REPRO_NO_SHM=1`` or platforms without
  ``multiprocessing.shared_memory``): the built
  :class:`~repro.graphs.generators.GeneratedGraph` rides inside the trial
  payload — built once, but pickled into each sharing trial's payload by
  the pool's dispatch (the fallback saves the builds, not the copies);
* **in-process** (``workers == 1``): the object itself is passed through.

Which transport a sweep gets is an *executor capability*, not a user
choice: backends advertise ``supports_shm``, and the runner pins the
store to the pickle transport for any backend whose workers cannot map
this host's memory (``SocketExecutor`` — remote processes can never
attach a coordinator-local segment, so shared graphs always ride the
wire pickled, once per sharing trial).

Construction itself can happen on *either* side of the process boundary.
The parent builds in-process (:meth:`GraphStore.get`, or
:meth:`GraphStore.publish` to move the bytes into a segment), but the
overlapped pool scheduler instead dispatches build-only payloads into the
worker pool: the worker builds, publishes the segment under a
parent-chosen name (or returns the pickled instance), and the parent
**adopts** the result — :meth:`GraphStore.adopt_segment` /
:meth:`GraphStore.adopt_graph` — so it owns segments it did not build.
:meth:`GraphStore.expect_segment` records every name promised to a worker
*before* the build is dispatched, so :meth:`close` can reclaim segments
whose build result never came back (interrupt or pool crash mid-overlap).

All transports produce byte-identical CSR arrays (shm attach is a view of
the same bytes, pickling round-trips them), so trial metrics never depend
on the transport — the equivalence suite pins that down.  Build/reuse
accounting is likewise transport-independent: a graph counts one *build*
when it materialises (parent-built, worker-built, or published) and one
*reuse* per consumer beyond the first, whichever path served it.

The store owns its segments: :meth:`close` (or use as a context manager)
closes and unlinks everything it published or adopted, plus everything it
still expects, and evicts this process's attach-cache entries for those
segments.  Worker processes never unlink; a worker that dies mid-trial
costs nothing because the parent still holds (or reclaims) the segment.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import InvalidParameterError
from ..graphs import GeneratedGraph
from ..graphs.graph import Graph
from .registry import build_instance
from .spec import TrialSpec

__all__ = ["GraphStore", "ShmGraphRef", "shm_available"]

#: environment switch: truthy disables shared memory (pickle fallback)
NO_SHM_ENV = "REPRO_NO_SHM"

_shm_probe: Optional[bool] = None


def _no_shm_requested() -> bool:
    """True when ``REPRO_NO_SHM`` is set to something truthy.

    ``0``/``false``/``no``/empty mean "not disabled" — a user exporting
    ``REPRO_NO_SHM=0`` wants shared memory on, not a silent fallback.
    """
    return os.environ.get(NO_SHM_ENV, "").strip().lower() not in (
        "", "0", "false", "no",
    )


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` actually works here.

    Probes once per process by creating (and immediately unlinking) a tiny
    segment — importing the module is not enough on platforms without a
    usable ``/dev/shm``.
    """
    global _shm_probe
    if _shm_probe is None:
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=8)
            seg.close()
            seg.unlink()
            _shm_probe = True
        except Exception:
            _shm_probe = False
    return _shm_probe


@dataclass(frozen=True)
class ShmGraphRef:
    """Picklable pointer to a published graph segment.

    Carries the :class:`~repro.graphs.generators.GeneratedGraph` metadata
    (certified arboricity bound, family name, params) alongside the segment
    name, so a worker can reassemble the full instance without touching the
    family builder.
    """

    graph_key: str
    shm_name: str
    name: str
    arboricity_bound: int
    params: Dict[str, object]


#: worker-side attach cache: one zero-copy attachment per segment per
#: process, keyed by ``(segment name, graph key)`` — the content key keeps
#: a recycled OS segment name from ever serving a stale graph
_ATTACHED: Dict[Tuple[str, str], GeneratedGraph] = {}


def attach_graph(ref: ShmGraphRef) -> GeneratedGraph:
    """Attach to a published graph (cached per process, one map per segment).

    The cache key includes the graph's content key: if the OS recycles a
    segment name for different content, the stale attachment under that
    name is evicted and the new segment is mapped fresh.
    """
    cache_key = (ref.shm_name, ref.graph_key)
    gen = _ATTACHED.get(cache_key)
    if gen is None:
        detach_segments([ref.shm_name])  # drop any stale same-name entry
        gen = GeneratedGraph(
            Graph.from_shm(ref.shm_name),
            ref.arboricity_bound,
            ref.name,
            dict(ref.params),
        )
        _ATTACHED[cache_key] = gen
    return gen


def detach_segments(names: Iterable[str]) -> None:
    """Evict this process's attach-cache entries for the given segments.

    Called by :meth:`GraphStore.close` so a long-lived process that runs
    several sweeps does not accumulate dead segment attachments (each one
    pins a mapping of the reclaimed segment until process exit).
    """
    names = set(names)
    for key in [k for k in _ATTACHED if k[0] in names]:
        del _ATTACHED[key]


def resolve_graph(
    graph: object,
) -> Tuple[Optional[GeneratedGraph], str]:
    """Turn a trial payload's ``graph`` field into an instance + provenance.

    Returns ``(gen, source)`` where ``source`` is ``"shm"`` (attached),
    ``"pickled"`` (rode in the payload), or ``"built"`` (``None`` — the
    executor must run the family builder itself).
    """
    if graph is None:
        return None, "built"
    if isinstance(graph, ShmGraphRef):
        return attach_graph(graph), "shm"
    if isinstance(graph, GeneratedGraph):
        return graph, "pickled"
    raise TypeError(f"unsupported graph payload: {type(graph).__name__}")


def _unlink_segment(name: str) -> None:
    """Best-effort unlink of a segment by name (absent is fine)."""
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:  # raced with another unlinker
        pass


class GraphStore:
    """Parent-side build-once store; see the module docstring.

    Parameters
    ----------
    use_shm:
        ``True``/``False`` forces the transport; ``None`` (default) uses
        shared memory when it is available and ``REPRO_NO_SHM`` is unset.
    on_event:
        Optional callback ``(event, **fields)`` fired for every lifecycle
        transition (``build``, ``publish``, ``expect``, ``adopt``,
        ``mint``, ``evict``, ``close``).  The sweep runner wires this to
        its JSONL trace writer; the store only ever calls it from the
        parent process, so a single-writer trace stays single-writer.

    Accounting (identical across transports by construction):

    * ``builds`` — graphs materialised through the store (built in-process
      or adopted from a worker);
    * ``reuses`` — consumers served beyond each graph's first;
    * ``build_s`` — wall seconds spent inside the family builders,
      wherever they ran;
    * ``live_peak`` — the most in-process graph copies ever held at once
      (the pickle fallback's memory watermark; published segments and the
      worker-side copies behind them are not in-process copies).
    """

    def __init__(self, use_shm: Optional[bool] = None, on_event=None):
        if use_shm is None:
            use_shm = shm_available() and not _no_shm_requested()
        self.use_shm = bool(use_shm)
        self._on_event = on_event
        self._graphs: Dict[str, GeneratedGraph] = {}
        self._segments: Dict[str, object] = {}  # graph_key -> SharedMemory
        #: graph_key -> (name, arboricity_bound, params) of published graphs,
        #: kept so refs can be minted after the heap copy is discarded
        self._meta: Dict[str, tuple] = {}
        #: graph_key -> segment name promised to a worker build that has not
        #: been adopted yet; close() reclaims these even if no result landed
        self._expected: Dict[str, str] = {}
        #: graph keys that already served their first consumer
        self._used: set = set()
        self.builds = 0
        self.reuses = 0
        self.build_s = 0.0
        self.live_peak = 0

    def __len__(self) -> int:
        return len(self._graphs)

    def _note(self, event: str, **fields) -> None:
        if self._on_event is not None:
            self._on_event(event, **fields)

    # -- accounting ------------------------------------------------------
    def _count_use(self, gkey: str) -> None:
        if gkey in self._used:
            self.reuses += 1
        else:
            self._used.add(gkey)

    def _track_live(self) -> None:
        if len(self._graphs) > self.live_peak:
            self.live_peak = len(self._graphs)

    # -- parent-side construction ----------------------------------------
    def ensure_built(self, trial: TrialSpec) -> GeneratedGraph:
        """Materialise ``trial``'s graph in-process (idempotent, no use
        counted — callers hand copies out via :meth:`get` / :meth:`mint`)."""
        gkey = trial.graph_key()
        gen = self._graphs.get(gkey)
        if gen is None:
            t0 = time.perf_counter()
            gen = build_instance(trial)
            dt = time.perf_counter() - t0
            self.build_s += dt
            self._graphs[gkey] = gen
            self.builds += 1
            self._track_live()
            self._note(
                "build", graph=gkey[:12], build_s=round(dt, 6), where="parent"
            )
        return gen

    def get(self, trial: TrialSpec) -> GeneratedGraph:
        """The built instance for ``trial``, deduped by its graph key."""
        gen = self.ensure_built(trial)
        self._count_use(trial.graph_key())
        return gen

    def publish(self, trial: TrialSpec) -> str:
        """Build (if needed) and move one graph into a shared segment.

        The parent's heap copy is dropped once the segment exists — the
        segment is the copy of record.  Returns the segment name.
        Idempotent per graph key.
        """
        gkey = trial.graph_key()
        seg = self._segments.get(gkey)
        if seg is None:
            gen = self.ensure_built(trial)
            seg = gen.graph.to_shm()
            self._segments[gkey] = seg
            self._meta[gkey] = (gen.name, gen.arboricity_bound, dict(gen.params))
            self.discard(gkey)
            self._note("publish", graph=gkey[:12], segment=seg.name)
        return seg.name

    # -- worker-built graphs (the overlapped scheduler's hand-off) --------
    def expect_segment(self, gkey: str, shm_name: str) -> None:
        """Record a segment name promised to a worker build, pre-dispatch.

        Guarantees cleanup: :meth:`close` unlinks expected-but-unadopted
        names, so an interrupt between the worker's ``to_shm`` and the
        parent's adoption leaks nothing.
        """
        self._expected[gkey] = shm_name
        self._note("expect", graph=gkey[:12], segment=shm_name)

    def adopt_segment(
        self,
        gkey: str,
        shm_name: str,
        name: str,
        arboricity_bound: int,
        params: Dict[str, object],
        build_s: float = 0.0,
    ) -> None:
        """Take ownership of a segment a worker published.

        The parent attaches (so the handle's lifetime is the store's) and
        from here on the segment behaves exactly like one
        :meth:`publish` created: :meth:`mint` serves refs to it and
        :meth:`close` unlinks it.
        """
        from multiprocessing import shared_memory

        self._expected.pop(gkey, None)
        if gkey in self._segments:  # pragma: no cover - scheduler invariant
            raise InvalidParameterError(
                f"GraphStore.adopt_segment: graph {gkey[:12]}… already held"
            )
        self._segments[gkey] = shared_memory.SharedMemory(name=shm_name)
        self._meta[gkey] = (name, int(arboricity_bound), dict(params))
        self.builds += 1
        self.build_s += build_s
        self._note(
            "adopt",
            graph=gkey[:12],
            segment=shm_name,
            transport="shm",
            build_s=round(build_s, 6),
        )

    def adopt_graph(
        self, gkey: str, gen: GeneratedGraph, build_s: float = 0.0
    ) -> None:
        """Take ownership of a worker-built graph (the pickle fallback)."""
        self._expected.pop(gkey, None)
        self._graphs[gkey] = gen
        self.builds += 1
        self.build_s += build_s
        self._track_live()
        self._note(
            "adopt",
            graph=gkey[:12],
            transport="pickle",
            build_s=round(build_s, 6),
        )

    # -- consumers ---------------------------------------------------------
    def mint(self, gkey: str) -> object:
        """One consumer's payload ``graph`` value for an already-held graph.

        A :class:`ShmGraphRef` when the graph lives in a segment, the
        in-process :class:`~repro.graphs.generators.GeneratedGraph`
        otherwise (the pool pickles it into the payload).  Every mint
        beyond a graph's first counts one reuse — the same accounting the
        in-process :meth:`get` path applies.
        """
        seg = self._segments.get(gkey)
        if seg is not None:
            self._count_use(gkey)
            name, bound, params = self._meta[gkey]
            return ShmGraphRef(
                graph_key=gkey,
                shm_name=seg.name,
                name=name,
                arboricity_bound=bound,
                params=dict(params),
            )
        gen = self._graphs.get(gkey)
        if gen is None:
            raise InvalidParameterError(
                f"GraphStore.mint: graph {gkey[:12]}… is not held "
                "(never built/adopted, or already discarded)"
            )
        self._count_use(gkey)
        return gen

    def payload_graph(self, trial: TrialSpec, for_pool: bool) -> object:
        """What to put in a trial payload's ``graph`` field.

        ``for_pool=False`` passes the in-process object straight through;
        ``for_pool=True`` returns a :class:`ShmGraphRef` (publishing the
        segment on first use) or, without shared memory, the instance
        itself to be pickled into each sharing trial's payload.
        """
        if not for_pool or not self.use_shm:
            return self.get(trial)
        gkey = trial.graph_key()
        if gkey not in self._segments:
            self.publish(trial)
        return self.mint(gkey)

    def discard(self, gkey: str) -> None:
        """Drop the in-process copy of one graph (published segments stay).

        The runner calls this once a graph's last pending trial has its
        payload, so a long sweep holds only the shared graphs still ahead
        of it instead of every unique graph it ever built.
        """
        if self._graphs.pop(gkey, None) is not None:
            self._note("evict", graph=gkey[:12])

    def close(self) -> None:
        """Release every owned segment (close + unlink), reclaim every
        expected-but-unadopted one, drop graphs, and evict this process's
        attach-cache entries for all of them."""
        segments, self._segments = self._segments, {}
        expected, self._expected = self._expected, {}
        self._graphs.clear()
        self._meta.clear()
        names: List[str] = []
        for seg in segments.values():
            names.append(seg.name)
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # already reclaimed (double close)
                pass
        for name in expected.values():
            # promised to a worker but never adopted: an interrupt or pool
            # crash mid-overlap — the worker may still have written it
            names.append(name)
            _unlink_segment(name)
        detach_segments(names)
        if segments or expected:
            self._note(
                "close", segments=len(segments), reclaimed=len(expected)
            )

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
