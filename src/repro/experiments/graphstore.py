"""Content-addressed store of built graph instances, shared across workers.

Barenboim–Elkin's pipeline is staged: one graph (and its decomposition)
feeds many downstream algorithm runs.  The sweep engine mirrors that shape:
an ablation sweep varies algorithm parameters over the *same* graphs, so
rebuilding each instance per trial wastes most of the wall clock.  The
:class:`GraphStore` builds every unique graph **once** in the parent —
keyed by :meth:`repro.experiments.spec.TrialSpec.graph_key`, i.e. the
``(family, family_params, seed)`` content the builder actually sees — and
hands it to the trial executors three ways, fastest available first:

* **shared memory** (``workers > 1``): the CSR arrays are published once
  per unique graph via :meth:`repro.graphs.graph.Graph.to_shm` and every
  worker attaches zero-copy with :meth:`~repro.graphs.graph.Graph.from_shm`
  (a per-process attach cache keeps one attachment per segment);
* **pickle fallback** (``REPRO_NO_SHM=1`` or platforms without
  ``multiprocessing.shared_memory``): the built
  :class:`~repro.graphs.generators.GeneratedGraph` rides inside the trial
  payload — built once, but pickled into each sharing trial's payload by
  the pool's dispatch (the fallback saves the builds, not the copies);
* **in-process** (``workers == 1``): the object itself is passed through.

All three paths produce byte-identical CSR arrays (shm attach is a view of
the same bytes, pickling round-trips them), so trial metrics never depend
on the transport — the equivalence suite pins that down.

The store owns its segments: :meth:`close` (or use as a context manager)
closes and unlinks everything it published.  Worker processes never unlink;
a worker that dies mid-trial costs nothing because the parent still holds
the segment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..graphs import GeneratedGraph
from ..graphs.graph import Graph
from .registry import build_instance
from .spec import TrialSpec

__all__ = ["GraphStore", "ShmGraphRef", "shm_available"]

#: environment switch: truthy disables shared memory (pickle fallback)
NO_SHM_ENV = "REPRO_NO_SHM"

_shm_probe: Optional[bool] = None


def _no_shm_requested() -> bool:
    """True when ``REPRO_NO_SHM`` is set to something truthy.

    ``0``/``false``/``no``/empty mean "not disabled" — a user exporting
    ``REPRO_NO_SHM=0`` wants shared memory on, not a silent fallback.
    """
    return os.environ.get(NO_SHM_ENV, "").strip().lower() not in (
        "", "0", "false", "no",
    )


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` actually works here.

    Probes once per process by creating (and immediately unlinking) a tiny
    segment — importing the module is not enough on platforms without a
    usable ``/dev/shm``.
    """
    global _shm_probe
    if _shm_probe is None:
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=8)
            seg.close()
            seg.unlink()
            _shm_probe = True
        except Exception:
            _shm_probe = False
    return _shm_probe


@dataclass(frozen=True)
class ShmGraphRef:
    """Picklable pointer to a published graph segment.

    Carries the :class:`~repro.graphs.generators.GeneratedGraph` metadata
    (certified arboricity bound, family name, params) alongside the segment
    name, so a worker can reassemble the full instance without touching the
    family builder.
    """

    graph_key: str
    shm_name: str
    name: str
    arboricity_bound: int
    params: Dict[str, object]


#: worker-side attach cache: one zero-copy attachment per segment per process
_ATTACHED: Dict[str, GeneratedGraph] = {}


def attach_graph(ref: ShmGraphRef) -> GeneratedGraph:
    """Attach to a published graph (cached per process, one map per segment)."""
    gen = _ATTACHED.get(ref.shm_name)
    if gen is None:
        gen = GeneratedGraph(
            Graph.from_shm(ref.shm_name),
            ref.arboricity_bound,
            ref.name,
            dict(ref.params),
        )
        _ATTACHED[ref.shm_name] = gen
    return gen


def resolve_graph(
    graph: object,
) -> Tuple[Optional[GeneratedGraph], str]:
    """Turn a trial payload's ``graph`` field into an instance + provenance.

    Returns ``(gen, source)`` where ``source`` is ``"shm"`` (attached),
    ``"pickled"`` (rode in the payload), or ``"built"`` (``None`` — the
    executor must run the family builder itself).
    """
    if graph is None:
        return None, "built"
    if isinstance(graph, ShmGraphRef):
        return attach_graph(graph), "shm"
    if isinstance(graph, GeneratedGraph):
        return graph, "pickled"
    raise TypeError(f"unsupported graph payload: {type(graph).__name__}")


class GraphStore:
    """Parent-side build-once store; see the module docstring.

    Parameters
    ----------
    use_shm:
        ``True``/``False`` forces the transport; ``None`` (default) uses
        shared memory when it is available and ``REPRO_NO_SHM`` is unset.
    """

    def __init__(self, use_shm: Optional[bool] = None):
        if use_shm is None:
            use_shm = shm_available() and not _no_shm_requested()
        self.use_shm = bool(use_shm)
        self._graphs: Dict[str, GeneratedGraph] = {}
        self._segments: Dict[str, object] = {}  # graph_key -> SharedMemory
        #: graph_key -> (name, arboricity_bound, params) of published graphs,
        #: kept so refs can be minted after the heap copy is discarded
        self._meta: Dict[str, tuple] = {}
        self.builds = 0
        self.reuses = 0

    def __len__(self) -> int:
        return len(self._graphs)

    def get(self, trial: TrialSpec) -> GeneratedGraph:
        """The built instance for ``trial``, deduped by its graph key."""
        gkey = trial.graph_key()
        gen = self._graphs.get(gkey)
        if gen is None:
            gen = build_instance(trial)
            self._graphs[gkey] = gen
            self.builds += 1
        else:
            self.reuses += 1
        return gen

    def payload_graph(self, trial: TrialSpec, for_pool: bool) -> object:
        """What to put in a trial payload's ``graph`` field.

        ``for_pool=False`` passes the in-process object straight through;
        ``for_pool=True`` returns a :class:`ShmGraphRef` (publishing the
        segment on first use — and dropping the parent's heap copy, whose
        bytes now live in the segment) or, without shared memory, the
        instance itself to be pickled into each sharing trial's payload.
        """
        if not for_pool or not self.use_shm:
            return self.get(trial)
        gkey = trial.graph_key()
        seg = self._segments.get(gkey)
        if seg is None:
            gen = self.get(trial)
            seg = gen.graph.to_shm()
            self._segments[gkey] = seg
            self._meta[gkey] = (gen.name, gen.arboricity_bound, dict(gen.params))
            self.discard(gkey)  # the segment is the copy of record now
        else:
            self.reuses += 1
        name, bound, params = self._meta[gkey]
        return ShmGraphRef(
            graph_key=gkey,
            shm_name=seg.name,
            name=name,
            arboricity_bound=bound,
            params=dict(params),
        )

    def discard(self, gkey: str) -> None:
        """Drop the in-process copy of one graph (published segments stay).

        The runner calls this once a graph's last pending trial has its
        payload, so a long sweep holds only the shared graphs still ahead
        of it instead of every unique graph it ever built.
        """
        self._graphs.pop(gkey, None)

    def close(self) -> None:
        """Release every published segment (close + unlink) and drop graphs."""
        segments, self._segments = self._segments, {}
        self._graphs.clear()
        self._meta.clear()
        for seg in segments.values():
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # already reclaimed (double close)
                pass

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
