"""Aggregation of sweep results into per-group statistics and report tables.

Groups trials by (family, algorithm) — or any other spec fields — and
summarises every numeric metric with count/mean/percentiles.  Wall times are
deliberately *not* part of the summaries: metrics are round/color/message
quantities that are deterministic functions of the trial spec, so the
aggregate report of a sweep is byte-identical across machines and across
cached/fresh runs (the property the cache tests pin down).

Feeds :func:`repro.analysis.tables.render_table` for presentation, like
every other reporting path in the repo.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis import render_table
from .registry import STAGES
from .runner import SweepResult, TrialResult

__all__ = [
    "percentile",
    "summarize",
    "report_table",
    "stage_timing_table",
    "GroupSummary",
]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches numpy's default ("linear") method; defined for any non-empty
    sequence without needing numpy.
    """
    if not values:
        raise ValueError("percentile: empty sequence")
    if not (0.0 <= q <= 100.0):
        raise ValueError("percentile: q must be in [0, 100]")
    xs = sorted(float(v) for v in values)
    if len(xs) == 1:
        return xs[0]
    pos = (len(xs) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


class GroupSummary:
    """Statistics of one (group key -> metric -> stats) cell block."""

    def __init__(self, group: Dict[str, object], trials: List[TrialResult]):
        self.group = group
        self.trials = trials
        self.metrics: Dict[str, Dict[str, float]] = {}
        for name in self._numeric_metric_names(trials):
            vals = [
                float(t.metrics[name])
                for t in trials
                if isinstance(t.metrics.get(name), (int, float))
                and not isinstance(t.metrics.get(name), bool)
            ]
            if vals:
                self.metrics[name] = {
                    "count": float(len(vals)),
                    "mean": sum(vals) / len(vals),
                    "p50": percentile(vals, 50),
                    "p95": percentile(vals, 95),
                    "min": min(vals),
                    "max": max(vals),
                }

    @staticmethod
    def _numeric_metric_names(trials: List[TrialResult]) -> List[str]:
        names: List[str] = []
        for t in trials:
            for k, v in t.metrics.items():
                if (
                    isinstance(v, (int, float))
                    and not isinstance(v, bool)
                    and k not in names
                ):
                    names.append(k)
        return sorted(names)

    @property
    def count(self) -> int:
        return len(self.trials)

    def stat(self, metric: str, which: str = "mean") -> Optional[float]:
        """One statistic, or ``None`` when the metric was never reported."""
        block = self.metrics.get(metric)
        return None if block is None else block.get(which)


def _group_key(trial: TrialResult, by: Sequence[str]) -> Tuple:
    vals = []
    for field in by:
        if field == "family":
            vals.append(trial.trial.family)
        elif field == "algorithm":
            vals.append(trial.trial.algorithm)
        elif field == "seed":
            vals.append(trial.trial.seed)
        else:
            # spec param lookup: family params shadow algorithm params
            v = trial.trial.family_params.get(field)
            if v is None:
                v = trial.trial.algorithm_params.get(field)
            if v is None:
                v = trial.metrics.get(field)
            vals.append(v)
    return tuple(vals)


def summarize(
    results: Iterable[TrialResult],
    by: Sequence[str] = ("family", "algorithm"),
) -> List[GroupSummary]:
    """Group trials by the given spec fields and summarise each group.

    Groups come back sorted by their key so reports are deterministic.
    """
    buckets: Dict[Tuple, List[TrialResult]] = {}
    for tr in results:
        buckets.setdefault(_group_key(tr, by), []).append(tr)
    out = []
    for key in sorted(buckets, key=lambda k: tuple(str(x) for x in k)):
        group = dict(zip(by, key, strict=True))
        out.append(GroupSummary(group, buckets[key]))
    return out


#: metrics worth a report column, in display order, with short headers
_REPORT_METRICS = [
    ("rounds", "rounds p50"),
    ("colors", "colors p50"),
    ("num_forests", "forests p50"),
    ("mis_size", "|MIS| p50"),
]


def report_table(
    sweep: SweepResult,
    by: Sequence[str] = ("family", "algorithm"),
    title: Optional[str] = None,
) -> str:
    """Render the standard sweep report: one row per group.

    Shows trial counts and the p50/p95 of round complexity plus the p50 of
    whichever solution-quality metrics the group reported (colors, forests,
    MIS size) — groups of different kinds can share one table.
    """
    groups = summarize(sweep.results, by=by)
    headers = [*by, "trials", "n p50"]
    active = [
        (m, h)
        for m, h in _REPORT_METRICS
        if any(g.stat(m) is not None for g in groups)
    ]
    headers += [h for _m, h in active]
    headers += ["rounds p95"]
    rows = []
    for g in groups:
        row: List[object] = [g.group[f] for f in by]
        row.append(g.count)
        row.append(_maybe(g.stat("n", "p50")))
        for m, _h in active:
            row.append(_maybe(g.stat(m, "p50")))
        row.append(_maybe(g.stat("rounds", "p95")))
        rows.append(row)
    # no cache/wall-time provenance here: the report of a sweep must be
    # byte-identical whether it was computed fresh or served from cache
    return render_table(title or f"sweep report — {sweep.name}", headers, rows,
                        note=f"{sweep.num_trials} trials")


def _maybe(v: Optional[float]) -> object:
    return "-" if v is None else v


def stage_timing_table(
    sweep: SweepResult,
    by: Sequence[str] = ("family", "algorithm"),
    title: Optional[str] = None,
) -> str:
    """Render mean per-stage wall times per group, in milliseconds.

    Unlike :func:`report_table` this is *deliberately* machine- and
    run-dependent — it answers "where does the wall clock go" (graph build
    vs. algorithm vs. verification), the question the staged engine exists
    for.  Most cache hits carry the stage timings of the run that computed
    them and contribute to the means like fresh trials; records written
    before the staged engine have no ``stages`` at all and are rendered as
    cached rows rather than dropped or zero-filled: they count in
    ``trials`` and ``cached`` but not in ``timed``, and a group with no
    timed trial shows ``-`` for every mean instead of fabricated zeros.
    """
    groups = summarize(sweep.results, by=by)
    headers = [*by, "trials", "timed", "cached"]
    headers += [*(f"{s} ms" for s in STAGES), "total ms"]
    rows = []
    for g in groups:
        timed = [t for t in g.trials if t.stages]
        row: List[object] = [g.group[f] for f in by]
        row.append(g.count)
        row.append(len(timed))
        row.append(sum(1 for t in g.trials if t.cached))
        total = 0.0
        for stage in STAGES:
            if timed:
                mean_s = sum(t.stages.get(stage, 0.0) for t in timed) / len(timed)
                total += mean_s
                row.append(round(1e3 * mean_s, 2))
            else:
                row.append("-")
        row.append(round(1e3 * total, 2) if timed else "-")
        rows.append(row)
    note = (
        "mean wall time per trial stage (machine-dependent; cached "
        "records keep the timings of the run that computed them; "
        "pre-staged cache records carry no timings and show as cached, "
        "untimed rows)"
    )
    if sweep.graph_builds:
        mode = (
            "overlapped with pool execution"
            if sweep.build_overlap
            else "built before dispatch"
        )
        note += (
            f"; shared graphs: {sweep.graph_builds} build(s) {mode}, "
            f"{sweep.graph_reuses} reuse(s), "
            f"{sweep.graph_build_s:.2f}s build wall"
        )
    return render_table(
        title or f"stage timings — {sweep.name}",
        headers,
        rows,
        note=note,
    )
