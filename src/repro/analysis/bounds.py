"""Closed-form bound formulas and shape-fitting helpers.

The benchmark harness compares *measured* rounds/colors/lengths against the
paper's *claimed* asymptotic forms.  This module supplies:

* the claimed-bound formulas (with explicit constants left symbolic — we
  report the measured/bound ratio, which should stay O(1) across a sweep);
* :func:`log_star` — the iterated logarithm;
* :func:`fit_loglog_slope` — least-squares slope on log-log data, used to
  check power-law shapes (e.g. rounds ~ a^µ for Theorem 4.3).
"""

from __future__ import annotations

import math
from typing import Sequence


def log_star(n) -> int:
    """The iterated logarithm: how many times log₂ until the value ≤ 2.

    Handles arbitrarily large ints (beyond float range) via bit_length.
    """
    count = 0
    x = n
    while True:
        if isinstance(x, int) and x > 2**52:
            x = x.bit_length()  # one exact-enough log₂ step
            count += 1
            continue
        x = float(x)
        if x <= 2.0:
            return count
        x = math.log2(x)
        count += 1


def log2_ceil(n: int) -> int:
    """⌈log₂ n⌉ for n ≥ 1."""
    if n <= 1:
        return 0
    return (n - 1).bit_length()


def hpartition_levels_bound(n: int, epsilon: float) -> float:
    """Claimed ℓ = O(log n): log_{(2+ε)/2} n (Lemma 2.3's analysis)."""
    if n <= 1:
        return 1.0
    return math.log(n) / math.log((2.0 + epsilon) / 2.0)


def complete_orientation_length_bound(a: int, n: int, epsilon: float) -> float:
    """Claimed length O(a log n) for Lemma 3.3 (colors-per-level × levels)."""
    return ((2.0 + epsilon) * a + 1) * hpartition_levels_bound(n, epsilon)


def partial_orientation_length_bound(t: int, n: int, epsilon: float) -> float:
    """Claimed length O(t² log n) for Theorem 3.5."""
    return (t * t + 1) * hpartition_levels_bound(n, epsilon)


def arbdefective_bound(a: int, k: int, t: int, epsilon: float) -> int:
    """Corollary 3.6's arbdefect bound ⌊a/t + (2+ε)a/k⌋."""
    return int(a / t + (2.0 + epsilon) * a / k)


def theorem43_rounds_bound(a: int, mu: float, n: int) -> float:
    """Claimed O(a^µ log n) for Theorem 4.3."""
    return (a**mu) * max(1.0, math.log2(max(2, n)))


def theorem52_colors_bound(a: int, g_value: float) -> float:
    """Claimed O(a²/g(a)) colors for Theorem 5.2."""
    return a * a / max(1.0, g_value)


def theorem53_colors_bound(a: int, t: int) -> float:
    """Claimed O(a·t) colors for Theorem 5.3."""
    return float(a * t)


def mis_rounds_bound(a: int, mu: float, n: int) -> float:
    """Claimed O(a + a^µ log n) for the §1.2 MIS result."""
    return a + (a**mu) * max(1.0, math.log2(max(2, n)))


def fit_loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    The shape checks use this to confirm power laws: e.g. for Theorem 4.3
    the rounds at fixed n across a sweep of a should have slope ≈ µ.
    Requires positive data and at least two distinct x values.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("fit_loglog_slope: need two same-length sequences")
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-9)) for y in ys]
    mean_x = sum(lx) / len(lx)
    mean_y = sum(ly) / len(ly)
    sxx = sum((x - mean_x) ** 2 for x in lx)
    if sxx == 0:
        raise ValueError("fit_loglog_slope: x values are all equal")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly, strict=True))
    return sxy / sxx


def fit_linear_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of y against x (used for rounds ~ log n checks)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("fit_linear_slope: need two same-length sequences")
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("fit_linear_slope: x values are all equal")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys, strict=True))
    return sxy / sxx


def ratio_spread(ratios: Sequence[float]) -> float:
    """max/min of a sequence of positive ratios (boundedness check)."""
    positive = [r for r in ratios if r > 0]
    if not positive:
        return 1.0
    return max(positive) / min(positive)
