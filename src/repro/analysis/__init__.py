"""Bound formulas and table rendering for the benchmark harness."""

from .bounds import (
    arbdefective_bound,
    complete_orientation_length_bound,
    fit_linear_slope,
    fit_loglog_slope,
    hpartition_levels_bound,
    log2_ceil,
    log_star,
    mis_rounds_bound,
    partial_orientation_length_bound,
    ratio_spread,
    theorem43_rounds_bound,
    theorem52_colors_bound,
    theorem53_colors_bound,
)
from .tables import emit, render_table, results_dir

__all__ = [
    "log_star",
    "log2_ceil",
    "hpartition_levels_bound",
    "complete_orientation_length_bound",
    "partial_orientation_length_bound",
    "arbdefective_bound",
    "theorem43_rounds_bound",
    "theorem52_colors_bound",
    "theorem53_colors_bound",
    "mis_rounds_bound",
    "fit_loglog_slope",
    "fit_linear_slope",
    "ratio_spread",
    "render_table",
    "emit",
    "results_dir",
]
