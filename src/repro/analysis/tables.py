"""Plain-text table/series rendering for the benchmark harness.

Benchmarks print the same rows/series the paper's theorems imply; this
module renders them consistently and (optionally) appends them to
``results/`` files so EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table with a title banner."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        return f"{cell:.2f}"
    return str(cell)


def results_dir() -> str:
    """Directory where benchmarks append their tables (created on demand)."""
    path = os.environ.get(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "results"),
    )
    os.makedirs(path, exist_ok=True)
    return path


def emit(table: str, filename: Optional[str] = None) -> None:
    """Print a table and optionally append it to ``results/<filename>``."""
    print()
    print(table)
    if filename:
        path = os.path.join(results_dir(), filename)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(table + "\n\n")
