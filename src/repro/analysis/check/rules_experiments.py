"""Experiments-layer rules: fork/thread discipline and cache-key stability.

The sweep engine mixes threads (socket executor, overlap dispatcher),
``fork``-started pools, and named shared-memory segments; the cache is
keyed by canonical JSON of the trial spec.  Both carry contracts that a
review cannot reliably eyeball:

* forking a process while helper threads are running (or while a lock
  is held) snapshots the lock state into the child — a child that
  inherits a locked lock deadlocks on first acquire, the classic
  fork+threads hazard;
* shared-memory segments must be created through the GraphStore layer,
  which registers every name for teardown (``store.close()`` in
  ``finally`` reclaims worker-published segments even on interrupt) —
  a segment created elsewhere leaks on every abnormal exit;
* a ``TrialSpec``/``ScenarioSpec`` params value that is not JSON-stable
  (sets, bytes, non-string dict keys, NaN, wall-clock values) either
  crashes canonical_json or — worse — silently produces a key that
  never matches again, so every run is a cache miss.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, List, Optional

from .core import (
    Finding,
    ModuleInfo,
    Rule,
    dotted_name,
    register_rule,
    terminal_name,
)

#: call targets that create a process pool (fork boundary)
_POOL_CTORS = frozenset({"Pool", "ProcessPoolExecutor"})

#: files allowed to create shared-memory segments: the registration layer
_SHM_OWNERS = frozenset({"graphstore.py", "graph.py"})


def _is_thread_start(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and terminal_name(node.func) == "Thread"
    )


def _is_pool_ctor(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and terminal_name(node.func) in _POOL_CTORS
    )


def _is_lockish(node: ast.AST) -> bool:
    """A with-item expression that statically looks like a lock."""
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        if name in ("Lock", "RLock", "Semaphore", "BoundedSemaphore"):
            return True
        node = node.func
    name = dotted_name(node) or terminal_name(node) or ""
    return "lock" in name.lower()


@register_rule
class ForkThreadSafety(Rule):
    id = "fork-thread-safety"
    severity = "warning"
    summary = "thread/lock live across a pool fork, or unregistered shm"
    doc = (
        "Process pools fork: a thread started earlier in the same "
        "function does not exist in the children, but any lock it holds "
        "is copied locked — the child deadlocks on first acquire.  "
        "Start pools first, threads after (or hand the thread a handle "
        "to an already-created pool).  Creating a pool inside a `with "
        "<lock>:` block forks with the lock held for the same effect.  "
        "SharedMemory segments must be created via the GraphStore layer "
        "(graphstore.py), which registers every segment name so close() "
        "reclaims it on interrupt; a segment created elsewhere leaks."
    )

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        basename = os.path.basename(mod.path)
        for node in ast.walk(mod.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(mod, node)
            elif isinstance(node, ast.With):
                yield from self._check_with(mod, node)
            elif isinstance(node, ast.Call) and basename not in _SHM_OWNERS:
                if terminal_name(node.func) == "SharedMemory" and any(
                    kw.arg == "create"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.keywords
                ):
                    yield self.finding(
                        mod,
                        node,
                        "SharedMemory(create=True) outside the GraphStore "
                        "layer — segments created here are not registered "
                        "for teardown and leak on interrupt; go through "
                        "GraphStore.publish()/mint()",
                    )

    def _check_function(self, mod, fn) -> Iterator[Finding]:
        """Thread started lexically before a pool ctor in the same body."""
        thread_line: Optional[int] = None
        events: List[ast.Call] = [
            sub
            for sub in ast.walk(fn)
            if _is_thread_start(sub) or _is_pool_ctor(sub)
        ]
        for call in sorted(events, key=lambda c: (c.lineno, c.col_offset)):
            if _is_thread_start(call):
                if thread_line is None:
                    thread_line = call.lineno
            elif thread_line is not None:
                yield self.finding(
                    mod,
                    call,
                    f"{fn.name}: pool created after a Thread was started "
                    f"(line {thread_line}) — fork snapshots the thread's "
                    "lock state into the children; create the pool before "
                    "starting helper threads",
                )
                break

    def _check_with(self, mod, node) -> Iterator[Finding]:
        if not any(_is_lockish(item.context_expr) for item in node.items):
            return
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if _is_pool_ctor(sub):
                    yield self.finding(
                        mod,
                        sub,
                        "pool created while holding a lock — the fork "
                        "copies the lock in its held state into every "
                        "child; release the lock before forking",
                    )
                    return


_SPEC_CTORS = frozenset({"TrialSpec", "ScenarioSpec"})
_KEY_FIELDS = frozenset({"family_params", "algorithm_params"})

#: roots of calls whose value differs run to run — poison for cache keys
_VOLATILE_ROOTS = frozenset({"time", "datetime", "uuid", "random", "secrets", "os"})


@register_rule
class CacheKeyStability(Rule):
    id = "cache-key-stability"
    severity = "error"
    summary = "non-JSON-stable value flows into a spec's key-bearing field"
    doc = (
        "TrialSpec.key() is the SHA-256 of canonical JSON over the "
        "trial's fields: family_params/algorithm_params values must "
        "round-trip through JSON unchanged.  Sets and frozensets have "
        "no JSON form (and repr order varies), bytes do not serialise, "
        "non-string dict keys are coerced (so from_json never matches "
        "again), NaN is not valid canonical JSON, and wall-clock/uuid/"
        "unseeded-random values give every run a fresh key — the cache "
        "then never hits.  Use JSON-native, deterministic values only."
    )

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not (
                isinstance(node, ast.Call)
                and terminal_name(node.func) in _SPEC_CTORS
            ):
                continue
            ctor = terminal_name(node.func)
            for kw in node.keywords:
                if kw.arg in _KEY_FIELDS:
                    yield from self._check_value(mod, ctor, kw.arg, kw.value)

    def _check_value(self, mod, ctor, field, value) -> Iterator[Finding]:
        where = f"{ctor}({field}=...)"
        for sub in ast.walk(value):
            if isinstance(sub, (ast.Set, ast.SetComp)):
                yield self.finding(
                    mod, sub,
                    f"{where}: set literal in a key-bearing field — sets "
                    "have no canonical JSON form; use a sorted list",
                )
            elif isinstance(sub, ast.Lambda):
                yield self.finding(
                    mod, sub,
                    f"{where}: callable in a key-bearing field — it cannot "
                    "be JSON-encoded into the cache key",
                )
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, bytes):
                yield self.finding(
                    mod, sub,
                    f"{where}: bytes value in a key-bearing field — bytes "
                    "do not JSON-serialise; use str or a list of ints",
                )
            elif isinstance(sub, ast.Dict):
                for key in sub.keys:
                    if key is None:  # **expansion: contents unknown
                        continue
                    if not (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    ) and not isinstance(key, ast.Name):
                        yield self.finding(
                            mod, key,
                            f"{where}: non-string dict key — canonical "
                            "JSON coerces it to a string, so the decoded "
                            "spec never reproduces the same key",
                        )
            elif isinstance(sub, ast.Call):
                name = terminal_name(sub.func)
                if name in ("set", "frozenset"):
                    yield self.finding(
                        mod, sub,
                        f"{where}: {name}(...) in a key-bearing field — "
                        "sets have no canonical JSON form; use a sorted "
                        "list",
                    )
                elif name == "float" and sub.args:
                    arg = sub.args[0]
                    if isinstance(arg, ast.Constant) and str(
                        arg.value
                    ).lstrip("+-").lower() in ("nan", "inf", "infinity"):
                        yield self.finding(
                            mod, sub,
                            f"{where}: non-finite float — NaN/Inf are not "
                            "valid canonical JSON",
                        )
                else:
                    chain = dotted_name(sub.func)
                    if chain is not None:
                        root = chain.partition(".")[0]
                        if root in _VOLATILE_ROOTS and "." in chain:
                            yield self.finding(
                                mod, sub,
                                f"{where}: `{chain}(...)` — a value that "
                                "changes between runs gives every trial a "
                                "fresh cache key; keys must be "
                                "reproducible",
                            )
