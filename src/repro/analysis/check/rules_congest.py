"""CONGEST-model compliance rules for node-program bodies.

The paper's round bounds assume the CONGEST discipline: a node knows
only its own state, its neighbour ids, and the globally announced
parameters; per-round messages carry O(log n) bits; and a run is a
deterministic function of the per-trial seed.  The simulator enforces
parts of this dynamically (``ctx.send`` rejects non-neighbours, the
scheduler-equivalence suite catches nondeterminism it happens to
exercise) — these rules enforce the rest statically, on every program,
including user programs never imported by the test suite.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import (
    Finding,
    ModuleInfo,
    Rule,
    contains_send,
    dotted_name,
    is_ctx_call,
    register_rule,
    terminal_name,
)

#: Attribute names whose presence in a program method means the program
#: is reading simulator- or graph-global state instead of messages.
_REMOTE_ATTRS = frozenset({"network", "graph"})

#: Call targets that materialise global structures inside a program.
_REMOTE_CALLS = frozenset({"SynchronousNetwork"})


@register_rule
class CongestRemoteState(Rule):
    id = "congest-remote-state"
    severity = "error"
    summary = "program body reads remote/global state outside the ctx API"
    doc = (
        "A NodeProgram method may only observe the world through its "
        "NodeContext: own id, visible neighbour ids, globals, inbox. "
        "Reaching for `.network`/`.graph` attributes, constructing a "
        "SynchronousNetwork, or touching the context's private fields "
        "(`ctx._outbox`, ...) reads state a real distributed node cannot "
        "see, so round counts measured for the program do not transfer "
        "to the CONGEST model."
    )

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for pc, fn in mod.program_methods():
            ctx_names = pc.ctx_names(fn)
            for node in ast.walk(fn):
                if isinstance(node, ast.Attribute):
                    if node.attr in _REMOTE_ATTRS:
                        owner = dotted_name(node.value) or "<expr>"
                        yield self.finding(
                            mod,
                            node,
                            f"program method {pc.node.name}.{fn.name} reads "
                            f"`{owner}.{node.attr}` — global state is not "
                            "visible to a CONGEST node; use ctx "
                            "(neighbors/globals/inbox) instead",
                        )
                    elif (
                        node.attr.startswith("_")
                        and not node.attr.startswith("__")
                        and isinstance(node.value, ast.Name)
                        and node.value.id in ctx_names
                    ):
                        yield self.finding(
                            mod,
                            node,
                            f"program method {pc.node.name}.{fn.name} touches "
                            f"private context internals `ctx.{node.attr}`; "
                            "only the public NodeContext API is part of the "
                            "model contract",
                        )
                elif isinstance(node, ast.Call):
                    name = terminal_name(node.func)
                    if name in _REMOTE_CALLS:
                        yield self.finding(
                            mod,
                            node,
                            f"program method {pc.node.name}.{fn.name} "
                            f"constructs {name}(...) — a node cannot spin up "
                            "its own simulator over the global graph",
                        )


def _mentions_neighbors(node: ast.AST, ctx_names: frozenset) -> bool:
    """True if the subtree reads ``ctx.neighbors`` (any context name)."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr.startswith("neighbors")
            and isinstance(sub.value, ast.Name)
            and sub.value.id in ctx_names
        ):
            return True
    return False


_COLLECTION_CTORS = frozenset({"list", "set", "sorted", "tuple", "frozenset", "dict"})


@register_rule
class CongestPayload(Rule):
    id = "congest-payload"
    severity = "warning"
    summary = "message payload is O(Δ)-sized or unsizable by payload_size"
    doc = (
        "CONGEST messages carry O(log n) bits.  A payload that embeds a "
        "whole neighbour collection (ctx.neighbors, or a "
        "list/set/dict/comprehension built from it) is O(Δ log n) bits "
        "per message, and a payload holding a callable cannot be sized "
        "by payload_size at all, so the byte-accounting the benchmarks "
        "report would silently under-count it.  Send per-neighbour "
        "scalars or small tuples instead."
    )

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for pc, fn in mod.program_methods():
            ctx_names = pc.ctx_names(fn)
            if not ctx_names:
                continue
            for node in ast.walk(fn):
                if not is_ctx_call(node, ctx_names, ("send", "broadcast")):
                    continue
                payload_index = 1 if node.func.attr == "send" else 0
                if len(node.args) <= payload_index:
                    continue
                payload = node.args[payload_index]
                yield from self._check_payload(mod, pc, fn, ctx_names, payload)

    def _check_payload(self, mod, pc, fn, ctx_names, payload) -> Iterator[Finding]:
        """Recursive payload walk; a flagged subtree is not descended into
        (the outermost offending expression is the finding)."""
        where = f"{pc.node.name}.{fn.name}"
        sub = payload
        if isinstance(sub, ast.Lambda):
            yield self.finding(
                mod,
                sub,
                f"{where} sends a payload containing a lambda — "
                "payload_size cannot size callables, so the message "
                "escapes byte accounting",
            )
            return
        if isinstance(
            sub, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ) and any(
            _mentions_neighbors(gen.iter, ctx_names) for gen in sub.generators
        ):
            yield self.finding(
                mod,
                sub,
                f"{where} sends a comprehension over ctx.neighbors — "
                "an O(Δ)-element payload breaks the O(log n)-bit "
                "CONGEST message bound",
            )
            return
        if isinstance(sub, ast.Call):
            name = terminal_name(sub.func)
            if name in _COLLECTION_CTORS and any(
                _mentions_neighbors(arg, ctx_names) for arg in sub.args
            ):
                yield self.finding(
                    mod,
                    sub,
                    f"{where} sends {name}(...) built from ctx.neighbors "
                    "— an O(Δ)-element payload breaks the O(log n)-bit "
                    "CONGEST message bound",
                )
                return
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr == "neighbors"
            and isinstance(sub.value, ast.Name)
            and sub.value.id in ctx_names
        ):
            yield self.finding(
                mod,
                sub,
                f"{where} sends ctx.neighbors itself — an O(Δ)-element "
                "payload breaks the O(log n)-bit CONGEST message bound",
            )
            return
        for child in ast.iter_child_nodes(sub):
            yield from self._check_payload(mod, pc, fn, ctx_names, child)


#: module.attribute calls whose results vary run to run.
_NONDET_CALLS = {
    "time": frozenset(
        {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
         "perf_counter_ns", "clock_gettime"}
    ),
    "os": frozenset({"urandom", "getrandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "secrets": None,  # every secrets.* call is nondeterministic
}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return terminal_name(node.func) in ("set", "frozenset")
    return False


@register_rule
class Determinism(Rule):
    id = "determinism"
    severity = "error"
    summary = "program output depends on global RNG, clock, or set order"
    doc = (
        "A trial must be a pure function of its seed: the cache keys "
        "records by spec content, and the scheduler-equivalence suite "
        "compares byte-identical RunResults across engines.  Program "
        "code must draw randomness from a seeded random.Random(seed) "
        "instance (module-level random.*, time, os.urandom, uuid, "
        "secrets are all forbidden), and must not iterate a set/frozenset "
        "while sending — set order varies with hash seeding, so payload "
        "emission order would too."
    )

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        has_programs = bool(mod.program_classes())
        if has_programs:
            # `from random import randrange` makes the module-global RNG
            # invisible to the call-site check below: flag the import.
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.ImportFrom) and node.module == "random":
                    bad = [a.name for a in node.names if a.name != "Random"]
                    if bad:
                        yield self.finding(
                            mod,
                            node,
                            "module defines node programs but imports "
                            f"module-level RNG functions from random: "
                            f"{', '.join(bad)}; construct a seeded "
                            "random.Random(seed) per node instead",
                        )
        for pc, fn in mod.program_methods(include_kernels=True):
            ctx_names = pc.ctx_names(fn)
            where = f"{pc.node.name}.{fn.name}"
            for node in ast.walk(fn):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    chain = dotted_name(node.func)
                    if chain is None:
                        continue
                    root, _, rest = chain.partition(".")
                    leaf = chain.rsplit(".", 1)[-1]
                    if root == "random" and rest and leaf != "Random":
                        yield self.finding(
                            mod,
                            node,
                            f"{where} calls the module-global RNG "
                            f"`{chain}(...)`; use a random.Random(seed) "
                            "instance seeded from the trial seed so replays "
                            "are deterministic",
                        )
                    elif root in _NONDET_CALLS and rest:
                        allowed = _NONDET_CALLS[root]
                        if allowed is None or leaf in allowed:
                            yield self.finding(
                                mod,
                                node,
                                f"{where} calls `{chain}(...)` — wall-clock/"
                                "entropy inputs make the trial "
                                "irreproducible under its seed",
                            )
                elif isinstance(node, ast.For) and _is_set_expr(node.iter):
                    send = None
                    for stmt in node.body:
                        send = contains_send(stmt, ctx_names)
                        if send is not None:
                            break
                    if send is not None:
                        yield self.finding(
                            mod,
                            send,
                            f"{where} sends from a loop over an unordered "
                            "set — iteration order depends on hashing, so "
                            "message emission order is nondeterministic; "
                            "iterate sorted(...) instead",
                        )
