"""Engine-contract rules: column-kernel purity and quiescence safety.

Two engine contracts are load-bearing for correctness and only checked
dynamically today:

* the column engine requires kernels to be pure array passes over the
  shared CSR — a kernel that mutates the CSR in place corrupts every
  later run sharing the arrays (they are zero-copy views, shm- or
  mmap-backed), and one that touches per-node Python state or ctx
  messaging breaks the byte-identical column-vs-event guarantee;
* the event engine trusts ``ctx.idle_until_message()`` as a promise
  that the node would do nothing if activated — a code path that
  declares idleness and then still sends is exactly the divergence
  (or deadlock) hazard the declaration was supposed to rule out.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .core import (
    Finding,
    ModuleInfo,
    Rule,
    contains_send,
    is_ctx_call,
    iter_blocks,
    register_rule,
    terminal_name,
)

#: ColumnRun fields a kernel may never write through (zero-copy CSR views).
_CSR_FIELDS = frozenset({"offsets", "neighbors"})

#: ndarray methods that mutate in place.
_MUTATING_METHODS = frozenset({"sort", "fill", "put", "partition", "resize"})


def _kernel_col_name(fn: ast.FunctionDef) -> Optional[str]:
    """The ColumnRun parameter of a ``column_kernel(self, col)`` method."""
    args = fn.args.posonlyargs + fn.args.args
    names = [a.arg for a in args if a.arg != "self"]
    return names[0] if names else None


@register_rule
class KernelPurity(Rule):
    id = "kernel-purity"
    severity = "error"
    summary = "column_kernel mutates CSR columns, per-node state, or uses ctx"
    doc = (
        "A column_kernel executes the whole run as numpy passes over "
        "`col.offsets`/`col.neighbors`, which are zero-copy views of the "
        "graph's shared CSR arrays (possibly shm/mmap-backed and shared "
        "with other trials).  The kernel must treat them as read-only, "
        "must not keep state on the prototype instance (`self.x = ...` "
        "leaks across runs — the prototype is never re-created), and has "
        "no NodeContext: any ctx use means the program logic is not "
        "actually vectorized.  Results are written only through "
        "col.outputs/col.rounds/col.note_round."
    )

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for pc in mod.program_classes():
            fn = pc.methods.get("column_kernel")
            if fn is None:
                continue
            col = _kernel_col_name(fn)
            where = f"{pc.node.name}.column_kernel"
            for node in ast.walk(fn):
                # ctx use: a kernel has no per-node context at all
                if isinstance(node, ast.Name) and node.id == "ctx":
                    yield self.finding(
                        mod,
                        node,
                        f"{where} references `ctx` — kernels run without "
                        "per-node contexts; messaging/halting must be "
                        "expressed as array passes",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for tgt in targets:
                        yield from self._check_target(mod, where, col, tgt)
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if (
                        node.func.attr in _MUTATING_METHODS
                        and self._is_csr_field(node.func.value, col)
                    ):
                        yield self.finding(
                            mod,
                            node,
                            f"{where} calls `.{node.func.attr}()` on "
                            f"`{col}.{node.func.value.attr}` — in-place "
                            "mutation of the shared CSR corrupts every "
                            "other consumer of the graph",
                        )

    @staticmethod
    def _is_csr_field(node: ast.AST, col: Optional[str]) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr in _CSR_FIELDS
            and isinstance(node.value, ast.Name)
            and node.value.id == col
        )

    def _check_target(self, mod, where, col, tgt) -> Iterator[Finding]:
        # self.<attr> = ... anywhere in the kernel: prototype state
        for sub in ast.walk(tgt):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                yield self.finding(
                    mod,
                    sub,
                    f"{where} writes `self.{sub.attr}` — the kernel runs on "
                    "a shared prototype instance, so per-run state on self "
                    "leaks into the next run; keep state in local arrays",
                )
            elif isinstance(sub, ast.Subscript) and self._is_csr_field(
                sub.value, col
            ):
                yield self.finding(
                    mod,
                    sub,
                    f"{where} assigns into `{col}.{sub.value.attr}[...]` — "
                    "the CSR views are shared and read-only; copy before "
                    "mutating",
                )


_IDLE_METHODS = ("idle_until_message",)


@register_rule
class QuiescenceSafety(Rule):
    id = "quiescence-safety"
    severity = "error"
    summary = "path declares idle_until_message() and then still sends"
    doc = (
        "ctx.idle_until_message() promises that activating the node "
        "before the next message (or declared wakeup) would be a no-op.  "
        "A statement sequence that declares idleness and afterwards "
        "sends breaks the promise in the very activation that made it: "
        "the event engine may park the node's neighbours first, turning "
        "the in-flight send into a divergence from the dense engine or "
        "an eager-deadlock report.  Declare quiescence last, after all "
        "sends on the path."
    )

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        for pc, fn in mod.program_methods():
            ctx_names = pc.ctx_names(fn)
            if not ctx_names:
                continue
            where = f"{pc.node.name}.{fn.name}"
            for block in iter_blocks(fn):
                idle_at: Optional[int] = None
                for i, stmt in enumerate(block):
                    if idle_at is None:
                        if (
                            isinstance(stmt, ast.Expr)
                            and is_ctx_call(stmt.value, ctx_names, _IDLE_METHODS)
                        ):
                            idle_at = i
                        continue
                    send = contains_send(stmt, ctx_names)
                    if send is not None:
                        yield self.finding(
                            mod,
                            send,
                            f"{where} sends after declaring "
                            "idle_until_message() on the same path — the "
                            "declaration is a promise that the activation "
                            "does nothing more; move the declaration after "
                            "the send",
                        )
                        break
