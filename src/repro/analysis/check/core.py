"""Core datatypes of the static analyzer: findings, rules, module context.

``repro check`` is an AST-level contract checker: every documented
simulator contract that used to live in prose (the CONGEST rules on
:class:`~repro.simulator.program.NodeProgram` bodies, the column-kernel
purity guarantee, the event-engine quiescence protocol, the executors'
fork discipline, the sweep cache-key stability rules) is encoded as a
named :class:`Rule` that walks a parsed module and yields
:class:`Finding`\\ s.  Rules are registered exactly like simulator
engines — a decorator populating a module-level registry — so external
rule packs can extend the checker the same way third-party engines
extend the simulator.

The analyzer never imports the code it checks: everything is derived
from the source text and its AST, so ``repro check`` is safe to run on
broken or dependency-missing files (a syntax error becomes a finding,
not a crash).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .suppress import Suppression, parse_suppressions

#: Finding severities, most severe first.
SEVERITIES = ("error", "warning")


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    #: set by suppression matching, never by rules
    suppressed: bool = False
    suppression_reason: str = ""

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.suppressed:
            d["suppressed"] = True
            d["suppression_reason"] = self.suppression_reason
        return d

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


class Rule:
    """Base class for checker rules.

    Subclasses set ``id`` (the kebab-case name used in suppressions and
    ``--rule`` filters), ``severity``, ``summary`` (one line, shown by
    ``--list-rules``) and ``doc`` (the contract being enforced, shown in
    the rule catalog), and implement :meth:`check`.
    """

    id: str = ""
    severity: str = "error"
    summary: str = ""
    doc: str = ""

    def check(self, mod: "ModuleInfo") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, mod: "ModuleInfo", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=mod.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


#: The rule registry: rule id -> rule instance.
RULES: Dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    """Class decorator registering a :class:`Rule` under its ``id``."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    RULES[rule.id] = rule
    return cls


def rule_ids() -> Tuple[str, ...]:
    """The registered rule ids, sorted."""
    return tuple(sorted(RULES))


def get_rules(ids: Optional[Iterable[str]] = None) -> List[Rule]:
    """Resolve a rule-id selection (``None`` = every registered rule)."""
    if ids is None:
        return [RULES[i] for i in rule_ids()]
    out = []
    for i in ids:
        if i not in RULES:
            raise KeyError(
                f"unknown rule {i!r}; registered rules: {', '.join(rule_ids())}"
            )
        out.append(RULES[i])
    return out


# ----------------------------------------------------------------------
# AST helpers shared by the rules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a call target (``c`` for ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_ctx_call(node: ast.AST, ctx_names: frozenset, methods: Tuple[str, ...]):
    """True for ``<ctx>.<method>(...)`` calls on a known context name."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in methods
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in ctx_names
    )


SEND_METHODS = ("send", "broadcast")


def contains_send(node: ast.AST, ctx_names: frozenset) -> Optional[ast.Call]:
    """The first ``ctx.send``/``ctx.broadcast`` call in ``node``'s subtree."""
    for sub in ast.walk(node):
        if is_ctx_call(sub, ctx_names, SEND_METHODS):
            return sub
    return None


def iter_blocks(node: ast.AST) -> Iterator[List[ast.stmt]]:
    """Every statement list (straight-line block) under ``node``."""
    for sub in ast.walk(node):
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(sub, attr, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block
        for handler in getattr(sub, "handlers", []) or []:
            yield handler.body


@dataclass
class ProgramClass:
    """A class statically identified as a node program."""

    node: ast.ClassDef
    #: methods by name (FunctionDefs directly in the class body)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)

    def ctx_names(self, fn: ast.FunctionDef) -> frozenset:
        """Parameter names that (statically) carry the NodeContext.

        By convention and annotation: any parameter named ``ctx`` or
        annotated ``NodeContext``.
        """
        names = set()
        for arg in fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs:
            if arg.arg == "ctx":
                names.add(arg.arg)
            elif arg.annotation is not None:
                ann = terminal_name(arg.annotation)
                if ann == "NodeContext":
                    names.add(arg.arg)
        return frozenset(names)


PROGRAM_BASE_SUFFIX = "Program"


class ModuleInfo:
    """One parsed source file plus the derived views the rules share."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.suppressions: Dict[int, List[Suppression]] = parse_suppressions(source)
        self._programs: Optional[List[ProgramClass]] = None

    def program_classes(self) -> List[ProgramClass]:
        """Classes whose bases mark them as node programs.

        Statically a node program is any class with a base whose name
        ends in ``Program`` (``NodeProgram``, ``FunctionProgram``, or a
        subclass following the library's naming convention).
        """
        if self._programs is not None:
            return self._programs
        out: List[ProgramClass] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for base in node.bases:
                name = terminal_name(base)
                if name is not None and name.endswith(PROGRAM_BASE_SUFFIX):
                    pc = ProgramClass(node)
                    for item in node.body:
                        if isinstance(item, ast.FunctionDef):
                            pc.methods[item.name] = item
                    out.append(pc)
                    break
        self._programs = out
        return out

    def program_methods(
        self, *, include_kernels: bool = False
    ) -> Iterator[Tuple[ProgramClass, ast.FunctionDef]]:
        """Every method of every program class (kernels opt-in)."""
        for pc in self.program_classes():
            for name, fn in pc.methods.items():
                if name == "column_kernel" and not include_kernels:
                    continue
                yield pc, fn


#: Signature shared by the rule-module check entry points.
CheckFn = Callable[[ModuleInfo], Iterator[Finding]]
