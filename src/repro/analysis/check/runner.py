"""File walking, rule execution, and output rendering for ``repro check``.

The analyzer proper: collect ``.py`` files from the given paths, parse
each once, run every selected rule over the module, match findings
against inline suppressions, and render the result as a human report,
a JSON document (schema below), or GitHub workflow annotations.

JSON schema (``--format json``), version 1::

    {
      "version": 1,
      "files": <int>,                # files analyzed
      "findings": [Finding...],      # unsuppressed, sorted by location
      "suppressed": [Finding...],    # each with suppression_reason
      "summary": {"error": n, "warning": m, "suppressed": k}
    }
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from .core import Finding, ModuleInfo, Rule, get_rules
from .suppress import match_suppression

#: directories never descended into
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".repro-cache", ".venv", "node_modules", "results"}
)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                for fname in filenames:
                    if fname.endswith(".py"):
                        out.append(os.path.join(dirpath, fname))
        else:
            raise FileNotFoundError(path)
    return sorted(set(out))


@dataclass
class CheckResult:
    """Everything one ``repro check`` invocation produced."""

    files: int = 0
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing unsuppressed was found (CI gate)."""
        return not self.findings

    def counts(self):
        by_sev = {"error": 0, "warning": 0}
        for f in self.findings:
            by_sev[f.severity] = by_sev.get(f.severity, 0) + 1
        by_sev["suppressed"] = len(self.suppressed)
        return by_sev

    def to_dict(self):
        return {
            "version": 1,
            "files": self.files,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "summary": self.counts(),
        }


def check_source(
    path: str, source: str, rules: Optional[Iterable[Rule]] = None
) -> Tuple[List[Finding], List[Finding]]:
    """Run rules over one in-memory module; returns (open, suppressed)."""
    selected = list(rules) if rules is not None else get_rules()
    try:
        mod = ModuleInfo(path, source)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    rule="syntax-error",
                    severity="error",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    message=f"cannot parse file: {exc.msg}",
                )
            ],
            [],
        )
    open_findings: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in selected:
        for finding in rule.check(mod):
            sup = match_suppression(mod.suppressions, finding.rule, finding.line)
            if sup is not None:
                finding.suppressed = True
                finding.suppression_reason = sup.reason
                suppressed.append(finding)
            else:
                open_findings.append(finding)
    return open_findings, suppressed


def check_paths(
    paths: Sequence[str], rule_ids: Optional[Sequence[str]] = None
) -> CheckResult:
    """Analyze every ``.py`` file under ``paths`` with the selected rules."""
    rules = get_rules(rule_ids)
    result = CheckResult()
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        result.files += 1
        found, sup = check_source(path, source, rules)
        result.findings.extend(found)
        result.suppressed.extend(sup)
    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)
    return result


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_human(result: CheckResult) -> str:
    lines = []
    for f in result.findings:
        lines.append(
            f"{f.path}:{f.line}:{f.col}: {f.severity}[{f.rule}] {f.message}"
        )
    counts = result.counts()
    lines.append(
        f"repro check: {result.files} file(s), "
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['suppressed']} suppressed"
    )
    for f in result.suppressed:
        lines.append(
            f"  suppressed {f.path}:{f.line} [{f.rule}]: "
            f"{f.suppression_reason}"
        )
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)


def render_github(result: CheckResult) -> str:
    """GitHub Actions workflow-command annotations, one per finding."""
    lines = []
    for f in result.findings:
        level = "error" if f.severity == "error" else "warning"
        # workflow commands terminate the message at a newline; findings
        # are single-line already, but be safe
        msg = f.message.replace("\n", " ")
        lines.append(
            f"::{level} file={f.path},line={f.line},col={f.col},"
            f"title=repro check [{f.rule}]::{msg}"
        )
    counts = result.counts()
    lines.append(
        f"repro check: {result.files} file(s), "
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['suppressed']} suppressed"
    )
    return "\n".join(lines)


def parse_ok(source: str) -> bool:
    """Cheap syntax probe used by tests."""
    try:
        ast.parse(source)
        return True
    except SyntaxError:
        return False
