"""Inline suppression comments for ``repro check``.

A finding is suppressed by a comment on the finding's line or the line
directly above it::

    self._rng = random.Random(trial_seed)
    nbrs = list(self.graph.neighbors(v))  # repro: allow[congest-remote-state] verifier, not a program

    # repro: allow[determinism] replayed from a recorded trace
    order = random.sample(pool, k)

The rule id in brackets must match the finding's rule exactly; the text
after the bracket is the justification, surfaced verbatim in the JSON
output so reviews can audit every suppression.  A suppression without a
reason is honoured but reported as ``(no reason given)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List

#: ``# repro: allow[rule-id] reason...``
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rule>[a-z0-9*-]+)\]\s*(?P<reason>.*)$"
)


@dataclass
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    rule: str
    reason: str
    line: int

    def covers(self, rule_id: str) -> bool:
        return self.rule == rule_id or self.rule == "*"


def parse_suppressions(source: str) -> Dict[int, List[Suppression]]:
    """Map each 1-based line number to the suppressions written on it."""
    out: Dict[int, List[Suppression]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        reason = m.group("reason").strip() or "(no reason given)"
        out.setdefault(lineno, []).append(
            Suppression(rule=m.group("rule"), reason=reason, line=lineno)
        )
    return out


def match_suppression(
    suppressions: Dict[int, List[Suppression]], rule_id: str, line: int
):
    """The suppression covering ``rule_id`` at ``line``, if any.

    A comment covers its own line and the line directly below it (so a
    standalone comment line shields the statement that follows).
    """
    for candidate_line in (line, line - 1):
        for sup in suppressions.get(candidate_line, []):
            if sup.covers(rule_id):
                return sup
    return None
