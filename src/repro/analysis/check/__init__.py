"""``repro check`` — static model-compliance and concurrency analysis.

An AST-based analyzer enforcing the simulator's written contracts as
named rules:

======================  ================================================
rule id                 contract
======================  ================================================
congest-remote-state    programs observe the world only through ctx
congest-payload         messages stay O(log n) bits and sizable
determinism             trials are pure functions of the seed
kernel-purity           column kernels never mutate shared CSR/self/ctx
quiescence-safety       idle declarations come after the last send
fork-thread-safety      no threads/locks across pool forks; shm via
                        GraphStore
cache-key-stability     spec params are JSON-stable (cache keys)
======================  ================================================

Suppress a finding inline with ``# repro: allow[rule-id] reason`` on the
finding's line or the line above; suppressions (and their reasons) are
surfaced in the JSON output.  Importing this package registers every
built-in rule; external packs call :func:`register_rule` themselves.
"""

from .core import (
    Finding,
    ModuleInfo,
    RULES,
    Rule,
    get_rules,
    register_rule,
    rule_ids,
)

# importing the rule modules populates the registry
from . import rules_congest  # noqa: F401
from . import rules_engine  # noqa: F401
from . import rules_experiments  # noqa: F401

from .runner import (
    CheckResult,
    check_paths,
    check_source,
    iter_python_files,
    render_github,
    render_human,
    render_json,
)
from .suppress import Suppression, match_suppression, parse_suppressions

__all__ = [
    "Finding",
    "ModuleInfo",
    "Rule",
    "RULES",
    "register_rule",
    "rule_ids",
    "get_rules",
    "CheckResult",
    "check_paths",
    "check_source",
    "iter_python_files",
    "render_human",
    "render_json",
    "render_github",
    "Suppression",
    "parse_suppressions",
    "match_suppression",
]
