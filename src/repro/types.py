"""Shared result types for the ``repro`` library.

The algorithms in :mod:`repro.core` return small immutable-ish dataclasses
rather than bare dictionaries so that results carry their own metadata
(parameters used, rounds consumed) and offer convenience accessors.  All of
them store vertex-indexed mappings as plain ``dict`` objects keyed by the
vertex ids of the input graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

Vertex = int
Edge = Tuple[Vertex, Vertex]
Color = int


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (sorted) representation of an undirected edge."""
    return (u, v) if u <= v else (v, u)


@dataclass
class ColorAssignment:
    """A vertex coloring together with the metadata of the run that made it.

    Attributes
    ----------
    colors:
        Mapping from vertex id to its color.  Colors are non-negative ints
        but need not be contiguous; use :meth:`normalized` for a compact
        ``0..C-1`` relabeling.
    rounds:
        Number of synchronous communication rounds consumed to compute the
        coloring (summed over all sequential phases).
    algorithm:
        Human-readable name of the producing algorithm.
    params:
        The parameter dictionary the algorithm was invoked with.
    """

    colors: Dict[Vertex, Color]
    rounds: int = 0
    algorithm: str = ""
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def num_colors(self) -> int:
        """Number of *distinct* colors used."""
        return len(set(self.colors.values()))

    @property
    def max_color(self) -> Color:
        """Largest color value used (palette size upper bound minus one)."""
        return max(self.colors.values()) if self.colors else 0

    def color_classes(self) -> Dict[Color, List[Vertex]]:
        """Group vertices by color."""
        classes: Dict[Color, List[Vertex]] = {}
        for v, c in self.colors.items():
            classes.setdefault(c, []).append(v)
        return classes

    def normalized(self) -> "ColorAssignment":
        """Return a copy with colors relabeled to the compact range 0..C-1.

        Relabeling preserves the relative order of color values, so the
        result is deterministic.
        """
        palette = sorted(set(self.colors.values()))
        relabel = {c: i for i, c in enumerate(palette)}
        return ColorAssignment(
            colors={v: relabel[c] for v, c in self.colors.items()},
            rounds=self.rounds,
            algorithm=self.algorithm,
            params=dict(self.params),
        )

    def restricted_to(self, vertices: Iterable[Vertex]) -> "ColorAssignment":
        """Return the coloring restricted to the given vertex set."""
        keep = set(vertices)
        return ColorAssignment(
            colors={v: c for v, c in self.colors.items() if v in keep},
            rounds=self.rounds,
            algorithm=self.algorithm,
            params=dict(self.params),
        )


@dataclass
class Orientation:
    """A (possibly partial) orientation of the edges of a graph.

    ``direction`` maps a *canonical* undirected edge ``(u, v)`` with
    ``u < v`` to the vertex the edge points **towards** (its head).  Edges of
    the graph absent from ``direction`` are unoriented; the orientation is
    *complete* when every edge is present.

    The paper's vocabulary (Section 2.1):

    * the *out-degree* of a vertex is the number of incident oriented edges
      pointing away from it;
    * a *parent* of ``v`` is a neighbour ``u`` with the edge oriented
      ``v -> u`` (towards ``u``);
    * the *deficit* of a vertex is the number of incident unoriented edges;
    * the *length* of a vertex is the longest directed path leaving it, and
      the length of the orientation is the maximum over vertices.
    """

    direction: Dict[Edge, Vertex]
    rounds: int = 0
    algorithm: str = ""
    params: Dict[str, object] = field(default_factory=dict)

    def head(self, u: Vertex, v: Vertex) -> Optional[Vertex]:
        """Return the head of edge ``(u, v)``, or ``None`` if unoriented."""
        return self.direction.get(canonical_edge(u, v))

    def is_oriented(self, u: Vertex, v: Vertex) -> bool:
        """True when the edge ``(u, v)`` carries an orientation."""
        return canonical_edge(u, v) in self.direction

    def orient(self, u: Vertex, v: Vertex, towards: Vertex) -> None:
        """Orient the edge ``(u, v)`` towards ``towards`` (must be u or v)."""
        if towards not in (u, v):
            raise ValueError(f"head {towards} is not an endpoint of ({u}, {v})")
        self.direction[canonical_edge(u, v)] = towards

    def parents_of(self, v: Vertex, neighbors: Iterable[Vertex]) -> List[Vertex]:
        """Parents of ``v`` among ``neighbors`` (edges oriented away from v)."""
        return [u for u in neighbors if self.head(v, u) == u]

    def children_of(self, v: Vertex, neighbors: Iterable[Vertex]) -> List[Vertex]:
        """Children of ``v`` among ``neighbors`` (edges oriented into v)."""
        return [u for u in neighbors if self.head(v, u) == v]

    def unoriented_neighbors(
        self, v: Vertex, neighbors: Iterable[Vertex]
    ) -> List[Vertex]:
        """Neighbours of ``v`` joined by an unoriented edge."""
        return [u for u in neighbors if not self.is_oriented(v, u)]


@dataclass
class HPartition:
    """An H-partition (Section 2.2): V = H_1 ∪ ... ∪ H_ell.

    Every vertex in ``H_i`` has at most ``degree_bound`` neighbours in
    ``H_i ∪ H_{i+1} ∪ ... ∪ H_ell``.  ``index`` maps each vertex to its
    1-based H-index.
    """

    index: Dict[Vertex, int]
    degree_bound: int
    rounds: int = 0
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def num_levels(self) -> int:
        """ℓ, the number of (non-empty) levels of the partition."""
        return max(self.index.values()) if self.index else 0

    def level(self, i: int) -> List[Vertex]:
        """Vertices whose H-index equals ``i``."""
        return [v for v, j in self.index.items() if j == i]

    def levels(self) -> Dict[int, List[Vertex]]:
        """All levels as a dict ``i -> vertices``."""
        out: Dict[int, List[Vertex]] = {}
        for v, i in self.index.items():
            out.setdefault(i, []).append(v)
        return out


@dataclass
class ForestsDecomposition:
    """An edge-disjoint decomposition of E into oriented forests.

    ``forest_of`` maps each canonical edge to a forest index in
    ``0..num_forests-1``; ``orientation`` orients every edge towards the
    parent endpoint (so each vertex has at most one parent per forest).
    """

    forest_of: Dict[Edge, int]
    orientation: Orientation
    num_forests: int
    rounds: int = 0
    params: Dict[str, object] = field(default_factory=dict)
    #: Optional per-phase round/message breakdown
    #: (a :class:`~repro.simulator.ledger.RoundLedger`; typed loosely to
    #: avoid a types ↔ simulator import cycle).
    ledger: Optional[object] = None

    def parent_in_forest(
        self, v: Vertex, forest: int, neighbors: Iterable[Vertex]
    ) -> Optional[Vertex]:
        """The parent of ``v`` in the given forest, or ``None`` for a root."""
        for u in neighbors:
            e = canonical_edge(v, u)
            if self.forest_of.get(e) == forest and self.orientation.head(v, u) == u:
                return u
        return None

    def forest_edges(self, forest: int) -> List[Edge]:
        """All edges assigned to the given forest."""
        return [e for e, f in self.forest_of.items() if f == forest]


@dataclass
class Decomposition:
    """A vertex decomposition into labeled parts (an arbdefective coloring
    viewed as a partition into low-arboricity subgraphs).

    ``label`` maps each vertex to its part id.  ``arboricity_bound`` is the
    certified upper bound on the arboricity of every induced part.
    """

    label: Dict[Vertex, int]
    arboricity_bound: int
    rounds: int = 0
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def num_parts(self) -> int:
        """Number of distinct part labels in use."""
        return len(set(self.label.values()))

    def parts(self) -> Dict[int, List[Vertex]]:
        """All parts as a dict ``label -> vertices``."""
        out: Dict[int, List[Vertex]] = {}
        for v, p in self.label.items():
            out.setdefault(p, []).append(v)
        return out


@dataclass
class MISResult:
    """A maximal independent set together with run metadata."""

    members: Set[Vertex]
    rounds: int = 0
    algorithm: str = ""
    params: Dict[str, object] = field(default_factory=dict)
    #: Optional per-phase round/message breakdown (a
    #: :class:`~repro.simulator.ledger.RoundLedger`).
    ledger: Optional[object] = None

    def __contains__(self, v: Vertex) -> bool:
        return v in self.members

    @property
    def size(self) -> int:
        """Number of vertices in the independent set."""
        return len(self.members)
