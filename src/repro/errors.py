"""Exception hierarchy for the ``repro`` library.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch a single base class.  The subclasses distinguish the three
places errors can originate:

* :class:`SimulationError` — the synchronous round simulator detected a
  protocol violation (message sent to a non-neighbour, program never halting
  within its round budget, ...).
* :class:`InvalidParameterError` — an algorithm was invoked with parameters
  outside its domain (``t < 1``, arboricity bound smaller than 1, ...).
* :class:`VerificationError` — a guarantee checker in :mod:`repro.verify`
  found a violated invariant (an illegal coloring, a cyclic "acyclic"
  orientation, ...).  These indicate bugs and are raised eagerly by the
  ``check_*`` helpers; the ``is_*``/``*_report`` helpers return data instead.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class SimulationError(ReproError):
    """A node program violated the rules of the LOCAL model simulator."""


class RoundLimitExceeded(SimulationError):
    """A simulation did not terminate within its allotted round budget.

    The simulator enforces an explicit bound so that a buggy node program
    (e.g. one that never halts) surfaces as a crisp exception instead of an
    infinite loop.
    """

    def __init__(self, limit: int, still_running: int):
        self.limit = limit
        self.still_running = still_running
        super().__init__(
            f"simulation exceeded the round limit of {limit} rounds "
            f"({still_running} node(s) still running)"
        )


class InvalidParameterError(ReproError, ValueError):
    """An algorithm parameter is outside its valid domain."""


class ExecutorError(ReproError, RuntimeError):
    """A sweep execution backend failed.

    Raised by :mod:`repro.experiments.executors` when a backend cannot make
    progress (no workers left and none reconnecting), when a payload
    exhausts its retry budget after repeated worker disconnects, or when a
    remote worker reports that a payload itself raised.  Trials that
    completed before the failure are already persisted (the runner streams
    records into the cache as they arrive), so re-running the sweep resumes
    from them.
    """


class VerificationError(ReproError, AssertionError):
    """A checked invariant does not hold."""
