"""Verification of coloring guarantees: legality, defect, arbdefect.

The ``check_*`` functions raise :class:`~repro.errors.VerificationError`
with a pinpointed witness on failure; the measurement functions return the
observed quantity so benchmarks can report paper-bound vs. measured.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..errors import VerificationError
from ..graphs.arboricity import degeneracy, nash_williams_lower_bound
from ..graphs.graph import Graph
from ..types import Orientation, Vertex


def check_legal_coloring(graph: Graph, colors: Mapping[Vertex, int]) -> None:
    """Assert no edge is monochromatic and every vertex is colored."""
    for v in graph.vertices:
        if v not in colors:
            raise VerificationError(f"vertex {v} is uncolored")
    for (u, v) in graph.edges:
        if colors[u] == colors[v]:
            raise VerificationError(
                f"edge ({u}, {v}) is monochromatic with color {colors[u]}"
            )


def is_legal_coloring(graph: Graph, colors: Mapping[Vertex, int]) -> bool:
    """Boolean form of :func:`check_legal_coloring`."""
    try:
        check_legal_coloring(graph, colors)
    except VerificationError:
        return False
    return True


def coloring_defect(graph: Graph, colors: Mapping[Vertex, int]) -> int:
    """The defect: max over vertices of same-colored neighbours."""
    worst = 0
    for v in graph.vertices:
        same = sum(1 for u in graph.neighbors(v) if colors[u] == colors[v])
        worst = max(worst, same)
    return worst


def check_defective_coloring(
    graph: Graph, colors: Mapping[Vertex, int], max_defect: int
) -> None:
    """Assert the coloring is ``max_defect``-defective."""
    for v in graph.vertices:
        same = [u for u in graph.neighbors(v) if colors[u] == colors[v]]
        if len(same) > max_defect:
            raise VerificationError(
                f"vertex {v} has {len(same)} same-colored neighbours "
                f"(> {max_defect}): {same[:6]}"
            )


def color_class_subgraphs(
    graph: Graph, colors: Mapping[Vertex, int]
) -> Dict[int, Graph]:
    """The subgraph induced by every color class."""
    classes: Dict[int, list] = {}
    for v in graph.vertices:
        classes.setdefault(colors[v], []).append(v)
    return {c: graph.induced_subgraph(vs) for c, vs in classes.items()}


def coloring_arbdefect_bounds(
    graph: Graph, colors: Mapping[Vertex, int]
) -> Tuple[int, int]:
    """Certified (lower, upper) bounds on the arbdefect of a coloring.

    The arbdefect is the max arboricity over color classes; we sandwich it
    between the best Nash–Williams witness (lower) and the degeneracy
    (upper) of each class.
    """
    lower = 0
    upper = 0
    for _c, sub in color_class_subgraphs(graph, colors).items():
        if sub.m == 0:
            continue
        lower = max(lower, nash_williams_lower_bound(sub))
        upper = max(upper, degeneracy(sub)[0])
    return lower, max(lower, upper)


def check_arbdefective_coloring(
    graph: Graph,
    colors: Mapping[Vertex, int],
    max_arbdefect: int,
    orientation: Optional[Orientation] = None,
) -> None:
    """Assert every color class has arboricity ≤ ``max_arbdefect``.

    With an orientation *witness* (the acyclic orientation the algorithm
    used) the check is exact: restrict the orientation to each class and
    count out-degrees plus unoriented incident edges — by Lemmas 3.1 + 2.5
    the class arboricity is at most that maximum.  Without a witness we
    fall back to the Nash–Williams lower bound, which detects violations
    but can under-approximate.
    """
    if orientation is not None:
        for c, sub in color_class_subgraphs(graph, colors).items():
            for v in sub.vertices:
                nbrs = sub.neighbors(v)
                out = len(orientation.parents_of(v, nbrs))
                out += len(orientation.unoriented_neighbors(v, nbrs))
                if out > max_arbdefect:
                    raise VerificationError(
                        f"class {c}: vertex {v} has witness out-degree "
                        f"{out} > {max_arbdefect}"
                    )
        return
    lower, _upper = coloring_arbdefect_bounds(graph, colors)
    if lower > max_arbdefect:
        raise VerificationError(
            f"a color class has arboricity >= {lower} > {max_arbdefect} "
            "(Nash-Williams witness)"
        )


def check_palette(colors: Mapping[Vertex, int], max_colors: int) -> None:
    """Assert the number of distinct colors is at most ``max_colors``."""
    used = len(set(colors.values()))
    if used > max_colors:
        raise VerificationError(f"{used} colors used, bound was {max_colors}")
