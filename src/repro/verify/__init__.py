"""Checkers for every guarantee the paper states.

``check_*`` functions raise :class:`~repro.errors.VerificationError` with a
concrete witness on failure; measurement helpers return observed values for
paper-vs-measured reporting.
"""

from .coloring import (
    check_arbdefective_coloring,
    check_defective_coloring,
    check_legal_coloring,
    check_palette,
    color_class_subgraphs,
    coloring_arbdefect_bounds,
    coloring_defect,
    is_legal_coloring,
)
from .decomposition import (
    check_forests_decomposition,
    check_hpartition,
    check_mis,
    check_partition_covers,
)
from .orientation import (
    check_orientation_acyclic,
    check_orientation_complete,
    check_orientation_deficit,
    check_orientation_edges_exist,
    check_orientation_out_degree,
    longest_directed_path,
    orientation_deficits,
    orientation_length,
    orientation_max_deficit,
    orientation_max_out_degree,
    orientation_out_degrees,
    vertex_lengths,
)

__all__ = [
    "check_legal_coloring",
    "is_legal_coloring",
    "coloring_defect",
    "check_defective_coloring",
    "check_arbdefective_coloring",
    "coloring_arbdefect_bounds",
    "color_class_subgraphs",
    "check_palette",
    "check_hpartition",
    "check_forests_decomposition",
    "check_mis",
    "check_partition_covers",
    "check_orientation_acyclic",
    "check_orientation_complete",
    "check_orientation_deficit",
    "check_orientation_edges_exist",
    "check_orientation_out_degree",
    "orientation_out_degrees",
    "orientation_max_out_degree",
    "orientation_deficits",
    "orientation_max_deficit",
    "orientation_length",
    "vertex_lengths",
    "longest_directed_path",
]
