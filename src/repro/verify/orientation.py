"""Verification and measurement of orientation invariants (Section 2.1).

Out-degree, deficit, completeness, acyclicity, and *length* (the longest
consistently-directed path) — the quantities Theorems 3.2/3.5 and Lemma 3.3
bound.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import VerificationError
from ..graphs.graph import Graph
from ..types import Orientation, Vertex, canonical_edge


def orientation_out_degrees(graph: Graph, orientation: Orientation) -> Dict[Vertex, int]:
    """Out-degree of every vertex under the (partial) orientation."""
    out = {v: 0 for v in graph.vertices}
    for (u, v), head in orientation.direction.items():
        tail = u if head == v else v
        out[tail] += 1
    return out


def orientation_max_out_degree(graph: Graph, orientation: Orientation) -> int:
    """The orientation's out-degree (max over vertices)."""
    degrees = orientation_out_degrees(graph, orientation)
    return max(degrees.values(), default=0)


def orientation_deficits(graph: Graph, orientation: Orientation) -> Dict[Vertex, int]:
    """Number of unoriented incident edges per vertex."""
    deficit = {v: 0 for v in graph.vertices}
    for (u, v) in graph.edges:
        if canonical_edge(u, v) not in orientation.direction:
            deficit[u] += 1
            deficit[v] += 1
    return deficit


def orientation_max_deficit(graph: Graph, orientation: Orientation) -> int:
    """The orientation's deficit (max over vertices)."""
    deficits = orientation_deficits(graph, orientation)
    return max(deficits.values(), default=0)


def check_orientation_complete(graph: Graph, orientation: Orientation) -> None:
    """Assert every edge of the graph is oriented."""
    for (u, v) in graph.edges:
        if canonical_edge(u, v) not in orientation.direction:
            raise VerificationError(f"edge ({u}, {v}) is unoriented")


def check_orientation_edges_exist(graph: Graph, orientation: Orientation) -> None:
    """Assert the orientation only mentions edges of the graph."""
    for (u, v) in orientation.direction:
        if not graph.has_edge(u, v):
            raise VerificationError(
                f"orientation mentions ({u}, {v}), not an edge of the graph"
            )


def _toposort(graph: Graph, orientation: Orientation) -> List[Vertex]:
    """Topological order of the oriented sub-DAG; raises on a cycle."""
    indeg = {v: 0 for v in graph.vertices}
    children: Dict[Vertex, List[Vertex]] = {v: [] for v in graph.vertices}
    for (u, v), head in orientation.direction.items():
        tail = u if head == v else v
        children[tail].append(head)
        indeg[head] += 1
    stack = [v for v, d in indeg.items() if d == 0]
    order: List[Vertex] = []
    while stack:
        v = stack.pop()
        order.append(v)
        for u in children[v]:
            indeg[u] -= 1
            if indeg[u] == 0:
                stack.append(u)
    if len(order) != graph.n:
        raise VerificationError("orientation contains a directed cycle")
    return order


def check_orientation_acyclic(graph: Graph, orientation: Orientation) -> None:
    """Assert the oriented edges form a DAG."""
    _toposort(graph, orientation)


def orientation_length(graph: Graph, orientation: Orientation) -> int:
    """len(σ): the longest consistently-directed path (DP over the DAG)."""
    order = _toposort(graph, orientation)
    # len(v) = longest path *leaving* v; process in reverse topological
    # order so every head is resolved before its tails.
    length = {v: 0 for v in graph.vertices}
    children: Dict[Vertex, List[Vertex]] = {v: [] for v in graph.vertices}
    for (u, v), head in orientation.direction.items():
        tail = u if head == v else v
        children[tail].append(head)
    for v in reversed(order):
        for u in children[v]:
            length[v] = max(length[v], 1 + length[u])
    return max(length.values(), default=0)


def vertex_lengths(graph: Graph, orientation: Orientation) -> Dict[Vertex, int]:
    """len(v) for every vertex (used by Figure-1-style analyses)."""
    order = _toposort(graph, orientation)
    length = {v: 0 for v in graph.vertices}
    children: Dict[Vertex, List[Vertex]] = {v: [] for v in graph.vertices}
    for (u, v), head in orientation.direction.items():
        tail = u if head == v else v
        children[tail].append(head)
    for v in reversed(order):
        for u in children[v]:
            length[v] = max(length[v], 1 + length[u])
    return length


def longest_directed_path(
    graph: Graph, orientation: Orientation
) -> List[Vertex]:
    """An actual longest consistently-directed path (Figure 1 material)."""
    order = _toposort(graph, orientation)
    length = {v: 0 for v in graph.vertices}
    best_child: Dict[Vertex, Vertex] = {}
    children: Dict[Vertex, List[Vertex]] = {v: [] for v in graph.vertices}
    for (u, v), head in orientation.direction.items():
        tail = u if head == v else v
        children[tail].append(head)
    for v in reversed(order):
        for u in children[v]:
            if 1 + length[u] > length[v]:
                length[v] = 1 + length[u]
                best_child[v] = u
    if not length:
        return []
    start = max(length, key=lambda v: length[v])
    path = [start]
    while path[-1] in best_child:
        path.append(best_child[path[-1]])
    return path


def check_orientation_out_degree(
    graph: Graph, orientation: Orientation, bound: int
) -> None:
    """Assert every vertex has out-degree at most ``bound``."""
    for v, d in orientation_out_degrees(graph, orientation).items():
        if d > bound:
            raise VerificationError(
                f"vertex {v} has out-degree {d} > bound {bound}"
            )


def check_orientation_deficit(
    graph: Graph, orientation: Orientation, bound: int
) -> None:
    """Assert every vertex has deficit at most ``bound``."""
    for v, d in orientation_deficits(graph, orientation).items():
        if d > bound:
            raise VerificationError(
                f"vertex {v} has deficit {d} > bound {bound}"
            )
