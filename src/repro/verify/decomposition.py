"""Verification of H-partitions, forests decompositions, and MIS results."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set

from ..errors import VerificationError
from ..graphs.arboricity import is_forest
from ..graphs.graph import Graph
from ..types import ForestsDecomposition, HPartition, Vertex, canonical_edge


def check_hpartition(graph: Graph, hp: HPartition) -> None:
    """Assert the defining property of an H-partition (Section 2.2):
    every vertex of ``H_i`` has at most ``degree_bound`` neighbours in
    ``H_i ∪ ... ∪ H_ℓ``."""
    idx = hp.index
    for v in graph.vertices:
        if v not in idx:
            raise VerificationError(f"vertex {v} has no H-index")
    for v in graph.vertices:
        higher = [u for u in graph.neighbors(v) if idx[u] >= idx[v]]
        if len(higher) > hp.degree_bound:
            raise VerificationError(
                f"vertex {v} (level {idx[v]}) has {len(higher)} neighbours "
                f"at its level or above (> {hp.degree_bound})"
            )


def check_forests_decomposition(graph: Graph, fd: ForestsDecomposition) -> None:
    """Assert every edge has a forest, forests are edge-disjoint by
    construction, each is acyclic, and each vertex has ≤ 1 parent per
    forest."""
    for (u, v) in graph.edges:
        if canonical_edge(u, v) not in fd.forest_of:
            raise VerificationError(f"edge ({u}, {v}) has no forest label")
    by_forest: Dict[int, List] = {}
    for e, f in fd.forest_of.items():
        if not graph.has_edge(*e):
            raise VerificationError(f"forest label on non-edge {e}")
        if not (0 <= f < fd.num_forests):
            raise VerificationError(f"forest label {f} out of range")
        by_forest.setdefault(f, []).append(e)
    for f, edges in by_forest.items():
        sub = graph.subgraph_of_edges(edges)
        if not is_forest(sub):
            raise VerificationError(f"forest {f} contains a cycle")
        parents: Dict[Vertex, int] = {}
        for (u, v) in edges:
            head = fd.orientation.head(u, v)
            if head is None:
                raise VerificationError(f"forest edge ({u}, {v}) unoriented")
            tail = u if head == v else v
            parents[tail] = parents.get(tail, 0) + 1
            if parents[tail] > 1:
                raise VerificationError(
                    f"vertex {tail} has two parents in forest {f}"
                )


def check_mis(graph: Graph, members: Set[Vertex]) -> None:
    """Assert independence and maximality."""
    for (u, v) in graph.edges:
        if u in members and v in members:
            raise VerificationError(
                f"MIS contains both endpoints of edge ({u}, {v})"
            )
    for v in graph.vertices:
        if v in members:
            continue
        if not any(u in members for u in graph.neighbors(v)):
            raise VerificationError(
                f"vertex {v} is outside the MIS but has no MIS neighbour "
                "(not maximal)"
            )


def check_partition_covers(
    graph: Graph, label: Mapping[Vertex, object]
) -> None:
    """Assert a vertex labeling covers the whole vertex set."""
    for v in graph.vertices:
        if v not in label:
            raise VerificationError(f"vertex {v} has no part label")
