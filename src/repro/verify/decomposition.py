"""Verification of H-partitions, forests decompositions, and MIS results.

The per-vertex invariant checks (``check_hpartition``, ``check_mis``) have
two implementations: a vectorized one over the graph's CSR arrays (used when
the graph is a contiguous-id :class:`Graph` and numpy is available — one C
pass over the batched neighbour array instead of a Python filter per vertex)
and the generic id-based loop, which doubles as the error reporter: when the
vectorized check finds a violation it re-runs the loop to name the offending
vertex.  Both see the same adjacency, so they accept/reject identically."""

from __future__ import annotations

from typing import Dict, List, Mapping, Set

from ..errors import VerificationError
from ..graphs.arboricity import is_forest
from ..graphs.graph import Graph
from ..types import ForestsDecomposition, HPartition, Vertex, canonical_edge

def _csr_arrays(graph):
    """Zero-copy numpy views of the CSR arrays, or None when unavailable.

    Uses the graph core's numpy handle so the ``REPRO_PURE_CSR`` gate
    disables the vectorized verifiers together with the vectorized build —
    a numpy-free run exercises exactly the generic loops it would ship.
    """
    from ..graphs.graph import _np

    if _np is None or not isinstance(graph, Graph) or not graph.ids_contiguous:
        return None
    off_mv, nbr_mv = graph.csr()
    return (
        _np,
        _np.frombuffer(off_mv, dtype=_np.int64),
        _np.frombuffer(nbr_mv, dtype=_np.int64),
    )


def check_hpartition(graph: Graph, hp: HPartition) -> None:
    """Assert the defining property of an H-partition (Section 2.2):
    every vertex of ``H_i`` has at most ``degree_bound`` neighbours in
    ``H_i ∪ ... ∪ H_ℓ``."""
    idx = hp.index
    for v in graph.vertices:
        if v not in idx:
            raise VerificationError(f"vertex {v} has no H-index")
    csr = _csr_arrays(graph)
    if csr is not None:
        np, off, nbr = csr
        n = graph.n
        levels = np.fromiter((idx[v] for v in range(n)), np.int64, count=n)
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(off))
        higher = src[levels[nbr] >= levels[src]]
        counts = np.bincount(higher, minlength=n)
        if bool((counts <= hp.degree_bound).all()):
            return
        # fall through: the id-based loop names the offending vertex
    for v in graph.vertices:
        higher = [u for u in graph.neighbors(v) if idx[u] >= idx[v]]
        if len(higher) > hp.degree_bound:
            raise VerificationError(
                f"vertex {v} (level {idx[v]}) has {len(higher)} neighbours "
                f"at its level or above (> {hp.degree_bound})"
            )


def check_forests_decomposition(graph: Graph, fd: ForestsDecomposition) -> None:
    """Assert every edge has a forest, forests are edge-disjoint by
    construction, each is acyclic, and each vertex has ≤ 1 parent per
    forest."""
    for (u, v) in graph.edges:
        if canonical_edge(u, v) not in fd.forest_of:
            raise VerificationError(f"edge ({u}, {v}) has no forest label")
    by_forest: Dict[int, List] = {}
    for e, f in fd.forest_of.items():
        if not graph.has_edge(*e):
            raise VerificationError(f"forest label on non-edge {e}")
        if not (0 <= f < fd.num_forests):
            raise VerificationError(f"forest label {f} out of range")
        by_forest.setdefault(f, []).append(e)
    for f, edges in by_forest.items():
        sub = graph.subgraph_of_edges(edges)
        if not is_forest(sub):
            raise VerificationError(f"forest {f} contains a cycle")
        parents: Dict[Vertex, int] = {}
        for (u, v) in edges:
            head = fd.orientation.head(u, v)
            if head is None:
                raise VerificationError(f"forest edge ({u}, {v}) unoriented")
            tail = u if head == v else v
            parents[tail] = parents.get(tail, 0) + 1
            if parents[tail] > 1:
                raise VerificationError(
                    f"vertex {tail} has two parents in forest {f}"
                )


def check_mis(graph: Graph, members: Set[Vertex]) -> None:
    """Assert independence and maximality."""
    csr = _csr_arrays(graph)
    if csr is not None and all(
        isinstance(v, int) and 0 <= v < graph.n for v in members
    ):
        np, off, nbr = csr
        n = graph.n
        in_mis = np.zeros(n, dtype=bool)
        if members:
            in_mis[np.fromiter(members, np.int64, count=len(members))] = True
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(off))
        independent = not bool((in_mis[src] & in_mis[nbr]).any())
        covered = np.bincount(src[in_mis[nbr]], minlength=n) > 0
        if independent and bool((in_mis | covered).all()):
            return
        # fall through: the id-based loop names the offending vertex/edge
    for (u, v) in graph.edges:
        if u in members and v in members:
            raise VerificationError(
                f"MIS contains both endpoints of edge ({u}, {v})"
            )
    for v in graph.vertices:
        if v in members:
            continue
        if not any(u in members for u in graph.neighbors(v)):
            raise VerificationError(
                f"vertex {v} is outside the MIS but has no MIS neighbour "
                "(not maximal)"
            )


def check_partition_covers(
    graph: Graph, label: Mapping[Vertex, object]
) -> None:
    """Assert a vertex labeling covers the whole vertex set."""
    for v in graph.vertices:
        if v not in label:
            raise VerificationError(f"vertex {v} has no part label")
