"""Primality testing and prime search for the function-family constructions.

The polynomial families of :mod:`repro.families.polynomial` live over GF(q)
for a prime q; the recoloring engine repeatedly needs "the smallest prime
at least x" for x up to a few million.  Deterministic Miller–Rabin with the
standard witness set is exact for all 64-bit integers, which is far beyond
anything the algorithms request.
"""

from __future__ import annotations

from ..errors import InvalidParameterError

# Witnesses proven sufficient for n < 3,317,044,064,679,887,385,961,981
_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller–Rabin primality test (exact for n < 3.3e24)."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MILLER_RABIN_WITNESSES:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """The smallest prime ``>= n`` (and >= 2)."""
    if n <= 2:
        return 2
    candidate = n | 1  # first odd >= n
    while not is_prime(candidate):
        candidate += 2
    return candidate


def integer_nth_root(x: int, k: int) -> int:
    """⌊x^(1/k)⌋ computed exactly with integer arithmetic."""
    if x < 0 or k < 1:
        raise InvalidParameterError("integer_nth_root: need x >= 0 and k >= 1")
    if x in (0, 1) or k == 1:
        return x
    # Newton iteration with a float seed, then exact fix-up.
    r = int(round(x ** (1.0 / k)))
    while r > 1 and r**k > x:
        r -= 1
    while (r + 1) ** k <= x:
        r += 1
    return r
